//! Full/empty-bit synchronization via paired pointers (Section 4.2.1).
//!
//! Tera and Alewife attach a full/empty tag bit to every memory word:
//! reading an empty word or writing a full word traps. The paper observes
//! the same semantics can be had on conventional hardware with **two
//! pointers per synchronized word**: a read pointer and a write pointer,
//! where the pointer for the currently-forbidden direction is unaligned.
//! The forbidden access then raises an unaligned-access exception instead
//! of proceeding.
//!
//! In this single-address-space simulation a blocked access surfaces as
//! [`SyncError::WouldBlock`] (a thread scheduler would park the accessor);
//! the allowed direction proceeds at full speed with no checks.

use std::error::Error;
use std::fmt;

use efex_core::{CoreError, GuestMem};

use crate::runtime::{LazyError, LazyRuntime};

/// A word with full/empty semantics.
///
/// Layout: one data cell plus a descriptor of two pointer slots
/// (read pointer, write pointer). Exactly one of the two is aligned at any
/// time.
#[derive(Clone, Copy, Debug)]
pub struct SyncVar {
    /// Slot holding the read pointer.
    read_slot: u32,
    /// Slot holding the write pointer.
    write_slot: u32,
    /// The data cell both point at (possibly tagged).
    data: u32,
}

/// Synchronization errors.
#[derive(Debug)]
pub enum SyncError {
    /// The access direction is currently forbidden (read-on-empty or
    /// write-on-full); a scheduler would block the thread here.
    WouldBlock,
    /// Underlying simulation error.
    Core(CoreError),
    /// Runtime error.
    Lazy(LazyError),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::WouldBlock => f.write_str("access would block (full/empty)"),
            SyncError::Core(e) => write!(f, "simulation error: {e}"),
            SyncError::Lazy(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for SyncError {}

impl From<CoreError> for SyncError {
    fn from(e: CoreError) -> SyncError {
        SyncError::Core(e)
    }
}

impl From<LazyError> for SyncError {
    fn from(e: LazyError) -> SyncError {
        SyncError::Lazy(e)
    }
}

impl SyncVar {
    /// Creates an *empty* synchronized word.
    ///
    /// # Errors
    ///
    /// Fails if the heap is exhausted.
    pub fn new(rt: &mut LazyRuntime) -> Result<SyncVar, SyncError> {
        let slots = rt.alloc_raw()?;
        let data = rt.alloc_raw()?;
        let var = SyncVar {
            read_slot: slots,
            write_slot: slots + 4,
            data,
        };
        // Empty: reads forbidden (tagged), writes allowed (aligned).
        rt.host_mut().write_raw(var.read_slot, data + 2)?;
        rt.host_mut().write_raw(var.write_slot, data)?;
        Ok(var)
    }

    /// Whether the word is currently full.
    ///
    /// # Errors
    ///
    /// Fails on simulation errors.
    pub fn is_full(&self, rt: &mut LazyRuntime) -> Result<bool, SyncError> {
        let r = rt.host_mut().load_u32(self.read_slot)?;
        Ok(r % 4 == 0)
    }

    /// Reads the word; empties it (consuming read, as on the Tera).
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::WouldBlock`] if the word is empty.
    pub fn read(&self, rt: &mut LazyRuntime) -> Result<i32, SyncError> {
        let ptr = rt.host_mut().load_u32(self.read_slot)?;
        if ptr % 4 != 0 {
            // The trapped path: on real hardware the load through the
            // unaligned pointer faults; the handler would park the thread.
            return Err(SyncError::WouldBlock);
        }
        let v = rt.host_mut().load_u32(ptr)? as i32;
        // Flip to empty: forbid reads, allow writes.
        rt.host_mut().write_raw(self.read_slot, self.data + 2)?;
        rt.host_mut().write_raw(self.write_slot, self.data)?;
        Ok(v)
    }

    /// Writes the word; fills it.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::WouldBlock`] if the word is already full.
    pub fn write(&self, rt: &mut LazyRuntime, value: i32) -> Result<(), SyncError> {
        let ptr = rt.host_mut().load_u32(self.write_slot)?;
        if ptr % 4 != 0 {
            return Err(SyncError::WouldBlock);
        }
        rt.host_mut().store_u32(ptr, value as u32)?;
        // Flip to full: allow reads, forbid writes.
        rt.host_mut().write_raw(self.read_slot, self.data)?;
        rt.host_mut().write_raw(self.write_slot, self.data + 2)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efex_core::DeliveryPath;

    fn rt() -> LazyRuntime {
        LazyRuntime::new(DeliveryPath::FastUser, 64 * 1024).unwrap()
    }

    #[test]
    fn starts_empty_and_blocks_reads() {
        let mut rt = rt();
        let v = SyncVar::new(&mut rt).unwrap();
        assert!(!v.is_full(&mut rt).unwrap());
        assert!(matches!(v.read(&mut rt), Err(SyncError::WouldBlock)));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut rt = rt();
        let v = SyncVar::new(&mut rt).unwrap();
        v.write(&mut rt, 123).unwrap();
        assert!(v.is_full(&mut rt).unwrap());
        assert_eq!(v.read(&mut rt).unwrap(), 123);
        assert!(!v.is_full(&mut rt).unwrap(), "consuming read empties");
    }

    #[test]
    fn double_write_blocks() {
        let mut rt = rt();
        let v = SyncVar::new(&mut rt).unwrap();
        v.write(&mut rt, 1).unwrap();
        assert!(matches!(v.write(&mut rt, 2), Err(SyncError::WouldBlock)));
        // The original value is preserved.
        assert_eq!(v.read(&mut rt).unwrap(), 1);
    }

    #[test]
    fn producer_consumer_sequence() {
        let mut rt = rt();
        let v = SyncVar::new(&mut rt).unwrap();
        for i in 0..10 {
            v.write(&mut rt, i).unwrap();
            assert_eq!(v.read(&mut rt).unwrap(), i);
        }
    }

    #[test]
    fn independent_vars_do_not_interfere() {
        let mut rt = rt();
        let a = SyncVar::new(&mut rt).unwrap();
        let b = SyncVar::new(&mut rt).unwrap();
        a.write(&mut rt, 5).unwrap();
        assert!(!b.is_full(&mut rt).unwrap());
        b.write(&mut rt, 6).unwrap();
        assert_eq!(a.read(&mut rt).unwrap(), 5);
        assert_eq!(b.read(&mut rt).unwrap(), 6);
    }
}
