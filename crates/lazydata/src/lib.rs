//! # efex-lazydata — language features built on unaligned-access exceptions
//!
//! Section 4.2.1 of Thekkath & Levy (ASPLOS 1994) argues that cheap
//! user-level delivery of unaligned-access exceptions makes several
//! language mechanisms practical on conventional hardware:
//!
//! - **Unbounded data structures** ([`runtime::LazyRuntime::new_stream`]):
//!   the unevaluated tail of a list is denoted by an *unaligned* pointer in
//!   the last evaluated cell; touching it faults, and the handler extends
//!   the list on demand — no explicit "force" calls in the program.
//! - **Futures** ([`runtime::LazyRuntime::make_future`]): an unresolved
//!   future is an unaligned pointer; first touch faults and resolves it
//!   (the APRIL/Alewife representation the paper cites).
//! - **Full/empty bits** ([`fullempty`]): Tera-style synchronized words
//!   emulated with a pair of read/write pointers, where the blocked
//!   direction's pointer is unaligned so the access traps.
//!
//! Everything runs over [`efex_core::HostProcess`]: the faults are real
//! simulated unaligned-access exceptions paying the configured delivery
//! path's costs.
//!
//! # Example
//!
//! ```
//! use efex_core::DeliveryPath;
//! use efex_lazydata::LazyRuntime;
//!
//! # fn main() -> Result<(), efex_lazydata::LazyError> {
//! let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 64 * 1024)?;
//! let naturals = rt.new_stream(|i| i as i32)?;
//! assert_eq!(rt.take(naturals, 4)?, vec![0, 1, 2, 3]);
//! assert_eq!(rt.stats().faults, 4, "one fault per materialized cell");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fullempty;
pub mod runtime;

pub use fullempty::{SyncError, SyncVar};
pub use runtime::{
    baseline_workload, tenant_workload, LazyError, LazyList, LazyRuntime, LazyStats,
};
