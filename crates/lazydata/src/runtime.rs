//! The lazy-evaluation runtime: unbounded lists and futures via unaligned
//! pointers.
//!
//! Tagged (unevaluated) pointers live in a reserved address range that is
//! never mapped; their low two address bits are `0b10`, so any dereference
//! raises an unaligned-access exception. The fault handler decodes the tag,
//! runs the generator or producer, allocates the result cell, **repairs the
//! pointer in place** (so later uses are free), and redirects the faulting
//! access to the fresh cell.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use efex_core::{
    CoreError, DeliveryPath, FaultInfo, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot,
    WorkloadRun,
};
use efex_mips::ExcCode;
use efex_trace::{Snapshot, StatsSnapshot};

/// Base of the reserved (never-mapped) tag address range.
const TAG_BASE: u32 = 0x6000_0000;
/// Size of the tag range: one slot of 8 bytes per suspension.
const TAG_RANGE: u32 = 0x0100_0000;

/// Statistics kept by the runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// List cells materialized by the fault handler.
    pub extensions: u64,
    /// Futures resolved by the fault handler.
    pub forces: u64,
    /// Unaligned-access exceptions delivered.
    pub faults: u64,
    /// Cells allocated in total.
    pub cells: u64,
}

impl Snapshot for LazyStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("lazydata")
            .counter("extensions", self.extensions)
            .counter("forces", self.forces)
            .counter("faults", self.faults)
            .counter("cells", self.cells)
    }
}

/// Runtime errors.
#[derive(Debug)]
pub enum LazyError {
    /// Underlying simulation error.
    Core(CoreError),
    /// The heap region is exhausted.
    OutOfMemory,
}

impl fmt::Display for LazyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LazyError::Core(e) => write!(f, "simulation error: {e}"),
            LazyError::OutOfMemory => f.write_str("lazy heap exhausted"),
        }
    }
}

impl Error for LazyError {}

impl From<CoreError> for LazyError {
    fn from(e: CoreError) -> LazyError {
        LazyError::Core(e)
    }
}

/// A handle to an unbounded (lazily generated) list.
#[derive(Clone, Copy, Debug)]
pub struct LazyList {
    head: u32,
}

impl LazyList {
    /// The address of the first cell.
    pub fn head(&self) -> u32 {
        self.head
    }
}

/// What a suspension produces when forced.
enum Suspension {
    /// An infinite stream: `gen(index)` yields element `index`; the new
    /// cell's tail is a fresh suspension for `index + 1`.
    Stream {
        gen: Box<dyn FnMut(u64) -> i32>,
        index: u64,
    },
    /// A one-shot future.
    Future(Option<Box<dyn FnOnce() -> i32>>),
    /// Already forced (slot kept so tag ids stay stable).
    Done,
}

struct RtState {
    /// Bump allocator over the mapped cell region.
    alloc_next: u32,
    alloc_limit: u32,
    suspensions: Vec<Suspension>,
    /// The slot that held the tagged pointer being dereferenced (the
    /// handler repairs it — standing in for decoding the faulting
    /// instruction's base register).
    pending_slot: Option<u32>,
    extensions: u64,
    forces: u64,
    cells: u64,
}

impl RtState {
    fn tag_for(&self, id: usize) -> u32 {
        TAG_BASE + (id as u32) * 8 + 2
    }

    fn id_of(vaddr: u32) -> Option<usize> {
        if !(TAG_BASE..TAG_BASE + TAG_RANGE).contains(&vaddr) {
            return None;
        }
        (vaddr % 4 == 2).then_some(((vaddr - TAG_BASE - 2) / 8) as usize)
    }

    fn alloc_cell(&mut self) -> Option<u32> {
        if self.alloc_next + 8 > self.alloc_limit {
            return None;
        }
        let addr = self.alloc_next;
        self.alloc_next += 8;
        self.cells += 1;
        Some(addr)
    }
}

/// The lazy-evaluation runtime.
pub struct LazyRuntime {
    host: HostProcess,
    st: Rc<RefCell<RtState>>,
}

impl fmt::Debug for LazyRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyRuntime").finish_non_exhaustive()
    }
}

impl LazyRuntime {
    /// Creates a runtime with a cell heap of `heap_bytes` on the given
    /// delivery path.
    ///
    /// # Errors
    ///
    /// Fails if the simulated system cannot boot.
    pub fn new(path: DeliveryPath, heap_bytes: u32) -> Result<LazyRuntime, LazyError> {
        let mut host = HostProcess::builder().delivery(path).build()?;
        let base = host.alloc_region(heap_bytes, Prot::ReadWrite)?;
        let st = Rc::new(RefCell::new(RtState {
            alloc_next: base,
            alloc_limit: base + heap_bytes,
            suspensions: Vec::new(),
            pending_slot: None,
            extensions: 0,
            forces: 0,
            cells: 0,
        }));

        let state = Rc::clone(&st);
        host.set_handler(
            HandlerSpec::new(move |ctx, info: FaultInfo| {
                if !matches!(info.code, ExcCode::AddrErrLoad | ExcCode::AddrErrStore) {
                    return HandlerAction::Abort;
                }
                // The fault address is tag + in-cell offset (0 or 4).
                let offset = (info.vaddr - 2) % 8;
                let Some(id) = RtState::id_of(info.vaddr - offset) else {
                    return HandlerAction::Abort;
                };
                let mut s = state.borrow_mut();
                if id >= s.suspensions.len() {
                    return HandlerAction::Abort;
                }
                // Force the suspension.
                let Some(cell) = s.alloc_cell() else {
                    return HandlerAction::Abort;
                };
                let susp = std::mem::replace(&mut s.suspensions[id], Suspension::Done);
                let filled = match susp {
                    Suspension::Stream { mut gen, index } => {
                        let datum = gen(index);
                        // The new cell's tail is a fresh suspension continuing
                        // the same stream.
                        s.suspensions.push(Suspension::Stream {
                            gen,
                            index: index + 1,
                        });
                        let tail_tag = s.tag_for(s.suspensions.len() - 1);
                        s.extensions += 1;
                        (datum as u32, tail_tag)
                    }
                    Suspension::Future(Some(p)) => {
                        let v = p();
                        s.forces += 1;
                        (v as u32, 0)
                    }
                    Suspension::Future(None) | Suspension::Done => return HandlerAction::Abort,
                };
                // Charge the force's own work (allocation + fill).
                ctx.charge(20);
                if ctx.write_raw(cell, filled.0).is_err()
                    || ctx.write_raw(cell + 4, filled.1).is_err()
                {
                    return HandlerAction::Abort;
                }
                // Repair the pointer that held the tag, so later uses are free.
                if let Some(slot) = s.pending_slot.take() {
                    if ctx.write_raw(slot, cell).is_err() {
                        return HandlerAction::Abort;
                    }
                }
                HandlerAction::Redirect(cell + offset)
            })
            .named("lazy-fill"),
        );

        Ok(LazyRuntime { host, st })
    }

    /// Statistics so far.
    pub fn stats(&self) -> LazyStats {
        let s = self.st.borrow();
        LazyStats {
            extensions: s.extensions,
            forces: s.forces,
            faults: self.host.stats().faults_delivered,
            cells: s.cells,
        }
    }

    /// Per-(path, class) exception metrics for the unaligned faults taken.
    pub fn trace_metrics(&self) -> &efex_trace::Metrics {
        self.host.trace_metrics()
    }

    /// Health-plane snapshot of the host kernel underneath the runtime
    /// (decode cache, TLB repairs, degraded deliveries). Pure read.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        self.host.health_snapshot()
    }

    /// Simulated time, µs.
    pub fn micros(&self) -> f64 {
        self.host.micros()
    }

    /// Fault injection: the next `n` lazy-extension deliveries fall back to
    /// Unix-signal costs. Forced values must be unchanged — only dearer.
    pub fn inject_degrade_next_deliveries(&mut self, n: u64) {
        self.host.inject_degrade_next_deliveries(n);
    }

    /// Deliveries that fell back to the degraded (Unix-cost) path.
    pub fn degraded_deliveries(&self) -> u64 {
        self.host.stats().degraded_deliveries
    }

    /// Creates an unbounded list whose `index`th element is `gen(index)`.
    /// No element is computed until touched.
    ///
    /// # Errors
    ///
    /// Fails if the heap is exhausted.
    pub fn new_stream(
        &mut self,
        gen: impl FnMut(u64) -> i32 + 'static,
    ) -> Result<LazyList, LazyError> {
        let mut s = self.st.borrow_mut();
        // The head itself is a suspension: materialize a one-cell shell
        // whose tail tag forces element 0 on first touch... simpler: the
        // list handle stores the tag as a virtual head pointer slot.
        let cell = s.alloc_cell().ok_or(LazyError::OutOfMemory)?;
        s.suspensions.push(Suspension::Stream {
            gen: Box::new(gen),
            index: 0,
        });
        let tag = s.tag_for(s.suspensions.len() - 1);
        drop(s);
        // The shell cell: [unused datum, tagged tail]; traversal starts at
        // its tail.
        self.host.write_raw(cell, 0)?;
        self.host.write_raw(cell + 4, tag)?;
        Ok(LazyList { head: cell })
    }

    /// Reads the first `n` elements of a list, forcing as needed.
    ///
    /// # Errors
    ///
    /// Fails on simulation errors.
    pub fn take(&mut self, list: LazyList, n: usize) -> Result<Vec<i32>, LazyError> {
        let mut out = Vec::with_capacity(n);
        let mut cell = list.head;
        for _ in 0..n {
            // Follow the tail; the dereference through a tagged tail faults
            // and extends the list.
            let tail_slot = cell + 4;
            let tail = self.host.load_u32(tail_slot)?;
            self.st.borrow_mut().pending_slot = Some(tail_slot);
            let datum = self.host.load_u32(tail)? as i32;
            self.st.borrow_mut().pending_slot = None;
            // The slot now holds the real (repaired) cell address.
            cell = self.host.load_u32(tail_slot)?;
            out.push(datum);
        }
        Ok(out)
    }

    /// Creates a future; the producer runs at first touch.
    /// Returns the address of the slot holding the (initially unaligned)
    /// future pointer.
    ///
    /// # Errors
    ///
    /// Fails if the heap is exhausted.
    pub fn make_future(
        &mut self,
        producer: impl FnOnce() -> i32 + 'static,
    ) -> Result<u32, LazyError> {
        let mut s = self.st.borrow_mut();
        let slot = s.alloc_cell().ok_or(LazyError::OutOfMemory)?;
        s.suspensions
            .push(Suspension::Future(Some(Box::new(producer))));
        let tag = s.tag_for(s.suspensions.len() - 1);
        drop(s);
        self.host.write_raw(slot, tag)?;
        Ok(slot)
    }

    /// Touches a future: returns its value, forcing the producer on first
    /// touch (one unaligned fault), free afterwards.
    ///
    /// # Errors
    ///
    /// Fails on simulation errors.
    pub fn touch(&mut self, future_slot: u32) -> Result<i32, LazyError> {
        let ptr = self.host.load_u32(future_slot)?;
        self.st.borrow_mut().pending_slot = Some(future_slot);
        let v = self.host.load_u32(ptr)? as i32;
        self.st.borrow_mut().pending_slot = None;
        Ok(v)
    }

    /// Access to the underlying host process (for the full/empty layer).
    pub(crate) fn host_mut(&mut self) -> &mut HostProcess {
        &mut self.host
    }

    /// Allocates a raw 8-byte cell (for the full/empty layer).
    pub(crate) fn alloc_raw(&mut self) -> Result<u32, LazyError> {
        self.st
            .borrow_mut()
            .alloc_cell()
            .ok_or(LazyError::OutOfMemory)
    }
}

/// The canonical deterministic workload recorded in `BENCH_baseline.json` by
/// `efex-bench`'s `report` binary: stream extension plus future touches over
/// the fast path. The generator is a fixed pure function, so extension and
/// force counts must reproduce bit-for-bit across runs.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn baseline_workload() -> Result<(f64, StatsSnapshot), LazyError> {
    let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 256 * 1024)?;
    let list = rt.new_stream(|i| (i as i32) * 3)?;
    let elems = rt.take(list, 24)?;
    debug_assert_eq!(elems.len(), 24);
    let fut = rt.make_future(|| 41)?;
    let first = rt.touch(fut)?; // forces the producer (one fault)
    let again = rt.touch(fut)?; // free afterwards
    debug_assert_eq!((first, again), (41, 41));
    Ok((rt.micros(), rt.stats().snapshot()))
}

/// A seeded fleet-tenant variant of [`baseline_workload`]: the same
/// stream-plus-future shape with the element count, generator multiplier,
/// and future value derived deterministically from `seed`. Equal seeds
/// reproduce bit-identical extension and force counts.
///
/// The returned [`WorkloadRun`] carries the runtime's health-plane
/// snapshot alongside the deterministic stats; only the latter enter fleet
/// fingerprints.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn tenant_workload(seed: u64) -> Result<WorkloadRun, LazyError> {
    let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 256 * 1024)?;
    let mult = 1 + (seed % 9) as i32;
    let list = rt.new_stream(move |i| (i as i32) * mult)?;
    let n = 10 + (seed % 16) as usize;
    let elems = rt.take(list, n)?;
    debug_assert_eq!(elems.len(), n);
    let value = 40 + (seed % 13) as i32;
    let fut = rt.make_future(move || value)?;
    let first = rt.touch(fut)?; // forces the producer (one fault)
    let again = rt.touch(fut)?; // free afterwards
    debug_assert_eq!((first, again), (value, value));
    Ok(WorkloadRun::new(
        rt.micros(),
        rt.stats().snapshot(),
        rt.health_snapshot(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> LazyRuntime {
        LazyRuntime::new(DeliveryPath::FastUser, 64 * 1024).unwrap()
    }

    #[test]
    fn stream_materializes_on_demand() {
        let mut rt = rt();
        let squares = rt.new_stream(|i| (i * i) as i32).unwrap();
        assert_eq!(rt.stats().extensions, 0, "nothing computed yet");
        let v = rt.take(squares, 5).unwrap();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
        assert_eq!(rt.stats().extensions, 5);
        assert_eq!(rt.stats().faults, 5, "one fault per new element");
    }

    #[test]
    fn degraded_extension_delivery_preserves_values() {
        // The first two extension faults are injected to fall back to
        // Unix-signal costs; the forced values must be unchanged.
        let mut rt = rt();
        let squares = rt.new_stream(|i| (i * i) as i32).unwrap();
        rt.inject_degrade_next_deliveries(2);
        let v = rt.take(squares, 5).unwrap();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
        assert_eq!(rt.degraded_deliveries(), 2);
        assert_eq!(rt.stats().extensions, 5);
    }

    #[test]
    fn revisiting_evaluated_prefix_is_free() {
        let mut rt = rt();
        let nats = rt.new_stream(|i| i as i32).unwrap();
        rt.take(nats, 8).unwrap();
        let f = rt.stats().faults;
        // Walking the same prefix again: pointers were repaired in place.
        let v = rt.take(nats, 8).unwrap();
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(rt.stats().faults, f, "no new faults on the warm prefix");
    }

    #[test]
    fn take_beyond_prefix_extends_incrementally() {
        let mut rt = rt();
        let nats = rt.new_stream(|i| i as i32).unwrap();
        rt.take(nats, 3).unwrap();
        rt.take(nats, 6).unwrap();
        assert_eq!(rt.stats().extensions, 6, "only 3 more computed");
    }

    #[test]
    fn two_streams_are_independent() {
        let mut rt = rt();
        let a = rt.new_stream(|i| i as i32).unwrap();
        let b = rt.new_stream(|i| -(i as i32)).unwrap();
        assert_eq!(rt.take(a, 3).unwrap(), vec![0, 1, 2]);
        assert_eq!(rt.take(b, 3).unwrap(), vec![0, -1, -2]);
        assert_eq!(rt.take(a, 4).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn future_forces_once() {
        use std::cell::Cell;
        use std::rc::Rc;
        let mut rt = rt();
        let runs = Rc::new(Cell::new(0));
        let r2 = runs.clone();
        let f = rt
            .make_future(move || {
                r2.set(r2.get() + 1);
                77
            })
            .unwrap();
        assert_eq!(runs.get(), 0, "lazy until touched");
        assert_eq!(rt.touch(f).unwrap(), 77);
        assert_eq!(runs.get(), 1);
        assert_eq!(rt.touch(f).unwrap(), 77, "resolved value reused");
        assert_eq!(runs.get(), 1, "producer ran exactly once");
        assert_eq!(rt.stats().forces, 1);
        assert_eq!(rt.stats().faults, 1);
    }

    #[test]
    fn stream_generator_state_is_captured() {
        let mut rt = rt();
        let mut acc = 0i32;
        let sums = rt
            .new_stream(move |i| {
                acc += i as i32;
                acc
            })
            .unwrap();
        assert_eq!(rt.take(sums, 5).unwrap(), vec![0, 1, 3, 6, 10]);
    }
}

#[cfg(test)]
mod exhaustion_tests {
    use super::*;

    #[test]
    fn heap_exhaustion_surfaces_as_error() {
        // A heap with room for only a few cells: the stream extension
        // inside the fault handler fails, the handler aborts the access,
        // and the error reaches the caller instead of hanging.
        let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 4096).unwrap();
        let s = rt.new_stream(|i| i as i32).unwrap();
        let result = rt.take(s, 4096 / 8 + 2);
        assert!(result.is_err(), "must run out of cells");
    }

    #[test]
    fn make_future_fails_cleanly_when_full() {
        let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 4096).unwrap();
        let mut made = 0;
        loop {
            match rt.make_future(|| 0) {
                Ok(_) => made += 1,
                Err(LazyError::OutOfMemory) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(made < 10_000, "allocator must be bounded");
        }
        assert_eq!(made, 4096 / 8);
    }
}
