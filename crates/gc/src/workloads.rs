//! The two synthetic benchmarks of the paper's Table 4.
//!
//! - [`lisp_ops`] — "simulates the behavior of simple Lisp operators, such
//!   as `cons`, `car`, and `cdr`. It repeatedly creates large Lisp-like
//!   data structures without explicit garbage collection", running the
//!   collector tens of times and taking thousands of protection faults.
//! - [`array_test`] — "creates a large array (1 MB) and randomly replaces
//!   elements in the array", creating many more old-to-young pointer
//!   stores relative to run time.
//!
//! Workload sizes are scaled down from the paper's multi-second 1994 runs
//! (the simulator executes every heap access through the MMU); the
//! *proportions* — which barrier wins and by roughly how much — are what
//! Table 4 checks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{BarrierKind, GcConfig};
use crate::gc::{Gc, GcError, GcStats};
use crate::heap::Value;
use efex_core::{DeliveryPath, WorkloadRun};
use efex_trace::{Snapshot, StatsSnapshot};

/// The outcome of one workload run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadReport {
    /// Simulated CPU time, µs.
    pub micros: f64,
    /// Collector statistics at the end of the run.
    pub stats: GcStats,
}

/// Parameters for [`lisp_ops`].
#[derive(Clone, Copy, Debug)]
pub struct LispOpsParams {
    /// Outer iterations (structures built).
    pub iterations: u32,
    /// Depth of each binary cons tree (2^(depth+1) - 1 cells).
    pub depth: u32,
    /// Size of the persistent (old-generation) registry table, in pages.
    /// Stores into it are the old-to-young pointers the barrier tracks.
    pub table_pages: u32,
    /// Random registry stores per iteration.
    pub stores_per_iteration: u32,
    /// Mutator compute charged per iteration, cycles — models the Lisp
    /// interpreter work the scaled-down workload does not perform, so the
    /// barrier-time fraction matches the paper's application (see
    /// EXPERIMENTS.md).
    pub mutator_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LispOpsParams {
    fn default() -> LispOpsParams {
        LispOpsParams {
            iterations: 60,
            depth: 7,
            table_pages: 128,
            stores_per_iteration: 40,
            mutator_cycles: 700_000,
            seed: 0x11ee,
        }
    }
}

/// Runs the Lisp-operators benchmark on a configured collector.
///
/// # Errors
///
/// Propagates collector errors (out of memory is a configuration problem).
pub fn lisp_ops(gc: &mut Gc, p: LispOpsParams) -> Result<WorkloadReport, GcError> {
    let start = gc.micros();
    let mut rng = StdRng::seed_from_u64(p.seed);

    // The persistent registry: an old-generation table of roots into which
    // the workload keeps storing young structure — the source of the
    // old-to-young pointers the paper's barrier tracks.
    let table_words = p.table_pages * 1024;
    let registry = gc.alloc_large(table_words)?;
    gc.push_root(registry);
    gc.promote(registry);
    gc.collect_minor(); // write-protect the registry

    for _ in 0..p.iterations {
        // Build a binary tree of cons cells bottom-up (car/cdr churn).
        let tree = build_tree(gc, p.depth, &mut rng)?;
        gc.push_root(tree);

        // Walk it (car/cdr reads), summing leaves.
        let mut sum = 0i64;
        walk(gc, tree, &mut sum)?;

        // Keep only a small subtree: descend a few links so the bulk of the
        // structure becomes garbage (the paper's churn), while the kept
        // piece creates old-to-young stores spread across the table.
        let mut keep = tree;
        for _ in 0..p.depth.saturating_sub(2) {
            match gc.load(keep, 0)? {
                Value::Ref(next) => keep = next,
                _ => break,
            }
        }
        for _ in 0..p.stores_per_iteration {
            let idx = rng.gen_range(0..table_words);
            gc.store(registry, idx, Value::Ref(keep))?;
        }
        // The interpreter's own work for this iteration.
        gc.charge_app(p.mutator_cycles);
        gc.pop_root();
        // The tree stays reachable only through the registry slots it
        // landed in; older attachments die as slots are overwritten.
    }
    gc.pop_root();
    Ok(WorkloadReport {
        micros: gc.micros() - start,
        stats: gc.stats(),
    })
}

/// The canonical deterministic workload recorded in `BENCH_baseline.json` by
/// `efex-bench`'s `report` binary: a scaled-down [`lisp_ops`] run on the fast
/// path with the page-protection barrier. Fixed parameters and a fixed seed —
/// every counter it produces must reproduce bit-for-bit across runs.
///
/// # Errors
///
/// Propagates collector errors.
pub fn baseline_workload() -> Result<(f64, StatsSnapshot), GcError> {
    let mut gc = Gc::new(GcConfig {
        path: DeliveryPath::FastUser,
        barrier: BarrierKind::PageProtection,
        eager_amplification: true,
        heap_bytes: 2 * 1024 * 1024,
        minor_threshold: 16 * 1024,
        ..GcConfig::default()
    })?;
    let r = lisp_ops(
        &mut gc,
        LispOpsParams {
            iterations: 40,
            depth: 7,
            table_pages: 16,
            stores_per_iteration: 10,
            mutator_cycles: 1_000,
            seed: 7,
        },
    )?;
    Ok((r.micros, r.stats.snapshot()))
}

/// A seeded fleet-tenant variant of [`baseline_workload`]: the same
/// collector configuration running a [`lisp_ops`] instance whose size and
/// RNG stream are derived deterministically from `seed`. Two tenants with
/// equal seeds produce bit-identical counters; different seeds exercise the
/// barrier with different allocation/store patterns.
///
/// The returned [`WorkloadRun`] carries the collector's health-plane
/// snapshot alongside the deterministic stats; only the latter enter fleet
/// fingerprints.
///
/// # Errors
///
/// Propagates collector errors.
pub fn tenant_workload(seed: u64) -> Result<WorkloadRun, GcError> {
    let mut gc = Gc::new(GcConfig {
        path: DeliveryPath::FastUser,
        barrier: BarrierKind::PageProtection,
        eager_amplification: true,
        heap_bytes: 2 * 1024 * 1024,
        minor_threshold: 16 * 1024,
        ..GcConfig::default()
    })?;
    let r = lisp_ops(
        &mut gc,
        LispOpsParams {
            iterations: 16 + (seed % 8) as u32,
            depth: 6,
            table_pages: 16,
            stores_per_iteration: 6 + (seed % 5) as u32,
            mutator_cycles: 1_000,
            seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 7,
        },
    )?;
    Ok(WorkloadRun::new(
        r.micros,
        r.stats.snapshot(),
        gc.health_snapshot(),
    ))
}

fn build_tree(gc: &mut Gc, depth: u32, rng: &mut StdRng) -> Result<crate::ObjRef, GcError> {
    if depth == 0 {
        let leaf = gc.alloc(2)?;
        gc.store(leaf, 0, Value::Int(rng.gen_range(0..1000)))?;
        return Ok(leaf);
    }
    let left = build_tree(gc, depth - 1, rng)?;
    gc.push_root(left);
    let right = build_tree(gc, depth - 1, rng)?;
    gc.push_root(right);
    let node = gc.alloc(2)?;
    gc.store(node, 0, Value::Ref(left))?;
    gc.store(node, 1, Value::Ref(right))?;
    gc.pop_root();
    gc.pop_root();
    Ok(node)
}

fn walk(gc: &mut Gc, node: crate::ObjRef, sum: &mut i64) -> Result<(), GcError> {
    // Charge the traversal's compute alongside the loads it performs.
    gc.charge_app(2);
    match gc.load(node, 0)? {
        Value::Int(n) => *sum += i64::from(n),
        Value::Ref(l) => walk(gc, l, sum)?,
        Value::Nil => {}
    }
    if let Value::Ref(r) = gc.load(node, 1)? {
        walk(gc, r, sum)?;
    }
    Ok(())
}

/// Parameters for [`array_test`].
#[derive(Clone, Copy, Debug)]
pub struct ArrayTestParams {
    /// Array size in words (the paper uses 1 MB = 262144 words).
    pub array_words: u32,
    /// Number of random replacements.
    pub replacements: u32,
    /// Mutator compute charged per replacement, cycles (see
    /// [`LispOpsParams::mutator_cycles`]).
    pub mutator_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrayTestParams {
    fn default() -> ArrayTestParams {
        ArrayTestParams {
            array_words: 256 * 1024,
            replacements: 12_000,
            mutator_cycles: 2_500,
            seed: 0xa77a,
        }
    }
}

/// Runs the array-replacement benchmark: a large old-generation array whose
/// elements are randomly replaced with fresh young cons cells.
///
/// # Errors
///
/// Propagates collector errors.
pub fn array_test(gc: &mut Gc, p: ArrayTestParams) -> Result<WorkloadReport, GcError> {
    let start = gc.micros();
    let mut rng = StdRng::seed_from_u64(p.seed);

    let array = gc.alloc_large(p.array_words)?;
    gc.push_root(array);
    gc.promote(array);
    gc.collect_minor(); // protect the (old) array pages

    for i in 0..p.replacements {
        // A fresh young cell replacing a random element: each replacement
        // creates garbage (the old element) and an old-to-young store.
        let cell = gc.alloc(2)?;
        gc.store(cell, 0, Value::Int(i as i32))?;
        let idx = rng.gen_range(0..p.array_words);
        gc.store(array, idx, Value::Ref(cell))?;
        gc.charge_app(p.mutator_cycles); // the application's own work
    }
    gc.pop_root();
    Ok(WorkloadReport {
        micros: gc.micros() - start,
        stats: gc.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BarrierKind, GcConfig};
    use efex_core::DeliveryPath;

    fn run_lisp(path: DeliveryPath, barrier: BarrierKind, eager: bool) -> WorkloadReport {
        let mut gc = Gc::new(GcConfig {
            path,
            barrier,
            eager_amplification: eager,
            heap_bytes: 2 * 1024 * 1024,
            minor_threshold: 16 * 1024,
            ..GcConfig::default()
        })
        .unwrap();
        lisp_ops(
            &mut gc,
            LispOpsParams {
                iterations: 40,
                depth: 7,
                table_pages: 16,
                stores_per_iteration: 10,
                mutator_cycles: 1_000,
                seed: 7,
            },
        )
        .unwrap()
    }

    #[test]
    fn lisp_ops_runs_collections_and_faults() {
        let r = run_lisp(DeliveryPath::FastUser, BarrierKind::PageProtection, true);
        assert!(r.stats.minor_collections + r.stats.major_collections >= 2);
        assert!(r.stats.barrier_faults > 0, "must exercise the barrier");
        assert!(r.stats.objects_freed > 0, "garbage must be collected");
    }

    #[test]
    fn lisp_ops_identical_heap_work_across_barriers() {
        let a = run_lisp(DeliveryPath::FastUser, BarrierKind::PageProtection, true);
        let b = run_lisp(DeliveryPath::FastUser, BarrierKind::SoftwareCheck, false);
        // Same workload, same allocations; only the barrier differs.
        assert_eq!(a.stats.objects_allocated, b.stats.objects_allocated);
        assert_eq!(b.stats.barrier_faults, 0);
        assert!(b.stats.software_checks > 0);
    }

    #[test]
    fn fast_exceptions_beat_signals_on_the_same_workload() {
        let fast = run_lisp(DeliveryPath::FastUser, BarrierKind::PageProtection, true);
        let slow = run_lisp(
            DeliveryPath::UnixSignals,
            BarrierKind::PageProtection,
            false,
        );
        assert_eq!(
            fast.stats.barrier_faults, slow.stats.barrier_faults,
            "identical fault counts (the paper's controlled variable)"
        );
        assert!(
            fast.micros < slow.micros,
            "fast {:.0}us vs signals {:.0}us",
            fast.micros,
            slow.micros
        );
    }

    #[test]
    fn array_test_generates_many_barrier_faults() {
        let mut gc = Gc::new(GcConfig {
            heap_bytes: 4 * 1024 * 1024,
            minor_threshold: 8 * 1024,
            ..GcConfig::default()
        })
        .unwrap();
        let r = array_test(
            &mut gc,
            ArrayTestParams {
                array_words: 64 * 1024, // 256 KB scaled-down array
                replacements: 4000,
                mutator_cycles: 100,
                seed: 3,
            },
        )
        .unwrap();
        assert!(
            r.stats.barrier_faults > 100,
            "random replacements must dirty many pages: {}",
            r.stats.barrier_faults
        );
    }
}
