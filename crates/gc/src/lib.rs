//! # efex-gc — a conservative generational collector with pluggable barriers
//!
//! Reproduces the garbage-collection study of Section 4.1 of Thekkath &
//! Levy (ASPLOS 1994): a conservative, generational mark-sweep collector in
//! the style of the Xerox (Boehm) collector, whose **write barrier** is
//! pluggable:
//!
//! - [`BarrierKind::PageProtection`] — the collector write-protects pages
//!   holding old generations; a store into one faults, the handler records
//!   the dirty page (and, with eager amplification, simply returns). This
//!   is the paper's configuration, run over either the Unix signal path or
//!   the fast user-level exception path.
//! - [`BarrierKind::SoftwareCheck`] — a per-store check (Hosking & Moss
//!   style) charged at a configurable cycle cost, recording stores into a
//!   sequential store buffer.
//!
//! The heap lives in simulated guest memory behind the MMU
//! ([`efex_core::HostProcess`]), so protection faults are real faults with
//! real delivery costs; collector and application compute costs are charged
//! in simulated cycles.
//!
//! The two synthetic benchmarks of Table 4 — Lisp-operations churn and the
//! 1 MB array-replacement test — live in [`workloads`].
//!
//! # Example
//!
//! ```
//! use efex_gc::{Gc, GcConfig, Value};
//!
//! # fn main() -> Result<(), efex_gc::GcError> {
//! let mut gc = Gc::new(GcConfig::default())?;
//! let pair = gc.alloc(2)?;
//! gc.push_root(pair);
//! gc.store(pair, 0, Value::Int(7))?;
//! gc.collect_minor();                       // promotes + write-protects
//! gc.store(pair, 1, Value::Int(8))?;        // barrier fault, recorded
//! assert_eq!(gc.load(pair, 0)?, Value::Int(7));
//! assert!(gc.stats().barrier_faults >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod gc;
mod heap;
pub mod workloads;

pub use config::{BarrierKind, GcConfig};
pub use gc::{Gc, GcError, GcStats};
pub use heap::{ObjRef, Value};
