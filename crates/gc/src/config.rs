//! Collector configuration.

use efex_core::DeliveryPath;

/// Which write-barrier mechanism tracks old-to-young pointer stores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarrierKind {
    /// Page-protection barrier: old-generation pages are write-protected;
    /// the first store into one faults and marks the page dirty
    /// (Section 4.1 of the paper).
    PageProtection,
    /// Subpage-protection barrier (Section 3.2.4 applied to the write
    /// barrier): dirty tracking at 1 KB granularity, so collections scan a
    /// quarter of the memory per barrier fault — at the cost of kernel
    /// emulation for stores landing on a page's already-dirty neighbours.
    SubpageProtection,
    /// Software checks before every store (Hosking & Moss), charged at
    /// [`GcConfig::check_cycles`] per store.
    SoftwareCheck,
}

/// Collector configuration.
#[derive(Clone, Copy, Debug)]
pub struct GcConfig {
    /// Exception delivery path for the page-protection barrier.
    pub path: DeliveryPath,
    /// The write-barrier mechanism.
    pub barrier: BarrierKind,
    /// Eager amplification (Section 3.2.3): the kernel grants write access
    /// before vectoring, so the handler makes no protection call.
    pub eager_amplification: bool,
    /// Heap size in bytes (page rounded).
    pub heap_bytes: u32,
    /// A minor collection triggers after this many bytes of allocation.
    pub minor_threshold: u32,
    /// Every `n`th collection is a major (full) collection.
    pub major_every: u32,
    /// Cycles per software check (the paper assumes 5).
    pub check_cycles: u64,
    /// Cycles charged per object allocation (the allocator's own work).
    pub alloc_cycles: u64,
    /// Cycles charged per object visited during marking.
    pub mark_cycles: u64,
    /// Cycles charged per word scanned in dirty pages / the store buffer.
    pub scan_cycles: u64,
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            path: DeliveryPath::FastUser,
            barrier: BarrierKind::PageProtection,
            eager_amplification: true,
            heap_bytes: 4 * 1024 * 1024,
            minor_threshold: 256 * 1024,
            major_every: 4,
            check_cycles: 5,
            alloc_cycles: 15,
            mark_cycles: 8,
            scan_cycles: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_configuration() {
        let c = GcConfig::default();
        assert_eq!(c.barrier, BarrierKind::PageProtection);
        assert_eq!(c.check_cycles, 5, "the paper's x = 5 cycles");
        assert!(c.eager_amplification);
    }
}
