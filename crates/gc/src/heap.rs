//! The heap's host-side metadata: object table, block map, free pages.
//!
//! Object *fields* live in simulated guest memory (so stores can fault);
//! object *metadata* (size, generation, mark bit) lives host-side, modeling
//! the collector's internal tables whose costs are charged explicitly.

use std::collections::{BTreeMap, BTreeSet};

use efex_simos::layout::PAGE_SIZE;

/// A reference to a heap object: the guest virtual address of its first
/// field. Word-aligned by construction, so a tagged integer (odd) can never
/// collide with one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjRef(pub(crate) u32);

impl ObjRef {
    /// The guest virtual address of the object's first field.
    pub fn addr(self) -> u32 {
        self.0
    }
}

/// A field value: a small integer or an object reference.
///
/// Integers are stored tagged (`2n + 1`), so a conservative scan never
/// mistakes them for pointers (heap addresses are word-aligned).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Value {
    /// A 31-bit integer: values outside `-(2^30) .. 2^30` wrap on the
    /// encode/decode round trip, exactly as in tagged Lisp systems.
    Int(i32),
    /// A heap reference.
    Ref(ObjRef),
    /// The null reference.
    Nil,
}

impl Value {
    /// Encodes to the in-memory word.
    pub fn encode(self) -> u32 {
        match self {
            Value::Int(n) => ((n as u32) << 1) | 1,
            Value::Ref(r) => r.0,
            Value::Nil => 0,
        }
    }

    /// Decodes from the in-memory word. Any even non-zero word is treated
    /// as a reference (the conservative interpretation; validity is checked
    /// against the object table at use).
    pub fn decode(word: u32) -> Value {
        if word == 0 {
            Value::Nil
        } else if word & 1 == 1 {
            Value::Int((word as i32) >> 1)
        } else {
            Value::Ref(ObjRef(word))
        }
    }
}

/// Host-side per-object record.
#[derive(Clone, Copy, Debug)]
pub struct Obj {
    /// Size in words (fields only).
    pub words: u32,
    /// Old generation?
    pub old: bool,
    /// Mark bit for the current collection.
    pub marked: bool,
}

/// Host-side per-page record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockGen {
    /// Currently receiving allocations.
    Young,
    /// Holds promoted (old) objects and is write-protected between
    /// collections under the page-protection barrier.
    Old,
}

/// The heap's bookkeeping state (shared with the fault handler through an
/// `Rc<RefCell<_>>` in [`crate::Gc`]).
#[derive(Debug, Default)]
pub struct HeapState {
    /// Region bounds in guest memory.
    pub base: u32,
    pub limit: u32,
    /// Object table: field address → record.
    pub objects: BTreeMap<u32, Obj>,
    /// Page address → generation, for pages in use.
    pub blocks: BTreeMap<u32, BlockGen>,
    /// Pages available for allocation.
    pub free_pages: Vec<u32>,
    /// Current young allocation page and offset.
    pub cur_page: Option<u32>,
    pub cur_off: u32,
    /// Pages dirtied since the last collection (page-protection barrier).
    pub dirty_pages: BTreeSet<u32>,
    /// Sequential store buffer (software-check barrier): slot addresses.
    pub ssb: Vec<u32>,
    /// Bytes allocated since the last minor collection.
    pub bytes_since_minor: u32,
    /// Explicitly registered root objects (a stack).
    pub roots: Vec<u32>,
}

impl HeapState {
    /// Initializes bookkeeping over a guest region `[base, base+len)`.
    pub fn new(base: u32, len: u32) -> HeapState {
        let mut s = HeapState {
            base,
            limit: base + len,
            ..HeapState::default()
        };
        for page in (base..base + len).step_by(PAGE_SIZE as usize) {
            s.free_pages.push(page);
        }
        // Allocate low pages first.
        s.free_pages.reverse();
        s
    }

    /// Whether `addr` lies within the heap region.
    pub fn contains(&self, addr: u32) -> bool {
        (self.base..self.limit).contains(&addr)
    }

    /// Conservative pointer test: does `word` point at (or into) a live
    /// object? Returns the object's base address.
    pub fn find_object(&self, word: u32) -> Option<u32> {
        if word & 3 != 0 || !self.contains(word) {
            return None;
        }
        let (base, obj) = self.objects.range(..=word).next_back()?;
        (word < base + obj.words * 4).then_some(*base)
    }

    /// The page holding an address.
    pub fn page_of(addr: u32) -> u32 {
        addr & !(PAGE_SIZE - 1)
    }

    /// All pages currently marked old.
    pub fn old_pages(&self) -> Vec<u32> {
        self.blocks
            .iter()
            .filter(|(_, g)| **g == BlockGen::Old)
            .map(|(p, _)| *p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_encoding_round_trips() {
        for v in [
            Value::Int(0),
            Value::Int(42),
            Value::Int(-7),
            Value::Ref(ObjRef(0x1000_0010)),
            Value::Nil,
        ] {
            assert_eq!(Value::decode(v.encode()), v, "{v:?}");
        }
    }

    #[test]
    fn tagged_ints_never_look_like_pointers() {
        for n in [-1000, -1, 0, 1, 123456] {
            let w = Value::Int(n).encode();
            assert_eq!(w & 1, 1, "int {n} must be odd-tagged");
        }
    }

    #[test]
    fn find_object_handles_interior_pointers() {
        let mut s = HeapState::new(0x1000_0000, 0x10000);
        s.objects.insert(
            0x1000_0100,
            Obj {
                words: 4,
                old: false,
                marked: false,
            },
        );
        assert_eq!(s.find_object(0x1000_0100), Some(0x1000_0100));
        assert_eq!(s.find_object(0x1000_0108), Some(0x1000_0100), "interior");
        assert_eq!(s.find_object(0x1000_0110), None, "past the end");
        assert_eq!(s.find_object(0x1000_00f0), None, "before");
        assert_eq!(s.find_object(0x1000_0102), None, "unaligned");
        assert_eq!(s.find_object(0x2000_0000), None, "outside heap");
    }

    #[test]
    fn new_state_tracks_all_pages_free() {
        let s = HeapState::new(0x1000_0000, 4 * PAGE_SIZE);
        assert_eq!(s.free_pages.len(), 4);
        assert!(s.contains(0x1000_0000));
        assert!(!s.contains(0x1000_4000));
    }
}
