//! The collector: allocation, barriers, minor and major collections.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use efex_core::{
    CoreError, FaultInfo, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot, Protection,
};
use efex_simos::layout::{PAGE_SIZE, SUBPAGE_SIZE};
use efex_simos::vm::FaultKind;
use efex_trace::{Snapshot, StatsSnapshot};

use crate::config::{BarrierKind, GcConfig};
use crate::heap::{BlockGen, HeapState, Obj, ObjRef, Value};

/// Collector statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Minor (young-generation) collections run.
    pub minor_collections: u64,
    /// Major (full) collections run.
    pub major_collections: u64,
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Bytes allocated.
    pub bytes_allocated: u64,
    /// Objects reclaimed by sweeps.
    pub objects_freed: u64,
    /// Objects promoted to the old generation.
    pub objects_promoted: u64,
    /// Write-barrier faults delivered (page-protection barrier).
    pub barrier_faults: u64,
    /// Software checks executed (software-check barrier).
    pub software_checks: u64,
    /// Old-to-young slots recorded.
    pub remembered_slots: u64,
}

impl Snapshot for GcStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("gc")
            .counter("minor_collections", self.minor_collections)
            .counter("major_collections", self.major_collections)
            .counter("objects_allocated", self.objects_allocated)
            .counter("bytes_allocated", self.bytes_allocated)
            .counter("objects_freed", self.objects_freed)
            .counter("objects_promoted", self.objects_promoted)
            .counter("barrier_faults", self.barrier_faults)
            .counter("software_checks", self.software_checks)
            .counter("remembered_slots", self.remembered_slots)
    }
}

/// Collector errors.
#[derive(Debug)]
pub enum GcError {
    /// The heap is exhausted even after a full collection.
    OutOfMemory,
    /// A field index was out of bounds for the object.
    BadField {
        /// The object whose field was addressed.
        obj: ObjRef,
        /// The out-of-range field index.
        index: u32,
        /// The object's field count.
        size: u32,
    },
    /// An underlying simulation error.
    Core(CoreError),
}

impl fmt::Display for GcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcError::OutOfMemory => f.write_str("heap exhausted"),
            GcError::BadField { obj, index, size } => write!(
                f,
                "field {index} out of bounds for object {:#x} of {size} words",
                obj.addr()
            ),
            GcError::Core(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for GcError {}

impl From<CoreError> for GcError {
    fn from(e: CoreError) -> GcError {
        GcError::Core(e)
    }
}

/// The conservative generational collector.
pub struct Gc {
    host: HostProcess,
    st: Rc<RefCell<HeapState>>,
    cfg: GcConfig,
    stats: GcStats,
    collections: u64,
}

impl fmt::Debug for Gc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gc")
            .field("barrier", &self.cfg.barrier)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Gc {
    /// Creates a collector with the given configuration.
    ///
    /// # Errors
    ///
    /// Fails if the simulated system cannot boot or the heap cannot be
    /// mapped.
    pub fn new(cfg: GcConfig) -> Result<Gc, GcError> {
        let mut host = HostProcess::builder()
            .delivery(cfg.path)
            .eager_amplification(
                cfg.eager_amplification && cfg.barrier == BarrierKind::PageProtection,
            )
            .build()?;
        let heap_bytes = (cfg.heap_bytes + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
        let base = host.alloc_region(heap_bytes, Prot::ReadWrite)?;
        let st = Rc::new(RefCell::new(HeapState::new(base, heap_bytes)));

        match cfg.barrier {
            BarrierKind::PageProtection => {
                let state = Rc::clone(&st);
                let eager = cfg.eager_amplification;
                host.set_handler(
                    HandlerSpec::new(move |ctx, info: FaultInfo| {
                        let mut s = state.borrow_mut();
                        if info.write
                            && info.kind == FaultKind::Protection
                            && s.contains(info.vaddr)
                        {
                            let page = HeapState::page_of(info.vaddr);
                            s.dirty_pages.insert(page);
                            if !eager {
                                // Without eager amplification the handler must
                                // re-enable access itself before retrying.
                                if ctx
                                    .protect(Protection::region(page, PAGE_SIZE).read_write())
                                    .is_err()
                                {
                                    return HandlerAction::Abort;
                                }
                            }
                            HandlerAction::Retry
                        } else {
                            HandlerAction::Abort
                        }
                    })
                    .named("gc-page-barrier"),
                );
            }
            BarrierKind::SubpageProtection => {
                let state = Rc::clone(&st);
                host.set_handler(
                    HandlerSpec::new(move |ctx, info: FaultInfo| {
                        let mut s = state.borrow_mut();
                        if info.write
                            && info.kind == FaultKind::Protection
                            && s.contains(info.vaddr)
                        {
                            let sub = info.vaddr & !(SUBPAGE_SIZE - 1);
                            s.dirty_pages.insert(sub);
                            // Release only this 1 KB subpage: the rest of the
                            // page keeps faulting (or being kernel-emulated)
                            // so dirty tracking stays fine-grained.
                            if ctx
                                .subpage_protect(Protection::region(sub, SUBPAGE_SIZE).read_write())
                                .is_err()
                            {
                                return HandlerAction::Abort;
                            }
                            HandlerAction::Retry
                        } else {
                            HandlerAction::Abort
                        }
                    })
                    .named("gc-subpage-barrier"),
                );
            }
            BarrierKind::SoftwareCheck => {}
        }

        Ok(Gc {
            host,
            st,
            cfg,
            stats: GcStats::default(),
            collections: 0,
        })
    }

    /// The collector's statistics (barrier faults are read live from the
    /// host process).
    pub fn stats(&self) -> GcStats {
        let mut s = self.stats;
        s.barrier_faults = self.host.stats().faults_delivered;
        s
    }

    /// Per-(path, class) exception metrics for the barrier faults the
    /// collector took (histograms, per-page counts).
    pub fn trace_metrics(&self) -> &efex_trace::Metrics {
        self.host.trace_metrics()
    }

    /// Health-plane snapshot of the host kernel underneath the collector
    /// (decode cache, TLB repairs, degraded deliveries). Pure read.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        self.host.health_snapshot()
    }

    /// Simulated time elapsed, µs.
    pub fn micros(&self) -> f64 {
        self.host.micros()
    }

    /// Simulated cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.host.cycles()
    }

    /// The configuration in force.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Fault injection: the next `n` barrier-fault deliveries fall back to
    /// Unix-signal costs (counted in [`Gc::degraded_deliveries`]). The
    /// collector must survive with identical heap contents — only dearer.
    pub fn inject_degrade_next_deliveries(&mut self, n: u64) {
        self.host.inject_degrade_next_deliveries(n);
    }

    /// Barrier deliveries that fell back to the degraded (Unix-cost) path.
    pub fn degraded_deliveries(&self) -> u64 {
        self.host.stats().degraded_deliveries
    }

    /// Charges application (mutator) compute cycles — workloads model their
    /// own non-heap work through this.
    pub fn charge_app(&mut self, cycles: u64) {
        self.host.charge(cycles);
    }

    /// Registers a root (a stack discipline: see [`Gc::pop_root`]).
    pub fn push_root(&mut self, obj: ObjRef) {
        self.st.borrow_mut().roots.push(obj.addr());
    }

    /// Unregisters the most recently pushed root.
    pub fn pop_root(&mut self) -> Option<ObjRef> {
        self.st.borrow_mut().roots.pop().map(ObjRef)
    }

    /// Number of live objects in the table.
    pub fn live_objects(&self) -> usize {
        self.st.borrow().objects.len()
    }

    // --- allocation --------------------------------------------------------

    /// Allocates a `words`-field object in the young generation, running
    /// collections as needed. Fields start as [`Value::Nil`].
    ///
    /// # Errors
    ///
    /// Returns [`GcError::OutOfMemory`] when even a major collection cannot
    /// find room.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero or the object would exceed one page — use
    /// [`Gc::alloc_large`] for page-spanning objects.
    pub fn alloc(&mut self, words: u32) -> Result<ObjRef, GcError> {
        assert!(words > 0 && words * 4 <= PAGE_SIZE, "use alloc_large");
        if self.st.borrow().bytes_since_minor >= self.cfg.minor_threshold {
            self.collect();
        }
        self.host.charge(self.cfg.alloc_cycles);
        let bytes = (words * 4 + 7) & !7;
        // Fit in the current page, or take a fresh one.
        let need_new_page = {
            let s = self.st.borrow();
            match s.cur_page {
                Some(_) => s.cur_off + bytes > PAGE_SIZE,
                None => true,
            }
        };
        if need_new_page && !self.take_young_page()? {
            // Collect and retry once.
            self.collect_major();
            if !self.take_young_page()? {
                return Err(GcError::OutOfMemory);
            }
        }
        let addr = {
            let mut s = self.st.borrow_mut();
            let page = s.cur_page.expect("just ensured");
            let addr = page + s.cur_off;
            s.cur_off += bytes;
            s.bytes_since_minor += bytes;
            s.objects.insert(
                addr,
                Obj {
                    words,
                    old: false,
                    marked: false,
                },
            );
            addr
        };
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += u64::from(bytes);
        Ok(ObjRef(addr))
    }

    /// Allocates a large object spanning whole pages (e.g. the 1 MB array
    /// of the Table 4 benchmark).
    ///
    /// # Errors
    ///
    /// Returns [`GcError::OutOfMemory`] if no contiguous run of pages is
    /// free.
    pub fn alloc_large(&mut self, words: u32) -> Result<ObjRef, GcError> {
        let pages = (words * 4).div_ceil(PAGE_SIZE);
        self.host.charge(self.cfg.alloc_cycles * u64::from(pages));
        let run = self.find_free_run(pages).ok_or(GcError::OutOfMemory)?;
        {
            let mut s = self.st.borrow_mut();
            for i in 0..pages {
                let page = run + i * PAGE_SIZE;
                s.free_pages.retain(|p| *p != page);
                s.blocks.insert(page, BlockGen::Young);
            }
            s.objects.insert(
                run,
                Obj {
                    words,
                    old: false,
                    marked: false,
                },
            );
        }
        self.zero_pages(run, pages)?;
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += u64::from(words) * 4;
        Ok(ObjRef(run))
    }

    /// Immediately tenures an object (the Table 4 array benchmark places
    /// its array in the old generation before the measured phase).
    pub fn promote(&mut self, obj: ObjRef) {
        let mut s = self.st.borrow_mut();
        let Some(o) = s.objects.get_mut(&obj.addr()) else {
            return;
        };
        o.old = true;
        let words = o.words;
        let first = HeapState::page_of(obj.addr());
        let last = HeapState::page_of(obj.addr() + words * 4 - 1);
        for page in (first..=last).step_by(PAGE_SIZE as usize) {
            s.blocks.insert(page, BlockGen::Old);
        }
        // The current allocation page may have just become old: retire it.
        if s.cur_page.is_some_and(|p| (first..=last).contains(&p)) {
            s.cur_page = None;
            s.cur_off = 0;
        }
        drop(s);
        self.stats.objects_promoted += 1;
    }

    fn take_young_page(&mut self) -> Result<bool, GcError> {
        let page = {
            let mut s = self.st.borrow_mut();
            match s.free_pages.pop() {
                Some(p) => {
                    s.blocks.insert(p, BlockGen::Young);
                    s.cur_page = Some(p);
                    s.cur_off = 0;
                    p
                }
                None => return Ok(false),
            }
        };
        self.zero_pages(page, 1)?;
        Ok(true)
    }

    fn find_free_run(&self, pages: u32) -> Option<u32> {
        let s = self.st.borrow();
        let mut sorted: Vec<u32> = s.free_pages.clone();
        sorted.sort_unstable();
        let mut run_start = None;
        let mut run_len = 0;
        for p in sorted {
            match run_start {
                Some(start) if p == start + run_len * PAGE_SIZE => {
                    run_len += 1;
                }
                _ => {
                    run_start = Some(p);
                    run_len = 1;
                }
            }
            if run_len == pages {
                return run_start;
            }
        }
        None
    }

    fn zero_pages(&mut self, base: u32, pages: u32) -> Result<(), GcError> {
        // Model a block-zeroing loop: one cycle per word.
        self.host
            .charge(u64::from(pages) * u64::from(PAGE_SIZE / 4));
        let zeros = vec![0u8; PAGE_SIZE as usize];
        for i in 0..pages {
            self.host
                .kernel_mut()
                .host_write_bytes(base + i * PAGE_SIZE, &zeros)
                .map_err(CoreError::from)?;
        }
        Ok(())
    }

    // --- field access --------------------------------------------------------

    /// Stores a value into `obj.fields[index]`, applying the write barrier.
    ///
    /// # Errors
    ///
    /// Fails on bad indices or unrecoverable faults.
    pub fn store(&mut self, obj: ObjRef, index: u32, value: Value) -> Result<(), GcError> {
        let (size, old) = self.object_info(obj)?;
        if index >= size {
            return Err(GcError::BadField { obj, index, size });
        }
        let addr = obj.addr() + index * 4;
        if self.cfg.barrier == BarrierKind::SoftwareCheck {
            // The per-store check the paper's alternative performs.
            self.host.charge(self.cfg.check_cycles);
            self.stats.software_checks += 1;
            if old && matches!(value, Value::Ref(_)) {
                self.st.borrow_mut().ssb.push(addr);
                self.stats.remembered_slots += 1;
            }
        }
        self.host.store_u32(addr, value.encode())?;
        Ok(())
    }

    /// Loads `obj.fields[index]`.
    ///
    /// # Errors
    ///
    /// Fails on bad indices or unrecoverable faults.
    pub fn load(&mut self, obj: ObjRef, index: u32) -> Result<Value, GcError> {
        let (size, _) = self.object_info(obj)?;
        if index >= size {
            return Err(GcError::BadField { obj, index, size });
        }
        Ok(Value::decode(self.host.load_u32(obj.addr() + index * 4)?))
    }

    fn object_info(&self, obj: ObjRef) -> Result<(u32, bool), GcError> {
        let s = self.st.borrow();
        let o = s.objects.get(&obj.addr()).ok_or(GcError::BadField {
            obj,
            index: 0,
            size: 0,
        })?;
        Ok((o.words, o.old))
    }

    // --- collection ------------------------------------------------------------

    /// Runs a collection: minor, or major every `major_every`th time.
    pub fn collect(&mut self) {
        self.collections += 1;
        if self.cfg.major_every > 0
            && self
                .collections
                .is_multiple_of(u64::from(self.cfg.major_every))
        {
            self.collect_major();
        } else {
            self.collect_minor();
        }
    }

    /// Minor collection: trace the young generation from roots plus the
    /// recorded old-to-young pointers, sweep young pages, promote
    /// survivors, and re-protect the old generation.
    pub fn collect_minor(&mut self) {
        self.stats.minor_collections += 1;
        let mut gray: Vec<u32> = Vec::new();

        // Roots that point at young objects.
        {
            let s = self.st.borrow();
            for r in &s.roots {
                if let Some(base) = s.find_object(*r) {
                    if !s.objects[&base].old {
                        gray.push(base);
                    }
                }
            }
        }

        // Old-to-young pointers from the barrier's records.
        match self.cfg.barrier {
            BarrierKind::PageProtection => {
                let dirty: Vec<u32> = self.st.borrow().dirty_pages.iter().copied().collect();
                for page in dirty {
                    self.scan_range_for_young(page, page + PAGE_SIZE, &mut gray);
                }
            }
            BarrierKind::SubpageProtection => {
                // Dirty entries are 1 KB subpages: a quarter of the scan.
                let dirty: Vec<u32> = self.st.borrow().dirty_pages.iter().copied().collect();
                for sub in dirty {
                    self.scan_range_for_young(sub, sub + SUBPAGE_SIZE, &mut gray);
                }
            }
            BarrierKind::SoftwareCheck => {
                let slots: Vec<u32> = std::mem::take(&mut self.st.borrow_mut().ssb);
                self.host.charge(self.cfg.scan_cycles * slots.len() as u64);
                for slot in slots {
                    if let Ok(word) = self.host.read_raw(slot) {
                        let s = self.st.borrow();
                        if let Some(base) = s.find_object(word) {
                            if !s.objects[&base].old {
                                drop(s);
                                gray.push(base);
                            }
                        }
                    }
                }
            }
        }

        self.trace(gray, false);
        self.sweep(false);
        self.reprotect_old();
        self.st.borrow_mut().bytes_since_minor = 0;
    }

    /// Major collection: trace everything from roots, sweep both
    /// generations, and re-protect the old generation.
    pub fn collect_major(&mut self) {
        self.stats.major_collections += 1;
        let gray: Vec<u32> = {
            let s = self.st.borrow();
            s.roots.iter().filter_map(|r| s.find_object(*r)).collect()
        };
        self.trace(gray, true);
        self.sweep(true);
        self.reprotect_old();
        let mut s = self.st.borrow_mut();
        s.bytes_since_minor = 0;
        s.ssb.clear();
    }

    /// Scans `[from, to)` for references to young objects.
    fn scan_range_for_young(&mut self, from: u32, to: u32, gray: &mut Vec<u32>) {
        let words = u64::from((to - from) / 4);
        self.host.charge(self.cfg.scan_cycles * words);
        for addr in (from..to).step_by(4) {
            let Ok(word) = self.host.read_raw(addr) else {
                continue;
            };
            let s = self.st.borrow();
            if let Some(base) = s.find_object(word) {
                if !s.objects[&base].old {
                    drop(s);
                    gray.push(base);
                }
            }
        }
    }

    /// Marks transitively. With `trace_old` false (minor), traversal stays
    /// within the young generation (old objects are implicitly live and
    /// their young references are covered by the remembered records).
    fn trace(&mut self, mut gray: Vec<u32>, trace_old: bool) {
        while let Some(base) = gray.pop() {
            let words = {
                let mut s = self.st.borrow_mut();
                let Some(o) = s.objects.get_mut(&base) else {
                    continue;
                };
                if o.marked || (!trace_old && o.old) {
                    continue;
                }
                o.marked = true;
                o.words
            };
            self.host.charge(self.cfg.mark_cycles);
            self.host.charge(self.cfg.scan_cycles * u64::from(words));
            for i in 0..words {
                let Ok(word) = self.host.read_raw(base + i * 4) else {
                    continue;
                };
                let s = self.st.borrow();
                if let Some(target) = s.find_object(word) {
                    let o = &s.objects[&target];
                    if !o.marked && (trace_old || !o.old) {
                        drop(s);
                        gray.push(target);
                    }
                }
            }
        }
    }

    /// Sweeps: frees unmarked objects (young only on minor collections),
    /// promotes marked young objects, releases empty pages, clears marks.
    fn sweep(&mut self, major: bool) {
        let mut freed = 0u64;
        let mut promoted = 0u64;
        let mut s = self.st.borrow_mut();

        // Decide each object's fate.
        let mut dead: Vec<u32> = Vec::new();
        for (base, o) in s.objects.iter_mut() {
            if o.old && !major {
                continue;
            }
            if o.marked {
                if !o.old {
                    o.old = true;
                    promoted += 1;
                }
            } else {
                dead.push(*base);
            }
            o.marked = false;
        }
        for base in &dead {
            s.objects.remove(base);
            freed += 1;
        }
        // Clear any stale marks on old objects after a minor collection.
        if !major {
            for o in s.objects.values_mut() {
                o.marked = false;
            }
        }

        // Recompute page states: a page with any object is old (survivors
        // were promoted); an empty page returns to the free pool.
        let pages: Vec<u32> = s.blocks.keys().copied().collect();
        let cur = s.cur_page;
        for page in pages {
            let occupied = {
                // An object overlaps this page if it starts before the page
                // ends and ends after the page starts.
                s.objects
                    .range(..page + PAGE_SIZE)
                    .next_back()
                    .is_some_and(|(b, o)| b + o.words * 4 > page)
            };
            if occupied {
                s.blocks.insert(page, BlockGen::Old);
            } else if Some(page) != cur {
                s.blocks.remove(&page);
                s.free_pages.push(page);
            } else {
                // The active allocation page stays young even if empty.
                s.blocks.insert(page, BlockGen::Young);
            }
        }
        // The current allocation page becomes old if anything on it
        // survived; retire it from allocation in that case.
        if let Some(p) = cur {
            if s.blocks.get(&p) == Some(&BlockGen::Old) {
                s.cur_page = None;
                s.cur_off = 0;
            }
        }
        drop(s);
        self.stats.objects_freed += freed;
        self.stats.objects_promoted += promoted;
    }

    /// Write-protects every old page (protection barriers) and clears the
    /// dirty set; contiguous runs are protected with single calls, as
    /// `mprotect` would be used in practice.
    fn reprotect_old(&mut self) {
        if self.cfg.barrier == BarrierKind::SoftwareCheck {
            self.st.borrow_mut().dirty_pages.clear();
            return;
        }
        let old_pages = {
            let mut s = self.st.borrow_mut();
            s.dirty_pages.clear();
            s.old_pages()
        };
        let mut i = 0;
        while i < old_pages.len() {
            let start = old_pages[i];
            let mut end = start + PAGE_SIZE;
            while i + 1 < old_pages.len() && old_pages[i + 1] == end {
                end += PAGE_SIZE;
                i += 1;
            }
            // Failures here would mean the heap region is unmapped — a
            // simulator bug; surface loudly in debug builds.
            let r = match self.cfg.barrier {
                BarrierKind::PageProtection => self
                    .host
                    .protect(Protection::region(start, end - start).read_only()),
                BarrierKind::SubpageProtection => self
                    .host
                    .subpage_protect(Protection::region(start, end - start).read_only()),
                BarrierKind::SoftwareCheck => unreachable!("handled above"),
            };
            debug_assert!(r.is_ok(), "reprotect failed: {r:?}");
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc_with(barrier: BarrierKind, eager: bool) -> Gc {
        Gc::new(GcConfig {
            barrier,
            eager_amplification: eager,
            heap_bytes: 512 * 1024,
            minor_threshold: 64 * 1024,
            ..GcConfig::default()
        })
        .unwrap()
    }

    fn cons(gc: &mut Gc, car: Value, cdr: Value) -> ObjRef {
        let c = gc.alloc(2).unwrap();
        gc.store(c, 0, car).unwrap();
        gc.store(c, 1, cdr).unwrap();
        c
    }

    #[test]
    fn alloc_store_load_round_trip() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        let obj = gc.alloc(3).unwrap();
        gc.store(obj, 0, Value::Int(41)).unwrap();
        gc.store(obj, 2, Value::Ref(obj)).unwrap();
        assert_eq!(gc.load(obj, 0).unwrap(), Value::Int(41));
        assert_eq!(gc.load(obj, 1).unwrap(), Value::Nil);
        assert_eq!(gc.load(obj, 2).unwrap(), Value::Ref(obj));
        assert!(matches!(
            gc.store(obj, 3, Value::Nil),
            Err(GcError::BadField { .. })
        ));
    }

    #[test]
    fn unreachable_objects_are_collected() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        let keep = cons(&mut gc, Value::Int(1), Value::Nil);
        gc.push_root(keep);
        for _ in 0..100 {
            let _garbage = cons(&mut gc, Value::Int(2), Value::Nil);
        }
        let before = gc.live_objects();
        gc.collect_major();
        let after = gc.live_objects();
        assert!(after < before, "{before} -> {after}");
        assert_eq!(gc.load(keep, 0).unwrap(), Value::Int(1), "root survives");
    }

    #[test]
    fn reachable_chain_survives_minor_collection() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        // head -> a -> b -> c (all young).
        let c = cons(&mut gc, Value::Int(3), Value::Nil);
        let b = cons(&mut gc, Value::Int(2), Value::Ref(c));
        let a = cons(&mut gc, Value::Int(1), Value::Ref(b));
        gc.push_root(a);
        gc.collect_minor();
        assert_eq!(gc.load(a, 0).unwrap(), Value::Int(1));
        let Value::Ref(b2) = gc.load(a, 1).unwrap() else {
            panic!()
        };
        assert_eq!(gc.load(b2, 0).unwrap(), Value::Int(2));
        let Value::Ref(c2) = gc.load(b2, 1).unwrap() else {
            panic!()
        };
        assert_eq!(gc.load(c2, 0).unwrap(), Value::Int(3));
    }

    #[test]
    fn old_to_young_pointer_is_tracked_by_page_barrier() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        let old = cons(&mut gc, Value::Int(10), Value::Nil);
        gc.push_root(old);
        gc.collect_minor(); // promotes `old` and write-protects its page
                            // A young object referenced ONLY from the old object.
        let young = cons(&mut gc, Value::Int(20), Value::Nil);
        gc.store(old, 1, Value::Ref(young)).unwrap(); // faults -> dirty page
        assert!(gc.stats().barrier_faults >= 1, "barrier must fault");
        gc.collect_minor();
        // The young object must have survived via the remembered set.
        let Value::Ref(y2) = gc.load(old, 1).unwrap() else {
            panic!()
        };
        assert_eq!(gc.load(y2, 0).unwrap(), Value::Int(20));
    }

    #[test]
    fn degraded_barrier_delivery_preserves_heap_contents() {
        // Inject one delivery-path degradation: the barrier fault falls
        // back to Unix-signal costs but the remembered set must come out
        // identical — the collector survives, it just pays more.
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        let old = cons(&mut gc, Value::Int(10), Value::Nil);
        gc.push_root(old);
        gc.collect_minor();
        let young = cons(&mut gc, Value::Int(20), Value::Nil);
        gc.inject_degrade_next_deliveries(1);
        gc.store(old, 1, Value::Ref(young)).unwrap();
        assert_eq!(gc.degraded_deliveries(), 1);
        assert!(gc.stats().barrier_faults >= 1);
        gc.collect_minor();
        let Value::Ref(y2) = gc.load(old, 1).unwrap() else {
            panic!()
        };
        assert_eq!(gc.load(y2, 0).unwrap(), Value::Int(20));
    }

    #[test]
    fn old_to_young_pointer_is_tracked_by_software_checks() {
        let mut gc = gc_with(BarrierKind::SoftwareCheck, false);
        let old = cons(&mut gc, Value::Int(10), Value::Nil);
        gc.push_root(old);
        gc.collect_minor();
        let young = cons(&mut gc, Value::Int(20), Value::Nil);
        gc.store(old, 1, Value::Ref(young)).unwrap();
        assert_eq!(gc.stats().barrier_faults, 0, "no faults in check mode");
        assert!(gc.stats().software_checks > 0);
        assert!(gc.stats().remembered_slots >= 1);
        gc.collect_minor();
        let Value::Ref(y2) = gc.load(old, 1).unwrap() else {
            panic!()
        };
        assert_eq!(gc.load(y2, 0).unwrap(), Value::Int(20));
    }

    #[test]
    fn second_store_to_dirty_page_does_not_fault_again() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        let old = cons(&mut gc, Value::Int(1), Value::Nil);
        gc.push_root(old);
        gc.collect_minor();
        gc.store(old, 0, Value::Int(2)).unwrap();
        let f1 = gc.stats().barrier_faults;
        gc.store(old, 1, Value::Int(3)).unwrap();
        assert_eq!(gc.stats().barrier_faults, f1, "page already amplified");
    }

    #[test]
    fn non_eager_barrier_unprotects_in_handler() {
        let mut gc = gc_with(BarrierKind::PageProtection, false);
        let old = cons(&mut gc, Value::Int(1), Value::Nil);
        gc.push_root(old);
        gc.collect_minor();
        gc.store(old, 0, Value::Int(2)).unwrap();
        assert!(gc.stats().barrier_faults >= 1);
        assert_eq!(gc.load(old, 0).unwrap(), Value::Int(2));
    }

    #[test]
    fn large_object_allocation_and_promotion() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        // A 4-page array.
        let arr = gc.alloc_large(4096).unwrap();
        gc.push_root(arr);
        gc.promote(arr);
        gc.collect_minor(); // protects the array's pages
        gc.store(arr, 2000, Value::Int(7)).unwrap(); // faults once
        assert!(gc.stats().barrier_faults >= 1);
        assert_eq!(gc.load(arr, 2000).unwrap(), Value::Int(7));
        assert_eq!(gc.load(arr, 0).unwrap(), Value::Nil);
    }

    #[test]
    fn heap_reuses_pages_after_collection() {
        let mut gc = Gc::new(GcConfig {
            heap_bytes: 128 * 1024, // 32 pages
            minor_threshold: 16 * 1024,
            major_every: 2,
            ..GcConfig::default()
        })
        .unwrap();
        // Allocate far more than the heap in total; everything is garbage.
        for i in 0..4000 {
            let o = gc.alloc(4).unwrap();
            gc.store(o, 0, Value::Int(i)).unwrap();
        }
        assert!(gc.stats().minor_collections + gc.stats().major_collections > 2);
        assert!(gc.stats().objects_freed > 3000);
    }

    #[test]
    fn interior_pointers_keep_objects_alive() {
        let mut gc = gc_with(BarrierKind::PageProtection, true);
        let obj = gc.alloc(8).unwrap();
        // Register an INTERIOR address as the root (conservative collection
        // must still find the object).
        gc.push_root(ObjRef(obj.addr() + 12));
        gc.collect_major();
        assert!(
            gc.load(obj, 0).is_ok(),
            "object reachable only via interior pointer must survive"
        );
    }
}

#[cfg(test)]
mod subpage_barrier_tests {
    use super::*;

    fn gc_sub() -> Gc {
        Gc::new(GcConfig {
            barrier: BarrierKind::SubpageProtection,
            eager_amplification: false,
            heap_bytes: 512 * 1024,
            minor_threshold: 64 * 1024,
            ..GcConfig::default()
        })
        .unwrap()
    }

    fn cons(gc: &mut Gc, car: Value, cdr: Value) -> ObjRef {
        let c = gc.alloc(2).unwrap();
        gc.store(c, 0, car).unwrap();
        gc.store(c, 1, cdr).unwrap();
        c
    }

    #[test]
    fn subpage_barrier_tracks_old_to_young() {
        let mut gc = gc_sub();
        let old = cons(&mut gc, Value::Int(10), Value::Nil);
        gc.push_root(old);
        gc.collect_minor(); // promotes and subpage-protects
        let young = cons(&mut gc, Value::Int(20), Value::Nil);
        gc.store(old, 1, Value::Ref(young)).unwrap(); // faults on the subpage
        assert!(gc.stats().barrier_faults >= 1);
        gc.collect_minor();
        let Value::Ref(y2) = gc.load(old, 1).unwrap() else {
            panic!()
        };
        assert_eq!(gc.load(y2, 0).unwrap(), Value::Int(20));
    }

    #[test]
    fn subpage_dirty_granularity_is_1k() {
        let mut gc = gc_sub();
        // A 4-page old array.
        let arr = gc.alloc_large(4096).unwrap();
        gc.push_root(arr);
        gc.promote(arr);
        gc.collect_minor();
        // Two stores into the SAME 1 KB subpage: one fault.
        gc.store(arr, 0, Value::Int(1)).unwrap();
        gc.store(arr, 4, Value::Int(2)).unwrap();
        let f1 = gc.stats().barrier_faults;
        assert_eq!(f1, 1, "second store hit the released subpage");
        // A store into the NEXT subpage of the same hardware page: another
        // delivery (page-granularity would have been silent).
        gc.store(arr, 300, Value::Int(3)).unwrap();
        assert_eq!(gc.stats().barrier_faults, 2);
        // All three stores landed.
        assert_eq!(gc.load(arr, 0).unwrap(), Value::Int(1));
        assert_eq!(gc.load(arr, 4).unwrap(), Value::Int(2));
        assert_eq!(gc.load(arr, 300).unwrap(), Value::Int(3));
    }

    #[test]
    fn subpage_barrier_scans_less_than_page_barrier() {
        // One dirtying store per old page; minor GC scan work differs 4x.
        let run = |barrier| {
            let mut gc = Gc::new(GcConfig {
                barrier,
                eager_amplification: false,
                heap_bytes: 512 * 1024,
                minor_threshold: 256 * 1024, // no automatic GCs
                ..GcConfig::default()
            })
            .unwrap();
            let arr = gc.alloc_large(8 * 1024).unwrap(); // 8 pages
            gc.push_root(arr);
            gc.promote(arr);
            gc.collect_minor();
            for p in 0..8 {
                gc.store(arr, p * 1024, Value::Int(p as i32)).unwrap();
            }
            let before = gc.cycles();
            gc.collect_minor();
            gc.cycles() - before
        };
        let page = run(BarrierKind::PageProtection);
        let sub = run(BarrierKind::SubpageProtection);
        assert!(
            sub < page,
            "subpage scan must be cheaper: {sub} vs {page} cycles"
        );
    }
}
