//! # efex-analysis — break-even models for exceptions vs software checks
//!
//! Closed-form trade-off models from Section 4 of the paper:
//!
//! - [`gc`] — generational-GC write barriers: page-protection exceptions vs
//!   per-store software checks (**Table 5**), using the application
//!   characteristics Hosking & Moss published.
//! - [`swizzle`] — pointer swizzling for persistent stores: residency
//!   checks vs exceptions (**Figure 3**) and eager vs lazy swizzling
//!   (**Figure 4**).
//!
//! All functions are pure; the companion measurements live in `efex-gc`
//! and `efex-pstore`.

#![warn(missing_docs)]

pub mod gc {
    //! Write-barrier break-even (Section 4.1, Table 5).

    /// Parameters of one application, following the paper's notation.
    #[derive(Clone, Copy, PartialEq, Debug)]
    pub struct BarrierParams {
        /// `c`: number of software checks the application executes.
        pub checks: u64,
        /// `x`: cycles per software check.
        pub cycles_per_check: f64,
        /// `t`: number of protection exceptions the page-protection scheme
        /// takes for the same run.
        pub exceptions: u64,
        /// `f`: clock frequency in MHz.
        pub clock_mhz: f64,
    }

    /// The paper's Table 5 applications (counts from Hosking & Moss),
    /// with the paper's assumptions `x = 5` cycles and `f = 25` MHz.
    pub fn table5_apps() -> Vec<(&'static str, BarrierParams)> {
        vec![
            (
                "Tree",
                BarrierParams {
                    checks: 3_300_000,
                    cycles_per_check: 5.0,
                    exceptions: 17_400,
                    clock_mhz: 25.0,
                },
            ),
            (
                "Interactive",
                BarrierParams {
                    checks: 1_200_000,
                    cycles_per_check: 5.0,
                    exceptions: 10_500,
                    clock_mhz: 25.0,
                },
            ),
        ]
    }

    /// The break-even exception cost `y = c·x / (f·t)` in µs: page
    /// protection wins whenever one exception (including any re-protect
    /// call) costs less than `y`.
    pub fn breakeven_exception_micros(p: BarrierParams) -> f64 {
        (p.checks as f64 * p.cycles_per_check) / (p.clock_mhz * p.exceptions as f64)
    }

    /// Whether page-protection exceptions beat software checks given an
    /// actual per-exception cost `y_micros`.
    pub fn protection_wins(p: BarrierParams, y_micros: f64) -> bool {
        y_micros < breakeven_exception_micros(p)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn breakeven_formula_matches_hand_calculation() {
            let p = BarrierParams {
                checks: 1_000_000,
                cycles_per_check: 5.0,
                exceptions: 10_000,
                clock_mhz: 25.0,
            };
            // y = 5e6 cycles / (25 MHz * 1e4) = 20 us.
            assert!((breakeven_exception_micros(p) - 20.0).abs() < 1e-9);
            assert!(protection_wins(p, 18.0));
            assert!(!protection_wins(p, 25.0));
        }

        #[test]
        fn paper_conclusion_holds_for_table5_apps() {
            // The paper: "an exception and re-enable of protection takes
            // 18 us using the eager amplification optimization ... our
            // software emulation scheme appears to offer a competitive
            // alternative to software checks for these applications."
            for (name, p) in table5_apps() {
                let y = breakeven_exception_micros(p);
                assert!(
                    y > 18.0,
                    "{name}: fast exceptions at 18 us must beat checks (breakeven {y:.1})"
                );
                // And conventional Ultrix (80 us) must NOT beat checks.
                assert!(
                    y < 80.0,
                    "{name}: Ultrix at 80 us must lose to checks (breakeven {y:.1})"
                );
            }
        }
    }
}

pub mod swizzle {
    //! Pointer-swizzling trade-offs (Section 4.2.2, Figures 3 and 4).

    /// Figure 3: residency software checks vs exception-based detection.
    ///
    /// A pointer dereferenced `u` times with a `c`-cycle check costs
    /// `u·c` cycles; exception-based detection costs one exception
    /// (`t_micros`) on first use and nothing after. Exceptions win when
    /// `c·u > f·t`.
    ///
    /// Returns the break-even number of uses `u` for a given check cost.
    pub fn breakeven_uses(check_cycles: f64, exception_micros: f64, clock_mhz: f64) -> f64 {
        (clock_mhz * exception_micros) / check_cycles
    }

    /// Whether exception-based residency detection beats software checks.
    pub fn exceptions_win(
        check_cycles: f64,
        uses_per_pointer: f64,
        exception_micros: f64,
        clock_mhz: f64,
    ) -> bool {
        check_cycles * uses_per_pointer > clock_mhz * exception_micros
    }

    /// Parameters for the eager-vs-lazy swizzling model (Figure 4).
    #[derive(Clone, Copy, PartialEq, Debug)]
    pub struct SwizzleParams {
        /// `t`: time per exception, µs.
        pub exception_micros: f64,
        /// `s`: time to swizzle one pointer, µs.
        pub swizzle_micros: f64,
        /// `pn`: pointers per page.
        pub pointers_per_page: f64,
        /// `pu`: pointers actually used per page, on average.
        pub pointers_used: f64,
    }

    /// Eager cost per page: one fault to load the page plus swizzling every
    /// pointer on it: `t + pn·s`.
    pub fn eager_cost_micros(p: SwizzleParams) -> f64 {
        p.exception_micros + p.pointers_per_page * p.swizzle_micros
    }

    /// Lazy cost per page: one fault plus one swizzle per pointer actually
    /// used: `pu·(t + s)`.
    pub fn lazy_cost_micros(p: SwizzleParams) -> f64 {
        p.pointers_used * (p.exception_micros + p.swizzle_micros)
    }

    /// The paper's Figure 4 criterion: eager swizzling should be used when
    /// `t + pn·s < pu·(t + s)`.
    pub fn eager_wins(p: SwizzleParams) -> bool {
        eager_cost_micros(p) < lazy_cost_micros(p)
    }

    /// The fraction of pointers used at which eager and lazy break even,
    /// as a number of pointers `pu` (divide by `pn` for the fraction on
    /// Figure 4's axis).
    pub fn breakeven_pointers_used(p: SwizzleParams) -> f64 {
        eager_cost_micros(p) / (p.exception_micros + p.swizzle_micros)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn figure3_shift_toward_exceptions() {
            // Ultrix-era unaligned exception round trip (~74 us at the
            // delivery cost Figure 3 uses) vs the paper's specialized fast
            // handler (6 us).
            let slow = breakeven_uses(5.0, 74.0, 25.0);
            let fast = breakeven_uses(5.0, 6.0, 25.0);
            assert!(slow > 300.0, "Ultrix needs hundreds of uses: {slow}");
            assert!(fast <= 30.0, "fast handler needs ~30: {fast}");
            assert!(slow / fast > 10.0, "order-of-magnitude shift");
        }

        #[test]
        fn exceptions_win_consistent_with_breakeven() {
            let c = 4.0;
            let t = 6.0;
            let f = 25.0;
            let u = breakeven_uses(c, t, f);
            assert!(!exceptions_win(c, u - 1.0, t, f));
            assert!(exceptions_win(c, u + 1.0, t, f));
        }

        #[test]
        fn figure4_dense_use_favors_eager_sparse_favors_lazy() {
            let base = SwizzleParams {
                exception_micros: 6.0,
                swizzle_micros: 2.0,
                pointers_per_page: 50.0,
                pointers_used: 50.0, // every pointer used
            };
            assert!(eager_wins(base), "dense use favors eager");
            let sparse = SwizzleParams {
                pointers_used: 2.0,
                ..base
            };
            assert!(!eager_wins(sparse), "sparse use favors lazy");
        }

        #[test]
        fn figure4_fast_exceptions_extend_lazy_region() {
            // With cheap exceptions, lazy stays competitive for much denser
            // use — the paper's "strong shift".
            let mk = |t: f64| SwizzleParams {
                exception_micros: t,
                swizzle_micros: 1.0,
                pointers_per_page: 50.0,
                pointers_used: 25.0,
            };
            let slow = breakeven_pointers_used(mk(74.0));
            let fast = breakeven_pointers_used(mk(6.0));
            // Break-even pu (pointers used) below which lazy wins:
            assert!(
                fast > slow,
                "fast exceptions must extend the lazy region: {fast} vs {slow}"
            );
        }

        #[test]
        fn costs_are_linear_in_parameters() {
            let p = SwizzleParams {
                exception_micros: 10.0,
                swizzle_micros: 3.0,
                pointers_per_page: 50.0,
                pointers_used: 10.0,
            };
            assert!((eager_cost_micros(p) - 160.0).abs() < 1e-9);
            assert!((lazy_cost_micros(p) - 130.0).abs() < 1e-9);
        }
    }
}
