//! The versioned on-disk baseline format (`BENCH_baseline.json`).
//!
//! A baseline is a flat list of named metrics plus provenance describing how
//! they were produced. Every metric is either *exact* (deterministic cycle or
//! instruction counts — the simulator is cycle-exact, so these must
//! reproduce bit-for-bit) or tolerance-checked (derived floating-point values
//! such as microseconds, compared with a relative tolerance by
//! [`crate::check::compare`]).
//!
//! Provenance deliberately excludes timestamps and host identity: two runs of
//! the same source tree must produce byte-identical baselines, otherwise the
//! committed file churns on every re-record.

use crate::jsonval::{self, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Current schema version; bumped when the format changes incompatibly.
pub const BASELINE_VERSION: u64 = 1;

/// A recorded measurement value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MetricValue {
    /// Deterministic count (cycles, instructions, faults).
    Int(u64),
    /// Derived quantity (microseconds, ratios).
    Float(f64),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Int(v) => write!(f, "{v}"),
            // `{}` on f64 is the shortest representation that parses back to
            // the same bits, so exact float comparison survives a round-trip.
            MetricValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// One named measurement.
#[derive(Clone, PartialEq, Debug)]
pub struct Metric {
    /// Hierarchical name, `/`-separated (e.g. `table2/fast-user/breakpoint/deliver_cycles`).
    pub name: String,
    /// The measured value.
    pub value: MetricValue,
    /// Unit label shown in reports (`cycles`, `us`, `instructions`, …).
    pub unit: String,
    /// Whether the checker requires an exact match (no tolerance).
    pub exact: bool,
}

/// A full recorded baseline.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Baseline {
    /// Schema version of the recorded file.
    pub version: u64,
    /// Describes how the numbers were produced (clock, package version,
    /// generator). No timestamps — re-records must be byte-identical.
    pub provenance: BTreeMap<String, String>,
    /// Metrics in recording order; names are unique.
    pub metrics: Vec<Metric>,
}

impl Baseline {
    /// An empty baseline at the current schema version.
    pub fn new() -> Baseline {
        Baseline {
            version: BASELINE_VERSION,
            provenance: BTreeMap::new(),
            metrics: Vec::new(),
        }
    }

    /// Records one provenance key/value pair.
    pub fn set_provenance(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.provenance.insert(key.into(), value.into());
    }

    /// Records a deterministic count; checked exactly.
    pub fn push_int(&mut self, name: impl Into<String>, value: u64, unit: &str) {
        self.push(name, MetricValue::Int(value), unit, true);
    }

    /// Records a derived float; checked with relative tolerance.
    pub fn push_float(&mut self, name: impl Into<String>, value: f64, unit: &str) {
        self.push(name, MetricValue::Float(value), unit, false);
    }

    /// Records a metric with explicit exactness.
    pub fn push(&mut self, name: impl Into<String>, value: MetricValue, unit: &str, exact: bool) {
        let name = name.into();
        debug_assert!(
            !self.metrics.iter().any(|m| m.name == name),
            "duplicate metric name {name:?}"
        );
        self.metrics.push(Metric {
            name,
            value,
            unit: unit.to_string(),
            exact,
        });
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes the baseline. One metric per line so that diffs against the
    /// committed file read metric-by-metric.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str("  \"provenance\": {\n");
        let n = self.provenance.len();
        for (i, (k, v)) in self.provenance.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": \"{}\"{comma}\n",
                efex_trace::json_escape(k),
                efex_trace::json_escape(v)
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"metrics\": [\n");
        let n = self.metrics.len();
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"exact\":{}}}{comma}\n",
                efex_trace::json_escape(&m.name),
                m.value,
                efex_trace::json_escape(&m.unit),
                m.exact
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a baseline previously written by [`Baseline::to_json`].
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = jsonval::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer \"version\"")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline version {version} unsupported (expected {BASELINE_VERSION}); re-record with `report --record`"
            ));
        }
        let mut provenance = BTreeMap::new();
        if let Some(obj) = doc.get("provenance").and_then(Value::as_object) {
            for (k, v) in obj {
                let s = v.as_str().ok_or("non-string provenance value")?;
                provenance.insert(k.clone(), s.to_string());
            }
        }
        let metrics_json = doc
            .get("metrics")
            .and_then(Value::as_array)
            .ok_or("missing \"metrics\" array")?;
        let mut metrics = Vec::with_capacity(metrics_json.len());
        for (i, m) in metrics_json.iter().enumerate() {
            let name = m
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("metric {i}: missing \"name\""))?
                .to_string();
            let exact = m
                .get("exact")
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("metric {name}: missing \"exact\""))?;
            let raw = m
                .get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric {name}: missing numeric \"value\""))?;
            // Exact metrics are integers by construction; preserve that so the
            // checker compares counts as counts.
            let value = match m.get("value").and_then(Value::as_u64) {
                Some(v) if exact => MetricValue::Int(v),
                _ => MetricValue::Float(raw),
            };
            let unit = m
                .get("unit")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            metrics.push(Metric {
                name,
                value,
                unit,
                exact,
            });
        }
        Ok(Baseline {
            version,
            provenance,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut b = Baseline::new();
        b.set_provenance("clock_mhz", "25");
        b.set_provenance("generator", "efex-bench report --record");
        b.push_int("table2/fast-user/breakpoint/deliver_cycles", 104, "cycles");
        b.push_float("table1/dec5000-ultrix/round_trip_us", 80.0, "us");
        b
    }

    #[test]
    fn round_trips_through_json() {
        let b = sample();
        let text = b.to_json();
        let back = Baseline::from_json(&text).expect("parse");
        assert_eq!(back, b);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn rejects_wrong_version() {
        let text = sample()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        let err = Baseline::from_json(&text).unwrap_err();
        assert!(err.contains("re-record"), "unhelpful error: {err}");
    }

    #[test]
    fn exact_metrics_parse_as_integers() {
        let b = Baseline::from_json(&sample().to_json()).unwrap();
        let m = b.get("table2/fast-user/breakpoint/deliver_cycles").unwrap();
        assert_eq!(m.value, MetricValue::Int(104));
        assert!(m.exact);
        let f = b.get("table1/dec5000-ultrix/round_trip_us").unwrap();
        assert_eq!(f.value, MetricValue::Float(80.0));
        assert!(!f.exact);
    }
}
