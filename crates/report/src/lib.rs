//! # efex-report — baselines, regression checking, and trace export
//!
//! The measurement crates (`efex-mips`, `efex-trace`, the `System` harness)
//! produce numbers; this crate makes them *durable and comparable*:
//!
//! - [`schema::Baseline`]: the versioned `BENCH_baseline.json` format — a
//!   flat list of named metrics (exact cycle/instruction counts, or
//!   tolerance-checked derived floats) plus provenance, serialized
//!   deterministically so re-records are byte-identical.
//! - [`check::compare`]: diff a freshly measured baseline against the
//!   committed one. Exact metrics must reproduce bit-for-bit (the simulator
//!   is cycle-exact); derived metrics get a relative tolerance. CI runs this
//!   after the test suite, so a cost-model change that shifts any Table 2/3/4
//!   number fails the build with a per-metric diff table.
//! - [`chrome::ChromeTrace`]: convert lifecycle [`efex_trace::TraceEvent`]s
//!   and [`efex_mips::RegionSpan`] profiler stays into Chrome
//!   trace-event-format JSON, loadable in Perfetto / `chrome://tracing`.
//! - [`flame`]: folded-stack output (`root;region weight`) for
//!   `flamegraph.pl` / `inferno`, weighted by measured instruction counts.
//! - [`jsonval`]: the minimal JSON parser backing `--check` and the exporter
//!   validity tests (the build is offline; no `serde`).
//! - [`prom`]: a Prometheus text-format scraper, so the `efex-health`
//!   exposition can be proven lossless by re-parsing it.
//!
//! The crate sits low in the graph (depends only on `efex-mips` and
//! `efex-trace`); suite *running* lives in `efex-bench`, whose `report`
//! binary records, checks, and exports.

#![warn(missing_docs)]

pub mod check;
pub mod chrome;
pub mod flame;
pub mod jsonval;
pub mod prom;
pub mod schema;

pub use check::{compare, CheckReport, Status, DEFAULT_TOLERANCE};
pub use chrome::ChromeTrace;
pub use schema::{Baseline, Metric, MetricValue, BASELINE_VERSION};
