//! A Prometheus text-format scraper.
//!
//! `efex-health` exposes the metric registry in Prometheus text format; this
//! module reads that format back, the same way [`crate::jsonval`] reads our
//! JSON back — so tests can prove the exposition is *lossless* (every
//! `StatsSnapshot` counter and `Histogram` field re-parses to the exact
//! `u64` that was recorded) and tooling can consume a scrape without a
//! Prometheus server in the loop.
//!
//! The parser accepts the subset of the text format the workspace emits:
//! `# TYPE` comments (kept), other comments (skipped), and sample lines
//! `family{label="value",…} value` with escaped label values (`\\`, `\"`,
//! `\n`). Sample values are kept as raw text so integer counters round-trip
//! exactly via [`PromSample::value_u64`].

use std::fmt;

/// One scraped sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric family name (e.g. `"efex_counter"`).
    pub family: String,
    /// Label pairs in source order, unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value, verbatim as printed.
    pub raw_value: String,
}

impl PromSample {
    /// Looks a label up by name.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value as an exact `u64` (fails on floats and negatives).
    pub fn value_u64(&self) -> Option<u64> {
        self.raw_value.parse().ok()
    }

    /// The value as `f64` (`NaN` if unparseable).
    pub fn value_f64(&self) -> f64 {
        self.raw_value.parse().unwrap_or(f64::NAN)
    }
}

/// A parsed scrape: samples in source order plus the `# TYPE` declarations.
#[derive(Clone, Debug, Default)]
pub struct PromText {
    samples: Vec<PromSample>,
    types: Vec<(String, String)>,
}

impl PromText {
    /// All samples, in source order.
    pub fn samples(&self) -> &[PromSample] {
        &self.samples
    }

    /// The declared type of a family (`"counter"`, `"gauge"`, …).
    pub fn family_type(&self, family: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|(f, _)| f == family)
            .map(|(_, t)| t.as_str())
    }

    /// The first sample of `family` whose labels include every given pair
    /// (extra labels on the sample are allowed).
    pub fn get(&self, family: &str, labels: &[(&str, &str)]) -> Option<&PromSample> {
        self.samples
            .iter()
            .find(|s| s.family == family && labels.iter().all(|&(n, v)| s.label(n) == Some(v)))
    }

    /// Samples of one family, in source order.
    pub fn family(&self, family: &str) -> Vec<&PromSample> {
        self.samples.iter().filter(|s| s.family == family).collect()
    }
}

/// A scrape failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prom text line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromError {}

/// Parses Prometheus text exposition format.
///
/// # Errors
///
/// Returns [`PromError`] (with the offending line number) on malformed
/// sample lines or unterminated label blocks.
pub fn parse(text: &str) -> Result<PromText, PromError> {
    let mut out = PromText::default();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |message: String| PromError {
            line: lineno,
            message,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let family = parts
                    .next()
                    .ok_or_else(|| err("# TYPE without a family name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| err(format!("# TYPE {family} without a type")))?;
                out.types.push((family.to_string(), kind.to_string()));
            }
            continue; // HELP and free-form comments are skipped
        }
        out.samples.push(parse_sample(line).map_err(err)?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => (&line[..brace], &line[brace..]),
        None => match line.find(char::is_whitespace) {
            Some(sp) => (&line[..sp], &line[sp..]),
            None => return Err("sample line has no value".into()),
        },
    };
    let family = name_part.trim();
    if family.is_empty() {
        return Err("sample line has no metric name".into());
    }
    let (labels, value_part) = if let Some(body) = rest.strip_prefix('{') {
        let (labels, after) = parse_labels(body)?;
        (labels, after)
    } else {
        (Vec::new(), rest)
    };
    let raw_value = value_part.trim();
    if raw_value.is_empty() {
        return Err(format!("sample {family} has no value"));
    }
    // Timestamps (a second whitespace-separated field) are not emitted by
    // this workspace; reject rather than mis-read.
    if raw_value.split_whitespace().count() != 1 {
        return Err(format!("sample {family} has trailing fields"));
    }
    Ok(PromSample {
        family: family.to_string(),
        labels,
        raw_value: raw_value.to_string(),
    })
}

/// Parsed label pairs plus the remainder after the closing brace.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `name="value",…}` (the leading `{` already consumed); returns the
/// labels and the remainder after the closing brace.
fn parse_labels(mut s: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    loop {
        s = s.trim_start_matches(',').trim_start();
        if let Some(rest) = s.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = s.find('=').ok_or("label without '='")?;
        let name = s[..eq].trim().to_string();
        s = s[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value must be quoted")?;
        let mut value = String::new();
        let mut chars = s.char_indices();
        let close = loop {
            let (at, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break at,
                '\\' => match chars.next().ok_or("dangling escape")?.1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("unknown escape \\{other}")),
                },
                c => value.push(c),
            }
        };
        labels.push((name, value));
        s = &s[close + 1..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_families_labels_and_values() {
        let text = "\
# HELP ignored free text
# TYPE efex_counter counter
efex_counter{component=\"gc\",name=\"faults\"} 42
efex_counter{component=\"gc\",name=\"faults\",tenant=\"3\"} 7
# TYPE efex_health_findings gauge
efex_health_findings 0
";
        let scrape = parse(text).unwrap();
        assert_eq!(scrape.family_type("efex_counter"), Some("counter"));
        assert_eq!(scrape.family_type("efex_health_findings"), Some("gauge"));
        let agg = scrape
            .get("efex_counter", &[("component", "gc"), ("name", "faults")])
            .unwrap();
        assert_eq!(agg.value_u64(), Some(42));
        assert_eq!(agg.label("tenant"), None);
        let tenant = scrape
            .get("efex_counter", &[("name", "faults"), ("tenant", "3")])
            .unwrap();
        assert_eq!(tenant.value_u64(), Some(7));
        let bare = scrape.get("efex_health_findings", &[]).unwrap();
        assert!(bare.labels.is_empty());
        assert_eq!(bare.value_u64(), Some(0));
    }

    #[test]
    fn unescapes_label_values() {
        let text = "efex_counter{name=\"quote\\\"back\\\\slash\\nnl\"} 1\n";
        let scrape = parse(text).unwrap();
        assert_eq!(
            scrape.samples()[0].label("name"),
            Some("quote\"back\\slash\nnl")
        );
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let big = u64::MAX;
        let text = format!("efex_counter{{name=\"x\"}} {big}\n");
        let scrape = parse(&text).unwrap();
        assert_eq!(scrape.samples()[0].value_u64(), Some(big));
    }

    #[test]
    fn malformed_lines_carry_the_line_number() {
        let e = parse("efex_counter{name=\"x\" 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("# TYPE ok counter\nnovalue\n").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
    }
}
