//! Chrome trace-event (Perfetto / `chrome://tracing`) export.
//!
//! Converts the repo's two timing sources into one timeline document:
//!
//! - **Lifecycle events** ([`TraceEvent`] streams from an `EventRing` or
//!   `RingSink`): each fault's six-stage lifecycle becomes three `"X"`
//!   complete events — `deliver` (fault-raised → handler-entered), `handler`
//!   (handler-entered → handler-returned), and `return` (handler-returned →
//!   resumed) — plus an `"i"` instant at the fault itself.
//! - **Profiler spans** ([`RegionSpan`]s from `efex_mips::Profiler`): each
//!   stay in a labeled guest-kernel region becomes an `"X"` event on its own
//!   thread row, so the Table 3 phase structure is visible under the
//!   lifecycle spans.
//!
//! Timestamps are microseconds (the trace-event format's native unit),
//! converted from simulated cycles at the machine clock rate.

use efex_mips::RegionSpan;
use efex_trace::{json_escape, EventKind, TraceEvent};

/// Thread id used for lifecycle phase spans.
pub const TID_LIFECYCLE: u32 = 1;
/// Thread id used for guest-kernel profiler region spans.
pub const TID_REGIONS: u32 = 2;
/// First thread id for per-tenant fleet rows ([`ChromeTrace::push_tenant_lifecycle`]);
/// tenant `i` conventionally lands on `TID_TENANT_BASE + i`.
pub const TID_TENANT_BASE: u32 = 16;

/// Builder for a trace-event-format JSON document.
#[derive(Clone, Debug)]
pub struct ChromeTrace {
    clock_mhz: f64,
    /// Serialized trace events, in emission order.
    events: Vec<String>,
}

impl ChromeTrace {
    /// A trace whose cycle → µs conversion uses the given clock rate.
    pub fn new(clock_mhz: f64) -> ChromeTrace {
        assert!(clock_mhz > 0.0, "clock rate must be positive");
        let mut t = ChromeTrace {
            clock_mhz,
            events: Vec::new(),
        };
        t.push_metadata("process_name", "efex");
        t.push_thread_name(TID_LIFECYCLE, "exception lifecycle");
        t.push_thread_name(TID_REGIONS, "guest kernel regions");
        t
    }

    fn us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_mhz
    }

    fn push_metadata(&mut self, name: &str, value: &str) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name),
            json_escape(value)
        ));
    }

    fn push_thread_name(&mut self, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    fn push_complete(&mut self, tid: u32, name: &str, ts_us: f64, dur_us: f64, args: &str) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{args}}}",
            json_escape(name)
        ));
    }

    fn push_instant(&mut self, tid: u32, name: &str, ts_us: f64, args: &str) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts_us},\"s\":\"t\",\"args\":{args}}}",
            json_escape(name)
        ));
    }

    /// Folds a stream of lifecycle events (oldest → newest, as produced by
    /// `EventRing::iter` or `RingSink::events`) into phase spans. Incomplete
    /// lifecycles at the stream edges (a ring that wrapped mid-fault) emit
    /// whatever phases are complete and drop the rest.
    pub fn push_lifecycle(&mut self, events: &[TraceEvent]) {
        self.push_lifecycle_on(TID_LIFECYCLE, events);
    }

    /// Folds a tenant's lifecycle stream onto its own named thread row —
    /// the multi-tenant (fleet) variant of [`ChromeTrace::push_lifecycle`].
    /// Each tenant gets a distinct `tid` (conventionally
    /// [`TID_TENANT_BASE`]` + tenant index`), so N tenants render as N
    /// parallel timeline rows in one document.
    pub fn push_tenant_lifecycle(&mut self, tid: u32, name: &str, events: &[TraceEvent]) {
        self.push_thread_name(tid, name);
        self.push_lifecycle_on(tid, events);
    }

    fn push_lifecycle_on(&mut self, tid: u32, events: &[TraceEvent]) {
        let mut raised: Option<&TraceEvent> = None;
        let mut handler_entered: Option<&TraceEvent> = None;
        let mut handler_returned: Option<&TraceEvent> = None;
        for ev in events {
            let args = format!(
                "{{\"path\":\"{}\",\"class\":\"{}\",\"pc\":\"{:#010x}\",\"vaddr\":\"{:#010x}\"}}",
                ev.path, ev.class, ev.pc, ev.vaddr
            );
            match ev.kind {
                EventKind::FaultRaised => {
                    self.push_instant(
                        tid,
                        &format!("fault:{}", ev.class),
                        self.us(ev.cycles),
                        &args,
                    );
                    raised = Some(ev);
                    handler_entered = None;
                    handler_returned = None;
                }
                EventKind::HandlerEntered => {
                    if let Some(start) = raised {
                        self.push_complete(
                            tid,
                            "deliver",
                            self.us(start.cycles),
                            self.us(ev.cycles.saturating_sub(start.cycles)),
                            &args,
                        );
                    }
                    handler_entered = Some(ev);
                }
                EventKind::HandlerReturned => {
                    if let Some(start) = handler_entered.take() {
                        self.push_complete(
                            tid,
                            "handler",
                            self.us(start.cycles),
                            self.us(ev.cycles.saturating_sub(start.cycles)),
                            &args,
                        );
                    }
                    handler_returned = Some(ev);
                }
                EventKind::Resumed => {
                    if let Some(start) = handler_returned.take() {
                        self.push_complete(
                            tid,
                            "return",
                            self.us(start.cycles),
                            self.us(ev.cycles.saturating_sub(start.cycles)),
                            &args,
                        );
                    }
                    raised = None;
                }
                EventKind::KernelEntered | EventKind::StateSaved => {
                    // Interior stages; visible via the profiler region row.
                }
            }
        }
    }

    /// Adds profiler region stays on their own thread row.
    pub fn push_profile_spans(&mut self, spans: &[RegionSpan]) {
        for s in spans {
            let args = format!("{{\"instructions\":{}}}", s.instructions);
            self.push_complete(
                TID_REGIONS,
                &s.name,
                self.us(s.start_cycles),
                self.us(s.cycles()),
                &args,
            );
        }
    }

    /// Number of trace events emitted so far (including metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the document in JSON-object trace format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonval;
    use efex_trace::{FaultClass, TracePath};

    fn lifecycle(base: u64) -> Vec<TraceEvent> {
        EventKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &kind)| TraceEvent {
                cycles: base + 10 * i as u64,
                kind,
                path: TracePath::FastUser,
                class: FaultClass::Breakpoint,
                ..TraceEvent::default()
            })
            .collect()
    }

    #[test]
    fn lifecycle_produces_three_phase_spans() {
        let mut t = ChromeTrace::new(25.0);
        let before = t.len();
        t.push_lifecycle(&lifecycle(1000));
        // 1 instant + 3 complete spans.
        assert_eq!(t.len() - before, 4);
        let doc = jsonval::parse(&t.to_json()).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["deliver", "handler", "return"]);
    }

    #[test]
    fn spans_are_monotonic_and_durations_nonnegative() {
        let mut t = ChromeTrace::new(25.0);
        t.push_lifecycle(&lifecycle(1000));
        t.push_lifecycle(&lifecycle(2000));
        let doc = jsonval::parse(&t.to_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut last_ts = f64::MIN;
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "X events must be emitted in time order");
            assert!(dur >= 0.0);
            // deliver starts at the fault and handler follows it, so
            // ts + dur never precedes ts of the next span in the same fault.
            last_ts = ts;
        }
    }

    #[test]
    fn incomplete_lifecycle_from_wrapped_ring_is_tolerated() {
        let mut t = ChromeTrace::new(25.0);
        // Stream starts mid-fault: handler-returned + resumed only.
        let tail: Vec<TraceEvent> = lifecycle(500).split_off(4);
        t.push_lifecycle(&tail);
        let doc = jsonval::parse(&t.to_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(spans, ["return"], "only the complete phase is emitted");
    }

    #[test]
    fn tenant_lifecycles_land_on_their_own_rows() {
        let mut t = ChromeTrace::new(25.0);
        t.push_tenant_lifecycle(TID_TENANT_BASE, "tenant 0: gc", &lifecycle(1000));
        t.push_tenant_lifecycle(TID_TENANT_BASE + 1, "tenant 1: dsm", &lifecycle(1000));
        let doc = jsonval::parse(&t.to_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        for (tid, name) in [
            (TID_TENANT_BASE, "tenant 0: gc"),
            (TID_TENANT_BASE + 1, "tenant 1: dsm"),
        ] {
            assert!(
                events.iter().any(|e| {
                    e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                        && e.get("tid").unwrap().as_u64() == Some(u64::from(tid))
                        && e.get("args").unwrap().get("name").unwrap().as_str() == Some(name)
                }),
                "row {tid} named {name:?}"
            );
            let spans: Vec<&str> = events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("tid").unwrap().as_u64() == Some(u64::from(tid))
                })
                .map(|e| e.get("name").unwrap().as_str().unwrap())
                .collect();
            assert_eq!(spans, ["deliver", "handler", "return"], "row {tid}");
        }
    }

    #[test]
    fn profile_spans_land_on_region_thread() {
        let mut t = ChromeTrace::new(25.0);
        t.push_profile_spans(&[RegionSpan {
            name: "save_state".into(),
            start_cycles: 100,
            end_cycles: 150,
            instructions: 25,
        }]);
        let doc = jsonval::parse(&t.to_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("save_state"))
            .expect("region span present");
        assert_eq!(span.get("tid").unwrap().as_u64(), Some(TID_REGIONS as u64));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(4.0)); // 100 cyc @ 25 MHz
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2.0)); // 50 cyc
        assert_eq!(
            span.get("args")
                .unwrap()
                .get("instructions")
                .unwrap()
                .as_u64(),
            Some(25)
        );
    }
}
