//! A minimal recursive-descent JSON parser.
//!
//! The build environment is offline (no `serde`), and the repo both emits
//! and now *consumes* JSON: `--check` reads a committed baseline back, and
//! the exporter tests validate that every emitted document actually parses.
//! The parser accepts exactly RFC 8259 JSON; numbers are held as `f64`
//! (every value this workspace writes — cycle counts, microseconds — is far
//! below 2^53, so integers round-trip exactly).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// Object; `BTreeMap` because none of our consumers depend on source
    /// order and deterministic iteration keeps reports stable.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact `u64` (fails on negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(out)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling for completeness.
                        let c = if (0xd800..0xdc00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert!(v.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(parse("12345").unwrap().as_u64(), Some(12345));
        assert_eq!(parse("12.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
    }
}
