//! Folded-stack output for flamegraph tools.
//!
//! The folded format is one line per stack, `frame;frame;... count`, consumed
//! by Brendan Gregg's `flamegraph.pl` and by `inferno`. The guest kernel's
//! fast path has a two-level "stack": the path root and the Table 3 phase
//! region, weighted by measured dynamic instruction count (the same unit
//! Table 3 reports).

use efex_mips::RegionSpan;

/// Renders `(region, weight)` rows under a common root, one folded line per
/// region, preserving row order. Zero-weight regions are kept — a Table 3
/// phase that executed no instructions is information, not noise.
pub fn folded_from_rows(root: &str, rows: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (name, weight) in rows {
        out.push_str(&format!("{root};{} {}\n", sanitize(name), weight));
    }
    out
}

/// Aggregates profiler spans by region name (weight = instructions) and
/// renders them under `root`, in first-seen order.
pub fn folded_from_spans(root: &str, spans: &[RegionSpan]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for s in spans {
        match order.iter().position(|n| *n == s.name) {
            Some(i) => weights[i] += s.instructions,
            None => {
                order.push(s.name.clone());
                weights.push(s.instructions);
            }
        }
    }
    let rows: Vec<(String, u64)> = order.into_iter().zip(weights).collect();
    folded_from_rows(root, &rows)
}

/// Folded frames may not contain `;` (frame separator) or whitespace
/// (weight separator); replace them so labels survive verbatim otherwise.
fn sanitize(frame: &str) -> String {
    frame
        .chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() => '_',
            c => c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_one_line_each() {
        let rows = vec![
            ("save_state".to_string(), 12),
            ("decode".to_string(), 7),
            ("upcall".to_string(), 0),
        ];
        let folded = folded_from_rows("fastpath", &rows);
        assert_eq!(
            folded,
            "fastpath;save_state 12\nfastpath;decode 7\nfastpath;upcall 0\n"
        );
    }

    #[test]
    fn spans_aggregate_by_name() {
        let span = |name: &str, instructions: u64| RegionSpan {
            name: name.into(),
            start_cycles: 0,
            end_cycles: instructions,
            instructions,
        };
        let folded = folded_from_spans("fastpath", &[span("a", 3), span("b", 2), span("a", 5)]);
        assert_eq!(folded, "fastpath;a 8\nfastpath;b 2\n");
    }

    #[test]
    fn frames_with_separator_chars_are_sanitized() {
        let rows = vec![("bad;frame name".to_string(), 1)];
        let folded = folded_from_rows("r", &rows);
        assert_eq!(folded, "r;bad:frame_name 1\n");
        // Every folded line must split into exactly 2 fields: stack + weight.
        for line in folded.lines() {
            assert_eq!(line.split_whitespace().count(), 2);
        }
    }
}
