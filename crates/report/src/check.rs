//! Baseline regression checking.
//!
//! [`compare`] matches a freshly measured [`Baseline`] against a recorded
//! one, metric by metric. Exact metrics (deterministic cycle and instruction
//! counts) must match bit-for-bit; derived float metrics are allowed a
//! relative tolerance. The result renders as a diff table and decides CI's
//! exit status.

use crate::schema::{Baseline, Metric, MetricValue};
use std::fmt;

/// Default relative tolerance for non-exact metrics (1%).
pub const DEFAULT_TOLERANCE: f64 = 0.01;

/// Outcome for one metric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Within tolerance (or exactly equal, for exact metrics).
    Ok,
    /// Outside tolerance, or an exact metric that changed at all.
    Drift,
    /// Present in the baseline but absent from the current run — a
    /// measurement silently disappeared, which is itself a regression.
    Missing,
    /// Present in the current run but not in the baseline; informational
    /// (re-record to adopt it).
    New,
}

impl Status {
    /// Lowercase (passing) or uppercase (failing) label for tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Drift => "DRIFT",
            Status::Missing => "MISSING",
            Status::New => "new",
        }
    }

    /// Whether this status fails the check.
    pub fn is_failure(self) -> bool {
        matches!(self, Status::Drift | Status::Missing)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One row of the comparison.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The metric's hierarchical name.
    pub name: String,
    /// Its unit label.
    pub unit: String,
    /// The baseline value, absent for [`Status::New`] rows.
    pub expected: Option<MetricValue>,
    /// The current run's value, absent for [`Status::Missing`] rows.
    pub actual: Option<MetricValue>,
    /// Relative deviation `|actual - expected| / |expected|`, when both sides
    /// are present and the expected value is nonzero.
    pub rel_delta: Option<f64>,
    /// The row's verdict.
    pub status: Status,
}

/// The full comparison result.
#[derive(Clone, PartialEq, Debug)]
pub struct CheckReport {
    /// Rows in baseline order, then any new metrics in current-run order.
    pub rows: Vec<Row>,
    /// Relative tolerance applied to non-exact metrics.
    pub tolerance: f64,
}

impl CheckReport {
    /// True when no row is a failure.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| !r.status.is_failure())
    }

    /// The failing rows, in table order.
    pub fn failures(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter().filter(|r| r.status.is_failure())
    }

    fn count(&self, status: Status) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Renders the comparison as a monospace table. With `verbose` false only
    /// non-`Ok` rows are listed (plus a summary); with it true every row is.
    pub fn render_table(&self, verbose: bool) -> String {
        let mut out = String::new();
        let shown: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| verbose || r.status != Status::Ok)
            .collect();
        if !shown.is_empty() {
            let name_w = shown.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
            out.push_str(&format!(
                "{:<name_w$}  {:>14}  {:>14}  {:>9}  status\n",
                "metric", "expected", "actual", "rel"
            ));
            for r in &shown {
                let fmt_val = |v: &Option<MetricValue>| match v {
                    Some(MetricValue::Int(i)) => format!("{i}"),
                    Some(MetricValue::Float(f)) => format!("{f:.4}"),
                    None => "-".to_string(),
                };
                let rel = match r.rel_delta {
                    Some(d) => format!("{:+.3}%", d * 100.0),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "{:<name_w$}  {:>14}  {:>14}  {:>9}  {}\n",
                    r.name,
                    fmt_val(&r.expected),
                    fmt_val(&r.actual),
                    rel,
                    r.status
                ));
            }
        }
        out.push_str(&format!(
            "{} metrics: {} ok, {} drift, {} missing, {} new (tolerance {:.2}% on derived metrics; counts exact)\n",
            self.rows.len(),
            self.count(Status::Ok),
            self.count(Status::Drift),
            self.count(Status::Missing),
            self.count(Status::New),
            self.tolerance * 100.0,
        ));
        out
    }
}

fn as_f64(v: MetricValue) -> f64 {
    match v {
        MetricValue::Int(i) => i as f64,
        MetricValue::Float(f) => f,
    }
}

fn judge(baseline: &Metric, actual: MetricValue, tolerance: f64) -> (Option<f64>, Status) {
    let (e, a) = (as_f64(baseline.value), as_f64(actual));
    let rel = if e != 0.0 {
        Some((a - e) / e.abs())
    } else if a == 0.0 {
        Some(0.0)
    } else {
        None // undefined relative change from zero; treated as drift below
    };
    let ok = if baseline.exact {
        // Exact metrics compare as values: Int==Int bit-for-bit, and a
        // type change (Int became Float) is itself drift.
        match (baseline.value, actual) {
            (MetricValue::Int(x), MetricValue::Int(y)) => x == y,
            (MetricValue::Float(x), MetricValue::Float(y)) => x == y,
            _ => false,
        }
    } else {
        match rel {
            Some(r) => r.abs() <= tolerance,
            None => false,
        }
    };
    (rel, if ok { Status::Ok } else { Status::Drift })
}

/// Compares `current` against `baseline` with the given relative tolerance
/// for non-exact metrics.
pub fn compare(baseline: &Baseline, current: &Baseline, tolerance: f64) -> CheckReport {
    let mut rows = Vec::with_capacity(baseline.metrics.len());
    for m in &baseline.metrics {
        match current.get(&m.name) {
            Some(cur) => {
                let (rel_delta, status) = judge(m, cur.value, tolerance);
                rows.push(Row {
                    name: m.name.clone(),
                    unit: m.unit.clone(),
                    expected: Some(m.value),
                    actual: Some(cur.value),
                    rel_delta,
                    status,
                });
            }
            None => rows.push(Row {
                name: m.name.clone(),
                unit: m.unit.clone(),
                expected: Some(m.value),
                actual: None,
                rel_delta: None,
                status: Status::Missing,
            }),
        }
    }
    for m in &current.metrics {
        if baseline.get(&m.name).is_none() {
            rows.push(Row {
                name: m.name.clone(),
                unit: m.unit.clone(),
                expected: None,
                actual: Some(m.value),
                rel_delta: None,
                status: Status::New,
            });
        }
    }
    CheckReport { rows, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Baseline {
        let mut b = Baseline::new();
        b.push_int("a/cycles", 100, "cycles");
        b.push_float("a/us", 4.0, "us");
        b
    }

    #[test]
    fn identical_runs_pass() {
        let b = baseline();
        let report = compare(&b, &b.clone(), DEFAULT_TOLERANCE);
        assert!(report.passed());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.status == Status::Ok));
    }

    #[test]
    fn exact_metric_rejects_off_by_one() {
        let b = baseline();
        let mut cur = Baseline::new();
        cur.push_int("a/cycles", 101, "cycles");
        cur.push_float("a/us", 4.0, "us");
        let report = compare(&b, &cur, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        let row = &report.rows[0];
        assert_eq!(row.status, Status::Drift);
        assert!(row.rel_delta.unwrap() > 0.0);
        let table = report.render_table(false);
        assert!(
            table.contains("a/cycles"),
            "diff table must name the metric"
        );
        assert!(table.contains("DRIFT"));
    }

    #[test]
    fn float_metric_respects_tolerance() {
        let b = baseline();
        let mut cur = Baseline::new();
        cur.push_int("a/cycles", 100, "cycles");
        cur.push_float("a/us", 4.02, "us"); // +0.5%: inside 1%
        assert!(compare(&b, &cur, DEFAULT_TOLERANCE).passed());
        let mut cur2 = Baseline::new();
        cur2.push_int("a/cycles", 100, "cycles");
        cur2.push_float("a/us", 4.2, "us"); // +5%: outside
        assert!(!compare(&b, &cur2, DEFAULT_TOLERANCE).passed());
        // A wider tolerance admits it.
        assert!(compare(&b, &cur2, 0.10).passed());
    }

    #[test]
    fn missing_metric_fails_and_new_metric_does_not() {
        let b = baseline();
        let mut cur = Baseline::new();
        cur.push_int("a/cycles", 100, "cycles");
        cur.push_float("brand/new", 1.0, "us");
        let report = compare(&b, &cur, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        let missing: Vec<&str> = report.failures().map(|r| r.name.as_str()).collect();
        assert_eq!(missing, ["a/us"]);
        assert!(report.rows.iter().any(|r| r.status == Status::New));
    }

    #[test]
    fn zero_baseline_handled() {
        let mut b = Baseline::new();
        b.push_float("z", 0.0, "us");
        let mut same = Baseline::new();
        same.push_float("z", 0.0, "us");
        assert!(compare(&b, &same, DEFAULT_TOLERANCE).passed());
        let mut diff = Baseline::new();
        diff.push_float("z", 0.5, "us");
        assert!(!compare(&b, &diff, DEFAULT_TOLERANCE).passed());
    }
}
