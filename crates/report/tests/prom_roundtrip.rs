//! Satellite proof: the `efex-health` Prometheus exposition is lossless.
//!
//! Every `StatsSnapshot` counter (aggregate and per-tenant, including
//! awkward slash-and-quote names) and every `Histogram` field — per-bucket
//! counts, sum, count, min, max — must re-parse from the text format to the
//! exact `u64` that was recorded.

use efex_health::{registry_to_prometheus, Registry};
use efex_report::prom;
use efex_trace::{Histogram, StatsSnapshot};

fn sample_snapshot() -> StatsSnapshot {
    StatsSnapshot::new("kernel-health")
        .counter("decode_cache_hits", 12_345)
        .counter("decode_cache_misses", 6)
        .counter("fast-user/write-protect/deliver_p50", 91)
        .counter("quote\"back\\slash", 1)
        .counter("zero", 0)
        .counter("huge", u64::MAX)
}

fn sample_histogram() -> Histogram {
    let mut h = Histogram::new();
    for v in [0, 1, 1, 2, 3, 44, 1000, 1_000_000, u64::MAX] {
        h.record(v);
    }
    h
}

#[test]
fn every_snapshot_counter_round_trips() {
    let snap = sample_snapshot();
    let mut reg = Registry::new();
    reg.record_snapshot(None, &snap);
    reg.record_snapshot(Some(7), &snap);
    let scrape = prom::parse(&registry_to_prometheus(&reg)).expect("exposition must parse");

    assert_eq!(scrape.family_type("efex_counter"), Some("counter"));
    for (name, value) in &snap.counters {
        let agg = scrape
            .get(
                "efex_counter",
                &[("component", "kernel-health"), ("name", name)],
            )
            .unwrap_or_else(|| panic!("aggregate sample for {name} missing"));
        assert_eq!(agg.value_u64(), Some(*value), "{name} (aggregate)");
        assert_eq!(agg.label("tenant"), None, "{name} must be unscoped");
        let tenant = scrape
            .get(
                "efex_counter",
                &[
                    ("component", "kernel-health"),
                    ("name", name),
                    ("tenant", "7"),
                ],
            )
            .unwrap_or_else(|| panic!("tenant sample for {name} missing"));
        assert_eq!(tenant.value_u64(), Some(*value), "{name} (tenant 7)");
    }
    // Nothing extra was invented: 2 scopes × the snapshot's counters.
    assert_eq!(scrape.family("efex_counter").len(), 2 * snap.counters.len());
}

#[test]
fn every_histogram_field_round_trips() {
    let h = sample_histogram();
    let mut reg = Registry::new();
    reg.record_histogram("lat", &h);
    let scrape = prom::parse(&registry_to_prometheus(&reg)).expect("exposition must parse");

    let field = |family: &str| {
        scrape
            .get(family, &[("name", "lat")])
            .unwrap_or_else(|| panic!("{family} missing"))
            .value_u64()
            .unwrap_or_else(|| panic!("{family} not a u64"))
    };
    assert_eq!(field("efex_histogram_sum"), h.sum());
    assert_eq!(field("efex_histogram_count"), h.count());
    assert_eq!(field("efex_histogram_min"), h.min().unwrap());
    assert_eq!(field("efex_histogram_max"), h.max().unwrap());

    // De-cumulate the buckets and map each `le` boundary back to its source
    // bucket: the reconstruction must equal `nonzero_buckets()` exactly.
    let mut reconstructed = Vec::new();
    let mut previous = 0u64;
    let mut saw_inf = false;
    for b in scrape.family("efex_histogram_bucket") {
        assert_eq!(b.label("name"), Some("lat"));
        let le = b.label("le").expect("bucket without le");
        let cumulative = b.value_u64().expect("bucket count not a u64");
        if le == "+Inf" {
            assert_eq!(cumulative, h.count(), "+Inf bucket is the total");
            saw_inf = true;
            continue;
        }
        let boundary: u64 = le.parse().expect("finite le must be a u64");
        let index = Histogram::bucket_index(boundary);
        let (lo, hi) = Histogram::bucket_range(index);
        reconstructed.push((lo, hi, cumulative - previous));
        previous = cumulative;
    }
    assert!(saw_inf, "+Inf bucket missing");
    let expected: Vec<(u64, u64, u64)> = h.nonzero_buckets().collect();
    assert_eq!(reconstructed, expected);
}

#[test]
fn gauges_keep_their_kind_through_the_scrape() {
    let mut reg = Registry::new();
    reg.record_gauge("fleet", None, "tenants", 16);
    reg.record_counter("fleet", None, "deliveries", 400);
    let scrape = prom::parse(&registry_to_prometheus(&reg)).unwrap();
    assert_eq!(scrape.family_type("efex_gauge"), Some("gauge"));
    let g = scrape
        .get("efex_gauge", &[("component", "fleet"), ("name", "tenants")])
        .unwrap();
    assert_eq!(g.value_u64(), Some(16));
    assert!(
        scrape
            .get("efex_gauge", &[("name", "deliveries")])
            .is_none(),
        "counters must not leak into the gauge family"
    );
}
