//! Cross-crate validation: everything the workspace serializes as JSON must
//! actually parse as JSON, verified with `efex_report::jsonval` (which is
//! independent of the hand-rolled writers it checks).

use efex_mips::RegionSpan;
use efex_report::{jsonval, Baseline, ChromeTrace};
use efex_trace::{
    json_escape, EventKind, FaultClass, JsonLinesSink, TraceEvent, TracePath, TraceSink,
};

fn sample_events() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for (i, &kind) in EventKind::ALL.iter().enumerate() {
        out.push(TraceEvent {
            cycles: 1000 + 17 * i as u64,
            kind,
            path: TracePath::FastUser,
            class: FaultClass::WriteProtect,
            exc_code: 1,
            vaddr: 0x0040_2000,
            pc: 0x0040_0104,
            ..TraceEvent::default()
        });
    }
    out
}

#[test]
fn json_lines_sink_emits_valid_json_per_line() {
    let sink = JsonLinesSink::new(Vec::new());
    for ev in sample_events() {
        sink.emit(&ev);
    }
    let out = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), EventKind::ALL.len());
    for (i, line) in lines.iter().enumerate() {
        let v = jsonval::parse(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e}): {line}"));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(i as u64));
        assert_eq!(v.get("path").unwrap().as_str(), Some("fast-user"));
        assert_eq!(v.get("vaddr").unwrap().as_str(), Some("0x00402000"));
    }
}

#[test]
fn json_escape_round_trips_through_the_parser() {
    let nasty = [
        "plain",
        "quote\" and backslash\\",
        "newline\n tab\t return\r",
        "control \u{01}\u{1f} chars",
        "unicode é → 😀",
        "",
    ];
    for original in nasty {
        let doc = format!("\"{}\"", json_escape(original));
        let parsed = jsonval::parse(&doc)
            .unwrap_or_else(|e| panic!("escape of {original:?} unparseable ({e}): {doc}"));
        assert_eq!(
            parsed.as_str(),
            Some(original),
            "round-trip of {original:?}"
        );
    }
}

#[test]
fn chrome_trace_document_is_valid_and_time_consistent() {
    let mut trace = ChromeTrace::new(25.0);
    trace.push_lifecycle(&sample_events());
    trace.push_profile_spans(&[
        RegionSpan {
            name: "save_state".into(),
            start_cycles: 1000,
            end_cycles: 1040,
            instructions: 20,
        },
        RegionSpan {
            name: "decode".into(),
            start_cycles: 1040,
            end_cycles: 1060,
            instructions: 10,
        },
    ]);
    let doc = jsonval::parse(&trace.to_json()).expect("valid trace-event JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    // Required fields per event, and ts/dur consistency per thread.
    let mut last_end_by_tid: std::collections::BTreeMap<u64, f64> = Default::default();
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        assert!(e.get("name").unwrap().as_str().is_some());
        assert!(e.get("pid").unwrap().as_u64().is_some());
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        if ph != "X" {
            continue;
        }
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        let dur = e.get("dur").unwrap().as_f64().unwrap();
        assert!(ts >= 0.0 && dur >= 0.0);
        // Within one thread row, spans never overlap going backwards: each
        // span starts at or after the previous span's start.
        if let Some(&prev) = last_end_by_tid.get(&tid) {
            assert!(ts >= prev, "span on tid {tid} starts before predecessor");
        }
        last_end_by_tid.insert(tid, ts);
    }
}

#[test]
fn baseline_survives_sink_style_escaping() {
    // Metric names flow through the same escaping path as sink output; a
    // name with every awkward character must survive a full write/parse.
    let mut b = Baseline::new();
    b.set_provenance("note", "has \"quotes\" and\nnewlines");
    b.push_int("weird/\"name\"\twith\\escapes", 7, "cycles");
    let back = Baseline::from_json(&b.to_json()).expect("parse");
    assert_eq!(back, b);
}
