//! DSM measurement workloads.
//!
//! [`false_sharing`] demonstrates the problem the paper raises in
//! Section 3.2.4: "architects are increasing page size at the same time
//! that software wants smaller pages, in order to reduce protection
//! granularity and false sharing". Two nodes each write a *disjoint* word;
//! when those words share a page, every write steals exclusive ownership
//! from the other node — pure protocol overhead with no true data sharing.

use crate::dsm::{Dsm, DsmConfig, DsmError};
use efex_core::{DeliveryPath, WorkloadRun};
use efex_simos::layout::PAGE_SIZE;
use efex_trace::StatsSnapshot;

/// Result of one false-sharing run.
#[derive(Clone, Copy, Debug)]
pub struct FalseSharingReport {
    /// Total simulated time across nodes, µs.
    pub total_us: f64,
    /// Coherence faults taken.
    pub faults: u64,
    /// Pages shipped.
    pub page_transfers: u64,
}

/// Two nodes alternate writes to their own private word for `rounds`
/// rounds. With `same_page`, the words live on one page (false sharing);
/// otherwise on separate pages.
///
/// # Errors
///
/// Propagates DSM errors.
pub fn false_sharing(
    path: DeliveryPath,
    rounds: u32,
    same_page: bool,
) -> Result<FalseSharingReport, DsmError> {
    let mut d = two_node_dsm(path)?;
    false_sharing_on(&mut d, rounds, same_page)
}

/// The two-node, two-page DSM every false-sharing run uses.
fn two_node_dsm(path: DeliveryPath) -> Result<Dsm, DsmError> {
    Dsm::new(DsmConfig {
        nodes: 2,
        pages: 2,
        path,
        ..DsmConfig::default()
    })
}

/// Runs the ping-pong rounds on an already-built DSM (so callers that need
/// post-run state — e.g. the health snapshot — can keep it alive).
fn false_sharing_on(
    d: &mut Dsm,
    rounds: u32,
    same_page: bool,
) -> Result<FalseSharingReport, DsmError> {
    let a = d.base();
    let b = if same_page { a + 64 } else { a + PAGE_SIZE };
    for i in 0..rounds {
        d.write(0, a, i)?;
        d.write(1, b, i)?;
    }
    Ok(FalseSharingReport {
        total_us: d.total_micros(),
        faults: d.stats().faults,
        page_transfers: d.stats().page_transfers,
    })
}

/// The canonical deterministic workload recorded in `BENCH_baseline.json` by
/// `efex-bench`'s `report` binary: a small [`false_sharing`] run (two nodes
/// ping-ponging one page) over the fast path. The protocol is deterministic,
/// so the fault and page-transfer counts must reproduce bit-for-bit.
///
/// # Errors
///
/// Propagates DSM errors.
pub fn baseline_workload() -> Result<(f64, StatsSnapshot), DsmError> {
    let r = false_sharing(DeliveryPath::FastUser, 24, true)?;
    let snap = StatsSnapshot::new("dsm")
        .counter("faults", r.faults)
        .counter("page_transfers", r.page_transfers);
    Ok((r.total_us, snap))
}

/// A seeded fleet-tenant variant of [`baseline_workload`]: the same
/// two-node false-sharing ping-pong over the fast path, with the round
/// count derived deterministically from `seed`. Equal seeds reproduce
/// bit-identical fault and transfer counts.
///
/// The returned [`WorkloadRun`] carries the node kernels' merged
/// health-plane snapshot alongside the deterministic stats; only the
/// latter enter fleet fingerprints.
///
/// # Errors
///
/// Propagates DSM errors.
pub fn tenant_workload(seed: u64) -> Result<WorkloadRun, DsmError> {
    let rounds = 12 + (seed % 17) as u32;
    let mut d = two_node_dsm(DeliveryPath::FastUser)?;
    let r = false_sharing_on(&mut d, rounds, true)?;
    let snap = StatsSnapshot::new("dsm")
        .counter("faults", r.faults)
        .counter("page_transfers", r.page_transfers);
    Ok(WorkloadRun::new(r.total_us, snap, d.health_snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_thrashes_separate_pages_settle() {
        let shared = false_sharing(DeliveryPath::FastUser, 30, true).unwrap();
        let split = false_sharing(DeliveryPath::FastUser, 30, false).unwrap();
        // Disjoint pages: each node takes ownership once and keeps it.
        assert!(
            split.faults <= 4,
            "split should settle: {} faults",
            split.faults
        );
        // Same page: ownership ping-pongs on every round.
        assert!(
            shared.faults >= 2 * 30 - 4,
            "false sharing should thrash: {} faults",
            shared.faults
        );
        assert!(shared.total_us > 5.0 * split.total_us);
    }

    #[test]
    fn fast_delivery_shrinks_the_false_sharing_penalty() {
        let slow = false_sharing(DeliveryPath::UnixSignals, 25, true).unwrap();
        let fast = false_sharing(DeliveryPath::FastUser, 25, true).unwrap();
        assert_eq!(slow.faults, fast.faults, "identical protocol traffic");
        assert!(fast.total_us < slow.total_us);
    }
}
