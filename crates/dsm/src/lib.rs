//! # efex-dsm — page-based distributed shared memory
//!
//! Distributed virtual memory (Li & Hudak) is one of the headline uses of
//! memory-protection exceptions the paper motivates: page access detection
//! drives the coherence protocol, so exception delivery cost is on the
//! critical path of every remote access.
//!
//! This crate implements a write-invalidate, sequentially-consistent DSM
//! over several simulated nodes (each an [`efex_core::HostProcess`] with
//! its own machine and page tables):
//!
//! - each node maps the shared region; page protection encodes its
//!   coherence state (`None` = invalid, `Read` = shared, `ReadWrite` =
//!   exclusive);
//! - an access that violates the state takes a *real* protection fault on
//!   that node's simulated MMU; the DSM layer acts as the fault handler,
//!   charging the configured delivery path's cost, running the protocol
//!   (page fetch, invalidations) over a modeled network, and retrying;
//! - faster exception delivery directly shortens every coherence miss —
//!   the quantitative point the benchmarks make.
//!
//! # Example
//!
//! ```
//! use efex_dsm::{Dsm, DsmConfig};
//!
//! # fn main() -> Result<(), efex_dsm::DsmError> {
//! let mut dsm = Dsm::new(DsmConfig::default())?;
//! let addr = dsm.base();
//! dsm.write(0, addr, 42)?;             // node 0 owns the page
//! assert_eq!(dsm.read(1, addr)?, 42);  // node 1 faults + fetches it
//! assert!(dsm.stats().page_transfers >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dsm;
pub mod workloads;

pub use dsm::{Dsm, DsmConfig, DsmError, DsmStats, NodeId};
