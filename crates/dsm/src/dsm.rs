//! The write-invalidate DSM engine.

use std::error::Error;
use std::fmt;

use efex_core::{CoreError, DeliveryCosts, DeliveryPath, GuestMem, HostProcess, Prot, Protection};
use efex_simos::layout::PAGE_SIZE;
use efex_simos::vm::FaultKind;
use efex_trace::{Snapshot, StatsSnapshot};

/// A node index.
pub type NodeId = usize;

/// DSM configuration.
#[derive(Clone, Copy, Debug)]
pub struct DsmConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Shared region size in pages.
    pub pages: u32,
    /// Exception delivery path on every node.
    pub path: DeliveryPath,
    /// Cycles for one network round trip (request + reply).
    pub network_cycles: u64,
    /// Cycles to transfer one page over the network.
    pub page_transfer_cycles: u64,
}

impl Default for DsmConfig {
    fn default() -> DsmConfig {
        DsmConfig {
            nodes: 2,
            pages: 8,
            path: DeliveryPath::FastUser,
            // ~400 us and ~1.2 ms at 25 MHz: 1994-era LAN numbers.
            network_cycles: 10_000,
            page_transfer_cycles: 30_000,
        }
    }
}

/// Per-page coherence state in the directory.
#[derive(Clone, Debug)]
struct PageDir {
    /// The node with the authoritative copy.
    owner: NodeId,
    /// Nodes holding read copies (includes the owner).
    copyset: Vec<NodeId>,
    /// Whether the owner holds it exclusively (writable).
    exclusive: bool,
}

/// DSM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DsmStats {
    /// Protection faults taken (coherence misses).
    pub faults: u64,
    /// Pages shipped between nodes.
    pub page_transfers: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Reads and writes performed.
    pub accesses: u64,
}

impl Snapshot for DsmStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("dsm")
            .counter("faults", self.faults)
            .counter("page_transfers", self.page_transfers)
            .counter("invalidations", self.invalidations)
            .counter("accesses", self.accesses)
    }
}

/// DSM errors.
#[derive(Debug)]
pub enum DsmError {
    /// Underlying simulation error.
    Core(CoreError),
    /// Address outside the shared region.
    OutOfRange(u32),
    /// Bad node id.
    BadNode(NodeId),
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Core(e) => write!(f, "simulation error: {e}"),
            DsmError::OutOfRange(a) => write!(f, "address {a:#x} outside the shared region"),
            DsmError::BadNode(n) => write!(f, "no such node {n}"),
        }
    }
}

impl Error for DsmError {}

impl From<CoreError> for DsmError {
    fn from(e: CoreError) -> DsmError {
        DsmError::Core(e)
    }
}

/// The distributed shared memory system.
pub struct Dsm {
    nodes: Vec<HostProcess>,
    dir: Vec<PageDir>,
    base: u32,
    cfg: DsmConfig,
    costs: DeliveryCosts,
    stats: DsmStats,
}

impl fmt::Debug for Dsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dsm")
            .field("nodes", &self.nodes.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Dsm {
    /// Builds the system: every node maps the shared region; node 0 starts
    /// as the exclusive owner of every page.
    ///
    /// # Errors
    ///
    /// Fails if a node's simulated system cannot boot.
    pub fn new(cfg: DsmConfig) -> Result<Dsm, DsmError> {
        assert!(cfg.nodes >= 1);
        let len = cfg.pages * PAGE_SIZE;
        let mut nodes = Vec::with_capacity(cfg.nodes);
        let mut base = 0;
        for i in 0..cfg.nodes {
            let mut host = HostProcess::builder().delivery(cfg.path).build()?;
            let prot = if i == 0 { Prot::ReadWrite } else { Prot::None };
            let b = host.alloc_region(len, prot)?;
            if i == 0 {
                base = b;
            } else {
                assert_eq!(b, base, "nodes must agree on the region address");
            }
            nodes.push(host);
        }
        let dir = (0..cfg.pages)
            .map(|_| PageDir {
                owner: 0,
                copyset: vec![0],
                exclusive: true,
            })
            .collect();
        Ok(Dsm {
            nodes,
            dir,
            base,
            costs: DeliveryCosts::for_path(cfg.path),
            cfg,
            stats: DsmStats::default(),
        })
    }

    /// Base address of the shared region (same on every node).
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the shared region in bytes.
    pub fn len(&self) -> u32 {
        self.cfg.pages * PAGE_SIZE
    }

    /// Whether the region is empty (never; kept for API convention).
    pub fn is_empty(&self) -> bool {
        self.cfg.pages == 0
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DsmStats {
        &self.stats
    }

    /// Per-(path, class) exception metrics merged across every node.
    pub fn trace_metrics(&self) -> efex_trace::Metrics {
        let mut merged = efex_trace::Metrics::new();
        for node in &self.nodes {
            merged.merge(node.trace_metrics());
        }
        merged
    }

    /// Health-plane snapshot merged across every node's host kernel
    /// (counters summed by name). Pure read.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        efex_trace::StatsSnapshot::aggregate(
            "host-health",
            self.nodes.iter().map(|n| n.health_snapshot()),
        )
    }

    /// Total simulated cycles across all nodes.
    pub fn total_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.cycles()).sum()
    }

    /// Total simulated microseconds across all nodes.
    pub fn total_micros(&self) -> f64 {
        self.nodes.iter().map(|n| n.micros()).sum()
    }

    /// Fault injection: the next `n` deliveries on `node` fall back to
    /// Unix-signal costs. Coherence must be unaffected — only dearer.
    pub fn inject_degrade_next_deliveries(&mut self, node: usize, n: u64) {
        if let Some(host) = self.nodes.get_mut(node) {
            host.inject_degrade_next_deliveries(n);
        }
    }

    /// Deliveries on `node` that fell back to the degraded path.
    pub fn degraded_deliveries(&self, node: usize) -> u64 {
        self.nodes
            .get(node)
            .map_or(0, |h| h.stats().degraded_deliveries)
    }

    fn page_index(&self, addr: u32) -> Result<usize, DsmError> {
        if addr < self.base || addr >= self.base + self.len() {
            return Err(DsmError::OutOfRange(addr));
        }
        Ok(((addr - self.base) / PAGE_SIZE) as usize)
    }

    /// Reads a shared word from `node`'s perspective.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses or simulation errors.
    pub fn read(&mut self, node: NodeId, addr: u32) -> Result<u32, DsmError> {
        self.check_node(node)?;
        self.stats.accesses += 1;
        let page = self.page_index(addr)?;
        match self.nodes[node].kernel_mut().host_load_u32(addr) {
            Ok(v) => Ok(v),
            Err(f) if f.kind == FaultKind::Protection => {
                self.coherence_read_miss(node, page)?;
                self.nodes[node]
                    .kernel_mut()
                    .host_load_u32(addr)
                    .map_err(|f| {
                        DsmError::Core(CoreError::Measurement(format!(
                            "read still faulting after protocol: {f}"
                        )))
                    })
            }
            Err(f) => Err(DsmError::Core(CoreError::Measurement(format!(
                "unexpected fault {f}"
            )))),
        }
    }

    /// Writes a shared word from `node`'s perspective.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses or simulation errors.
    pub fn write(&mut self, node: NodeId, addr: u32, value: u32) -> Result<(), DsmError> {
        self.check_node(node)?;
        self.stats.accesses += 1;
        let page = self.page_index(addr)?;
        match self.nodes[node].kernel_mut().host_store_u32(addr, value) {
            Ok(()) => Ok(()),
            Err(f) if f.kind == FaultKind::Protection => {
                self.coherence_write_miss(node, page)?;
                self.nodes[node]
                    .kernel_mut()
                    .host_store_u32(addr, value)
                    .map_err(|f| {
                        DsmError::Core(CoreError::Measurement(format!(
                            "write still faulting after protocol: {f}"
                        )))
                    })
            }
            Err(f) => Err(DsmError::Core(CoreError::Measurement(format!(
                "unexpected fault {f}"
            )))),
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), DsmError> {
        if node < self.nodes.len() {
            Ok(())
        } else {
            Err(DsmError::BadNode(node))
        }
    }

    /// The delivery costs this miss is charged at: the configured path,
    /// unless an injected degradation fires on the faulting node.
    fn delivery_costs_for(&mut self, node: NodeId) -> DeliveryCosts {
        if self.nodes[node].consume_injected_degradation(efex_trace::FaultClass::WriteProtect) {
            DeliveryCosts::for_path(DeliveryPath::UnixSignals)
        } else {
            self.costs
        }
    }

    /// Read miss: fetch a read copy from the owner; the owner (if
    /// exclusive) is demoted to shared.
    fn coherence_read_miss(&mut self, node: NodeId, page: usize) -> Result<(), DsmError> {
        self.stats.faults += 1;
        // The faulting node pays exception delivery + handler return (at
        // Unix-signal cost when an injected degradation fires).
        let costs = self.delivery_costs_for(node);
        self.nodes[node].charge(costs.prot_deliver + costs.simple_return);
        // Request/response over the network.
        self.nodes[node].charge(self.cfg.network_cycles);

        let owner = self.dir[page].owner;
        if self.dir[page].exclusive && owner != node {
            // Demote the owner to read-shared.
            self.protect_on(owner, page, Prot::Read)?;
            self.dir[page].exclusive = false;
        }
        self.copy_page(owner, node, page)?;
        self.protect_on(node, page, Prot::Read)?;
        if !self.dir[page].copyset.contains(&node) {
            self.dir[page].copyset.push(node);
        }
        self.dir[page].exclusive = false;
        Ok(())
    }

    /// Write miss: invalidate every other copy and take exclusive
    /// ownership.
    fn coherence_write_miss(&mut self, node: NodeId, page: usize) -> Result<(), DsmError> {
        self.stats.faults += 1;
        let costs = self.delivery_costs_for(node);
        self.nodes[node].charge(costs.prot_deliver + costs.simple_return);
        self.nodes[node].charge(self.cfg.network_cycles);

        let owner = self.dir[page].owner;
        // Fetch the page if this node has no copy at all.
        if !self.dir[page].copyset.contains(&node) {
            self.copy_page(owner, node, page)?;
        }
        // Invalidate all other holders.
        let holders: Vec<NodeId> = self.dir[page]
            .copyset
            .iter()
            .copied()
            .filter(|n| *n != node)
            .collect();
        for h in holders {
            self.stats.invalidations += 1;
            self.nodes[node].charge(self.cfg.network_cycles / 2);
            self.protect_on(h, page, Prot::None)?;
        }
        self.protect_on(node, page, Prot::ReadWrite)?;
        self.dir[page].owner = node;
        self.dir[page].copyset = vec![node];
        self.dir[page].exclusive = true;
        Ok(())
    }

    /// Ships a page's contents from one node's memory to another's.
    fn copy_page(&mut self, from: NodeId, to: NodeId, page: usize) -> Result<(), DsmError> {
        if from == to {
            return Ok(());
        }
        self.stats.page_transfers += 1;
        self.nodes[to].charge(self.cfg.page_transfer_cycles);
        let addr = self.base + page as u32 * PAGE_SIZE;
        let bytes = self.nodes[from]
            .kernel_mut()
            .host_read_bytes(addr, PAGE_SIZE as usize)
            .map_err(CoreError::from)?;
        self.nodes[to]
            .kernel_mut()
            .host_write_bytes(addr, &bytes)
            .map_err(CoreError::from)?;
        Ok(())
    }

    /// Changes a page's protection on one node (charging that node's
    /// protection-call cost).
    fn protect_on(&mut self, node: NodeId, page: usize, prot: Prot) -> Result<(), DsmError> {
        let addr = self.base + page as u32 * PAGE_SIZE;
        self.nodes[node].protect(Protection::region(addr, PAGE_SIZE).with_prot(prot))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dsm(nodes: usize) -> Dsm {
        Dsm::new(DsmConfig {
            nodes,
            pages: 4,
            ..DsmConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn single_node_reads_and_writes_locally() {
        let mut d = dsm(1);
        let a = d.base();
        d.write(0, a, 42).unwrap();
        assert_eq!(d.read(0, a).unwrap(), 42);
        assert_eq!(d.stats().faults, 0, "owner has exclusive access");
    }

    #[test]
    fn remote_read_fetches_the_page() {
        let mut d = dsm(2);
        let a = d.base();
        d.write(0, a, 7).unwrap();
        assert_eq!(d.read(1, a).unwrap(), 7, "node 1 sees node 0's write");
        assert_eq!(d.stats().page_transfers, 1);
        assert!(d.stats().faults >= 1);
    }

    #[test]
    fn degraded_delivery_on_one_node_keeps_coherence() {
        // Node 1's next fault delivery is injected to degrade; the page
        // fetch must still produce the coherent value, and later traffic
        // (including the degraded node writing) stays consistent.
        let mut d = dsm(2);
        let a = d.base();
        d.write(0, a, 7).unwrap();
        d.inject_degrade_next_deliveries(1, 1);
        assert_eq!(d.read(1, a).unwrap(), 7, "remote read still coherent");
        assert_eq!(d.degraded_deliveries(1), 1);
        assert_eq!(d.degraded_deliveries(0), 0);
        d.write(1, a, 9).unwrap();
        assert_eq!(d.read(0, a).unwrap(), 9);
    }

    #[test]
    fn write_invalidates_readers() {
        let mut d = dsm(3);
        let a = d.base();
        d.write(0, a, 1).unwrap();
        d.read(1, a).unwrap();
        d.read(2, a).unwrap();
        // Node 1 writes: nodes 0 and 2 must be invalidated.
        d.write(1, a, 2).unwrap();
        assert!(d.stats().invalidations >= 2);
        assert_eq!(d.read(2, a).unwrap(), 2, "node 2 refetches the new value");
        assert_eq!(d.read(0, a).unwrap(), 2);
    }

    #[test]
    fn sequential_consistency_on_interleaved_ops() {
        let mut d = dsm(2);
        let a = d.base();
        let b = d.base() + PAGE_SIZE;
        for i in 0..10u32 {
            let w = (i % 2) as usize;
            let r = 1 - w;
            d.write(w, a, i).unwrap();
            d.write(w, b, i * 10).unwrap();
            assert_eq!(d.read(r, a).unwrap(), i);
            assert_eq!(d.read(r, b).unwrap(), i * 10);
        }
    }

    #[test]
    fn read_sharing_is_free_after_first_fetch() {
        let mut d = dsm(2);
        let a = d.base();
        d.write(0, a, 5).unwrap();
        d.read(1, a).unwrap();
        let f = d.stats().faults;
        for _ in 0..10 {
            d.read(1, a).unwrap();
            d.read(0, a).unwrap();
        }
        assert_eq!(d.stats().faults, f, "shared readers take no faults");
    }

    #[test]
    fn faster_delivery_reduces_total_time() {
        let run = |path| {
            let mut d = Dsm::new(DsmConfig {
                nodes: 2,
                pages: 2,
                path,
                ..DsmConfig::default()
            })
            .unwrap();
            let a = d.base();
            for i in 0..25u32 {
                d.write((i % 2) as usize, a, i).unwrap();
                d.read(((i + 1) % 2) as usize, a).unwrap();
            }
            d.total_cycles()
        };
        let fast = run(DeliveryPath::FastUser);
        let slow = run(DeliveryPath::UnixSignals);
        assert!(slow > fast, "signals {slow} vs fast {fast}");
    }

    #[test]
    fn out_of_range_and_bad_node_are_rejected() {
        let mut d = dsm(1);
        let end = d.base() + d.len();
        assert!(matches!(d.read(0, end), Err(DsmError::OutOfRange(_))));
        assert!(matches!(d.read(5, d.base()), Err(DsmError::BadNode(5))));
    }
}
