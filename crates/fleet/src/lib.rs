//! # efex-fleet — sharded multi-tenant simulation
//!
//! Runs N independent guest instances ("tenants"), each executing one of the
//! five application-crate workloads with a deterministic per-tenant seed,
//! across a configurable pool of OS worker threads. Results are aggregated
//! into one fleet report: summed [`StatsSnapshot`]s, a merged per-tenant
//! latency [`Histogram`], total simulated time, wall-clock scaling numbers,
//! and (optionally) per-tenant Chrome-trace rows.
//!
//! ## Determinism
//!
//! A tenant's result depends only on its spec (suite + seed) — tenants share
//! no state, so it never depends on which worker ran it or in what order.
//! Aggregation is order-independent by construction: [`StatsSnapshot::merge`]
//! sums counters by name and [`Histogram::merge`] sums bucket counts, both
//! commutative, and the per-tenant vector is collected into id order before
//! anything reads it. The fleet aggregate is therefore bit-identical across
//! thread-pool sizes — [`FleetReport::fingerprint`] captures exactly the
//! deterministic portion (everything except wall-clock time) so callers can
//! assert it.

use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use efex_core::{DeliveryPath, ExceptionKind, System};
use efex_report::chrome::TID_TENANT_BASE;
use efex_report::ChromeTrace;
use efex_trace::{Histogram, RingSink, StatsSnapshot, TraceEvent};

/// Stack reserved per worker thread: the simulator types (`System`, `Gc`,
/// `Pstore`, …) are large by value and unoptimized builds keep several
/// temporaries live per construction (same sizing as the bench suite).
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Which application suite a tenant runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Generational GC with the page-protection write barrier.
    Gc,
    /// Two-node false-sharing DSM ping-pong.
    Dsm,
    /// Persistent store with lazy unaligned-tag swizzling.
    Pstore,
    /// Lazy streams and futures over access faults.
    Lazydata,
    /// Conditional write watchpoints with subpage protection.
    Watch,
}

impl Suite {
    /// Every suite, in the fixed round-robin order [`plan`] assigns.
    pub const ALL: [Suite; 5] = [
        Suite::Gc,
        Suite::Dsm,
        Suite::Pstore,
        Suite::Lazydata,
        Suite::Watch,
    ];

    /// Stable lowercase name (used in reports and trace row labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Suite::Gc => "gc",
            Suite::Dsm => "dsm",
            Suite::Pstore => "pstore",
            Suite::Lazydata => "lazydata",
            Suite::Watch => "watch",
        }
    }

    /// The exception kind characteristic of the suite, used for the traced
    /// fast-path delivery sample that populates a tenant's Chrome-trace row.
    fn sample_kind(self) -> ExceptionKind {
        match self {
            Suite::Gc | Suite::Dsm | Suite::Lazydata => ExceptionKind::WriteProtect,
            Suite::Pstore => ExceptionKind::UnalignedSpecialized,
            Suite::Watch => ExceptionKind::Subpage,
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One tenant: an independent guest instance with its own workload seed.
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// Fleet-assigned index, `0..tenants`.
    pub id: u32,
    /// Which application workload this tenant runs.
    pub suite: Suite,
    /// Deterministic workload seed (derived from the fleet base seed).
    pub seed: u64,
}

/// Fleet shape and scheduling knobs.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of tenants to run.
    pub tenants: u32,
    /// OS worker threads; `1` runs the whole fleet on one worker.
    pub threads: usize,
    /// Base seed every per-tenant seed derives from.
    pub base_seed: u64,
    /// Capture a traced fast-path delivery sample per tenant (for Chrome
    /// export). Off by default: determinism checks don't need it.
    pub trace: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            tenants: 16,
            threads: 1,
            base_seed: 0xf1ee7,
            trace: false,
        }
    }
}

/// A tenant workload failed.
#[derive(Debug)]
pub struct FleetError {
    /// Failing tenant id.
    pub tenant: u32,
    /// Failing tenant's suite name.
    pub suite: &'static str,
    /// Rendered underlying error.
    pub message: String,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} ({}) failed: {}",
            self.tenant, self.suite, self.message
        )
    }
}

impl std::error::Error for FleetError {}

/// One tenant's completed run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Fleet-assigned index.
    pub id: u32,
    /// Workload suite the tenant ran.
    pub suite: Suite,
    /// Seed the workload ran under.
    pub seed: u64,
    /// Simulated run time, µs.
    pub micros: f64,
    /// The workload's stats counters.
    pub stats: StatsSnapshot,
    /// Traced fast-path lifecycle sample (empty unless `FleetConfig::trace`).
    pub events: Vec<TraceEvent>,
}

/// Aggregated results of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-tenant reports, in id order regardless of scheduling.
    pub tenants: Vec<TenantReport>,
    /// All tenant stats merged (counters summed by name).
    pub aggregate: StatsSnapshot,
    /// Per-tenant simulated run time, recorded in nanoseconds: shard
    /// histograms merged across workers.
    pub latency: Histogram,
    /// Total simulated time across tenants, µs.
    pub total_micros: f64,
    /// Real elapsed time for the whole fleet, seconds.
    pub wall_seconds: f64,
    /// Worker threads the run used.
    pub threads: usize,
}

impl FleetReport {
    /// Total exception deliveries across the fleet: the sum of every
    /// aggregate counter whose name mentions faults (`barrier_faults`,
    /// `faults`, …) — each suite counts its deliveries under such a name.
    pub fn deliveries(&self) -> u64 {
        self.aggregate
            .counters
            .iter()
            .filter(|(name, _)| name.contains("fault"))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Deliveries per wall-clock second — the fleet throughput metric.
    pub fn deliveries_per_wall_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.deliveries() as f64 / self.wall_seconds
    }

    /// A stable rendering of everything deterministic in the report —
    /// per-tenant specs, stats and simulated times, the aggregate, and the
    /// latency histogram — excluding wall-clock time and thread count. Two
    /// runs of the same fleet must produce byte-identical fingerprints no
    /// matter how many workers they used.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&format!(
                "tenant {} {} seed={:#x} micros={} stats={}\n",
                t.id,
                t.suite,
                t.seed,
                t.micros.to_bits(),
                t.stats.to_json()
            ));
        }
        out.push_str(&format!("aggregate {}\n", self.aggregate.to_json()));
        out.push_str(&format!("latency {}\n", self.latency.to_json()));
        out.push_str(&format!("total_micros {}\n", self.total_micros.to_bits()));
        out
    }

    /// Exports the fleet as a Chrome trace-event document: each tenant's
    /// lifecycle sample on its own named thread row (requires the fleet to
    /// have run with `FleetConfig::trace`).
    pub fn chrome_trace(&self, clock_mhz: f64) -> String {
        let mut trace = ChromeTrace::new(clock_mhz);
        for t in &self.tenants {
            trace.push_tenant_lifecycle(
                TID_TENANT_BASE + t.id,
                &format!("tenant-{:02} ({})", t.id, t.suite),
                &t.events,
            );
        }
        trace.to_json()
    }
}

/// Expands a config into the tenant list: suites assigned round-robin in
/// [`Suite::ALL`] order, seeds derived from the base seed by a fixed mix so
/// neighbouring tenants get well-separated workload parameters.
pub fn plan(cfg: &FleetConfig) -> Vec<TenantSpec> {
    (0..cfg.tenants)
        .map(|id| TenantSpec {
            id,
            suite: Suite::ALL[id as usize % Suite::ALL.len()],
            seed: cfg
                .base_seed
                .wrapping_add(u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        })
        .collect()
}

/// Runs one tenant to completion on the calling thread.
///
/// # Errors
///
/// Returns [`FleetError`] if the tenant's workload fails.
pub fn run_tenant(spec: TenantSpec, trace: bool) -> Result<TenantReport, FleetError> {
    let err = |e: &dyn std::fmt::Display| FleetError {
        tenant: spec.id,
        suite: spec.suite.as_str(),
        message: e.to_string(),
    };
    let (micros, stats) = match spec.suite {
        Suite::Gc => efex_gc::workloads::tenant_workload(spec.seed).map_err(|e| err(&e))?,
        Suite::Dsm => efex_dsm::workloads::tenant_workload(spec.seed).map_err(|e| err(&e))?,
        Suite::Pstore => efex_pstore::workloads::tenant_workload(spec.seed).map_err(|e| err(&e))?,
        Suite::Lazydata => efex_lazydata::tenant_workload(spec.seed).map_err(|e| err(&e))?,
        Suite::Watch => efex_watch::tenant_workload(spec.seed).map_err(|e| err(&e))?,
    };
    let events = if trace {
        lifecycle_sample(spec.suite).map_err(|e| err(&e))?
    } else {
        Vec::new()
    };
    Ok(TenantReport {
        id: spec.id,
        suite: spec.suite,
        seed: spec.seed,
        micros,
        stats,
        events,
    })
}

/// One traced fast-path delivery of the suite's characteristic exception
/// kind: real lifecycle events for the tenant's Chrome-trace row.
fn lifecycle_sample(suite: Suite) -> Result<Vec<TraceEvent>, efex_core::CoreError> {
    let ring = Rc::new(RingSink::with_capacity(64));
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .trace_sink(ring.clone())
        .build()?;
    sys.measure_null_roundtrip(suite.sample_kind())?;
    Ok(ring.events())
}

/// Runs the whole fleet across `cfg.threads` workers and aggregates.
///
/// Workers claim tenants from a shared atomic index (work stealing), so load
/// balances even when suites differ wildly in cost; results land in an
/// id-indexed table, so aggregation order — and with it every aggregate —
/// is independent of the claiming order.
///
/// # Errors
///
/// Returns the first (lowest-id) [`FleetError`] if any tenant fails.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, FleetError> {
    let specs = plan(cfg);
    let threads = cfg.threads.max(1);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<TenantReport, FleetError>>>> =
        Mutex::new((0..specs.len()).map(|_| None).collect());
    // One latency shard per worker; merged after join. Bucket counts sum,
    // so the merged histogram is invariant to how tenants were partitioned.
    let shards: Mutex<Vec<Histogram>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        let worker = || {
            let mut shard = Histogram::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i).copied() else {
                    break;
                };
                let result = run_tenant(spec, cfg.trace);
                if let Ok(r) = &result {
                    shard.record((r.micros * 1000.0) as u64); // µs → ns
                }
                slots.lock().unwrap()[i] = Some(result);
            }
            shards.lock().unwrap().push(shard);
        };
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            handles.push(
                std::thread::Builder::new()
                    .name(format!("efex-fleet-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, worker)
                    .expect("spawn fleet worker"),
            );
        }
        for h in handles {
            h.join().expect("fleet worker panicked");
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut tenants = Vec::with_capacity(specs.len());
    for slot in slots.into_inner().unwrap() {
        tenants.push(slot.expect("every tenant claimed")?);
    }
    tenants.sort_by_key(|t| t.id);
    let mut latency = Histogram::new();
    for shard in shards.into_inner().unwrap().iter() {
        latency.merge(shard);
    }

    let aggregate = StatsSnapshot::aggregate("fleet", tenants.iter().map(|t| t.stats.clone()));
    let total_micros = tenants.iter().map(|t| t.micros).sum();
    Ok(FleetReport {
        tenants,
        aggregate,
        latency,
        total_micros,
        wall_seconds,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_round_robin() {
        let cfg = FleetConfig {
            tenants: 12,
            ..FleetConfig::default()
        };
        let a = plan(&cfg);
        let b = plan(&cfg);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.suite, x.seed), (y.id, y.suite, y.seed));
        }
        assert_eq!(a[0].suite, Suite::Gc);
        assert_eq!(a[5].suite, Suite::Gc, "round-robin wraps at 5");
        assert_ne!(a[0].seed, a[5].seed, "same suite, distinct seeds");
    }

    #[test]
    fn single_tenant_reports_stats_and_time() {
        let r = run_tenant(
            TenantSpec {
                id: 0,
                suite: Suite::Dsm,
                seed: 3,
            },
            false,
        )
        .unwrap();
        assert!(r.micros > 0.0);
        assert!(r.stats.get("faults").unwrap() > 0);
        assert!(r.events.is_empty(), "tracing was off");
    }

    #[test]
    fn fleet_aggregates_every_tenant() {
        let cfg = FleetConfig {
            tenants: 10,
            threads: 2,
            ..FleetConfig::default()
        };
        let r = run_fleet(&cfg).unwrap();
        assert_eq!(r.tenants.len(), 10);
        for (i, t) in r.tenants.iter().enumerate() {
            assert_eq!(t.id as usize, i, "id order regardless of scheduling");
        }
        assert_eq!(r.latency.count(), 10, "one latency sample per tenant");
        assert!(r.deliveries() > 0);
        assert!(r.total_micros > 0.0);
        // The aggregate really is the per-tenant sum.
        let by_hand = StatsSnapshot::aggregate("fleet", r.tenants.iter().map(|t| t.stats.clone()));
        assert_eq!(r.aggregate, by_hand);
    }

    #[test]
    fn fleet_aggregates_are_thread_count_invariant() {
        let base = FleetConfig {
            tenants: 10,
            threads: 1,
            ..FleetConfig::default()
        };
        let one = run_fleet(&base).unwrap();
        for threads in [2, 4] {
            let many = run_fleet(&FleetConfig { threads, ..base }).unwrap();
            assert_eq!(
                one.fingerprint(),
                many.fingerprint(),
                "threads=1 vs threads={threads}"
            );
        }
    }

    #[test]
    fn traced_fleet_exports_tenant_rows() {
        let cfg = FleetConfig {
            tenants: 3,
            threads: 2,
            trace: true,
            ..FleetConfig::default()
        };
        let r = run_fleet(&cfg).unwrap();
        for t in &r.tenants {
            assert!(!t.events.is_empty(), "tenant {} has no events", t.id);
        }
        let json = r.chrome_trace(25.0);
        for id in 0..3 {
            assert!(
                json.contains(&format!("tenant-{id:02}")),
                "missing row label for tenant {id}"
            );
        }
    }
}
