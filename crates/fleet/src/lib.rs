//! # efex-fleet — sharded multi-tenant simulation
//!
//! Runs N independent guest instances ("tenants"), each executing one of the
//! five application-crate workloads with a deterministic per-tenant seed,
//! across a configurable pool of OS worker threads. Results are aggregated
//! into one fleet report: summed [`StatsSnapshot`]s, a merged per-tenant
//! latency [`Histogram`], total simulated time, wall-clock scaling numbers,
//! and (optionally) per-tenant Chrome-trace rows.
//!
//! ## Health plane
//!
//! With [`FleetConfig::health`] (on by default) every tenant also carries a
//! health [`StatsSnapshot`]: the workload host's effectiveness counters plus
//! a `probe_`-prefixed **delivery probe** — one traced fast-path delivery of
//! the suite's characteristic exception kind on a fresh guest, which exposes
//! decode-cache hit/eviction behaviour, UTLB/comm-page repairs, and trace-ring
//! overflow for that tenant. [`FleetReport::health_monitor`] folds all of it
//! (plus the fleet aggregate, the latency histogram, and the static fast-path
//! budget from `efex-verify`) into an [`efex_health::HealthMonitor`] armed
//! with [`fleet_invariants`]. Health data is strictly host-side: it charges
//! no simulated cycles and stays out of [`FleetReport::fingerprint`].
//!
//! ## Determinism
//!
//! A tenant's result depends only on its spec (suite + seed) — tenants share
//! no state, so it never depends on which worker ran it or in what order.
//! Aggregation is order-independent by construction: [`StatsSnapshot::merge`]
//! sums counters by name and [`Histogram::merge`] sums bucket counts, both
//! commutative, and the per-tenant vector is collected into id order before
//! anything reads it. The fleet aggregate is therefore bit-identical across
//! thread-pool sizes — [`FleetReport::fingerprint`] captures exactly the
//! deterministic portion (everything except wall-clock time) so callers can
//! assert it.

#![warn(missing_docs)]

use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use efex_core::{DeliveryPath, ExceptionKind, System};
use efex_health::{HealthMonitor, Invariant, MetricRef};
use efex_mips::machine::{with_machine_config, MachineConfig};
use efex_report::chrome::TID_TENANT_BASE;
use efex_report::ChromeTrace;
use efex_trace::{Histogram, RingSink, StatsSnapshot, TraceEvent};

/// Stack reserved per worker thread: the simulator types (`System`, `Gc`,
/// `Pstore`, …) are large by value and unoptimized builds keep several
/// temporaries live per construction (same sizing as the bench suite).
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Which application suite a tenant runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Generational GC with the page-protection write barrier.
    Gc,
    /// Two-node false-sharing DSM ping-pong.
    Dsm,
    /// Persistent store with lazy unaligned-tag swizzling.
    Pstore,
    /// Lazy streams and futures over access faults.
    Lazydata,
    /// Conditional write watchpoints with subpage protection.
    Watch,
}

impl Suite {
    /// Every suite, in the fixed round-robin order [`plan`] assigns.
    pub const ALL: [Suite; 5] = [
        Suite::Gc,
        Suite::Dsm,
        Suite::Pstore,
        Suite::Lazydata,
        Suite::Watch,
    ];

    /// Stable lowercase name (used in reports and trace row labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Suite::Gc => "gc",
            Suite::Dsm => "dsm",
            Suite::Pstore => "pstore",
            Suite::Lazydata => "lazydata",
            Suite::Watch => "watch",
        }
    }

    /// The exception kind characteristic of the suite, used for the traced
    /// fast-path delivery sample that populates a tenant's Chrome-trace row.
    fn sample_kind(self) -> ExceptionKind {
        match self {
            Suite::Gc | Suite::Dsm | Suite::Lazydata => ExceptionKind::WriteProtect,
            Suite::Pstore => ExceptionKind::UnalignedSpecialized,
            Suite::Watch => ExceptionKind::Subpage,
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One tenant: an independent guest instance with its own workload seed.
///
/// Running the same spec twice is bit-identical — every source of
/// nondeterminism is derived from the seed:
///
/// ```
/// use efex_fleet::{run_tenant, Suite, TenantSpec};
/// use efex_mips::machine::MachineConfig;
///
/// let spec = TenantSpec {
///     id: 0,
///     suite: Suite::Gc,
///     seed: 0x5eed,
///     machine: MachineConfig::default(),
/// };
/// let a = run_tenant(spec, false, false).unwrap();
/// let b = run_tenant(spec, false, false).unwrap();
/// assert_eq!(a.micros.to_bits(), b.micros.to_bits());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// Fleet-assigned index, `0..tenants`.
    pub id: u32,
    /// Which application workload this tenant runs.
    pub suite: Suite,
    /// Deterministic workload seed (derived from the fleet base seed).
    pub seed: u64,
    /// Machine configuration (execution engine, decode cache) every guest
    /// this tenant constructs builds from. Applied as the worker thread's
    /// scoped default, so tenants on different engines never race — the fix
    /// for the old process-global decode-cache switches.
    pub machine: MachineConfig,
}

/// Fleet shape and scheduling knobs.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of tenants to run.
    pub tenants: u32,
    /// OS worker threads; `1` runs the whole fleet on one worker.
    pub threads: usize,
    /// Base seed every per-tenant seed derives from.
    pub base_seed: u64,
    /// Capture a traced fast-path delivery sample per tenant (for Chrome
    /// export). Off by default: determinism checks don't need it.
    pub trace: bool,
    /// Collect per-tenant health snapshots and run the delivery probe. On by
    /// default (the health plane is meant to be always-on); it is host-side
    /// only, so turning it off changes nothing deterministic.
    pub health: bool,
    /// Machine configuration every tenant builds its guests from (engine
    /// selection for A/B runs; per-tenant, race-free). The aggregate
    /// fingerprint is invariant to it — both engines are bit-exact.
    pub machine: MachineConfig,
    /// Legs per tenant: each leg is one workload pass under a leg-derived
    /// seed, and the tenant's report is the merge of its legs. Legs are the
    /// checkpoint granularity for the migration and crash-recovery drills
    /// ([`run_fleet_migrate`], [`run_fleet_kill_shard`]). The default, `1`,
    /// is bit-identical to the pre-leg fleet.
    pub legs: u32,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            tenants: 16,
            threads: 1,
            base_seed: 0xf1ee7,
            trace: false,
            health: true,
            machine: MachineConfig::default(),
            legs: 1,
        }
    }
}

/// A tenant workload failed.
#[derive(Debug)]
pub struct FleetError {
    /// Failing tenant id.
    pub tenant: u32,
    /// Failing tenant's suite name.
    pub suite: &'static str,
    /// Rendered underlying error.
    pub message: String,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} ({}) failed: {}",
            self.tenant, self.suite, self.message
        )
    }
}

impl std::error::Error for FleetError {}

/// One tenant's completed run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Fleet-assigned index.
    pub id: u32,
    /// Workload suite the tenant ran.
    pub suite: Suite,
    /// Seed the workload ran under.
    pub seed: u64,
    /// Simulated run time, µs.
    pub micros: f64,
    /// The workload's stats counters.
    pub stats: StatsSnapshot,
    /// Traced fast-path lifecycle sample (empty unless `FleetConfig::trace`).
    pub events: Vec<TraceEvent>,
    /// Health-plane counters for this tenant (component `"tenant-health"`):
    /// the workload host's effectiveness counters merged with the
    /// `probe_`-prefixed delivery-probe counters. Empty unless
    /// [`FleetConfig::health`]. Deliberately excluded from
    /// [`FleetReport::fingerprint`] — health observes, it never perturbs.
    pub health: StatsSnapshot,
}

/// One fast-path handler phase: the dynamic instruction count measured for a
/// real delivery against the static bound `efex-verify` proves over the
/// assembled kernel image.
#[derive(Clone, Debug)]
pub struct PhaseBudget {
    /// Phase label in the guest source (`fexc_*`).
    pub label: String,
    /// Dynamic instructions measured for one delivery.
    pub measured_instructions: u64,
    /// Static per-phase bound from the verifier.
    pub static_instructions: u64,
}

/// The fast-path cycle budget: measured per-phase instruction counts vs the
/// static bound (the paper's Table 3 discipline, checked as a health
/// invariant instead of a baseline diff).
#[derive(Clone, Debug)]
pub struct FastPathBudget {
    /// Per-phase measured-vs-static rows, in handler order.
    pub phases: Vec<PhaseBudget>,
    /// Sum of the measured per-phase instruction counts.
    pub total_measured_instructions: u64,
    /// The verifier's total static instruction bound.
    pub static_instructions: u64,
    /// The verifier's total static cycle bound.
    pub static_cycles: u64,
}

/// Aggregated results of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-tenant reports, in id order regardless of scheduling.
    pub tenants: Vec<TenantReport>,
    /// All tenant stats merged (counters summed by name).
    pub aggregate: StatsSnapshot,
    /// Per-tenant simulated run time, recorded in nanoseconds: shard
    /// histograms merged across workers.
    pub latency: Histogram,
    /// Total simulated time across tenants, µs.
    pub total_micros: f64,
    /// Real elapsed time for the whole fleet, seconds.
    pub wall_seconds: f64,
    /// Worker threads the run used.
    pub threads: usize,
    /// Measured-vs-static fast-path budget (`None` unless
    /// [`FleetConfig::health`]). Probed once per fleet, not per tenant.
    pub fast_path: Option<FastPathBudget>,
    /// Tenants that completed after a live migration to a different worker
    /// shard ([`run_fleet_migrate`]). Drill accounting, like wall-clock
    /// time: excluded from [`FleetReport::fingerprint`].
    pub migrations: u32,
    /// Tenants restored from their last checkpoint after a shard was killed
    /// ([`run_fleet_kill_shard`]). Excluded from the fingerprint.
    pub recoveries: u32,
}

impl FleetReport {
    /// Total exception deliveries across the fleet: the sum of every
    /// aggregate counter whose name mentions faults (`barrier_faults`,
    /// `faults`, …) — each suite counts its deliveries under such a name.
    pub fn deliveries(&self) -> u64 {
        self.aggregate
            .counters
            .iter()
            .filter(|(name, _)| name.contains("fault"))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Deliveries per wall-clock second — the fleet throughput metric.
    pub fn deliveries_per_wall_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.deliveries() as f64 / self.wall_seconds
    }

    /// A stable rendering of everything deterministic in the report —
    /// per-tenant specs, stats and simulated times, the aggregate, and the
    /// latency histogram — excluding wall-clock time and thread count. Two
    /// runs of the same fleet must produce byte-identical fingerprints no
    /// matter how many workers they used.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&format!(
                "tenant {} {} seed={:#x} micros={} stats={}\n",
                t.id,
                t.suite,
                t.seed,
                t.micros.to_bits(),
                t.stats.to_json()
            ));
        }
        out.push_str(&format!("aggregate {}\n", self.aggregate.to_json()));
        out.push_str(&format!("latency {}\n", self.latency.to_json()));
        out.push_str(&format!("total_micros {}\n", self.total_micros.to_bits()));
        out
    }

    /// Exports the fleet as a Chrome trace-event document: each tenant's
    /// lifecycle sample on its own named thread row (requires the fleet to
    /// have run with `FleetConfig::trace`).
    pub fn chrome_trace(&self, clock_mhz: f64) -> String {
        let mut trace = ChromeTrace::new(clock_mhz);
        for t in &self.tenants {
            trace.push_tenant_lifecycle(
                TID_TENANT_BASE + t.id,
                &format!("tenant-{:02} ({})", t.id, t.suite),
                &t.events,
            );
        }
        trace.to_json()
    }

    /// Builds the armed health monitor for this run with the default
    /// evaluation interval ([`DEFAULT_HEALTH_INTERVAL_CYCLES`]). See
    /// [`FleetReport::health_monitor_with_interval`].
    pub fn health_monitor(&self) -> HealthMonitor {
        self.health_monitor_with_interval(DEFAULT_HEALTH_INTERVAL_CYCLES)
    }

    /// Builds a [`HealthMonitor`] armed with [`fleet_invariants`] and fed
    /// from every layer: per-tenant workload stats and health snapshots, the
    /// fleet aggregate and an aggregate health rollup, the latency
    /// histogram, and the static fast-path budget. Tenants are replayed in
    /// id order against the accumulated simulated-cycle clock, so interval
    /// evaluations fire as they would have during the run; the caller
    /// finishes with [`HealthMonitor::finish`] for the end-of-run pass.
    pub fn health_monitor_with_interval(&self, interval_cycles: u64) -> HealthMonitor {
        let mut mon = HealthMonitor::new().with_interval(interval_cycles);
        for inv in fleet_invariants() {
            mon.add_invariant(inv);
        }
        let mut cycles = 0u64;
        for t in &self.tenants {
            mon.registry().record_snapshot(Some(t.id), &t.stats);
            mon.registry().record_snapshot(Some(t.id), &t.health);
            cycles += t.health.get("cycles").unwrap_or(0);
            cycles += t.health.get("probe_cycles").unwrap_or(0);
            mon.observe(cycles);
        }
        mon.registry().record_snapshot(None, &self.aggregate);
        let rollup = StatsSnapshot::aggregate(
            "tenant-health",
            self.tenants.iter().map(|t| t.health.clone()),
        );
        mon.registry().record_snapshot(None, &rollup);
        mon.registry()
            .record_histogram("fleet_latency_ns", &self.latency);
        if let Some(fp) = &self.fast_path {
            for p in &fp.phases {
                mon.registry().record_gauge(
                    "fast-path",
                    None,
                    &format!("{}_measured_instructions", p.label),
                    p.measured_instructions,
                );
                mon.registry().record_gauge(
                    "fast-path",
                    None,
                    &format!("{}_static_instructions", p.label),
                    p.static_instructions,
                );
            }
            mon.registry().record_gauge(
                "fast-path",
                None,
                "total_measured_instructions",
                fp.total_measured_instructions,
            );
            mon.registry().record_gauge(
                "fast-path",
                None,
                "static_instructions",
                fp.static_instructions,
            );
            mon.registry()
                .record_gauge("fast-path", None, "static_cycles", fp.static_cycles);
        }
        mon.registry()
            .record_gauge("fleet", None, "tenants", self.tenants.len() as u64);
        mon.registry()
            .record_gauge("fleet", None, "threads", self.threads as u64);
        mon.registry().record_gauge(
            "fleet",
            None,
            "migrated_tenants",
            u64::from(self.migrations),
        );
        mon.registry().record_gauge(
            "fleet",
            None,
            "recovered_tenants",
            u64::from(self.recoveries),
        );
        mon
    }
}

/// Default simulated-cycle interval between health evaluations.
pub const DEFAULT_HEALTH_INTERVAL_CYCLES: u64 = 100_000;

/// The fleet's declarative invariant set: what "every delivery mechanism is
/// still effective" means for a healthy run. All thresholds are deliberately
/// loose — they separate working mechanisms from broken ones, not fast runs
/// from slightly slower ones.
pub fn fleet_invariants() -> Vec<Invariant> {
    let th = |name: &str| MetricRef::new("tenant-health", name);
    let mut invs = vec![
        // The decode cache must stay effective on the fast path. A healthy
        // probe re-delivers from a handful of pages, so hits dominate
        // misses; systematic slot aliasing drives the ratio toward zero.
        Invariant::ratio_min(
            "decode-cache-hit-rate",
            th("probe_decode_cache_hits"),
            th("probe_decode_cache_misses"),
            0.5,
        )
        .per_tenant()
        .warmup(th("probe_decode_cache_misses"), 4)
        .hint(
            "the delivery probe's decode cache stopped being effective; check \
             Machine::dcache_slot (efex-mips) for systematic slot aliasing",
        ),
        // Installs should be cold fills, not evictions of live pages. The
        // probe is a fixed small workload over a handful of code pages and
        // 1024 slots, so a healthy run evicts nothing at all; any sustained
        // eviction count means distinct pages are fighting over slots.
        Invariant::max(
            "decode-cache-eviction-churn",
            th("probe_decode_cache_evictions"),
            4,
        )
        .per_tenant()
        .warmup(th("probe_decode_cache_misses"), 4)
        .hint(
            "the delivery probe's decode cache keeps evicting live pages: \
                 distinct pages hash to the same slot (check the slot hash's \
                 input bits)",
        ),
        // Degraded (full-state) deliveries mean the fast path gave up.
        Invariant::max("degraded-deliveries", th("degraded_deliveries"), 0).hint(
            "the kernel fell back to full-state degraded delivery; check \
             comm-page registration and the fast-path preconditions (efex-simos)",
        ),
        Invariant::max(
            "host-degraded-deliveries",
            th("host_degraded_deliveries"),
            0,
        )
        .hint(
            "the host delivery layer degraded a delivery; check \
             HostProcess's comm-page state (efex-core)",
        ),
        // The pinned comm-page mapping must never need repair in a healthy
        // run — a repair means the UTLB invariant was broken mid-flight.
        Invariant::max("comm-page-repairs", th("comm_page_repairs"), 0).hint(
            "the pinned comm-page UTLB entry was lost and re-pinned mid-run; \
             check the UTLB replacement policy (efex-simos kernel)",
        ),
        Invariant::max("utlb-repairs", th("utlb_repairs"), 0).hint(
            "a UTLB refill targeted the pinned comm-page slot and was \
             repaired; check utlb_refill's slot choice (efex-simos kernel)",
        ),
        // The probe's trace ring must hold a full delivery lifecycle.
        Invariant::max("trace-ring-overflow", th("probe_ring_overwritten"), 0).hint(
            "the per-tenant trace ring wrapped and overwrote lifecycle \
             events; grow the RingSink capacity in the delivery probe",
        ),
        // Every tenant's health plane must actually have reported.
        Invariant::min("probe-activity", th("probe_cycles"), 1)
            .per_tenant()
            .hint(
                "a tenant's delivery probe reported no simulated cycles; the \
                 health plane is blind for this tenant",
            ),
        // A restored checkpoint whose machine digest does not match the one
        // recorded at capture means snapshot/restore is lossy — the
        // migration and crash-recovery drills would silently resume wrong
        // state.
        Invariant::max(
            "snapshot-restore-divergence",
            th("snapshot_restore_divergence"),
            0,
        )
        .hint(
            "a kernel restore failed its capture-digest check; check \
             Kernel::restore and MachineState round-tripping (efex-simos, \
             efex-snap)",
        ),
    ];
    // Measured fast-path work must stay within the static bound efex-verify
    // proves over the assembled kernel image — per phase and in total — and
    // the computed bound must itself match the published Table 3 budget.
    // All ceilings come from `efex_health::budget`, built from the single
    // authoritative constants in `efex_verify::budget`.
    for (label, _, _) in efex_simos::fastexc::TABLE3_PHASES {
        invs.push(efex_health::fast_path_phase_budget(label));
    }
    invs.push(efex_health::fast_path_total_budget());
    invs.extend(efex_health::fast_path_published_budget());
    invs
}

/// Expands a config into the tenant list: suites assigned round-robin in
/// [`Suite::ALL`] order, seeds derived from the base seed by a fixed mix so
/// neighbouring tenants get well-separated workload parameters.
pub fn plan(cfg: &FleetConfig) -> Vec<TenantSpec> {
    (0..cfg.tenants)
        .map(|id| TenantSpec {
            id,
            suite: Suite::ALL[id as usize % Suite::ALL.len()],
            seed: cfg
                .base_seed
                .wrapping_add(u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            machine: cfg.machine,
        })
        .collect()
}

/// Runs one tenant to completion on the calling thread.
///
/// # Errors
///
/// Returns [`FleetError`] if the tenant's workload fails.
pub fn run_tenant(spec: TenantSpec, trace: bool, health: bool) -> Result<TenantReport, FleetError> {
    let err = |e: &dyn std::fmt::Display| FleetError {
        tenant: spec.id,
        suite: spec.suite.as_str(),
        message: e.to_string(),
    };
    // Leg 0 runs under the tenant's own seed, so a single-leg tenant is
    // exactly the pre-leg behaviour.
    let run = run_leg(spec, 0)?;
    let mut health_snap = StatsSnapshot::new("tenant-health");
    if health {
        health_snap.merge(&run.health);
    }
    let mut events = Vec::new();
    if trace || health {
        let probe = delivery_probe(spec.suite, spec.machine).map_err(|e| err(&e))?;
        if trace {
            events = probe.events;
        }
        if health {
            health_snap.merge(&probe.health);
        }
    }
    Ok(TenantReport {
        id: spec.id,
        suite: spec.suite,
        seed: spec.seed,
        micros: run.micros,
        stats: run.stats,
        events,
        health: health_snap,
    })
}

/// The seed a tenant's `leg`-th workload pass runs under. Leg 0 is the
/// tenant's own seed, so a one-leg fleet is bit-identical to the pre-leg
/// fleet; later legs mix in a fixed odd constant for well-separated
/// workload parameters.
pub fn leg_seed(seed: u64, leg: u32) -> u64 {
    seed.wrapping_add(u64::from(leg).wrapping_mul(0xd1b5_4a32_d192_ed03))
}

/// One workload pass (no probe, no health merge) under the leg's seed.
fn run_leg(spec: TenantSpec, leg: u32) -> Result<efex_core::WorkloadRun, FleetError> {
    let err = |e: &dyn std::fmt::Display| FleetError {
        tenant: spec.id,
        suite: spec.suite.as_str(),
        message: e.to_string(),
    };
    let seed = leg_seed(spec.seed, leg);
    with_machine_config(spec.machine, || match spec.suite {
        Suite::Gc => efex_gc::workloads::tenant_workload(seed).map_err(|e| err(&e)),
        Suite::Dsm => efex_dsm::workloads::tenant_workload(seed).map_err(|e| err(&e)),
        Suite::Pstore => efex_pstore::workloads::tenant_workload(seed).map_err(|e| err(&e)),
        Suite::Lazydata => efex_lazydata::tenant_workload(seed).map_err(|e| err(&e)),
        Suite::Watch => efex_watch::tenant_workload(seed).map_err(|e| err(&e)),
    })
}

/// A tenant checkpoint: the spec plus everything its completed legs
/// produced. Serializes to a standalone [`efex_snap::Flavor::Tenant`]
/// artifact, so a checkpoint taken on one worker shard (or one process)
/// can be resumed on another with [`resume_tenant`] — the unit of live
/// migration and crash recovery in the fleet drills.
#[derive(Clone, Debug)]
pub struct TenantCheckpoint {
    /// The tenant being checkpointed (including its machine config, which
    /// must travel with it — the resuming shard may default differently).
    pub spec: TenantSpec,
    /// Total legs the tenant's run consists of.
    pub legs_total: u32,
    /// Legs already completed and folded into the fields below.
    pub legs_done: u32,
    /// Simulated µs accumulated over the completed legs.
    pub micros: f64,
    /// Workload stats merged over the completed legs (`None` before the
    /// first leg completes).
    pub stats: Option<StatsSnapshot>,
    /// Health counters merged over the completed legs (empty when the
    /// fleet runs with health off).
    pub health: StatsSnapshot,
}

impl TenantCheckpoint {
    /// The checkpoint of a tenant that has not run yet.
    pub fn initial(spec: TenantSpec, legs_total: u32) -> TenantCheckpoint {
        TenantCheckpoint {
            spec,
            legs_total: legs_total.max(1),
            legs_done: 0,
            micros: 0.0,
            stats: None,
            health: StatsSnapshot::new("tenant-health"),
        }
    }

    /// Serializes as a standalone [`efex_snap::Flavor::Tenant`] artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = efex_snap::Writer::new(efex_snap::Flavor::Tenant);
        w.u32(self.spec.id);
        w.u8(Suite::ALL
            .iter()
            .position(|s| *s == self.spec.suite)
            .expect("suite in ALL") as u8);
        w.u64(self.spec.seed);
        w.u8(match self.spec.machine.engine {
            efex_mips::machine::ExecEngine::Interpreter => 0,
            efex_mips::machine::ExecEngine::Superblock => 1,
        });
        w.bool(self.spec.machine.decode_cache);
        w.u8(match self.spec.machine.mod64_slots {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        w.u32(self.legs_total);
        w.u32(self.legs_done);
        w.f64(self.micros);
        w.bool(self.stats.is_some());
        if let Some(stats) = &self.stats {
            encode_counters(&mut w, stats);
        }
        encode_counters(&mut w, &self.health);
        w.finish()
    }

    /// Deserializes a standalone [`efex_snap::Flavor::Tenant`] artifact.
    ///
    /// # Errors
    ///
    /// Typed [`efex_snap::SnapError`] on any malformation; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<TenantCheckpoint, efex_snap::SnapError> {
        let mut r = efex_snap::Reader::open(bytes, efex_snap::Flavor::Tenant)?;
        let id = r.u32()?;
        let suite = *Suite::ALL
            .get(r.u8()? as usize)
            .ok_or_else(|| efex_snap::SnapError::Corrupt("suite tag out of range".into()))?;
        let seed = r.u64()?;
        let engine = match r.u8()? {
            0 => efex_mips::machine::ExecEngine::Interpreter,
            1 => efex_mips::machine::ExecEngine::Superblock,
            t => return Err(efex_snap::SnapError::Corrupt(format!("engine tag {t}"))),
        };
        let decode_cache = r.bool()?;
        let mod64_slots = match r.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            t => return Err(efex_snap::SnapError::Corrupt(format!("mod64 tag {t}"))),
        };
        let legs_total = r.u32()?;
        let legs_done = r.u32()?;
        if legs_total == 0 || legs_done > legs_total {
            return Err(efex_snap::SnapError::Corrupt(format!(
                "leg counts {legs_done}/{legs_total}"
            )));
        }
        let micros = r.f64()?;
        let stats = if r.bool()? {
            Some(decode_counters(&mut r, suite.as_str())?)
        } else {
            None
        };
        let health = decode_counters(&mut r, "tenant-health")?;
        r.done()?;
        let machine = MachineConfig {
            engine,
            decode_cache,
            mod64_slots,
        };
        Ok(TenantCheckpoint {
            spec: TenantSpec {
                id,
                suite,
                seed,
                machine,
            },
            legs_total,
            legs_done,
            micros,
            stats,
            health,
        })
    }
}

fn encode_counters(w: &mut efex_snap::Writer, snap: &StatsSnapshot) {
    w.u32(snap.counters.len() as u32);
    for (name, value) in &snap.counters {
        w.str(name);
        w.u64(*value);
    }
}

/// Counter names are arbitrary strings but the component is a `&'static
/// str`, so the caller supplies the component the checkpoint's context
/// implies (the suite name for workload stats, `"tenant-health"` for the
/// health plane).
fn decode_counters(
    r: &mut efex_snap::Reader<'_>,
    component: &'static str,
) -> Result<StatsSnapshot, efex_snap::SnapError> {
    let n = r.count(3)?;
    let mut snap = StatsSnapshot::new(component);
    for _ in 0..n {
        let name = r.str()?.to_string();
        let value = r.u64()?;
        snap.counters.push((name, value));
    }
    Ok(snap)
}

/// Runs a tenant's next legs up to (not including) `until_leg`, folding
/// each completed leg into the checkpoint.
///
/// # Errors
///
/// Returns [`FleetError`] if a leg's workload fails.
pub fn advance_tenant(ckpt: &mut TenantCheckpoint, until_leg: u32) -> Result<(), FleetError> {
    let until = until_leg.min(ckpt.legs_total);
    while ckpt.legs_done < until {
        let run = run_leg(ckpt.spec, ckpt.legs_done)?;
        ckpt.micros += run.micros;
        match &mut ckpt.stats {
            Some(stats) => stats.merge(&run.stats),
            None => ckpt.stats = Some(run.stats),
        }
        ckpt.health.merge(&run.health);
        ckpt.legs_done += 1;
    }
    Ok(())
}

/// Runs the tenant from the checkpoint to completion — the remaining legs
/// plus the end-of-run delivery probe — and builds its report. The
/// checkpoint may come from this process or off the wire
/// ([`TenantCheckpoint::from_bytes`]); a resumed tenant reports exactly
/// what an uninterrupted one would.
///
/// # Errors
///
/// Returns [`FleetError`] if a remaining leg's workload (or the probe)
/// fails.
pub fn resume_tenant(
    ckpt: &TenantCheckpoint,
    trace: bool,
    health: bool,
) -> Result<TenantReport, FleetError> {
    let mut ckpt = ckpt.clone();
    let total = ckpt.legs_total;
    advance_tenant(&mut ckpt, total)?;
    let err = |e: &dyn std::fmt::Display| FleetError {
        tenant: ckpt.spec.id,
        suite: ckpt.spec.suite.as_str(),
        message: e.to_string(),
    };
    let mut health_snap = StatsSnapshot::new("tenant-health");
    if health {
        health_snap.merge(&ckpt.health);
    }
    let mut events = Vec::new();
    if trace || health {
        let probe = delivery_probe(ckpt.spec.suite, ckpt.spec.machine).map_err(|e| err(&e))?;
        if trace {
            events = probe.events;
        }
        if health {
            health_snap.merge(&probe.health);
        }
    }
    Ok(TenantReport {
        id: ckpt.spec.id,
        suite: ckpt.spec.suite,
        seed: ckpt.spec.seed,
        micros: ckpt.micros,
        stats: ckpt.stats.unwrap_or_else(|| StatsSnapshot::new("fleet")),
        events,
        health: health_snap,
    })
}

/// Runs a tenant as `legs` workload passes (plus the probe). `legs <= 1`
/// is exactly [`run_tenant`].
///
/// # Errors
///
/// Returns [`FleetError`] if any leg's workload fails.
pub fn run_tenant_legged(
    spec: TenantSpec,
    legs: u32,
    trace: bool,
    health: bool,
) -> Result<TenantReport, FleetError> {
    if legs <= 1 {
        return run_tenant(spec, trace, health);
    }
    resume_tenant(&TenantCheckpoint::initial(spec, legs), trace, health)
}

/// Runs `f(shard, item)` for each item on a scoped worker pool with a
/// *static* assignment `shard = shard_of(index)` — the drills need to
/// prove which worker ran what, so no work stealing here. Results come
/// back in item order.
fn scatter<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    shard_of: impl Fn(usize) -> usize + Sync,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let items = &items;
            let shard_of = &shard_of;
            let f = &f;
            std::thread::Builder::new()
                .name(format!("efex-fleet-{w}"))
                .stack_size(WORKER_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    for (i, cell) in items.iter().enumerate() {
                        if shard_of(i) % threads != w {
                            continue;
                        }
                        let item = cell.lock().unwrap().take().expect("item claimed once");
                        let r = f(w, item);
                        slots.lock().unwrap()[i] = Some(r);
                    }
                })
                .expect("spawn fleet worker");
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every item ran"))
        .collect()
}

/// How many legs a drill splits a tenant into, and the leg after which the
/// checkpoint is taken: drills need at least two legs to have a
/// "mid-suite" point, so a one-leg config is promoted to two.
fn drill_legs(cfg: &FleetConfig) -> (u32, u32) {
    let legs = cfg.legs.max(2);
    (legs, legs / 2)
}

/// Aggregates drill-produced tenant reports the same way [`run_fleet`]
/// does (id order, merged stats, merged latency shards are unnecessary —
/// one record per tenant in id order is the same histogram).
fn aggregate_reports(
    mut tenants: Vec<TenantReport>,
    threads: usize,
    fast_path: Option<FastPathBudget>,
    wall_seconds: f64,
    migrations: u32,
    recoveries: u32,
) -> FleetReport {
    tenants.sort_by_key(|t| t.id);
    let mut latency = Histogram::new();
    for t in &tenants {
        latency.record((t.micros * 1000.0) as u64); // µs → ns
    }
    let aggregate = StatsSnapshot::aggregate("fleet", tenants.iter().map(|t| t.stats.clone()));
    let total_micros = tenants.iter().map(|t| t.micros).sum();
    FleetReport {
        tenants,
        aggregate,
        latency,
        total_micros,
        wall_seconds,
        threads,
        fast_path,
        migrations,
        recoveries,
    }
}

fn drill_fast_path(cfg: &FleetConfig) -> Result<Option<FastPathBudget>, FleetError> {
    if cfg.health {
        Ok(Some(fast_path_budget().map_err(|message| FleetError {
            tenant: 0,
            suite: "health-probe",
            message,
        })?))
    } else {
        Ok(None)
    }
}

fn first_error<R>(results: Vec<Result<R, FleetError>>) -> Result<Vec<R>, FleetError> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// The live-migration drill: every tenant runs its first legs on its home
/// shard, is checkpointed **through the wire**
/// ([`TenantCheckpoint::to_bytes`]), and completes on a *different* worker
/// shard. The report must fingerprint identically to an uninterrupted
/// [`run_fleet`] of the same (legged) config — the assertion the `snap` CI
/// gate makes.
///
/// # Errors
///
/// Returns [`FleetError`] if any tenant's workload fails or a checkpoint
/// fails to round-trip.
pub fn run_fleet_migrate(cfg: &FleetConfig) -> Result<FleetReport, FleetError> {
    let threads = cfg.threads.max(1);
    let (legs, split) = drill_legs(cfg);
    let fast_path = drill_fast_path(cfg)?;
    let start = Instant::now();
    let specs = plan(cfg);
    // Phase A: home shard = id % threads, run to the checkpoint, serialize.
    let blobs = first_error(scatter(
        specs,
        threads,
        |i| i,
        |_, spec| {
            let mut ckpt = TenantCheckpoint::initial(spec, legs);
            advance_tenant(&mut ckpt, split)?;
            Ok::<Vec<u8>, FleetError>(ckpt.to_bytes())
        },
    ))?;
    // Phase B: fresh worker pool, every tenant one shard over from home.
    let reports = first_error(scatter(
        blobs,
        threads,
        |i| i + 1,
        |_, bytes: Vec<u8>| {
            let ckpt = TenantCheckpoint::from_bytes(&bytes).map_err(|e| FleetError {
                tenant: u32::MAX,
                suite: "migrate",
                message: format!("checkpoint failed to round-trip: {e}"),
            })?;
            resume_tenant(&ckpt, cfg.trace, cfg.health)
        },
    ))?;
    let migrations = reports.len() as u32;
    Ok(aggregate_reports(
        reports,
        threads,
        fast_path,
        start.elapsed().as_secs_f64(),
        migrations,
        0,
    ))
}

/// The crash-recovery drill: every tenant checkpoints after its first
/// legs; then shard `dead` is killed. Its tenants' in-flight state is
/// gone — they restart from their last serialized checkpoint on the
/// surviving shards and are counted as [`FleetReport::recoveries`]
/// (surfaced to the health plane as the `recovered_tenants` gauge and a
/// per-tenant `restored_from_checkpoint` health counter). Tenants on
/// surviving shards complete undisturbed. The fingerprint must equal the
/// uninterrupted legged run's.
///
/// # Errors
///
/// [`FleetError`] if `dead` is out of range, the fleet has fewer than two
/// shards (nowhere to recover to), any workload fails, or a checkpoint
/// fails to round-trip.
pub fn run_fleet_kill_shard(cfg: &FleetConfig, dead: usize) -> Result<FleetReport, FleetError> {
    let threads = cfg.threads.max(1);
    if threads < 2 || dead >= threads {
        return Err(FleetError {
            tenant: 0,
            suite: "kill-shard",
            message: format!(
                "need >= 2 shards and a valid victim (threads={threads}, dead={dead})"
            ),
        });
    }
    let (legs, split) = drill_legs(cfg);
    let fast_path = drill_fast_path(cfg)?;
    let start = Instant::now();
    let specs = plan(cfg);
    // Phase A: everyone runs to the checkpoint on their home shard and
    // serializes it — the always-on checkpointing the drill relies on.
    let blobs = first_error(scatter(
        specs,
        threads,
        |i| i,
        |_, spec| {
            let mut ckpt = TenantCheckpoint::initial(spec, legs);
            advance_tenant(&mut ckpt, split)?;
            Ok::<Vec<u8>, FleetError>(ckpt.to_bytes())
        },
    ))?;
    // The kill: shard `dead` never runs its tail legs. Lost tenants are
    // rerouted one shard over (never back to the dead shard; threads >= 2
    // guarantees a survivor); the rest resume on their home shard.
    let items: Vec<(Vec<u8>, bool)> = blobs
        .into_iter()
        .enumerate()
        .map(|(i, b)| (b, i % threads == dead))
        .collect();
    let reroute = move |i: usize| {
        if i % threads == dead {
            i + 1
        } else {
            i
        }
    };
    let reports = first_error(scatter(
        items,
        threads,
        reroute,
        |_, (bytes, recovered): (Vec<u8>, bool)| {
            let ckpt = TenantCheckpoint::from_bytes(&bytes).map_err(|e| FleetError {
                tenant: u32::MAX,
                suite: "kill-shard",
                message: format!("checkpoint failed to round-trip: {e}"),
            })?;
            let mut report = resume_tenant(&ckpt, cfg.trace, cfg.health)?;
            if recovered && cfg.health {
                report
                    .health
                    .counters
                    .push(("restored_from_checkpoint".into(), 1));
            }
            Ok::<(TenantReport, bool), FleetError>((report, recovered))
        },
    ))?;
    let recoveries = reports.iter().filter(|(_, r)| *r).count() as u32;
    let tenants = reports.into_iter().map(|(t, _)| t).collect();
    Ok(aggregate_reports(
        tenants,
        threads,
        fast_path,
        start.elapsed().as_secs_f64(),
        0,
        recoveries,
    ))
}

/// What the per-tenant delivery probe produced: lifecycle events for the
/// Chrome-trace row plus `probe_`-prefixed health counters.
struct DeliveryProbe {
    events: Vec<TraceEvent>,
    health: StatsSnapshot,
}

/// One traced fast-path delivery of the suite's characteristic exception
/// kind on a fresh guest. The trace and health planes share this single
/// simulation: the ring buffers the lifecycle events, and the guest's
/// kernel/machine counters (decode cache, repairs, ring occupancy) become
/// the tenant's `probe_*` health metrics.
fn delivery_probe(
    suite: Suite,
    tenant: MachineConfig,
) -> Result<DeliveryProbe, efex_core::CoreError> {
    let ring = Rc::new(RingSink::with_capacity(64));
    // The probe's decode-cache health invariants (hit rate, eviction churn)
    // characterize the reference engine's per-instruction cache, so the
    // probe guest pins the interpreter with the cache on, whatever engine
    // the tenant runs — only the test-only slot-hash pathology carries over
    // (the canary arms it per-tenant and expects the probe to feel it).
    let probe_cfg = MachineConfig::default().mod64_slots(tenant.mod64_slots.unwrap_or(false));
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .trace_sink(ring.clone())
        .machine_config(probe_cfg)
        .build()?;
    sys.measure_null_roundtrip(suite.sample_kind())?;
    let mut health = StatsSnapshot::new("tenant-health");
    for (name, value) in sys.health_snapshot().counters {
        health.counters.push((format!("probe_{name}"), value));
    }
    let health = health
        .counter("probe_ring_buffered", ring.len() as u64)
        .counter("probe_ring_dropped", ring.dropped())
        .counter("probe_ring_overwritten", ring.overwritten())
        .counter("probe_ring_total_pushed", ring.total_pushed());
    Ok(DeliveryProbe {
        events: ring.events(),
        health,
    })
}

/// Runs the whole fleet across `cfg.threads` workers and aggregates.
///
/// Workers claim tenants from a shared atomic index (work stealing), so load
/// balances even when suites differ wildly in cost; results land in an
/// id-indexed table, so aggregation order — and with it every aggregate —
/// is independent of the claiming order.
///
/// # Errors
///
/// Returns the first (lowest-id) [`FleetError`] if any tenant fails.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, FleetError> {
    let specs = plan(cfg);
    let threads = cfg.threads.max(1);
    // The fast-path budget is a property of the kernel image, not of any
    // tenant: probe it once, before the workers start.
    let fast_path = if cfg.health {
        Some(fast_path_budget().map_err(|message| FleetError {
            tenant: 0,
            suite: "health-probe",
            message,
        })?)
    } else {
        None
    };
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<TenantReport, FleetError>>>> =
        Mutex::new((0..specs.len()).map(|_| None).collect());
    // One latency shard per worker; merged after join. Bucket counts sum,
    // so the merged histogram is invariant to how tenants were partitioned.
    let shards: Mutex<Vec<Histogram>> = Mutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|scope| {
        let worker = || {
            let mut shard = Histogram::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i).copied() else {
                    break;
                };
                let result = run_tenant_legged(spec, cfg.legs, cfg.trace, cfg.health);
                if let Ok(r) = &result {
                    shard.record((r.micros * 1000.0) as u64); // µs → ns
                }
                slots.lock().unwrap()[i] = Some(result);
            }
            shards.lock().unwrap().push(shard);
        };
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            handles.push(
                std::thread::Builder::new()
                    .name(format!("efex-fleet-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, worker)
                    .expect("spawn fleet worker"),
            );
        }
        for h in handles {
            h.join().expect("fleet worker panicked");
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut tenants = Vec::with_capacity(specs.len());
    for slot in slots.into_inner().unwrap() {
        tenants.push(slot.expect("every tenant claimed")?);
    }
    tenants.sort_by_key(|t| t.id);
    let mut latency = Histogram::new();
    for shard in shards.into_inner().unwrap().iter() {
        latency.merge(shard);
    }

    let aggregate = StatsSnapshot::aggregate("fleet", tenants.iter().map(|t| t.stats.clone()));
    let total_micros = tenants.iter().map(|t| t.micros).sum();
    Ok(FleetReport {
        tenants,
        aggregate,
        latency,
        total_micros,
        wall_seconds,
        threads,
        fast_path,
        migrations: 0,
        recoveries: 0,
    })
}

/// Measures the fast-path handler's per-phase dynamic instruction counts
/// (the paper's Table 3) and pairs each with the static bound `efex-verify`
/// computes over the assembled kernel image.
fn fast_path_budget() -> Result<FastPathBudget, String> {
    let kimage = efex_mips::asm::assemble(efex_simos::fastexc::KERNEL_ASM)
        .map_err(|e| format!("kernel image: {e}"))?;
    let report = efex_simos::verify::verify_kernel_image(&kimage);
    let fp = report
        .fast_path
        .as_ref()
        .ok_or("verifier computed no static fast path")?;
    let rows = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .map_err(|e| e.to_string())?
        .measure_table3()
        .map_err(|e| e.to_string())?;
    let mut phases = Vec::with_capacity(rows.len());
    let mut total_measured_instructions = 0;
    for row in &rows {
        let bound = fp
            .per_phase
            .iter()
            .find(|p| p.label == row.label)
            .ok_or_else(|| format!("no static bound for phase {}", row.label))?;
        total_measured_instructions += row.measured_instructions;
        phases.push(PhaseBudget {
            label: row.label.to_string(),
            measured_instructions: row.measured_instructions,
            static_instructions: bound.instructions,
        });
    }
    Ok(FastPathBudget {
        phases,
        total_measured_instructions,
        static_instructions: fp.total_instructions,
        static_cycles: fp.total_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_round_robin() {
        let cfg = FleetConfig {
            tenants: 12,
            ..FleetConfig::default()
        };
        let a = plan(&cfg);
        let b = plan(&cfg);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.suite, x.seed), (y.id, y.suite, y.seed));
        }
        assert_eq!(a[0].suite, Suite::Gc);
        assert_eq!(a[5].suite, Suite::Gc, "round-robin wraps at 5");
        assert_ne!(a[0].seed, a[5].seed, "same suite, distinct seeds");
    }

    #[test]
    fn single_tenant_reports_stats_and_time() {
        let r = run_tenant(
            TenantSpec {
                id: 0,
                suite: Suite::Dsm,
                seed: 3,
                machine: MachineConfig::default(),
            },
            false,
            false,
        )
        .unwrap();
        assert!(r.micros > 0.0);
        assert!(r.stats.get("faults").unwrap() > 0);
        assert!(r.events.is_empty(), "tracing was off");
        assert!(r.health.counters.is_empty(), "health was off");
    }

    #[test]
    fn tenant_health_snapshot_spans_every_layer() {
        let r = run_tenant(
            TenantSpec {
                id: 0,
                suite: Suite::Gc,
                seed: 7,
                machine: MachineConfig::default(),
            },
            false,
            true,
        )
        .unwrap();
        // Workload host counters, kernel effectiveness counters, and the
        // probe's guest + ring counters all land in one snapshot.
        assert_eq!(r.health.component, "tenant-health");
        assert!(
            r.health.get("cycles").unwrap() > 0,
            "workload kernel cycles"
        );
        assert_eq!(r.health.get("degraded_deliveries"), Some(0));
        assert_eq!(r.health.get("comm_page_repairs"), Some(0));
        assert!(r.health.get("probe_cycles").unwrap() > 0, "probe ran");
        assert!(
            r.health.get("probe_decode_cache_hits").unwrap()
                > r.health.get("probe_decode_cache_misses").unwrap(),
            "healthy probe decode cache: hits dominate"
        );
        assert_eq!(r.health.get("probe_ring_overwritten"), Some(0));
        assert!(r.health.get("probe_ring_total_pushed").unwrap() > 0);
    }

    #[test]
    fn fleet_aggregates_every_tenant() {
        let cfg = FleetConfig {
            tenants: 10,
            threads: 2,
            ..FleetConfig::default()
        };
        let r = run_fleet(&cfg).unwrap();
        assert_eq!(r.tenants.len(), 10);
        for (i, t) in r.tenants.iter().enumerate() {
            assert_eq!(t.id as usize, i, "id order regardless of scheduling");
        }
        assert_eq!(r.latency.count(), 10, "one latency sample per tenant");
        assert!(r.deliveries() > 0);
        assert!(r.total_micros > 0.0);
        // The aggregate really is the per-tenant sum.
        let by_hand = StatsSnapshot::aggregate("fleet", r.tenants.iter().map(|t| t.stats.clone()));
        assert_eq!(r.aggregate, by_hand);
    }

    #[test]
    fn fleet_aggregates_are_thread_count_invariant() {
        let base = FleetConfig {
            tenants: 10,
            threads: 1,
            ..FleetConfig::default()
        };
        let one = run_fleet(&base).unwrap();
        for threads in [2, 4] {
            let many = run_fleet(&FleetConfig { threads, ..base }).unwrap();
            assert_eq!(
                one.fingerprint(),
                many.fingerprint(),
                "threads=1 vs threads={threads}"
            );
        }
    }

    #[test]
    fn health_plane_never_perturbs_the_fingerprint() {
        let base = FleetConfig {
            tenants: 5,
            threads: 2,
            health: false,
            ..FleetConfig::default()
        };
        let off = run_fleet(&base).unwrap();
        let on = run_fleet(&FleetConfig {
            health: true,
            ..base
        })
        .unwrap();
        assert_eq!(
            off.fingerprint(),
            on.fingerprint(),
            "health must observe without perturbing: zero simulated cycles"
        );
        assert!(off.fast_path.is_none());
        assert!(on.fast_path.is_some());
    }

    #[test]
    fn healthy_fleet_trips_no_invariants() {
        let cfg = FleetConfig {
            tenants: 10,
            threads: 2,
            ..FleetConfig::default()
        };
        let r = run_fleet(&cfg).unwrap();
        let mut mon = r.health_monitor();
        let findings = mon.finish().to_vec();
        assert!(
            findings.is_empty(),
            "green fleet tripped invariants:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(mon.evaluations() > 0);
        // The registry really spans every layer.
        let reg = mon.registry_ref();
        assert!(reg
            .get("tenant-health", Some(0), "probe_decode_cache_hits")
            .is_some());
        assert!(
            reg.get("tenant-health", None, "probe_cycles").is_some(),
            "rollup"
        );
        assert!(reg.get("fleet", None, "tenants") == Some(10));
        assert!(reg.get("fast-path", None, "static_instructions").is_some());
        assert_eq!(reg.histograms().len(), 1, "latency histogram registered");
    }

    #[test]
    fn forced_ring_overflow_trips_the_invariant() {
        // A trace ring too small for one delivery lifecycle: drive a real
        // traced delivery through it, then feed the ring's counters to the
        // monitor the same way the delivery probe does.
        let ring = Rc::new(RingSink::with_capacity(4));
        let mut sys = System::builder()
            .delivery(DeliveryPath::FastUser)
            .trace_sink(ring.clone())
            .build()
            .unwrap();
        sys.measure_null_roundtrip(ExceptionKind::WriteProtect)
            .unwrap();
        assert!(ring.overwritten() > 0, "4 slots cannot hold a lifecycle");

        let mut mon = HealthMonitor::new();
        for inv in fleet_invariants() {
            mon.add_invariant(inv);
        }
        let snap = StatsSnapshot::new("tenant-health")
            .counter("probe_ring_overwritten", ring.overwritten())
            .counter("probe_ring_total_pushed", ring.total_pushed());
        mon.registry().record_snapshot(None, &snap);
        let findings = mon.finish();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].invariant, "trace-ring-overflow");
        assert!(
            findings[0].hint.contains("RingSink"),
            "{}",
            findings[0].hint
        );
    }

    #[test]
    fn fast_path_budget_matches_the_static_bound() {
        let r = run_fleet(&FleetConfig {
            tenants: 1,
            ..FleetConfig::default()
        })
        .unwrap();
        let fp = r.fast_path.as_ref().unwrap();
        assert_eq!(fp.phases.len(), 6, "all Table 3 phases");
        for p in &fp.phases {
            assert!(
                p.measured_instructions <= p.static_instructions,
                "{}: measured {} > static {}",
                p.label,
                p.measured_instructions,
                p.static_instructions
            );
        }
        assert_eq!(fp.total_measured_instructions, fp.static_instructions);
        assert!(fp.static_cycles >= fp.static_instructions);
    }

    #[test]
    fn tenant_checkpoint_round_trips_the_wire() {
        let spec = TenantSpec {
            id: 3,
            suite: Suite::Watch,
            seed: 0xfeed,
            machine: MachineConfig::default().mod64_slots(false),
        };
        let mut ckpt = TenantCheckpoint::initial(spec, 2);
        advance_tenant(&mut ckpt, 1).unwrap();
        let back = TenantCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back.spec.id, spec.id);
        assert_eq!(back.spec.suite, spec.suite);
        assert_eq!(back.spec.seed, spec.seed);
        assert_eq!(back.spec.machine.mod64_slots, Some(false));
        assert_eq!((back.legs_total, back.legs_done), (2, 1));
        assert_eq!(back.micros.to_bits(), ckpt.micros.to_bits());
        assert_eq!(
            back.stats.as_ref().unwrap().counters,
            ckpt.stats.as_ref().unwrap().counters
        );
        // Resuming the deserialized checkpoint matches resuming the local
        // one bit-for-bit.
        let a = resume_tenant(&ckpt, false, false).unwrap();
        let b = resume_tenant(&back, false, false).unwrap();
        assert_eq!(a.micros.to_bits(), b.micros.to_bits());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn migration_preserves_the_aggregate_fingerprint() {
        let cfg = FleetConfig {
            tenants: 5,
            threads: 2,
            legs: 2,
            ..FleetConfig::default()
        };
        let baseline = run_fleet(&cfg).unwrap();
        let migrated = run_fleet_migrate(&cfg).unwrap();
        assert_eq!(migrated.migrations, 5, "every tenant migrated");
        assert_eq!(
            baseline.fingerprint(),
            migrated.fingerprint(),
            "live migration changed the aggregate"
        );
    }

    #[test]
    fn kill_shard_recovers_with_unchanged_fingerprint() {
        let cfg = FleetConfig {
            tenants: 5,
            threads: 2,
            legs: 2,
            ..FleetConfig::default()
        };
        let baseline = run_fleet(&cfg).unwrap();
        let drilled = run_fleet_kill_shard(&cfg, 0).unwrap();
        assert!(drilled.recoveries > 0, "shard 0 owned tenants");
        assert_eq!(
            baseline.fingerprint(),
            drilled.fingerprint(),
            "crash recovery changed the aggregate"
        );
        // Recoveries surface on the health plane without tripping anything.
        let mut mon = drilled.health_monitor();
        let findings = mon.finish().to_vec();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(
            mon.registry_ref().get("fleet", None, "recovered_tenants"),
            Some(u64::from(drilled.recoveries))
        );
        let recovered_marks: u64 = drilled
            .tenants
            .iter()
            .filter_map(|t| t.health.get("restored_from_checkpoint"))
            .sum();
        assert_eq!(recovered_marks, u64::from(drilled.recoveries));
    }

    #[test]
    fn kill_shard_rejects_impossible_drills() {
        let cfg = FleetConfig {
            tenants: 2,
            threads: 1,
            ..FleetConfig::default()
        };
        assert!(run_fleet_kill_shard(&cfg, 0).is_err(), "no survivor");
        let cfg2 = FleetConfig { threads: 2, ..cfg };
        assert!(
            run_fleet_kill_shard(&cfg2, 5).is_err(),
            "victim out of range"
        );
    }

    #[test]
    fn legged_fleet_is_thread_count_invariant() {
        let base = FleetConfig {
            tenants: 5,
            threads: 1,
            legs: 2,
            ..FleetConfig::default()
        };
        let one = run_fleet(&base).unwrap();
        let two = run_fleet(&FleetConfig { threads: 2, ..base }).unwrap();
        assert_eq!(one.fingerprint(), two.fingerprint());
    }

    #[test]
    fn traced_fleet_exports_tenant_rows() {
        let cfg = FleetConfig {
            tenants: 3,
            threads: 2,
            trace: true,
            ..FleetConfig::default()
        };
        let r = run_fleet(&cfg).unwrap();
        for t in &r.tenants {
            assert!(!t.events.is_empty(), "tenant {} has no events", t.id);
        }
        let json = r.chrome_trace(25.0);
        for id in 0..3 {
            assert!(
                json.contains(&format!("tenant-{id:02}")),
                "missing row label for tenant {id}"
            );
        }
    }
}
