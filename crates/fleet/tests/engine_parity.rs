//! Fleet-level engine bit-exactness: the same fleet run under the
//! interpreter and the superblock engine must produce identical simulated
//! results — per-tenant `StatsSnapshot`s, simulated times, and the
//! thread-count-invariant aggregate fingerprint. Only host-side wall time
//! (and the engines' own cache counters) may differ.

use efex_fleet::{run_fleet, FleetConfig};
use efex_mips::machine::{ExecEngine, MachineConfig};

#[test]
fn superblock_fleet_is_bit_exact_with_interpreter() {
    let cfg = FleetConfig {
        tenants: 10, // every suite twice, distinct seeds
        threads: 2,
        ..FleetConfig::default()
    };
    let interp = run_fleet(&cfg).expect("interpreter fleet");
    let sb = run_fleet(&FleetConfig {
        machine: MachineConfig::default().engine(ExecEngine::Superblock),
        ..cfg
    })
    .expect("superblock fleet");

    assert_eq!(
        interp.fingerprint(),
        sb.fingerprint(),
        "engines must agree on every deterministic result"
    );
    for (a, b) in interp.tenants.iter().zip(&sb.tenants) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.stats, b.stats, "tenant {} StatsSnapshot drifted", a.id);
        assert_eq!(a.micros, b.micros, "tenant {} simulated time drifted", a.id);
    }
}

#[test]
fn superblock_fleet_health_probe_stays_meaningful() {
    // The delivery probe pins the reference interpreter, so decode-cache
    // effectiveness invariants hold no matter which engine tenants run.
    let sb = run_fleet(&FleetConfig {
        tenants: 5,
        threads: 1,
        machine: MachineConfig::default().engine(ExecEngine::Superblock),
        ..FleetConfig::default()
    })
    .expect("superblock fleet");
    let mut mon = sb.health_monitor();
    let findings = mon.finish().to_vec();
    assert!(
        findings.is_empty(),
        "superblock fleet must be healthy:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
