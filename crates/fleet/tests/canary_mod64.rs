//! The health-plane canary: re-introduce the decode cache's historical
//! mod-64 slot-aliasing bug (via the test-only slot-hash hook) and prove the
//! always-on monitor catches it with an actionable finding.
//!
//! The pathology is *architecturally invisible* — every delivery still
//! produces bit-identical results, just slower — which is exactly why it
//! needs a health invariant rather than a correctness test. The hook rides
//! in per-tenant through `MachineConfig::mod64_slots` (the old process-wide
//! switch is deprecated: worker threads raced it).

use efex_fleet::{run_fleet, FleetConfig};
use efex_mips::machine::MachineConfig;

#[test]
fn mod64_slot_aliasing_trips_the_hit_rate_invariant() {
    let cfg = FleetConfig {
        tenants: 5, // one tenant per suite
        threads: 1,
        ..FleetConfig::default()
    };

    // With the pathological slot hash: consecutive code pages alias to the
    // same 64 slots, so the delivery probe's decode cache thrashes.
    let sick = run_fleet(&FleetConfig {
        machine: MachineConfig::default().mod64_slots(true),
        ..cfg
    });
    let sick = sick.expect("aliasing is a performance bug, not a fault");

    let mut mon = sick.health_monitor();
    let findings = mon.finish().to_vec();
    assert!(!mon.healthy(), "the canary must trip the monitor");
    let hit_rate: Vec<_> = findings
        .iter()
        .filter(|f| f.invariant == "decode-cache-hit-rate")
        .collect();
    assert!(
        !hit_rate.is_empty(),
        "expected a decode-cache-hit-rate finding, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    for f in &hit_rate {
        assert!(f.tenant.is_some(), "hit-rate scope is per-tenant");
        // The finding must be actionable: raw operands plus a hint that
        // points at the slot hash.
        assert!(
            f.observed.contains("probe_decode_cache_hits")
                && f.observed.contains("probe_decode_cache_misses"),
            "{}",
            f.observed
        );
        assert!(f.bound.starts_with(">="), "{}", f.bound);
        assert!(
            f.hint.contains("dcache_slot") && f.hint.contains("aliasing"),
            "hint must point at the slot hash: {}",
            f.hint
        );
    }

    // Same fleet with the real slot hash: bit-identical deterministic
    // results (the cache is result-transparent either way), zero findings.
    let green = run_fleet(&cfg).expect("green fleet");
    assert_eq!(
        green.fingerprint(),
        sick.fingerprint(),
        "aliasing must stay architecturally invisible — that's why the \
         health plane exists"
    );
    let mut green_mon = green.health_monitor();
    assert!(
        green_mon.finish().is_empty(),
        "the fixed slot hash must be clean"
    );
}
