//! The efex snapshot wire format: versioned, checksummed, hand-rolled.
//!
//! Every checkpoint artifact in the workspace — machine state, kernel
//! state, whole-system and host-process snapshots, fleet tenant
//! checkpoints, record-replay digest recordings — is framed by this crate:
//!
//! ```text
//! +----------+---------+--------+-------------+----------+
//! | EFEXSNAP | version | flavor | payload     | fnv1a-64 |
//! |  8 bytes |   u32   |   u8   |             |  8 bytes |
//! +----------+---------+--------+-------------+----------+
//! ```
//!
//! The trailing checksum is FNV-1a 64 over everything before it (magic,
//! version, flavor, payload), so truncation and bit corruption are both
//! caught before any field is interpreted. Like `efex-report`'s hand-rolled
//! JSON value parser, the format takes no external dependencies: the build
//! environment is offline, and the paper's reproduction only needs a few
//! fixed-width primitives.
//!
//! Decoding never panics: every failure mode — bad magic, unknown version,
//! wrong flavor, truncation, checksum mismatch, impossible field values —
//! is a typed [`SnapError`]. A proptest in `tests/` mutates valid snapshots
//! byte-by-byte and asserts exactly that.

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// File magic: the first eight bytes of every snapshot artifact.
pub const MAGIC: [u8; 8] = *b"EFEXSNAP";

/// Current wire-format version. Bump on any layout change; readers reject
/// versions they do not know with [`SnapError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// What a snapshot artifact contains. Stored in the header so a restore
/// entry point can reject a structurally valid snapshot of the wrong kind
/// ([`SnapError::FlavorMismatch`]) instead of misinterpreting its payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Flavor {
    /// Bare `efex-mips` machine state (CPU + CP0 + TLB + memory).
    Machine,
    /// Full simulated-kernel state (machine + process + frame allocator).
    Kernel,
    /// An `efex-core` `System` (kernel + delivery-path identity).
    System,
    /// An `efex-core` `HostProcess` (kernel + host-side delivery state).
    Host,
    /// An `efex-fleet` tenant checkpoint (spec + completed leg results).
    Tenant,
    /// A record-replay digest recording (per-step digests at a stride).
    Recording,
}

impl Flavor {
    /// The header tag byte for this flavor.
    pub fn tag(self) -> u8 {
        match self {
            Flavor::Machine => 1,
            Flavor::Kernel => 2,
            Flavor::System => 3,
            Flavor::Host => 4,
            Flavor::Tenant => 5,
            Flavor::Recording => 6,
        }
    }

    /// Decodes a header tag byte.
    pub fn from_tag(tag: u8) -> Option<Flavor> {
        match tag {
            1 => Some(Flavor::Machine),
            2 => Some(Flavor::Kernel),
            3 => Some(Flavor::System),
            4 => Some(Flavor::Host),
            5 => Some(Flavor::Tenant),
            6 => Some(Flavor::Recording),
            _ => None,
        }
    }

    /// Stable lower-case name (shown in errors and tooling).
    pub fn as_str(self) -> &'static str {
        match self {
            Flavor::Machine => "machine",
            Flavor::Kernel => "kernel",
            Flavor::System => "system",
            Flavor::Host => "host",
            Flavor::Tenant => "tenant",
            Flavor::Recording => "recording",
        }
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a snapshot could not be decoded (or, for
/// [`SnapError::Invalid`], could not be applied). Never a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapError {
    /// The artifact does not start with [`MAGIC`].
    BadMagic,
    /// The artifact's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The artifact is a valid snapshot of the wrong kind.
    FlavorMismatch {
        /// What the restore entry point required.
        expected: Flavor,
        /// The tag byte found in the header.
        found: u8,
    },
    /// The artifact ends before the field being read.
    Truncated,
    /// The trailing FNV-1a 64 checksum does not match the content.
    ChecksumMismatch {
        /// Checksum recorded in the artifact.
        stored: u64,
        /// Checksum recomputed over the artifact's content.
        computed: u64,
    },
    /// A field decoded to a value the format forbids (impossible tag,
    /// oversized count, trailing bytes).
    Corrupt(String),
    /// The snapshot decoded cleanly but cannot be applied to the receiver
    /// (wrong memory size, mismatched delivery path, handler in flight).
    Invalid(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not an efex snapshot (bad magic)"),
            SnapError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapError::FlavorMismatch { expected, found } => {
                write!(
                    f,
                    "expected a {expected} snapshot, found flavor tag {found}"
                )
            }
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapError::Invalid(why) => write!(f, "snapshot not applicable: {why}"),
        }
    }
}

impl Error for SnapError {}

/// Streaming FNV-1a 64 digest.
///
/// Used both for the artifact trailing checksum and as the per-step state
/// digest in record-replay (`efex-core`'s divergence bisector): it is
/// deterministic across platforms, cheap enough to run every step, and
/// needs no dependencies.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Folds a `u32` (little-endian) into the digest.
    pub fn write_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut d = Fnv64::new();
    d.update(bytes);
    d.finish()
}

/// Serializes one snapshot artifact: header, then fixed-width fields in
/// call order, then the trailing checksum on [`Writer::finish`].
///
/// ```
/// use efex_snap::{Flavor, Reader, Writer};
/// let mut w = Writer::new(Flavor::Machine);
/// w.u32(0xdead_beef);
/// w.str("hello");
/// let bytes = w.finish();
/// let mut r = Reader::open(&bytes, Flavor::Machine).unwrap();
/// assert_eq!(r.u32().unwrap(), 0xdead_beef);
/// assert_eq!(r.str().unwrap(), "hello");
/// r.done().unwrap();
/// ```
#[derive(Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts an artifact of the given flavor (writes the header).
    pub fn new(flavor: Flavor) -> Writer {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.push(flavor.tag());
        Writer { buf }
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian two's complement.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string (`u32` length + raw bytes).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends the trailing checksum and returns the finished artifact.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Deserializes one snapshot artifact. [`Reader::open`] validates the
/// header and the trailing checksum up front; the field readers then only
/// fail on truncation or forbidden values.
#[derive(Debug)]
pub struct Reader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Validates magic, version, checksum, and flavor, and positions the
    /// reader at the start of the payload.
    ///
    /// # Errors
    ///
    /// Every malformation is a typed [`SnapError`]; this never panics.
    pub fn open(bytes: &'a [u8], expected: Flavor) -> Result<Reader<'a>, SnapError> {
        let tag = Self::open_any(bytes)?;
        if tag != expected.tag() {
            return Err(SnapError::FlavorMismatch {
                expected,
                found: tag,
            });
        }
        Ok(Reader {
            payload: &bytes[..bytes.len() - 8],
            pos: MAGIC.len() + 4 + 1,
        })
    }

    /// Validates everything but the flavor and returns the artifact's
    /// flavor tag byte (tooling that inspects arbitrary snapshots).
    pub fn open_any(bytes: &[u8]) -> Result<u8, SnapError> {
        let header = MAGIC.len() + 4 + 1;
        if bytes.len() < MAGIC.len() {
            return Err(if bytes.starts_with(&MAGIC[..bytes.len()]) {
                SnapError::Truncated
            } else {
                SnapError::BadMagic
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        if bytes.len() < header + 8 {
            return Err(SnapError::Truncated);
        }
        let content = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let computed = fnv64(content);
        if stored != computed {
            return Err(SnapError::ChecksumMismatch { stored, computed });
        }
        let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        Ok(bytes[header - 1])
    }

    /// Bytes of payload not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0 or 1 is [`SnapError::Corrupt`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bool byte {b:#04x}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, SnapError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| SnapError::Corrupt(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a collection count and bounds it against the bytes actually
    /// present (each element needs at least `elem_min_bytes`), so a
    /// corrupted count can never trigger a huge allocation.
    pub fn count(&mut self, elem_min_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_min_bytes.max(1)) > self.remaining() {
            return Err(SnapError::Corrupt(format!(
                "count {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }

    /// Asserts the payload is fully consumed (catches writer/reader drift
    /// and snapshots with appended garbage that happens to re-checksum).
    pub fn done(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Corrupt(format!(
                "{} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = Writer::new(Flavor::Kernel);
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.u32(0x1234_5678);
        w.u64(0xdead_beef_cafe_f00d);
        w.i32(-42);
        w.f64(1.5e-3);
        w.bytes(b"\x00\x01\x02");
        w.str("exception");
        let bytes = w.finish();

        let mut r = Reader::open(&bytes, Flavor::Kernel).unwrap();
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0x1234_5678);
        assert_eq!(r.u64().unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 1.5e-3);
        assert_eq!(r.bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(r.str().unwrap(), "exception");
        r.done().unwrap();
    }

    #[test]
    fn flavor_mismatch_is_typed() {
        let bytes = Writer::new(Flavor::Machine).finish();
        match Reader::open(&bytes, Flavor::Tenant) {
            Err(SnapError::FlavorMismatch { expected, found }) => {
                assert_eq!(expected, Flavor::Tenant);
                assert_eq!(found, Flavor::Machine.tag());
            }
            other => panic!("expected flavor mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corruption_and_truncation_are_typed() {
        let mut w = Writer::new(Flavor::Machine);
        w.u64(7);
        let good = w.finish();

        // Flip one payload bit: checksum mismatch.
        let mut bad = good.clone();
        bad[14] ^= 1;
        assert!(matches!(
            Reader::open(&bad, Flavor::Machine),
            Err(SnapError::ChecksumMismatch { .. })
        ));

        // Cut below the minimum frame: truncated. A longer cut still holding
        // a full header re-checksums over the shifted tail and surfaces as a
        // checksum mismatch — either way, a typed error.
        assert!(matches!(
            Reader::open(&good[..12], Flavor::Machine),
            Err(SnapError::Truncated)
        ));
        assert!(matches!(
            Reader::open(&good[..good.len() - 3], Flavor::Machine),
            Err(SnapError::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Reader::open(&bad, Flavor::Machine),
            Err(SnapError::BadMagic)
        ));

        // Future version (checksum fixed up so the version check is what
        // fires).
        let mut bad = good.clone();
        bad[8] = 99;
        let sum = fnv64(&bad[..bad.len() - 8]);
        let at = bad.len() - 8;
        bad[at..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Reader::open(&bad, Flavor::Machine),
            Err(SnapError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn oversized_count_is_rejected_without_allocating() {
        let mut w = Writer::new(Flavor::Recording);
        w.u32(u32::MAX); // claims 4 billion elements
        let bytes = w.finish();
        let mut r = Reader::open(&bytes, Flavor::Recording).unwrap();
        assert!(matches!(r.count(8), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn digest_matches_reference_vectors() {
        // Classic FNV-1a 64 vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
