//! The composed symbolic pass against the committed dynamic baseline.
//!
//! These tests lock the static per-class deliver/return cycle bounds the
//! whole-image explorer computes for every Table 2 composition, prove they
//! bracket (bit-exactly, where the path is deterministic) the dynamic
//! metrics in `BENCH_baseline.json`, exercise the machine-readable `lint
//! --json` document through `efex-report`'s JSON parser, and regression-test
//! that a path-sensitive protocol bug — a handler restoring a register from
//! the wrong comm-frame slot only on the recursive-exception (branch-delay)
//! path — is rejected with an actionable diagnostic.

use efex_bench::symgate;
use efex_mips::asm::assemble;
use efex_report::jsonval;
use efex_simos::compose::{bench_case, BenchKind};
use efex_simos::layout;
use efex_verify::interproc::Images;
use efex_verify::symex::explore;
use efex_verify::Lint;

const BASELINE: &str = include_str!("../../../BENCH_baseline.json");

/// The static bounds the symbolic explorer must compute for each Table 2
/// row: `(deliver [min, max], return [min, max])`. Derived from the
/// single-issue cycle model over the assembled images — any change to the
/// kernel fast path, the trampoline, the host cost model, or the bench
/// veneers moves these and must be accounted for deliberately.
#[allow(clippy::type_complexity)]
const LOCKED: [(BenchKind, (u64, u64), (u64, u64)); 7] = [
    (BenchKind::UnixBreakpoint, (1250, 1250), (751, 751)),
    (BenchKind::UnixWriteProtect, (1701, 1746), (753, 798)),
    (BenchKind::FastBreakpoint, (125, 125), (45, 45)),
    (BenchKind::FastWriteProtect, (352, 397), (46, 91)),
    (BenchKind::FastSubpage, (452, 497), (46, 91)),
    (BenchKind::FastUnaligned, (94, 94), (13, 13)),
    (BenchKind::HwBreakpoint, (46, 46), (43, 43)),
];

#[test]
fn composed_bounds_are_clean_and_locked() {
    for (kind, deliver, ret) in LOCKED {
        let report = symgate::explore_bench(kind).unwrap();
        assert!(
            report.is_clean(),
            "{}: composed symbolic pass has findings:\n{}",
            kind.row(),
            report
                .findings
                .iter()
                .map(|f| format!("{f}\n"))
                .collect::<String>()
        );
        for s in &report.scenarios {
            assert!(s.reached, "{}: no path reached a handler", s.label);
        }
        let bounds = symgate::row_bounds(&report)
            .unwrap_or_else(|| panic!("{}: no measured path", kind.row()));
        assert_eq!(
            bounds.deliver,
            deliver,
            "{}: deliver bound moved",
            kind.row()
        );
        assert_eq!(bounds.ret, ret, "{}: return bound moved", kind.row());
    }
}

#[test]
fn static_bounds_bracket_the_dynamic_baseline() {
    let gate = symgate::run_gate();
    assert!(
        gate.errors.is_empty(),
        "gate build errors: {:?}",
        gate.errors
    );
    let checks = symgate::crosscheck_baseline(&gate, BASELINE)
        .unwrap_or_else(|e| panic!("baseline cross-check failed:\n{}", e.join("\n")));
    // Both measures of all seven rows must be present and in bounds.
    assert_eq!(checks.len(), 14);
    for c in &checks {
        assert!(
            c.holds(),
            "{}: {} outside {:?}",
            c.metric,
            c.dynamic,
            c.bound
        );
    }
    // Deterministic fast paths cross-check bit-exactly, not just within
    // bounds: the static model reproduces the measured cycle count.
    for exact in [
        "table2/fast-user/breakpoint/deliver_cycles",
        "table2/fast-user/breakpoint/return_cycles",
        "table2/fast-user/unaligned/deliver_cycles",
        "table2/fast-user/unaligned/return_cycles",
        "table2/unix-signals/breakpoint/deliver_cycles",
        "table2/unix-signals/breakpoint/return_cycles",
        "table2/hardware-vectored/breakpoint/deliver_cycles",
        "table2/hardware-vectored/breakpoint/return_cycles",
    ] {
        let c = checks.iter().find(|c| c.metric == exact).unwrap();
        assert!(
            c.exact(),
            "{exact}: expected a tight bound, got {:?}",
            c.bound
        );
        assert_eq!(c.dynamic, c.bound.0, "{exact}: bit-exact check failed");
    }
}

#[test]
fn gate_json_parses_and_reports_clean() {
    let gate = symgate::run_gate();
    let doc = gate.to_json();
    let v = jsonval::parse(&doc).expect("lint --json output must parse");
    assert_eq!(v.get("clean").and_then(|c| c.as_bool()), Some(true));
    let images = v.get("images").and_then(|i| i.as_array()).unwrap();
    // Kernel + trampoline + 7 benches.
    assert_eq!(images.len(), 9);
    for img in images {
        let findings = img.get("findings").and_then(|f| f.as_array()).unwrap();
        assert!(findings.is_empty());
    }
    let symex = v.get("symex").unwrap();
    let benches = symex.get("benches").and_then(|b| b.as_array()).unwrap();
    assert_eq!(benches.len(), 7);
    for (b, (kind, deliver, ret)) in benches.iter().zip(LOCKED) {
        assert_eq!(b.get("row").and_then(|r| r.as_str()), Some(kind.row()));
        let span = |key: &str| {
            let a = b.get(key).and_then(|d| d.as_array()).unwrap();
            (a[0].as_u64().unwrap(), a[1].as_u64().unwrap())
        };
        assert_eq!(span("deliver"), deliver);
        assert_eq!(span("return"), ret);
    }
}

/// A guest handler with a path-sensitive protocol bug: it branches on the
/// BD (branch-delay) bit of the saved Cause word and, only on the BD path,
/// restores `$a1` from the comm frame's `$at` slot. Every individual
/// instruction is well-formed — the classic per-image lints see nothing —
/// but the symbolic explorer forks on the unknown BD bit and catches the
/// wrong-slot restore on the buggy arm.
fn wrong_slot_canary(n: u32) -> String {
    let class = efex_mips::ExcCode::Breakpoint;
    let mask = 1u32 << class.code();
    let frame = class.code() * layout::COMM_FRAME_SIZE;
    let comm = layout::COMM_PAGE_VADDR;
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, uh_entry
    li  $a2, {comm:#x}
    li  $v0, 7              # uexc_enable
    syscall
    li  $s0, {n}
loop:
fault_site:
    break 0
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

uh_entry:
    jal null_handler
    nop
uh_restore:
    lui $k0, {comm_hi:#x}
    lw  $k1, {cause_lo}($k0)    # saved Cause from the comm frame
    srl $k1, $k1, 31            # isolate the BD bit
    beqz $k1, not_bd
    nop
    lw  $a1, {at_lo}($k0)       # BUG: $a1 from the $at slot on the BD path
    b   join
    nop
not_bd:
    lw  $a1, {a1_lo}($k0)       # correct slot
join:
    lw  $at, {at_lo}($k0)
    lw  $a0, {a0_lo}($k0)
    lw  $k1, {epc_lo}($k0)
    addiu $k1, $k1, 4           # skip the break
    jr  $k1
    nop

null_handler:
    nop
null_ret:
    jr  $ra
    nop
"#,
        comm_hi = comm >> 16,
        epc_lo = (comm & 0xffff) + frame + layout::comm::EPC,
        cause_lo = (comm & 0xffff) + frame + layout::comm::CAUSE,
        at_lo = (comm & 0xffff) + frame + layout::comm::AT,
        a0_lo = (comm & 0xffff) + frame + layout::comm::K0,
        a1_lo = (comm & 0xffff) + frame + layout::comm::K1,
    )
}

#[test]
fn wrong_slot_restore_canary_is_rejected() {
    let imgs = symgate::assemble_composed(BenchKind::FastBreakpoint).unwrap();
    let app = assemble(&wrong_slot_canary(4)).unwrap();

    // The classic hazard lints are blind to the bug: every instruction is
    // individually well-formed.
    let mut classic = efex_verify::VerifyConfig::hazards_only(app.entry());
    classic.extra_roots.push(app.symbol("uh_entry").unwrap());
    let classic_report = efex_verify::analyze(&app, &classic).unwrap();
    assert!(
        classic_report.is_clean(),
        "hazard lints should not see the path-sensitive bug:\n{}",
        classic_report.render()
    );

    // The symbolic pass forks on the BD bit and rejects the buggy arm.
    let case = bench_case(
        BenchKind::FastBreakpoint,
        &imgs.kernel,
        &imgs.trampoline,
        &app,
    );
    let images = Images::new(vec![
        ("kernel", &imgs.kernel),
        ("trampoline", &imgs.trampoline),
        ("app", &app),
    ]);
    let report = explore(&images, &case.config, &case.scenarios);
    let finding = report
        .findings
        .iter()
        .find(|f| f.lint == Lint::WrongSlotRestore)
        .unwrap_or_else(|| {
            panic!(
                "expected a wrong-slot-restore finding, got:\n{}",
                report
                    .findings
                    .iter()
                    .map(|f| format!("{f}\n"))
                    .collect::<String>()
            )
        });
    // The diagnostic must be actionable: label-resolved location, source
    // line, and the offending load in the disassembly.
    assert!(
        finding.location.starts_with("uh_restore+"),
        "location {} does not resolve to the handler",
        finding.location
    );
    assert!(finding.line.is_some(), "finding lacks a source line");
    assert!(
        finding.context.contains("lw"),
        "context {} does not show the load",
        finding.context
    );
    assert!(
        finding.message.contains("$a1") || finding.context.contains("$a1"),
        "diagnostic does not name the register: {} / {}",
        finding.message,
        finding.context
    );
}
