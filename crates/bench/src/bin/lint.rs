//! Static lint gate over every guest image the suite executes.
//!
//! ```text
//! lint            analyze all embedded guest images; exit 1 on any finding
//! lint --table    also print the static fast-path instruction/cycle table
//! ```
//!
//! Three classes of image are analyzed:
//!
//! - the **kernel image** (vectors + fast-path handler) under the full
//!   contract from [`efex_simos::verify`]: hazards, save-set liveness,
//!   pinned-memory proof, and the Table 3 instruction budget;
//! - the **signal trampoline** under the hazard lints;
//! - every **microbenchmark program** (including the subpage and
//!   unaligned-emulation stubs) under the hazard lints, rooted at both the
//!   program entry and its user-handler veneer.
//!
//! Diagnostics cite label+offset and the source line, with disassembly, so
//! a regression points straight at the offending instruction.

use efex_core::debug_progs as progs;
use efex_mips::asm::assemble;
use efex_simos::fastexc::KERNEL_ASM;
use efex_simos::kernel::TRAMPOLINE_ASM;
use efex_simos::verify as simverify;
use efex_verify::{Report, VerifyConfig};
use std::process::ExitCode;

/// A benchmark program's exception count only sizes its loop; the static
/// shape is identical for any n.
const BENCH_N: u32 = 4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: lint [--table]");
        return ExitCode::SUCCESS;
    }
    let table = args.iter().any(|a| a == "--table");

    let mut failed = false;
    let mut check = |name: &str, report: &Report| {
        if report.is_clean() {
            println!(
                "lint: {name}: clean ({} instructions analyzed)",
                report.instructions_analyzed
            );
        } else {
            failed = true;
            println!("lint: {name}: {} finding(s)", report.findings.len());
            for f in &report.findings {
                println!("  {f}");
            }
        }
    };

    // Kernel image: full contract.
    let kernel = match assemble(KERNEL_ASM) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("lint: kernel image does not assemble: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kernel_report = simverify::verify_kernel_image(&kernel);
    check("kernel image (KERNEL_ASM)", &kernel_report);

    // Signal trampoline: hazard lints.
    match assemble(TRAMPOLINE_ASM) {
        Ok(p) => check(
            "signal trampoline (TRAMPOLINE_ASM)",
            &simverify::verify_trampoline_image(&p),
        ),
        Err(e) => {
            eprintln!("lint: trampoline does not assemble: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Every microbenchmark guest program: hazard lints, rooted at the
    // program entry plus the user-handler veneer (entered by exception
    // delivery, not by any statically visible jump).
    type BenchGen = fn(u32) -> String;
    let benches: [(&str, BenchGen); 7] = [
        ("fast_simple_bench", progs::fast_simple_bench),
        ("hw_simple_bench", progs::hw_simple_bench),
        ("unix_simple_bench", progs::unix_simple_bench),
        ("fast_prot_bench", progs::fast_prot_bench),
        ("unix_prot_bench", progs::unix_prot_bench),
        ("fast_subpage_bench", progs::fast_subpage_bench),
        (
            "fast_unaligned_specialized_bench",
            progs::fast_unaligned_specialized_bench,
        ),
    ];
    for (name, gen) in benches {
        let src = gen(BENCH_N);
        let prog = match assemble(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("lint: {name} does not assemble: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut config = VerifyConfig::hazards_only(prog.entry());
        for root in ["uh_entry", "null_handler"] {
            if let Some(&addr) = prog.labels().get(root) {
                config.extra_roots.push(addr);
            }
        }
        match efex_verify::analyze(&prog, &config) {
            Ok(report) => check(name, &report),
            Err(e) => {
                eprintln!("lint: {name}: bad config: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if table {
        if let Some(fp) = &kernel_report.fast_path {
            println!("\nstatic fast-path bound (kernel image):");
            println!("  {:<16} {:>12} {:>8}", "phase", "instructions", "cycles");
            for p in &fp.per_phase {
                println!("  {:<16} {:>12} {:>8}", p.label, p.instructions, p.cycles);
            }
            println!(
                "  {:<16} {:>12} {:>8}  (budget {})",
                "total",
                fp.total_instructions,
                fp.total_cycles,
                simverify::FAST_PATH_BUDGET
            );
        }
    }

    if failed {
        println!("lint: FAILED");
        ExitCode::FAILURE
    } else {
        println!("lint: all images clean");
        ExitCode::SUCCESS
    }
}
