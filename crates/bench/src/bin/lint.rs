//! Static verification gate over every guest image the suite executes.
//!
//! ```text
//! lint                     run every static pass; exit 1 on any finding
//! lint --table             also print the static fast-path + bounds tables
//! lint --json              emit one machine-readable JSON document instead
//! lint --baseline PATH     also cross-check static bounds against the
//!                          recorded table2 metrics in PATH
//! ```
//!
//! Three layers of verification run:
//!
//! - **classic per-image lints** ([`efex_verify::analyze`]): the kernel
//!   image under the full contract from [`efex_simos::verify`] (hazards,
//!   save-set liveness, pinned-memory proof, Table 3 budget); the signal
//!   trampoline and every microbenchmark program under the hazard lints;
//! - the **kernel-only symbolic pass** ([`efex_verify::symex`]): every
//!   architecturally raisable exception class explored through the kernel
//!   image under a symbolic registration;
//! - the **composed symbolic pass**: kernel + trampoline + guest program
//!   explored as one control-flow system per Table 2 bench, deep through
//!   the guest handler to the user resume, producing static per-class
//!   deliver/return cycle bounds.
//!
//! With `--baseline`, the static bounds must bracket the dynamic
//! `table2/*` cycle metrics recorded in the committed baseline —
//! bit-exactly where the path is deterministic.
//!
//! Diagnostics cite label+offset and the source line, with disassembly, so
//! a regression points straight at the offending instruction.

use efex_bench::symgate;
use efex_simos::verify as simverify;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: lint [--table] [--json] [--baseline PATH]");
        return ExitCode::SUCCESS;
    }
    let table = args.iter().any(|a| a == "--table");
    let json = args.iter().any(|a| a == "--json");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());

    let gate = symgate::run_gate();
    let mut failed = !gate.clean();

    // Baseline cross-check runs in both output modes; its errors go to
    // stderr so the JSON document on stdout stays parseable.
    let mut crosschecks = Vec::new();
    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => match symgate::crosscheck_baseline(&gate, &text) {
                Ok(checks) => crosschecks = checks,
                Err(errors) => {
                    failed = true;
                    for e in errors {
                        eprintln!("lint: baseline cross-check: {e}");
                    }
                }
            },
            Err(e) => {
                failed = true;
                eprintln!("lint: cannot read baseline {path}: {e}");
            }
        }
    }

    if json {
        println!("{}", gate.to_json());
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    for e in &gate.errors {
        eprintln!("lint: build error: {e}");
    }
    for img in &gate.images {
        if img.report.is_clean() {
            println!(
                "lint: {}: clean ({} instructions analyzed)",
                img.name, img.report.instructions_analyzed
            );
        } else {
            println!(
                "lint: {}: {} finding(s)",
                img.name,
                img.report.findings.len()
            );
            for f in &img.report.findings {
                println!("  {f}");
            }
        }
    }
    if let Some(ko) = &gate.kernel_only {
        if ko.is_clean() {
            println!(
                "lint: symex kernel-only: clean ({} scenarios, {} paths)",
                ko.scenarios.len(),
                ko.paths_explored
            );
        } else {
            println!("lint: symex kernel-only: {} finding(s)", ko.findings.len());
            for f in &ko.findings {
                println!("  {f}");
            }
        }
    }
    for b in &gate.benches {
        if b.report.is_clean() {
            let bounds = match b.bounds {
                Some(rb) => format!(
                    "deliver [{}, {}] return [{}, {}] cycles",
                    rb.deliver.0, rb.deliver.1, rb.ret.0, rb.ret.1
                ),
                None => "no measured path".to_string(),
            };
            println!(
                "lint: symex {}: clean ({} paths, {bounds})",
                b.kind.row(),
                b.report.paths_explored
            );
        } else {
            println!(
                "lint: symex {}: {} finding(s)",
                b.kind.row(),
                b.report.findings.len()
            );
            for f in &b.report.findings {
                println!("  {f}");
            }
        }
    }
    for c in &crosschecks {
        let how = if c.exact() { "bit-exact" } else { "bracketed" };
        println!(
            "lint: baseline {}: dynamic {} within static [{}, {}] ({how})",
            c.metric, c.dynamic, c.bound.0, c.bound.1
        );
    }

    if table {
        let fast_path = gate
            .images
            .iter()
            .find(|i| i.name.starts_with("kernel image"))
            .and_then(|i| i.report.fast_path.as_ref());
        if let Some(fp) = fast_path {
            println!("\nstatic fast-path bound (kernel image):");
            println!("  {:<16} {:>12} {:>8}", "phase", "instructions", "cycles");
            for p in &fp.per_phase {
                println!("  {:<16} {:>12} {:>8}", p.label, p.instructions, p.cycles);
            }
            println!(
                "  {:<16} {:>12} {:>8}  (budget {}/{} instructions/cycles)",
                "total",
                fp.total_instructions,
                fp.total_cycles,
                simverify::FAST_PATH_BUDGET,
                efex_verify::FAST_PATH_CYCLES,
            );
        }
    }

    if failed {
        println!("lint: FAILED");
        ExitCode::FAILURE
    } else {
        println!("lint: all images clean");
        ExitCode::SUCCESS
    }
}
