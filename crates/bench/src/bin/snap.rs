//! Checkpoint/restore and record-replay gate.
//!
//! ```text
//! snap                      run every check below
//! snap --rows               Table 2 delivery rows: snapshot each row's
//!                           guest mid-run, restore through the wire into
//!                           a fresh system, resume; final state must be
//!                           bit-exact under both engines
//! snap --tenants            one tenant workload per app crate: checkpoint
//!                           mid-suite, resume off the wire; merged report
//!                           must match the uninterrupted run
//! snap --bisect             record-replay divergence bisection demo: two
//!                           recordings of the same guest, one perturbed
//!                           mid-run; the bisector must name the exact
//!                           first diverging step with disassembly context
//! ```
//!
//! Everything here is deterministic and gated: any mismatch is a nonzero
//! exit.

use efex_core::replay::{bisect, record, KernelReplay, Recording};
use efex_core::{DeliveryPath, ExceptionKind, System, SystemSnapshot};
use efex_fleet::{advance_tenant, resume_tenant, Suite, TenantCheckpoint, TenantSpec};
use efex_mips::machine::{ExecEngine, MachineConfig};
use efex_simos::RunOutcome;
use std::process::ExitCode;

/// The paper's Table 2 delivery rows (same set the bench tables measure).
const ROWS: &[(DeliveryPath, ExceptionKind)] = &[
    (DeliveryPath::FastUser, ExceptionKind::Breakpoint),
    (DeliveryPath::FastUser, ExceptionKind::WriteProtect),
    (DeliveryPath::FastUser, ExceptionKind::Subpage),
    (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized),
    (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect),
];

fn row_source(path: DeliveryPath, kind: ExceptionKind) -> String {
    use efex_core::debug_progs as progs;
    const ITERS: u32 = 2;
    match (path, kind) {
        (DeliveryPath::FastUser, ExceptionKind::Breakpoint) => progs::fast_simple_bench(ITERS),
        (DeliveryPath::FastUser, ExceptionKind::WriteProtect) => progs::fast_prot_bench(ITERS),
        (DeliveryPath::FastUser, ExceptionKind::Subpage) => progs::fast_subpage_bench(ITERS),
        (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized) => {
            progs::fast_unaligned_specialized_bench(ITERS)
        }
        (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint) => {
            progs::hw_simple_bench(ITERS)
        }
        (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint) => progs::unix_simple_bench(ITERS),
        (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect) => progs::unix_prot_bench(ITERS),
        _ => unreachable!("no benchmark for this row"),
    }
}

fn boot(path: DeliveryPath, engine: ExecEngine) -> Result<System, String> {
    System::builder()
        .delivery(path)
        .machine_config(MachineConfig::default().engine(engine))
        .build()
        .map_err(|e| format!("boot: {e}"))
}

fn load_row(sys: &mut System, path: DeliveryPath, kind: ExceptionKind) -> Result<(), String> {
    let source = row_source(path, kind);
    let prog = sys
        .kernel_mut()
        .load_user_program(&source)
        .map_err(|e| format!("assemble: {e}"))?;
    let sp = sys
        .kernel_mut()
        .setup_stack(16)
        .map_err(|e| format!("stack: {e}"))?;
    if path == DeliveryPath::HardwareVectored {
        let cp0 = sys.kernel_mut().machine_mut().cp0_mut();
        cp0.status |= efex_mips::cp0::status::UXE;
        cp0.uxm = efex_simos::fastexc::FastExcState::allowed_mask();
    }
    sys.kernel_mut().exec(prog.entry(), sp);
    Ok(())
}

fn finish(sys: &mut System) -> Result<(u64, RunOutcome), String> {
    let mut steps = 0u64;
    loop {
        steps += 1;
        match sys.kernel_mut().run_user(1).map_err(|e| e.to_string())? {
            RunOutcome::StepLimit => continue,
            out => return Ok((steps, out)),
        }
    }
}

/// Snapshot each Table 2 row mid-run, restore through the wire, resume;
/// the resumed run's final (digest, cycles, outcome) must equal the
/// uninterrupted run's, under both engines.
fn check_rows() -> Result<bool, String> {
    let mut ok = true;
    for engine in [ExecEngine::Interpreter, ExecEngine::Superblock] {
        for &(path, kind) in ROWS {
            let mut a = boot(path, engine)?;
            load_row(&mut a, path, kind)?;
            let (steps, a_out) = finish(&mut a)?;
            let a_m = a.kernel().machine();
            let a_fp = (a_m.step_digest(), a_m.cycles());

            let mut b = boot(path, engine)?;
            load_row(&mut b, path, kind)?;
            for _ in 0..steps / 2 {
                b.kernel_mut().run_user(1).map_err(|e| e.to_string())?;
            }
            let bytes = b.snapshot().to_bytes();
            let snap = SystemSnapshot::from_bytes(&bytes).map_err(|e| format!("decode: {e}"))?;
            let mut c = boot(path, engine)?;
            c.restore(&snap).map_err(|e| format!("restore: {e}"))?;
            let (_, c_out) = finish(&mut c)?;
            let c_m = c.kernel().machine();
            let c_fp = (c_m.step_digest(), c_m.cycles());
            let row_ok = c_fp == a_fp && c_out == a_out;
            ok &= row_ok;
            println!(
                "snap: {engine:?} {path} {kind:?}: {} bytes at step {}, resume {}",
                bytes.len(),
                steps / 2,
                if row_ok { "bit-exact" } else { "DIVERGED" },
            );
        }
    }
    Ok(ok)
}

/// One tenant per application crate: checkpoint after the first leg,
/// serialize, resume off the wire; the merged report must be bit-identical
/// to the uninterrupted two-leg run.
fn check_tenants() -> Result<bool, String> {
    let mut ok = true;
    for (i, suite) in Suite::ALL.iter().enumerate() {
        let spec = TenantSpec {
            id: i as u32,
            suite: *suite,
            seed: 0x5eed_0000 + i as u64,
            machine: MachineConfig::default(),
        };
        let whole =
            efex_fleet::run_tenant_legged(spec, 2, false, false).map_err(|e| e.to_string())?;
        let mut ckpt = TenantCheckpoint::initial(spec, 2);
        advance_tenant(&mut ckpt, 1).map_err(|e| e.to_string())?;
        let bytes = ckpt.to_bytes();
        let back = TenantCheckpoint::from_bytes(&bytes).map_err(|e| e.to_string())?;
        let resumed = resume_tenant(&back, false, false).map_err(|e| e.to_string())?;
        let t_ok =
            resumed.micros.to_bits() == whole.micros.to_bits() && resumed.stats == whole.stats;
        ok &= t_ok;
        println!(
            "snap: tenant {suite}: {} byte checkpoint after leg 1, resume {}",
            bytes.len(),
            if t_ok { "bit-exact" } else { "DIVERGED" },
        );
    }
    Ok(ok)
}

fn breakpoint_replay(perturb_at: Option<u64>) -> KernelReplay {
    let replay = KernelReplay::new(|| {
        let mut sys = boot(DeliveryPath::FastUser, ExecEngine::Interpreter)
            .map_err(efex_core::CoreError::Invalid)?;
        load_row(&mut sys, DeliveryPath::FastUser, ExceptionKind::Breakpoint)
            .map_err(efex_core::CoreError::Invalid)?;
        // The replay driver owns the kernel, not the System shell; the
        // measurement plane is host-side and irrelevant to replay.
        Ok(sys.into_kernel())
    });
    match perturb_at {
        None => replay,
        Some(at) => replay.with_hook(move |step, kernel| {
            if step == at {
                // Corrupt the multiply/divide LO register mid-run: the
                // canonical "cosmic ray" a divergence bisection hunts
                // down. LO is architectural state the digest covers, but
                // this guest never reads it — the corruption persists to
                // the end of the run without changing control flow, which
                // is exactly the hardest kind of divergence to locate by
                // eye.
                let cpu = kernel.machine_mut().cpu_mut();
                let lo = cpu.lo();
                cpu.set_lo(lo ^ 0xdead_beef);
            }
        }),
    }
}

/// Record two runs of the same guest — one perturbed at a known step —
/// and demand the bisector find that exact step.
fn check_bisect() -> Result<bool, String> {
    const STRIDE: u64 = 32;
    const PERTURB_AT: u64 = 150;
    let mut clean = breakpoint_replay(None);
    let mut dirty = breakpoint_replay(Some(PERTURB_AT));
    let rec_a = record(&mut clean, STRIDE, 1_000_000).map_err(|e| e.to_string())?;
    let rec_b = record(&mut dirty, STRIDE, 1_000_000).map_err(|e| e.to_string())?;

    // Recordings are serializable artifacts: round-trip them before use.
    let rec_a = Recording::from_bytes(&rec_a.to_bytes()).map_err(|e| e.to_string())?;
    let rec_b = Recording::from_bytes(&rec_b.to_bytes()).map_err(|e| e.to_string())?;

    let d = bisect(&rec_a, &rec_b, &mut clean, &mut dirty)
        .map_err(|e| e.to_string())?
        .ok_or("perturbed run did not diverge")?;
    print!("snap: bisect: {d}");
    let ok = d.step == PERTURB_AT;
    if !ok {
        println!(
            "snap: bisect FAILED: expected first divergence at step {PERTURB_AT}, got {}",
            d.step
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: snap [--rows] [--tenants] [--bisect]");
        return ExitCode::SUCCESS;
    }
    let all = args.is_empty();
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    let mut ok = true;
    if want("--rows") {
        match check_rows() {
            Ok(pass) => ok &= pass,
            Err(e) => {
                eprintln!("snap: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if want("--tenants") {
        match check_tenants() {
            Ok(pass) => ok &= pass,
            Err(e) => {
                eprintln!("snap: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if want("--bisect") {
        match check_bisect() {
            Ok(pass) => ok &= pass,
            Err(e) => {
                eprintln!("snap: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ok {
        println!("snap: all checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
