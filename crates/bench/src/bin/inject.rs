//! Fault-injection matrix gate.
//!
//! ```text
//! inject --list            list every scenario with its specified behavior
//! inject --all             run the full matrix under the default seed
//! inject <id> [<id>...]    run specific scenarios
//! inject --seed <n> ...    override the matrix seed (decimal or 0x hex)
//! ```
//!
//! Every scenario perturbs one delivery-path invariant (see
//! [`efex_inject`]) and asserts bit-exact recovery or the specified
//! degradation. Each scenario runs twice per invocation and the two
//! observations must match field-for-field — including cycle counts — so a
//! nondeterministic delivery path fails the gate even when both runs
//! individually pass. Exit status 1 on any failure; never a host panic.

use efex_inject::{find, run_one, scenarios, InjectError, ScenarioReport, DEFAULT_SEED};
use std::process::ExitCode;

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn print_report(r: &ScenarioReport) {
    println!(
        "inject: {:<30} ok  [{}]  outcome={} fast={} unix={} degraded={} cycles={}",
        r.id,
        r.expect,
        r.observed.outcome,
        r.observed.fast_delivered,
        r.observed.signals_delivered,
        r.observed.degraded_deliveries,
        r.observed.cycles,
    );
    if let Some(diag) = &r.observed.diagnostic {
        println!("inject: {:<30}     diagnostic: {diag}", "");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: inject [--seed <n>] --list | --all | <scenario-id>...");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut seed = DEFAULT_SEED;
    let mut list = false;
    let mut all = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--all" => all = true,
            "--seed" => {
                let Some(v) = it.next().as_deref().and_then(parse_seed) else {
                    eprintln!("inject: --seed needs a decimal or 0x-hex value");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            id => ids.push(id.to_string()),
        }
    }

    if list {
        for s in scenarios() {
            println!("{:<30} [{}] {}", s.id, s.expect, s.summary);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&'static efex_inject::Scenario> = if all {
        scenarios().iter().collect()
    } else {
        let mut v = Vec::new();
        for id in &ids {
            match find(id) {
                Some(s) => v.push(s),
                None => {
                    eprintln!("inject: unknown scenario {id:?} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };

    let mut failures: Vec<InjectError> = Vec::new();
    for s in selected {
        match run_one(s, seed) {
            Ok(report) => print_report(&report),
            Err(e) => {
                println!("inject: {:<30} FAILED: {}", e.id, e.reason);
                failures.push(e);
            }
        }
    }

    if failures.is_empty() {
        println!("inject: matrix clean (seed {seed:#x})");
        ExitCode::SUCCESS
    } else {
        println!("inject: {} scenario(s) failed", failures.len());
        ExitCode::FAILURE
    }
}
