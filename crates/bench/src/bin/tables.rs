//! Regenerates every table and figure of the paper on the simulator.
//!
//! ```text
//! tables [--table1] [--table2] [--table3] [--table4] [--table5]
//!        [--fig3] [--fig4] [--dsm] [--health] [--all] [--trace-json]
//! ```
//!
//! With no arguments, prints everything. Output is paper-value vs measured
//! wherever the paper reports a number. `--trace-json` instead emits one
//! JSON document of exception-lifecycle metrics (per-path, per-class
//! delivery/handler/return cycle histograms) collected from the guest
//! microbenchmarks and a host-level barrier workload.

use efex_bench::suite::GUEST_MATRIX;
use efex_core::{
    DeliveryPath, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot, Protection, System,
};
use efex_trace::{Metrics, Snapshot};
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--trace-json") {
        trace_json();
        return;
    }
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag || a == "--all");

    if want("--table1") {
        table1();
    }
    if want("--table2") {
        table2();
    }
    if want("--table3") {
        table3();
    }
    if want("--table4") {
        table4();
    }
    if want("--table5") {
        table5();
    }
    if want("--fig3") {
        fig3();
    }
    if want("--fig4") {
        fig4();
    }
    if want("--dsm") {
        dsm();
    }
    if want("--health") {
        health();
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Runs the Table-2 microbenchmark matrix plus a host-level write-barrier
/// loop on every path, and prints the merged lifecycle metrics as JSON.
fn trace_json() {
    let mut guest = Metrics::new();
    for (path, kind) in GUEST_MATRIX {
        let mut sys = System::builder().delivery(path).build().expect("boot");
        sys.measure_null_roundtrip(kind).expect("microbenchmark");
        guest.merge(sys.trace_metrics());
    }

    let mut host_metrics = Metrics::new();
    let mut host_stats = Vec::new();
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        let mut h = HostProcess::builder().delivery(path).build().expect("boot");
        let base = h.alloc_region(4096, Prot::ReadWrite).expect("region");
        h.store_u32(base, 0).expect("touch");
        h.set_handler(HandlerSpec::new(|ctx, info| {
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .expect("amplify");
            HandlerAction::Retry
        }));
        for round in 0..8u32 {
            h.protect(Protection::region(base, 4096).read_only())
                .expect("protect");
            h.store_u32(base + 4 * round, round)
                .expect("faulting store");
        }
        host_metrics.merge(h.trace_metrics());
        host_stats.push(h.stats().snapshot().to_json());
    }

    println!(
        "{{\"guest\":{},\"host\":{},\"host_stats\":[{}]}}",
        guest.to_json(),
        host_metrics.to_json(),
        host_stats.join(",")
    );
}

fn table1() {
    banner("Table 1: exception delivery on conventional systems (modeled)");
    println!(
        "{:<44} {:>10} {:>10} {:>9} {:>11}",
        "system", "simple us", "wprot us", "ret us", "roundtrip"
    );
    for r in efex_bench::table1() {
        println!(
            "{:<44} {:>10.0} {:>10.0} {:>9.0} {:>11.0}",
            r.system, r.deliver_simple_us, r.deliver_write_prot_us, r.return_us, r.round_trip_us
        );
    }
    println!("anchors from the paper: Ultrix ~80, Mach/UX ~2000, raw Mach 256, SunOS 69 (best)");
}

fn table2() {
    banner("Table 2: fast exceptions vs Ultrix signals (measured on the simulator)");
    let rows = efex_bench::table2().expect("microbenchmarks");
    println!(
        "{:<48} {:>9} {:>11} {:>10} {:>12}",
        "operation", "fast us", "paper fast", "unix us", "paper unix"
    );
    for r in rows {
        let unix = r.unix_us.map_or("-".to_string(), |v| format!("{v:.1}"));
        let punix = r
            .paper_unix_us
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        println!(
            "{:<48} {:>9.1} {:>11.0} {:>10} {:>12}",
            r.operation, r.fast_us, r.paper_fast_us, unix, punix
        );
    }
}

fn table3() {
    banner("Table 3: kernel fast-path handler instruction counts (measured)");
    let rows = efex_bench::table3().expect("profile");
    println!("{:<28} {:>9} {:>7}", "phase", "measured", "paper");
    let (mut m, mut p) = (0, 0);
    for r in rows {
        println!(
            "{:<28} {:>9} {:>7}",
            r.name, r.measured_instructions, r.paper_instructions
        );
        m += r.measured_instructions;
        p += r.paper_instructions;
    }
    println!("{:<28} {:>9} {:>7}", "total", m, p);
    println!("(our handler is smaller because the comm page is addressed via its");
    println!(" unmapped KSEG0 alias, removing the paper's TLB-miss-protection saves)");
}

fn table4() {
    banner("Table 4: generational GC, SIGSEGV+mprotect vs fast exceptions (measured)");
    let rows = efex_bench::table4(efex_bench::Table4Scale::default()).expect("workloads");
    println!(
        "{:<18} {:>12} {:>12} {:>8} {:>9} {:>11}",
        "application", "sigsegv us", "fast us", "improv%", "paper%", "faults"
    );
    for r in rows {
        println!(
            "{:<18} {:>12.0} {:>12.0} {:>7.1}% {:>8.0}% {:>11}",
            r.application,
            r.sigsegv_us,
            r.fast_us,
            r.improvement_pct,
            r.paper_improvement_pct,
            r.faults
        );
    }
}

fn table5() {
    banner("Table 5: break-even exception cost vs software checks (analytic)");
    println!(
        "{:<14} {:>13} {:>22} {:>22}",
        "application", "breakeven us", "fast(18us) beats checks", "ultrix(80us) beats"
    );
    for r in efex_bench::table5() {
        println!(
            "{:<14} {:>13.1} {:>22} {:>22}",
            r.application, r.breakeven_us, r.fast_wins, r.ultrix_wins
        );
    }
}

fn fig3() {
    banner("Figure 3: swizzling checks vs exceptions — breakeven uses per pointer");
    let (ultrix, fast) = efex_bench::figure3_curves();
    println!(
        "{:>8} {:>16} {:>16}",
        "c (cyc)", "ultrix breakeven", "fast breakeven"
    );
    for (u, f) in ultrix.iter().zip(&fast).step_by(3) {
        println!(
            "{:>8.0} {:>16.1} {:>16.1}",
            u.check_cycles, u.breakeven_uses, f.breakeven_uses
        );
    }
    println!("\nmeasured companion points (simulated us for the same workload):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "u", "checks", "fast exc", "signal exc"
    );
    for m in efex_bench::figure3_measured(&[1, 5, 20, 60]).expect("measure") {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0}",
            m.uses_per_pointer, m.checks_us, m.fast_exceptions_us, m.signal_exceptions_us
        );
    }
}

fn fig4() {
    banner("Figure 4: eager vs lazy swizzling — breakeven used-fraction (pn = 50)");
    let (ultrix, fast) = efex_bench::figure4_curves();
    println!("{:>9} {:>18} {:>18}", "s (us)", "ultrix frac", "fast frac");
    for (u, f) in ultrix.iter().zip(&fast).step_by(5) {
        println!(
            "{:>9.1} {:>18.2} {:>18.2}",
            u.swizzle_us, u.breakeven_fraction, f.breakeven_fraction
        );
    }
    println!("\nmeasured companion points (fast path, simulated us per traversal):");
    println!("{:>10} {:>12} {:>12}", "pu (of 50)", "eager", "lazy");
    for m in efex_bench::figure4_measured(&[2, 10, 25, 50]).expect("measure") {
        println!(
            "{:>10} {:>12.0} {:>12.0}",
            m.pointers_used, m.eager_us, m.lazy_us
        );
    }
}

/// The health-plane exhibit: a small fleet run under the always-on monitor,
/// with the headline effectiveness metrics and every invariant verdict.
fn health() {
    use efex_fleet::{run_fleet, FleetConfig};

    banner("Extension: health plane — fleet effectiveness invariants (measured)");
    let cfg = FleetConfig {
        tenants: 10,
        threads: 2,
        ..FleetConfig::default()
    };
    let report = run_fleet(&cfg).expect("fleet");
    let mut mon = report.health_monitor();
    let findings = mon.finish().to_vec();
    let reg = mon.registry_ref();
    let g = |name: &str| reg.get("tenant-health", None, name).unwrap_or(0);
    println!(
        "decode cache (delivery probes): {} hits / {} misses / {} evictions",
        g("probe_decode_cache_hits"),
        g("probe_decode_cache_misses"),
        g("probe_decode_cache_evictions"),
    );
    println!(
        "repairs: {} utlb, {} comm-page; degraded deliveries: {}",
        g("utlb_repairs"),
        g("comm_page_repairs"),
        g("degraded_deliveries"),
    );
    println!(
        "trace rings: {} events pushed, {} overwritten",
        g("probe_ring_total_pushed"),
        g("probe_ring_overwritten"),
    );
    if let Some(fp) = &report.fast_path {
        println!(
            "fast path: measured {} instructions vs static bound {} instructions / {} cycles",
            fp.total_measured_instructions, fp.static_instructions, fp.static_cycles,
        );
    }
    println!(
        "invariants: {} checked over {} evaluations -> {} findings",
        mon.invariants().len(),
        mon.evaluations(),
        findings.len(),
    );
    for f in &findings {
        println!("{f}");
    }
}

fn dsm() {
    banner("Extension: DSM ping-pong under each delivery path (measured)");
    println!("{:>20} {:>12} {:>8}", "path", "total us", "faults");
    for r in efex_bench::dsm_comparison(40).expect("dsm") {
        println!(
            "{:>20} {:>12.0} {:>8}",
            r.path.to_string(),
            r.total_us,
            r.faults
        );
    }
}
