//! Perf-baseline recorder, regression checker, and trace exporter.
//!
//! ```text
//! report --record [FILE]              run the canonical suite, write FILE
//!                                     (default BENCH_baseline.json)
//! report --check FILE [--tol PCT]     re-run the suite, diff against FILE;
//!                                     exits 1 on drift (PCT: relative
//!                                     tolerance for derived metrics, default 1)
//! report --chrome [FILE]              Chrome trace-event JSON of the fast-path
//!                                     microbenchmarks (default efex_trace.json,
//!                                     "-" for stdout); load in Perfetto
//! report --flame [FILE]               folded stacks of the Table 3 region
//!                                     profile (default efex_fastpath.folded,
//!                                     "-" for stdout); feed to flamegraph.pl
//! report                              summary: delivery quantiles + ring stats
//! ```
//!
//! `--engine interpreter|superblock` runs the suite under the given machine
//! execution engine (default interpreter). Both engines must produce the
//! same recorded metrics, so `--check FILE --engine superblock` against the
//! interpreter-recorded baseline is the bit-exactness gate for the
//! superblock engine — no re-record allowed.
//!
//! All numbers are simulated cycles — deterministic across runs and hosts —
//! so `--check` against a committed baseline is a meaningful CI gate: any
//! change to cost constants, the guest kernel, or workload behavior shows up
//! as a per-metric diff.

use efex_bench::suite;
use efex_core::System;
use efex_mips::machine::{with_machine_config, ExecEngine, MachineConfig};
use efex_report::{compare, Baseline, DEFAULT_TOLERANCE};
use efex_trace::{RingSink, Snapshot};
use std::process::ExitCode;
use std::rc::Rc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("report: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    // The value after a flag, unless it is itself a flag (then the default).
    let target = |flag: &str, default: &str| -> String {
        match flag_value(flag) {
            Some(v) if !v.starts_with("--") => v.to_string(),
            _ => default.to_string(),
        }
    };

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!(
            "usage: report [--record [FILE]] [--check FILE [--tol PCT]]\n\
             \x20             [--chrome [FILE]] [--flame [FILE]]\n\
             \x20             [--engine interpreter|superblock]\n"
        );
        return Ok(ExitCode::SUCCESS);
    }

    let engine = match flag_value("--engine") {
        Some(name) => {
            ExecEngine::parse(name).ok_or_else(|| format!("bad --engine value {name:?}"))?
        }
        None => ExecEngine::Interpreter,
    };
    // Every machine the suite constructs (the builders construct them
    // internally) inherits the selected engine; the binary is
    // single-threaded, so one scope covers the whole run.
    let run_suite = || {
        with_machine_config(
            MachineConfig::default().engine(engine),
            suite::record_baseline,
        )
    };

    if args.iter().any(|a| a == "--record") {
        if engine != ExecEngine::Interpreter {
            return Err("--record uses the reference interpreter; \
                        check other engines against it with --check --engine"
                .into());
        }
        let path = target("--record", "BENCH_baseline.json");
        let baseline = run_suite()?;
        std::fs::write(&path, baseline.to_json())?;
        println!("recorded {} metrics to {path}", baseline.metrics.len());
        return Ok(ExitCode::SUCCESS);
    }

    if args.iter().any(|a| a == "--check") {
        let path = flag_value("--check")
            .filter(|v| !v.starts_with("--"))
            .ok_or("--check requires a baseline file")?;
        let tolerance = match flag_value("--tol") {
            Some(pct) => {
                pct.parse::<f64>()
                    .map_err(|_| format!("bad --tol value {pct:?}"))?
                    / 100.0
            }
            None => DEFAULT_TOLERANCE,
        };
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = Baseline::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let current = run_suite()?;
        let report = compare(&baseline, &current, tolerance);
        let verbose = args.iter().any(|a| a == "--verbose");
        print!("{}", report.render_table(verbose));
        return if report.passed() {
            println!("baseline check PASSED against {path} (engine: {engine})");
            Ok(ExitCode::SUCCESS)
        } else {
            println!(
                "baseline check FAILED against {path} — if the change is intended, \
                 re-record with `report --record {path}` and commit the diff"
            );
            Ok(ExitCode::FAILURE)
        };
    }

    if args.iter().any(|a| a == "--chrome") {
        let path = target("--chrome", "efex_trace.json");
        let json = suite::chrome_trace_fastpath()?;
        return write_artifact(
            &path,
            &json,
            "Chrome trace (open in Perfetto or chrome://tracing)",
        );
    }

    if args.iter().any(|a| a == "--flame") {
        let path = target("--flame", "efex_fastpath.folded");
        let folded = suite::folded_fastpath()?;
        return write_artifact(
            &path,
            &folded,
            "folded stacks (flamegraph.pl or inferno-flamegraph reads this)",
        );
    }

    summary()?;
    Ok(ExitCode::SUCCESS)
}

fn write_artifact(
    path: &str,
    content: &str,
    what: &str,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    if path == "-" {
        print!("{content}");
    } else {
        std::fs::write(path, content)?;
        println!("wrote {what} to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Default mode: run the delivery matrix with tracing on and print the
/// per-(path, class) latency quantiles plus event-ring occupancy.
fn summary() -> Result<(), Box<dyn std::error::Error>> {
    println!("delivery-path latency quantiles (simulated cycles):\n");
    println!(
        "{:<44} {:>8} {:>8} {:>8} {:>8}",
        "path/class/phase", "count", "p50", "p90", "p99"
    );
    let ring = Rc::new(RingSink::with_capacity(1024));
    let mut merged = efex_trace::Metrics::new();
    for (path, kind) in suite::GUEST_MATRIX {
        let mut sys = System::builder()
            .delivery(path)
            .trace_sink(ring.clone())
            .build()?;
        sys.measure_null_roundtrip(kind)?;
        merged.merge(sys.trace_metrics());
    }
    let snap = merged.snapshot();
    // Quantile counters come in (count, deliver_*, handler_*) groups keyed
    // by path/class; print the deliver phase per key.
    for (path, class, k) in merged.iter_nonempty() {
        for (phase, h) in [("deliver", &k.deliver), ("handler", &k.handler)] {
            if h.is_empty() {
                continue;
            }
            println!(
                "{:<44} {:>8} {:>8} {:>8} {:>8}",
                format!("{path}/{class}/{phase}"),
                k.count,
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0)
            );
        }
    }
    println!(
        "\ntotal faults observed: {}",
        snap.get("total_faults").unwrap_or(0)
    );
    let ring_snap = ring.snapshot();
    println!(
        "event ring: {} buffered / {} capacity, {} pushed, {} dropped",
        ring_snap.get("buffered").unwrap_or(0),
        ring_snap.get("capacity").unwrap_or(0),
        ring_snap.get("total_pushed").unwrap_or(0),
        ring_snap.get("dropped").unwrap_or(0)
    );
    println!("\nrun with --record/--check/--chrome/--flame for artifacts (see --help)");
    Ok(())
}
