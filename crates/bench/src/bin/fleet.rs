//! Multi-tenant fleet runner: scaling exhibit and determinism gate.
//!
//! ```text
//! fleet --tenants 64 --threads 4        one run, aggregate summary
//! fleet ... --check-determinism         re-run on one thread; the fleet
//!                                       fingerprints must match bit-exactly
//! fleet ... --sweep                     scaling table across 1/2/4/8 threads
//! fleet ... --decode-cache              single-thread wall time with the
//!                                       decode cache on vs off (results
//!                                       must be bit-identical)
//! fleet ... --engine superblock         run every tenant under the given
//!                                       execution engine (interpreter is
//!                                       the default; results identical)
//! fleet ... --throughput                interpreter-vs-superblock guest
//!                                       Mips A/B exhibit (printed, never
//!                                       gated on wall time)
//! fleet ... --chrome <path>             per-tenant Chrome-trace rows
//! fleet ... --seed <n>                  override the fleet base seed
//! fleet ... --health                    evaluate the fleet invariant set;
//!                                       nonzero exit on any finding, and
//!                                       the health-on/off fingerprints
//!                                       must match (health observes, it
//!                                       never perturbs)
//! fleet ... --metrics-out <path>        write the health registry —
//!                                       Prometheus text for `.prom`,
//!                                       JSONL for `.jsonl`
//! fleet ... --migrate                   live-migration drill: checkpoint
//!                                       every tenant mid-suite, resume it
//!                                       on a different worker shard; the
//!                                       aggregate fingerprint must match
//!                                       the uninterrupted run
//! fleet ... --kill-shard <n>            crash-recovery drill: kill shard
//!                                       n mid-run, restore its tenants
//!                                       from their last checkpoints on the
//!                                       survivors; fingerprint must match
//! ```
//!
//! Simulated results (stats, cycle-derived times, histograms) are
//! deterministic and gated; wall-clock numbers are printed for the scaling
//! exhibits but never asserted — CI machines differ.

use efex_fleet::{run_fleet, run_fleet_kill_shard, run_fleet_migrate, FleetConfig, FleetReport};
use efex_mips::cycles::CLOCK_MHZ;
use efex_mips::machine::{ExecEngine, MachineConfig};
use std::process::ExitCode;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn print_summary(r: &FleetReport) {
    println!(
        "fleet: {} tenants on {} thread(s): simulated {:.1} ms, wall {:.0} ms",
        r.tenants.len(),
        r.threads,
        r.total_micros / 1000.0,
        r.wall_seconds * 1000.0,
    );
    let us = |v: Option<u64>| v.unwrap_or(0) as f64 / 1000.0;
    println!(
        "fleet: {} deliveries ({:.0}/wall-sec), tenant latency p50={:.0}us p90={:.0}us p99={:.0}us",
        r.deliveries(),
        r.deliveries_per_wall_sec(),
        us(r.latency.p50()),
        us(r.latency.p90()),
        us(r.latency.p99()),
    );
}

fn check_determinism(cfg: &FleetConfig) -> Result<bool, efex_fleet::FleetError> {
    let many = run_fleet(cfg)?;
    let one = run_fleet(&FleetConfig { threads: 1, ..*cfg })?;
    if many.fingerprint() == one.fingerprint() {
        println!(
            "fleet: determinism ok — threads={} and threads=1 fingerprints identical",
            cfg.threads
        );
        Ok(true)
    } else {
        eprintln!(
            "fleet: DETERMINISM FAILURE — threads={} and threads=1 disagree",
            cfg.threads
        );
        eprintln!("--- threads={} ---\n{}", cfg.threads, many.fingerprint());
        eprintln!("--- threads=1 ---\n{}", one.fingerprint());
        Ok(false)
    }
}

fn sweep(cfg: &FleetConfig) -> Result<bool, efex_fleet::FleetError> {
    println!(
        "fleet: scaling sweep, {} tenants (seed {:#x}, engine {})",
        cfg.tenants, cfg.base_seed, cfg.machine.engine,
    );
    println!("  threads    wall-ms    speedup    deliveries/sec");
    let mut base_wall = None;
    for threads in [1usize, 2, 4, 8] {
        let r = run_fleet(&FleetConfig { threads, ..*cfg })?;
        let wall_ms = r.wall_seconds * 1000.0;
        let base = *base_wall.get_or_insert(r.wall_seconds);
        println!(
            "  {threads:>7} {wall_ms:>10.1} {:>9.2}x {:>17.0}",
            base / r.wall_seconds,
            r.deliveries_per_wall_sec(),
        );
    }
    // The engine A/B half of the exhibit: same fleet under both engines
    // (bit-exactness gated), plus the hot-loop guest-Mips ratio (printed,
    // never gated — wall time depends on the CI box).
    let interp = run_fleet(&FleetConfig {
        machine: cfg.machine.engine(ExecEngine::Interpreter),
        ..*cfg
    })?;
    let sb = run_fleet(&FleetConfig {
        machine: cfg.machine.engine(ExecEngine::Superblock),
        ..*cfg
    })?;
    println!(
        "fleet: engine A/B: interpreter {:.1} ms wall vs superblock {:.1} ms wall ({:.2}x)",
        interp.wall_seconds * 1000.0,
        sb.wall_seconds * 1000.0,
        interp.wall_seconds / sb.wall_seconds,
    );
    throughput_exhibit();
    if interp.fingerprint() == sb.fingerprint() {
        println!("fleet: engines are bit-exact (fingerprints identical)");
        Ok(true)
    } else {
        eprintln!("fleet: ENGINE MISMATCH — interpreter/superblock fingerprints disagree");
        Ok(false)
    }
}

/// Simulated-guest instruction throughput (million instructions per wall
/// second) of a TLB-mapped 64-instruction loop — the code shape the decode
/// and superblock caches exist for: hot text refetched far more often than
/// it changes. The machine builds from `mcfg`, so one helper serves the
/// decode-cache and execution-engine A/B exhibits.
fn guest_throughput(mcfg: MachineConfig, steps: u64) -> f64 {
    use efex_mips::encode::encode;
    use efex_mips::isa::{Instruction, Reg};
    use efex_mips::machine::{Machine, StopReason};
    use efex_mips::tlb::TlbEntry;

    let mut m = Machine::with_config(1 << 20, mcfg);
    let base = 0x0010_0000u32;
    let pfn = 4u32;
    // A realistically loaded TLB, so the uncached fetch pays a real walk.
    for i in 0..48u32 {
        m.tlb_mut().write(
            i as usize,
            TlbEntry {
                vpn: (base >> 12) + i,
                asid: 0,
                pfn: pfn + i,
                valid: true,
                dirty: true,
                global: false,
                user_modifiable: true,
            },
        );
    }
    let mut prog = Vec::new();
    for i in 0..63 {
        prog.push(encode(Instruction::Addiu {
            rt: Reg::from_field(8 + (i % 8)),
            rs: Reg::from_field(8 + (i % 8)),
            imm: 1,
        }));
    }
    prog.push(encode(Instruction::J {
        target: (base & 0x0fff_ffff) >> 2,
    }));
    prog.push(encode(Instruction::NOP));
    for (i, w) in prog.iter().enumerate() {
        m.mem_mut()
            .write_u32((pfn << 12) + 4 * i as u32, *w)
            .unwrap();
    }
    m.cpu_mut().pc = base;
    m.cpu_mut().next_pc = base.wrapping_add(4);
    let t0 = std::time::Instant::now();
    let stop = m.run(steps).expect("throughput loop must not fault");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(stop, StopReason::StepLimit, "loop must run its full budget");
    steps as f64 / elapsed / 1e6
}

/// The interpreter-vs-superblock guest-Mips exhibit: printed, never gated —
/// wall time depends on the host. Returns the speedup ratio.
fn throughput_exhibit() -> f64 {
    let interp_cfg = MachineConfig::default();
    let sb_cfg = MachineConfig::default().engine(ExecEngine::Superblock);
    guest_throughput(interp_cfg, 500_000); // warm
    guest_throughput(sb_cfg, 500_000);
    let interp = guest_throughput(interp_cfg, 4_000_000);
    let sb = guest_throughput(sb_cfg, 4_000_000);
    println!(
        "fleet: guest throughput {interp:.1} Mips interpreter vs {sb:.1} Mips superblock ({:.2}x)",
        sb / interp,
    );
    sb / interp
}

fn decode_cache_compare(cfg: &FleetConfig) -> Result<bool, efex_fleet::FleetError> {
    let single = FleetConfig {
        threads: 1,
        trace: false,
        ..*cfg
    };
    // Warm once so allocator/page-cache effects don't favour either side.
    run_fleet(&single)?;
    let on = run_fleet(&single)?;
    // Per-tenant machine config — no process-global toggling, so this A/B
    // stays sound even if other fleets run concurrently in-process.
    let off = run_fleet(&FleetConfig {
        machine: single.machine.decode_cache(false),
        ..single
    })?;
    println!(
        "fleet: decode cache on  {:>8.1} ms wall",
        on.wall_seconds * 1000.0
    );
    println!(
        "fleet: decode cache off {:>8.1} ms wall ({:.2}x slower)",
        off.wall_seconds * 1000.0,
        off.wall_seconds / on.wall_seconds,
    );
    guest_throughput(MachineConfig::default(), 500_000); // warm
    let thr_on = guest_throughput(MachineConfig::default(), 4_000_000);
    let thr_off = guest_throughput(MachineConfig::default().decode_cache(false), 4_000_000);
    println!(
        "fleet: guest throughput {:.1} Mips cached vs {:.1} Mips uncached ({:.2}x)",
        thr_on,
        thr_off,
        thr_on / thr_off,
    );
    // The cache must never change simulated results, only wall time.
    if on.fingerprint() == off.fingerprint() {
        println!("fleet: decode cache is result-transparent (fingerprints identical)");
        Ok(true)
    } else {
        eprintln!("fleet: DECODE CACHE CHANGED RESULTS — on/off fingerprints disagree");
        Ok(false)
    }
}

/// The `--health` exhibit: evaluate the fleet invariant set, print every
/// finding, measure (but never gate) the health plane's host-side cost, and
/// gate that the health plane changed nothing deterministic.
fn run_health(
    report: &FleetReport,
    cfg: &FleetConfig,
    metrics_out: Option<&str>,
) -> Result<bool, String> {
    let mut ok = true;

    // Host-side overhead: re-run without the health plane. Wall time is
    // printed, not gated (CI machines differ); the fingerprint comparison
    // IS gated — health must add zero simulated cycles.
    let bare = run_fleet(&FleetConfig {
        health: false,
        trace: false,
        ..*cfg
    })
    .map_err(|e| e.to_string())?;
    println!(
        "fleet: health plane host overhead: {:.1} ms wall with vs {:.1} ms without ({:+.1}%)",
        report.wall_seconds * 1000.0,
        bare.wall_seconds * 1000.0,
        (report.wall_seconds / bare.wall_seconds - 1.0) * 100.0,
    );
    if report.fingerprint() == bare.fingerprint() {
        println!("fleet: health plane is result-transparent (fingerprints identical on/off)");
    } else {
        eprintln!("fleet: HEALTH PLANE CHANGED RESULTS — on/off fingerprints disagree");
        ok = false;
    }

    let mut mon = report.health_monitor();
    let findings = mon.finish().to_vec();
    for f in &findings {
        eprintln!("{f}");
    }
    println!(
        "fleet: health: {} invariants, {} evaluations, {} findings",
        mon.invariants().len(),
        mon.evaluations(),
        findings.len(),
    );
    ok &= findings.is_empty();

    if let Some(path) = metrics_out {
        let text = if path.ends_with(".jsonl") {
            efex_health::to_jsonl(&mon)
        } else if path.ends_with(".prom") {
            efex_health::to_prometheus(&mon)
        } else {
            return Err(format!(
                "--metrics-out {path}: extension must be .prom or .jsonl"
            ));
        };
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("fleet: wrote health metrics to {path}");
    }
    Ok(ok)
}

/// Live-migration drill: checkpoint every tenant mid-suite on its home
/// shard, resume it on a different one, and demand the aggregate
/// fingerprint match an uninterrupted run of the same legged fleet.
fn migrate_drill(cfg: &FleetConfig) -> Result<bool, efex_fleet::FleetError> {
    let legged = FleetConfig {
        legs: cfg.legs.max(2),
        ..*cfg
    };
    let baseline = run_fleet(&legged)?;
    let migrated = run_fleet_migrate(&legged)?;
    let ok = baseline.fingerprint() == migrated.fingerprint();
    println!(
        "fleet: migration drill: {} tenants checkpointed and resumed on a \
         different shard: fingerprints {}",
        migrated.migrations,
        if ok { "MATCH" } else { "DIFFER" },
    );
    Ok(ok)
}

/// Crash-recovery drill: kill one worker shard mid-run and restore its
/// tenants from their last serialized checkpoints on the survivors.
fn kill_shard_drill(cfg: &FleetConfig, dead: usize) -> Result<bool, efex_fleet::FleetError> {
    let legged = FleetConfig {
        legs: cfg.legs.max(2),
        ..*cfg
    };
    let baseline = run_fleet(&legged)?;
    let drilled = run_fleet_kill_shard(&legged, dead)?;
    let ok = baseline.fingerprint() == drilled.fingerprint() && drilled.recoveries > 0;
    println!(
        "fleet: kill-shard drill: shard {dead} killed, {} tenant(s) restored \
         from checkpoint as degraded recoveries: fingerprints {}",
        drilled.recoveries,
        if ok { "MATCH" } else { "DIFFER" },
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: fleet [--tenants <n>] [--threads <n>] [--seed <n>] \
             [--engine interpreter|superblock] [--check-determinism] [--sweep] \
             [--decode-cache] [--throughput] [--chrome <path>] \
             [--health] [--metrics-out <path>] [--migrate] [--kill-shard <n>]"
        );
        return ExitCode::SUCCESS;
    }

    let mut cfg = FleetConfig {
        tenants: 16,
        threads: 4,
        ..FleetConfig::default()
    };
    let mut do_check = false;
    let mut do_sweep = false;
    let mut do_dcache = false;
    let mut do_throughput = false;
    let mut do_health = false;
    let mut do_migrate = false;
    let mut kill_shard: Option<usize> = None;
    let mut chrome_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| {
            it.next()
                .as_deref()
                .and_then(parse_u64)
                .ok_or_else(|| format!("fleet: {flag} needs a numeric value"))
        };
        match arg.as_str() {
            "--tenants" => match take("--tenants") {
                Ok(v) => cfg.tenants = v as u32,
                Err(e) => return fail(&e),
            },
            "--threads" => match take("--threads") {
                Ok(v) => cfg.threads = v as usize,
                Err(e) => return fail(&e),
            },
            "--seed" => match take("--seed") {
                Ok(v) => cfg.base_seed = v,
                Err(e) => return fail(&e),
            },
            "--migrate" => do_migrate = true,
            "--kill-shard" => match take("--kill-shard") {
                Ok(v) => kill_shard = Some(v as usize),
                Err(e) => return fail(&e),
            },
            "--check-determinism" => do_check = true,
            "--sweep" => do_sweep = true,
            "--decode-cache" => do_dcache = true,
            "--throughput" => do_throughput = true,
            "--health" => do_health = true,
            "--engine" => match it.next().as_deref().and_then(ExecEngine::parse) {
                Some(engine) => cfg.machine = cfg.machine.engine(engine),
                None => return fail("fleet: --engine needs 'interpreter' or 'superblock'"),
            },
            "--chrome" => match it.next() {
                Some(p) => chrome_path = Some(p),
                None => return fail("fleet: --chrome needs a file path"),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return fail("fleet: --metrics-out needs a file path"),
            },
            other => return fail(&format!("fleet: unknown argument {other}")),
        }
    }

    cfg.trace = chrome_path.is_some();
    let mut ok = true;

    let report = match run_fleet(&cfg) {
        Ok(r) => r,
        Err(e) => return fail(&format!("fleet: {e}")),
    };
    print_summary(&report);

    if let Some(path) = &chrome_path {
        if let Err(e) = std::fs::write(path, report.chrome_trace(CLOCK_MHZ)) {
            return fail(&format!("fleet: writing {path}: {e}"));
        }
        println!("fleet: wrote per-tenant Chrome trace to {path}");
    }

    if do_health || metrics_out.is_some() {
        match run_health(&report, &cfg, metrics_out.as_deref()) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&format!("fleet: {e}")),
        }
    }

    // The remaining modes don't need tracing enabled.
    cfg.trace = false;
    if do_check {
        match check_determinism(&cfg) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&format!("fleet: {e}")),
        }
    }
    if do_sweep {
        match sweep(&cfg) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&format!("fleet: {e}")),
        }
    }
    if do_dcache {
        match decode_cache_compare(&cfg) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&format!("fleet: {e}")),
        }
    }
    if do_throughput {
        throughput_exhibit();
    }
    if do_migrate {
        match migrate_drill(&cfg) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&format!("fleet: {e}")),
        }
    }
    if let Some(dead) = kill_shard {
        match kill_shard_drill(&cfg, dead) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&format!("fleet: {e}")),
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}
