//! The canonical measurement suite behind the `report` binary.
//!
//! [`record_baseline`] runs every deterministic measurement the repo makes —
//! the Table 1 cost models, the Table 2 guest delivery matrix, the Table 3
//! region profile, the Table 4 GC comparison, and one fixed workload per
//! application crate — and returns a [`Baseline`] suitable for committing as
//! `BENCH_baseline.json` and re-checking in CI. Everything here is simulated
//! cycles, never wall-clock time, so cycle and instruction counts are exact
//! across runs and machines; only derived microsecond values carry a
//! tolerance (and even those are deterministic — the tolerance exists so a
//! deliberate re-tuning shows up as one reviewable re-record, not CI noise).
//!
//! [`chrome_trace_fastpath`] and [`folded_fastpath`] export the same
//! measurements as timeline/flamegraph artifacts.

use std::error::Error;
use std::rc::Rc;

use efex_core::{DeliveryPath, ExceptionKind, System};
use efex_mips::cycles::CLOCK_MHZ;
use efex_report::{flame, Baseline, ChromeTrace};
use efex_trace::{FaultClass, RingSink, StatsSnapshot};

use crate::{table4, Table4Scale};

/// Every (path, kind) pair the guest microbenchmarks implement — the full
/// Table 2 delivery matrix.
pub const GUEST_MATRIX: [(DeliveryPath, ExceptionKind); 7] = [
    (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect),
    (DeliveryPath::FastUser, ExceptionKind::Breakpoint),
    (DeliveryPath::FastUser, ExceptionKind::WriteProtect),
    (DeliveryPath::FastUser, ExceptionKind::Subpage),
    (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized),
    (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint),
];

/// Table 4 scale used for the baseline: smaller than the exhibit default so
/// `--check` stays fast, but large enough to run real collections.
const BASELINE_TABLE4_SCALE: Table4Scale = Table4Scale {
    lisp_iterations: 30,
    lisp_depth: 7,
    array_words: 64 * 1024,
    array_replacements: 3_000,
};

/// Lowercases a display name into a stable metric-key segment.
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_dash = true; // suppress leading dashes
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            out.push('-');
            last_dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Stack reserved for the suite thread. The simulator types (`System`, `Gc`)
/// are ~70 KiB by value and unoptimized builds keep several temporaries of
/// them live per construction, which overflows the 2 MiB default of test
/// threads; a dedicated thread makes the suite caller-agnostic.
const SUITE_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Runs the full canonical suite and returns the resulting baseline.
///
/// # Errors
///
/// Propagates any simulator or workload error.
pub fn record_baseline() -> Result<Baseline, Box<dyn Error>> {
    let handle = std::thread::Builder::new()
        .name("efex-suite".into())
        .stack_size(SUITE_STACK_BYTES)
        .spawn(record_baseline_inner)?;
    handle
        .join()
        .map_err(|_| "baseline suite thread panicked")?
        .map_err(|e| e as Box<dyn Error>)
}

fn record_baseline_inner() -> Result<Baseline, Box<dyn Error + Send + Sync>> {
    let mut b = Baseline::new();
    b.set_provenance("paper", "thekkath-levy-asplos-1994");
    b.set_provenance("clock_mhz", format!("{CLOCK_MHZ}"));
    b.set_provenance("package", concat!("efex-bench ", env!("CARGO_PKG_VERSION")));
    b.set_provenance(
        "generator",
        "cargo run --release -p efex-bench --bin report -- --record",
    );

    // Table 1: closed-form OS cost models. Derived floats (µs).
    for s in efex_oscost::table1_systems() {
        let key = format!("table1/{}", slug(s.name()));
        b.push_float(
            format!("{key}/deliver_simple_us"),
            s.deliver_simple_micros(),
            "us",
        );
        b.push_float(format!("{key}/round_trip_us"), s.round_trip_micros(), "us");
    }

    // Table 2: the guest delivery matrix. Exact simulated cycle counts.
    for (path, kind) in GUEST_MATRIX {
        let rt = System::builder()
            .delivery(path)
            .build()?
            .measure_null_roundtrip(kind)?;
        let key = format!("table2/{path}/{}", FaultClass::from(kind).as_str());
        b.push_int(format!("{key}/deliver_cycles"), rt.deliver_cycles, "cycles");
        b.push_int(format!("{key}/return_cycles"), rt.return_cycles, "cycles");
    }

    // Table 3: per-region dynamic instruction counts of the fast-path
    // handler. Exact.
    let rows = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()?
        .measure_table3()?;
    for row in &rows {
        b.push_int(
            format!("table3/{}/instructions", row.label),
            row.measured_instructions,
            "instructions",
        );
    }

    // Static verifier cross-check: the fast-path bound efex-verify computes
    // over the assembled kernel image must equal the dynamic Table 3 counts
    // bit-exactly, and is committed as its own metric family so either side
    // drifting fails the baseline check.
    let kimage = efex_mips::asm::assemble(efex_simos::fastexc::KERNEL_ASM)
        .map_err(|e| format!("kernel image: {e}"))?;
    let verify_report = efex_simos::verify::verify_kernel_image(&kimage);
    if !verify_report.is_clean() {
        return Err(format!(
            "kernel image fails static verification:\n{}",
            verify_report.render()
        )
        .into());
    }
    let fp = verify_report
        .fast_path
        .as_ref()
        .ok_or("verifier computed no static fast path")?;
    for p in &fp.per_phase {
        b.push_int(
            format!("verify/table3/{}/static_instructions", p.label),
            p.instructions,
            "instructions",
        );
        let dynamic = rows
            .iter()
            .find(|r| r.label == p.label.as_str())
            .map(|r| r.measured_instructions);
        if dynamic != Some(p.instructions) {
            return Err(format!(
                "static fast-path bound for {} is {} instructions but the dynamic \
                 Table 3 count is {dynamic:?}: analyzer and simulator disagree",
                p.label, p.instructions
            )
            .into());
        }
    }
    b.push_int(
        "verify/fast_path/static_instructions",
        fp.total_instructions,
        "instructions",
    );
    b.push_int("verify/fast_path/static_cycles", fp.total_cycles, "cycles");

    // Table 4: the GC comparison at baseline scale. Times are derived µs;
    // fault counts are exact.
    for row in table4(BASELINE_TABLE4_SCALE)? {
        let key = format!("table4/{}", slug(row.application));
        b.push_float(format!("{key}/sigsegv_us"), row.sigsegv_us, "us");
        b.push_float(format!("{key}/fast_us"), row.fast_us, "us");
        b.push_int(format!("{key}/faults"), row.faults, "faults");
    }

    // One fixed workload per application crate: run time (derived µs) plus
    // every stats counter (exact).
    type AppResult = Result<(f64, StatsSnapshot), Box<dyn Error + Send + Sync>>;
    let apps: [(&str, AppResult); 5] = [
        (
            "gc",
            efex_gc::workloads::baseline_workload().map_err(Into::into),
        ),
        (
            "pstore",
            efex_pstore::workloads::baseline_workload().map_err(Into::into),
        ),
        (
            "dsm",
            efex_dsm::workloads::baseline_workload().map_err(Into::into),
        ),
        (
            "lazydata",
            efex_lazydata::baseline_workload().map_err(Into::into),
        ),
        ("watch", efex_watch::baseline_workload().map_err(Into::into)),
    ];
    for (name, result) in apps {
        let (micros, snap) = result?;
        b.push_float(format!("app/{name}/us"), micros, "us");
        for (counter, value) in &snap.counters {
            b.push_int(format!("app/{name}/{counter}"), *value, "count");
        }
    }

    Ok(b)
}

/// Runs the fast-path microbenchmarks with tracing on and exports a Chrome
/// trace-event document: lifecycle phase spans from the event ring plus the
/// Table 3 guest-kernel region spans on their own thread row.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn chrome_trace_fastpath() -> Result<String, efex_core::CoreError> {
    let ring = Rc::new(RingSink::with_capacity(4096));
    for kind in [
        ExceptionKind::Breakpoint,
        ExceptionKind::WriteProtect,
        ExceptionKind::Subpage,
        ExceptionKind::UnalignedSpecialized,
    ] {
        // Fresh guest per kind: each microbenchmark maps its own regions.
        let mut sys = System::builder()
            .delivery(DeliveryPath::FastUser)
            .trace_sink(ring.clone())
            .build()?;
        sys.measure_null_roundtrip(kind)?;
    }
    let (_, spans) = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()?
        .measure_table3_spans()?;

    let mut trace = ChromeTrace::new(CLOCK_MHZ);
    trace.push_lifecycle(&ring.events());
    trace.push_profile_spans(&spans);
    Ok(trace.to_json())
}

/// Renders the measured Table 3 region profile as folded stacks
/// (`fastpath;<label> <instructions>`), one line per phase region.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn folded_fastpath() -> Result<String, efex_core::CoreError> {
    let rows = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()?
        .measure_table3()?;
    let folded: Vec<(String, u64)> = rows
        .iter()
        .map(|r| (r.label.to_string(), r.measured_instructions))
        .collect();
    Ok(flame::folded_from_rows("fastpath", &folded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use efex_report::{compare, jsonval, MetricValue, DEFAULT_TOLERANCE};
    use efex_simos::fastexc::TABLE3_PHASES;

    #[test]
    fn baseline_round_trips_and_rechecks_clean() {
        let b = record_baseline().expect("suite");
        // Schema round-trip through the on-disk form.
        let parsed = Baseline::from_json(&b.to_json()).expect("parse");
        assert_eq!(parsed, b);
        // A same-process recheck of the same baseline passes trivially;
        // cross-run determinism is what ci.sh's `report --check` enforces
        // against the committed file.
        let report = compare(&b, &parsed, DEFAULT_TOLERANCE);
        assert!(report.passed(), "{}", report.render_table(false));
        // The exact metrics really are exact integers.
        let m = b
            .get("table2/fast-user/breakpoint/deliver_cycles")
            .expect("matrix metric");
        assert!(matches!(m.value, MetricValue::Int(_)));
        assert!(m.exact);
        // Every Table 3 phase and every app workload is present.
        for (label, _, _) in TABLE3_PHASES {
            assert!(
                b.get(&format!("table3/{label}/instructions")).is_some(),
                "missing table3 metric for {label}"
            );
        }
        for app in ["gc", "pstore", "dsm", "lazydata", "watch"] {
            assert!(b.get(&format!("app/{app}/us")).is_some(), "missing {app}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_nonempty() {
        let json = chrome_trace_fastpath().expect("trace");
        let doc = jsonval::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phase = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .count()
        };
        assert!(phase("deliver") >= 4, "one deliver span per microbenchmark");
        assert!(phase("handler") >= 4);
        assert!(phase("return") >= 4);
        // Region spans from the profiler landed on the region thread.
        assert!(events.iter().any(|e| {
            e.get("tid").and_then(|t| t.as_u64()) == Some(efex_report::chrome::TID_REGIONS as u64)
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
        }));
    }

    #[test]
    fn folded_output_covers_every_table3_region() {
        let folded = folded_fastpath().expect("folded");
        for (label, _, _) in TABLE3_PHASES {
            assert!(
                folded
                    .lines()
                    .any(|l| l.starts_with(&format!("fastpath;{label} "))),
                "missing folded line for {label}:\n{folded}"
            );
        }
        for line in folded.lines() {
            assert_eq!(line.split_whitespace().count(), 2, "bad folded line {line}");
        }
    }
}
