//! The static verification gate over every guest image the suite executes.
//!
//! Glue between the bench suite's embedded images and the `efex-verify`
//! analyzers: assembles the same kernel, trampoline, and guest programs
//! the dynamic measurements run, applies the classic per-image lints
//! ([`efex_verify::analyze`]), runs the whole-image symbolic explorer
//! ([`efex_verify::symex`]) over the kernel alone and over every composed
//! Table 2 bench, and cross-checks the static per-class cycle bounds
//! against the recorded `table2/*` metrics in the committed baseline.
//! The `lint` binary and the integration tests both call through here so
//! the gate and the tests cannot diverge.

use efex_core::debug_progs as progs;
use efex_mips::asm::{assemble, Program};
use efex_report::jsonval;
use efex_simos::compose::{bench_case, kernel_only_case, BenchKind};
use efex_simos::fastexc::KERNEL_ASM;
use efex_simos::kernel::TRAMPOLINE_ASM;
use efex_simos::verify as simverify;
use efex_verify::diag::json_escape;
use efex_verify::interproc::Images;
use efex_verify::symex::{explore, SymexReport};
use efex_verify::{Report, VerifyConfig};

/// Loop count used when assembling a bench for static analysis; the static
/// shape is identical for any n.
pub const SYMEX_BENCH_N: u32 = 4;

/// The three images of one composed bench, assembled.
pub struct ComposedImages {
    /// The kernel image (vectors + fast-path handler).
    pub kernel: Program,
    /// The signal trampoline.
    pub trampoline: Program,
    /// The guest microbenchmark program.
    pub app: Program,
}

/// The source generator for one [`BenchKind`] — the same programs the
/// dynamic Table 2 measurement executes.
pub fn bench_source(kind: BenchKind) -> String {
    match kind {
        BenchKind::FastBreakpoint => progs::fast_simple_bench(SYMEX_BENCH_N),
        BenchKind::FastWriteProtect => progs::fast_prot_bench(SYMEX_BENCH_N),
        BenchKind::FastSubpage => progs::fast_subpage_bench(SYMEX_BENCH_N),
        BenchKind::FastUnaligned => progs::fast_unaligned_specialized_bench(SYMEX_BENCH_N),
        BenchKind::UnixBreakpoint => progs::unix_simple_bench(SYMEX_BENCH_N),
        BenchKind::UnixWriteProtect => progs::unix_prot_bench(SYMEX_BENCH_N),
        BenchKind::HwBreakpoint => progs::hw_simple_bench(SYMEX_BENCH_N),
    }
}

/// Assembles the kernel, trampoline, and guest program for `kind`.
///
/// # Errors
///
/// Returns the assembler diagnostic if any of the three sources fails to
/// assemble (a build break, not a lint finding).
pub fn assemble_composed(kind: BenchKind) -> Result<ComposedImages, String> {
    let kernel = assemble(KERNEL_ASM).map_err(|e| format!("kernel: {e}"))?;
    let trampoline = assemble(TRAMPOLINE_ASM).map_err(|e| format!("trampoline: {e}"))?;
    let app = assemble(&bench_source(kind)).map_err(|e| format!("{}: {e}", kind.row()))?;
    Ok(ComposedImages {
        kernel,
        trampoline,
        app,
    })
}

/// Runs the kernel-only symbolic pass: every architecturally raisable
/// class against the kernel image under a symbolic registration.
///
/// # Errors
///
/// Only if the embedded kernel image fails to assemble.
pub fn explore_kernel_only() -> Result<SymexReport, String> {
    let kernel = assemble(KERNEL_ASM).map_err(|e| format!("kernel: {e}"))?;
    let case = kernel_only_case(&kernel);
    let images = Images::new(vec![("kernel", &kernel)]);
    Ok(explore(&images, &case.config, &case.scenarios))
}

/// Runs the fully composed symbolic pass for one Table 2 bench: kernel +
/// trampoline + guest program, deep through the guest handler.
///
/// # Errors
///
/// Only if one of the embedded sources fails to assemble.
pub fn explore_bench(kind: BenchKind) -> Result<SymexReport, String> {
    let imgs = assemble_composed(kind)?;
    let case = bench_case(kind, &imgs.kernel, &imgs.trampoline, &imgs.app);
    let images = Images::new(vec![
        ("kernel", &imgs.kernel),
        ("trampoline", &imgs.trampoline),
        ("app", &imgs.app),
    ]);
    Ok(explore(&images, &case.config, &case.scenarios))
}

/// Static `[min, max]` cycle bounds for one Table 2 row, merged across the
/// row's delivery variants (direct and, where modeled, refill).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowBounds {
    /// Raise → handler entry.
    pub deliver: (u64, u64),
    /// Handler completion → user resume.
    pub ret: (u64, u64),
}

/// Merges the per-variant deliver/return spans of `report` into one
/// `[min, max]` interval per measure, or `None` when no path crossed the
/// measure labels.
pub fn row_bounds(report: &SymexReport) -> Option<RowBounds> {
    let mut deliver: Option<(u64, u64)> = None;
    let mut ret: Option<(u64, u64)> = None;
    let merge = |acc: &mut Option<(u64, u64)>, span: Option<(u64, u64)>| {
        if let Some((lo, hi)) = span {
            *acc = Some(match *acc {
                Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                None => (lo, hi),
            });
        }
    };
    for s in &report.scenarios {
        merge(&mut deliver, s.deliver);
        merge(&mut ret, s.ret);
    }
    Some(RowBounds {
        deliver: deliver?,
        ret: ret?,
    })
}

/// One classically linted image: name plus the [`efex_verify::analyze`]
/// report.
pub struct ImageReport {
    /// Image name as shown in diagnostics.
    pub name: &'static str,
    /// The per-image analysis report.
    pub report: Report,
}

/// One composed bench's symbolic result.
pub struct BenchSymex {
    /// Which Table 2 composition.
    pub kind: BenchKind,
    /// The explorer's report (findings + per-scenario outcomes).
    pub report: SymexReport,
    /// Merged deliver/return bounds, when the measure labels were crossed.
    pub bounds: Option<RowBounds>,
}

/// Everything the lint gate computes in one run.
pub struct GateResult {
    /// Classic per-image lint reports (kernel, trampoline, every bench).
    pub images: Vec<ImageReport>,
    /// The kernel-only symbolic pass.
    pub kernel_only: Option<SymexReport>,
    /// The composed symbolic pass, one entry per Table 2 bench.
    pub benches: Vec<BenchSymex>,
    /// Assembly or configuration failures (build breaks, not findings).
    pub errors: Vec<String>,
}

impl GateResult {
    /// True when every pass ran and produced no finding.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
            && self.images.iter().all(|i| i.report.is_clean())
            && self.kernel_only.as_ref().is_some_and(SymexReport::is_clean)
            && self.benches.iter().all(|b| b.report.is_clean())
    }

    /// Renders the whole gate result as one JSON document (machine-readable
    /// `lint --json` output; parses with [`efex_report::jsonval`]).
    pub fn to_json(&self) -> String {
        let findings_json = |findings: &[efex_verify::Finding]| {
            let items: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
            format!("[{}]", items.join(","))
        };
        let mut out = String::new();
        out.push_str(&format!("{{\"clean\":{},", self.clean()));
        out.push_str("\"errors\":[");
        out.push_str(
            &self
                .errors
                .iter()
                .map(|e| format!("\"{}\"", json_escape(e)))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("],\"images\":[");
        out.push_str(
            &self
                .images
                .iter()
                .map(|i| {
                    format!(
                        "{{\"name\":\"{}\",\"instructions_analyzed\":{},\"findings\":{}}}",
                        json_escape(i.name),
                        i.report.instructions_analyzed,
                        findings_json(&i.report.findings)
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("],\"symex\":{");
        if let Some(ko) = &self.kernel_only {
            out.push_str(&format!(
                "\"kernel_only\":{{\"scenarios\":{},\"paths\":{},\"findings\":{}}},",
                ko.scenarios.len(),
                ko.paths_explored,
                findings_json(&ko.findings)
            ));
        }
        out.push_str("\"benches\":[");
        out.push_str(
            &self
                .benches
                .iter()
                .map(|b| {
                    let bounds = match b.bounds {
                        Some(rb) => format!(
                            "\"deliver\":[{},{}],\"return\":[{},{}],",
                            rb.deliver.0, rb.deliver.1, rb.ret.0, rb.ret.1
                        ),
                        None => String::new(),
                    };
                    format!(
                        "{{\"row\":\"{}\",{bounds}\"paths\":{},\"findings\":{}}}",
                        b.kind.row(),
                        b.report.paths_explored,
                        findings_json(&b.report.findings)
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("]}}");
        out
    }
}

/// Runs the whole static gate: classic lints over every embedded image,
/// the kernel-only symbolic pass, and the composed symbolic pass for every
/// Table 2 bench. Never panics on bad input; assembly failures land in
/// [`GateResult::errors`].
pub fn run_gate() -> GateResult {
    let mut result = GateResult {
        images: Vec::new(),
        kernel_only: None,
        benches: Vec::new(),
        errors: Vec::new(),
    };

    // Classic per-image lints, same contracts as always: the kernel under
    // the full Table 3 contract, the trampoline and benches under the
    // hazard lints.
    match assemble(KERNEL_ASM) {
        Ok(kernel) => result.images.push(ImageReport {
            name: "kernel image (KERNEL_ASM)",
            report: simverify::verify_kernel_image(&kernel),
        }),
        Err(e) => result.errors.push(format!("kernel: {e}")),
    }
    match assemble(TRAMPOLINE_ASM) {
        Ok(t) => result.images.push(ImageReport {
            name: "signal trampoline (TRAMPOLINE_ASM)",
            report: simverify::verify_trampoline_image(&t),
        }),
        Err(e) => result.errors.push(format!("trampoline: {e}")),
    }
    type BenchGen = fn(u32) -> String;
    let benches: [(&'static str, BenchGen); 7] = [
        ("fast_simple_bench", progs::fast_simple_bench),
        ("hw_simple_bench", progs::hw_simple_bench),
        ("unix_simple_bench", progs::unix_simple_bench),
        ("fast_prot_bench", progs::fast_prot_bench),
        ("unix_prot_bench", progs::unix_prot_bench),
        ("fast_subpage_bench", progs::fast_subpage_bench),
        (
            "fast_unaligned_specialized_bench",
            progs::fast_unaligned_specialized_bench,
        ),
    ];
    for (name, gen) in benches {
        let src = gen(SYMEX_BENCH_N);
        let prog = match assemble(&src) {
            Ok(p) => p,
            Err(e) => {
                result.errors.push(format!("{name}: {e}"));
                continue;
            }
        };
        let mut config = VerifyConfig::hazards_only(prog.entry());
        for root in ["uh_entry", "null_handler"] {
            if let Some(&addr) = prog.labels().get(root) {
                config.extra_roots.push(addr);
            }
        }
        match efex_verify::analyze(&prog, &config) {
            Ok(report) => result.images.push(ImageReport { name, report }),
            Err(e) => result.errors.push(format!("{name}: bad config: {e}")),
        }
    }

    // The symbolic pass: kernel alone, then every composition.
    match explore_kernel_only() {
        Ok(r) => result.kernel_only = Some(r),
        Err(e) => result.errors.push(e),
    }
    for kind in BenchKind::ALL {
        match explore_bench(kind) {
            Ok(report) => {
                let bounds = row_bounds(&report);
                result.benches.push(BenchSymex {
                    kind,
                    report,
                    bounds,
                });
            }
            Err(e) => result.errors.push(e),
        }
    }
    result
}

/// One baseline cross-check: a `table2` metric against the static bound
/// that must bracket it.
#[derive(Clone, Debug)]
pub struct CrossCheck {
    /// The `table2/{path}/{class}/{measure}` metric name.
    pub metric: String,
    /// The dynamic value recorded in the baseline.
    pub dynamic: u64,
    /// The static `[min, max]` bound.
    pub bound: (u64, u64),
}

impl CrossCheck {
    /// Whether the dynamic value sits inside the static bound. When the
    /// bound is tight (`min == max`, a deterministic path) this is a
    /// bit-exact equality check.
    pub fn holds(&self) -> bool {
        self.bound.0 <= self.dynamic && self.dynamic <= self.bound.1
    }

    /// Whether the bound is tight — a single deterministic path.
    pub fn exact(&self) -> bool {
        self.bound.0 == self.bound.1
    }
}

/// Cross-checks the static bounds of an already-run gate against the
/// `table2/*` cycle metrics in `baseline_json` (the contents of
/// `BENCH_baseline.json`). Returns one [`CrossCheck`] per metric found.
///
/// # Errors
///
/// On a malformed baseline, a missing metric, a bench whose symbolic pass
/// did not produce bounds, or a dynamic value outside its static bound —
/// each rendered as one diagnostic line.
pub fn crosscheck_baseline(
    gate: &GateResult,
    baseline_json: &str,
) -> Result<Vec<CrossCheck>, Vec<String>> {
    let root = match jsonval::parse(baseline_json) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("baseline does not parse: {e}")]),
    };
    let mut metrics = std::collections::BTreeMap::new();
    match root.get("metrics").and_then(|m| m.as_array()) {
        Some(list) => {
            for m in list {
                if let (Some(name), Some(value)) = (
                    m.get("name").and_then(|v| v.as_str()),
                    m.get("value").and_then(|v| v.as_u64()),
                ) {
                    metrics.insert(name.to_string(), value);
                }
            }
        }
        None => return Err(vec!["baseline has no metrics array".to_string()]),
    }

    let mut errors = Vec::new();
    let mut checks = Vec::new();
    for b in &gate.benches {
        let Some(bounds) = b.bounds else {
            errors.push(format!(
                "{}: symbolic pass never crossed the measure labels",
                b.kind.row()
            ));
            continue;
        };
        for (measure, bound) in [
            ("deliver_cycles", bounds.deliver),
            ("return_cycles", bounds.ret),
        ] {
            let metric = format!("table2/{}/{measure}", b.kind.row());
            let Some(&dynamic) = metrics.get(&metric) else {
                errors.push(format!("baseline lacks metric {metric}"));
                continue;
            };
            let check = CrossCheck {
                metric,
                dynamic,
                bound,
            };
            if !check.holds() {
                errors.push(format!(
                    "{}: dynamic {} outside static bound [{}, {}]",
                    check.metric, check.dynamic, check.bound.0, check.bound.1
                ));
            }
            checks.push(check);
        }
    }
    if errors.is_empty() {
        Ok(checks)
    } else {
        Err(errors)
    }
}
