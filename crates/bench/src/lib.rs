//! # efex-bench — regenerating every table and figure of the paper
//!
//! Each `table*`/`figure*` function reproduces one exhibit from the
//! evaluation of Thekkath & Levy (ASPLOS 1994) and returns structured data;
//! the `tables` binary formats them, the Criterion benches exercise the
//! same code paths under the timer, and the integration tests assert the
//! paper's qualitative conclusions (who wins, by roughly what factor,
//! where the crossovers fall).

#![warn(missing_docs)]

pub mod suite;
pub mod symgate;

use efex_analysis::{gc as gc_model, swizzle};
use efex_core::{DeliveryPath, ExceptionKind, System};
use efex_gc::{workloads as gc_workloads, BarrierKind, Gc, GcConfig};
use efex_pstore::{workloads as ps_workloads, Policy, PstoreConfig, StableGraph, Strategy};

/// One row of Table 1: conventional OS delivery costs.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Operating system / hardware combination.
    pub system: String,
    /// Simple-exception delivery cost, µs.
    pub deliver_simple_us: f64,
    /// Write-protection-exception delivery cost, µs.
    pub deliver_write_prot_us: f64,
    /// Handler-return cost, µs.
    pub return_us: f64,
    /// Full round-trip cost, µs.
    pub round_trip_us: f64,
}

/// Regenerates Table 1 from the OS cost models.
pub fn table1() -> Vec<Table1Row> {
    efex_oscost::table1_systems()
        .into_iter()
        .map(|s| Table1Row {
            system: s.name().to_string(),
            deliver_simple_us: s.deliver_simple_micros(),
            deliver_write_prot_us: s.deliver_write_prot_micros(),
            return_us: s.return_micros(),
            round_trip_us: s.round_trip_micros(),
        })
        .collect()
}

/// One row of Table 2: fast-exception operation costs vs Ultrix.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// The measured operation, named as in the paper.
    pub operation: &'static str,
    /// Measured on the simulator's fast path, µs.
    pub fast_us: f64,
    /// Measured on the simulator's Unix-signal path, µs (where the paper
    /// reports an Ultrix number).
    pub unix_us: Option<f64>,
    /// The paper's fast-path value, µs.
    pub paper_fast_us: f64,
    /// The paper's Ultrix value, µs.
    pub paper_unix_us: Option<f64>,
}

/// Regenerates Table 2 by running the guest microbenchmarks.
///
/// # Errors
///
/// Fails only on simulator bugs.
pub fn table2() -> Result<Vec<Table2Row>, efex_core::CoreError> {
    let measure = |path, kind| -> Result<efex_core::RoundTrip, efex_core::CoreError> {
        System::builder()
            .delivery(path)
            .build()?
            .measure_null_roundtrip(kind)
    };
    let fast_simple = measure(DeliveryPath::FastUser, ExceptionKind::Breakpoint)?;
    let unix_simple = measure(DeliveryPath::UnixSignals, ExceptionKind::Breakpoint)?;
    let fast_prot = measure(DeliveryPath::FastUser, ExceptionKind::WriteProtect)?;
    let unix_prot = measure(DeliveryPath::UnixSignals, ExceptionKind::WriteProtect)?;
    let fast_sub = measure(DeliveryPath::FastUser, ExceptionKind::Subpage)?;
    Ok(vec![
        Table2Row {
            operation: "Deliver Simple Exception to Null User Handler",
            fast_us: fast_simple.deliver_micros(),
            unix_us: Some(unix_simple.deliver_micros()),
            paper_fast_us: 5.0,
            paper_unix_us: Some(70.0),
        },
        Table2Row {
            operation: "Deliver Write Prot. Exception To Null Handler",
            fast_us: fast_prot.deliver_micros(),
            unix_us: Some(unix_prot.deliver_micros()),
            paper_fast_us: 15.0,
            paper_unix_us: Some(60.0),
        },
        Table2Row {
            operation: "Deliver Subpage Exception To Null Handler",
            fast_us: fast_sub.deliver_micros(),
            unix_us: None,
            paper_fast_us: 19.0,
            paper_unix_us: None,
        },
        Table2Row {
            operation: "Return from Null Handler",
            fast_us: fast_simple.return_micros(),
            unix_us: Some(unix_simple.return_micros()),
            paper_fast_us: 3.0,
            paper_unix_us: None,
        },
        Table2Row {
            operation: "Simple Exception Round-Trip Delivery and Return",
            fast_us: fast_simple.total_micros(),
            unix_us: Some(unix_simple.total_micros()),
            paper_fast_us: 8.0,
            paper_unix_us: Some(80.0),
        },
    ])
}

/// Regenerates Table 3 (kernel fast-path handler instruction counts).
///
/// # Errors
///
/// Fails only on simulator bugs.
pub fn table3() -> Result<Vec<efex_core::Table3Row>, efex_core::CoreError> {
    System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()?
        .measure_table3()
}

/// One row of Table 4: generational-GC application times.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// The GC application, named as in the paper.
    pub application: &'static str,
    /// Simulated run time with SIGSEGV + `mprotect` (Ultrix path), µs.
    pub sigsegv_us: f64,
    /// Simulated run time with fast exceptions + eager amplification, µs.
    pub fast_us: f64,
    /// Percentage improvement.
    pub improvement_pct: f64,
    /// Protection faults taken (identical across the two runs).
    pub faults: u64,
    /// The paper's improvement for this application, %.
    pub paper_improvement_pct: f64,
}

/// Workload scale for [`table4`].
#[derive(Clone, Copy, Debug)]
pub struct Table4Scale {
    /// Lisp-operations benchmark iterations.
    pub lisp_iterations: u32,
    /// Lisp-operations tree depth.
    pub lisp_depth: u32,
    /// Array-test array size in words.
    pub array_words: u32,
    /// Array-test replacement count.
    pub array_replacements: u32,
}

impl Default for Table4Scale {
    fn default() -> Table4Scale {
        Table4Scale {
            lisp_iterations: 60,
            lisp_depth: 7,
            array_words: 128 * 1024,
            array_replacements: 9_000,
        }
    }
}

/// Regenerates Table 4 by running both GC benchmarks under both delivery
/// mechanisms.
///
/// # Errors
///
/// Fails on collector configuration errors.
pub fn table4(scale: Table4Scale) -> Result<Vec<Table4Row>, efex_gc::GcError> {
    let gc_for = |path: DeliveryPath, eager: bool, threshold: u32| {
        Gc::new(GcConfig {
            path,
            barrier: BarrierKind::PageProtection,
            eager_amplification: eager,
            heap_bytes: 8 * 1024 * 1024,
            minor_threshold: threshold,
            ..GcConfig::default()
        })
    };
    let lisp = gc_workloads::LispOpsParams {
        iterations: scale.lisp_iterations,
        depth: scale.lisp_depth,
        ..gc_workloads::LispOpsParams::default()
    };
    let array = gc_workloads::ArrayTestParams {
        array_words: scale.array_words,
        replacements: scale.array_replacements,
        ..gc_workloads::ArrayTestParams::default()
    };

    let mut rows = Vec::new();
    // The paper's two configurations: Ultrix SIGSEGV + mprotect, and fast
    // exceptions with eager amplification.
    {
        let mut slow = gc_for(DeliveryPath::UnixSignals, false, 16 * 1024)?;
        let r_slow = gc_workloads::lisp_ops(&mut slow, lisp)?;
        let mut fast = gc_for(DeliveryPath::FastUser, true, 16 * 1024)?;
        let r_fast = gc_workloads::lisp_ops(&mut fast, lisp)?;
        rows.push(Table4Row {
            application: "Lisp Operations",
            sigsegv_us: r_slow.micros,
            fast_us: r_fast.micros,
            improvement_pct: 100.0 * (r_slow.micros - r_fast.micros) / r_slow.micros,
            faults: r_fast.stats.barrier_faults,
            paper_improvement_pct: 4.0,
        });
    }
    {
        let mut slow = gc_for(DeliveryPath::UnixSignals, false, 8 * 1024)?;
        let r_slow = gc_workloads::array_test(&mut slow, array)?;
        let mut fast = gc_for(DeliveryPath::FastUser, true, 8 * 1024)?;
        let r_fast = gc_workloads::array_test(&mut fast, array)?;
        rows.push(Table4Row {
            application: "Array Test",
            sigsegv_us: r_slow.micros,
            fast_us: r_fast.micros,
            improvement_pct: 100.0 * (r_slow.micros - r_fast.micros) / r_slow.micros,
            faults: r_fast.stats.barrier_faults,
            paper_improvement_pct: 10.0,
        });
    }
    Ok(rows)
}

/// One row of Table 5: break-even exception cost for the Hosking & Moss
/// applications.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// The Hosking & Moss application.
    pub application: &'static str,
    /// Break-even exception cost `y = c·x / (f·t)`, µs.
    pub breakeven_us: f64,
    /// Whether the fast path (18 µs fault + re-enable) beats checks.
    pub fast_wins: bool,
    /// Whether the Ultrix path (~80 µs) beats checks.
    pub ultrix_wins: bool,
}

/// Regenerates Table 5 from the analytic model.
pub fn table5() -> Vec<Table5Row> {
    gc_model::table5_apps()
        .into_iter()
        .map(|(name, p)| {
            let y = gc_model::breakeven_exception_micros(p);
            Table5Row {
                application: name,
                breakeven_us: y,
                fast_wins: gc_model::protection_wins(p, 18.0),
                ultrix_wins: gc_model::protection_wins(p, 80.0),
            }
        })
        .collect()
}

/// One point of a Figure 3 curve.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Point {
    /// Cycles per software check (`c`).
    pub check_cycles: f64,
    /// Break-even uses per pointer: above this, exceptions win.
    pub breakeven_uses: f64,
}

/// The two analytic curves of Figure 3: break-even uses-per-pointer as a
/// function of check cost, for Ultrix-cost and fast-path exceptions.
pub fn figure3_curves() -> (Vec<Fig3Point>, Vec<Fig3Point>) {
    let curve = |t_us: f64| {
        (1..=20)
            .map(|c| Fig3Point {
                check_cycles: c as f64,
                breakeven_uses: swizzle::breakeven_uses(c as f64, t_us, 25.0),
            })
            .collect()
    };
    // 74 us: the unaligned-exception round trip under Ultrix; 6 us: the
    // paper's specialized fast handler (Section 4.2.2).
    (curve(74.0), curve(6.0))
}

/// A measured Figure 3 data point: simulated time for `u` uses of every
/// root-page pointer under each strategy.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Measured {
    /// Uses of each root-page pointer.
    pub uses_per_pointer: u32,
    /// Simulated time under software checks, µs.
    pub checks_us: f64,
    /// Simulated time under fast unaligned exceptions, µs.
    pub fast_exceptions_us: f64,
    /// Simulated time under Unix-signal exceptions, µs.
    pub signal_exceptions_us: f64,
}

/// Measures Figure 3 companion points on the simulator.
///
/// # Errors
///
/// Fails on store errors.
pub fn figure3_measured(uses: &[u32]) -> Result<Vec<Fig3Measured>, efex_pstore::PstoreError> {
    let graph = || StableGraph::random(30, 50, 40, 0xf3);
    let mut out = Vec::new();
    for &u in uses {
        let chk = ps_workloads::pointer_uses(
            graph(),
            PstoreConfig {
                strategy: Strategy::SoftwareCheck,
                policy: Policy::Lazy,
                ..PstoreConfig::default()
            },
            u,
        )?;
        let fast = ps_workloads::pointer_uses(
            graph(),
            PstoreConfig {
                strategy: Strategy::Unaligned,
                policy: Policy::Lazy,
                path: DeliveryPath::FastUser,
                ..PstoreConfig::default()
            },
            u,
        )?;
        let slow = ps_workloads::pointer_uses(
            graph(),
            PstoreConfig {
                strategy: Strategy::Unaligned,
                policy: Policy::Lazy,
                path: DeliveryPath::UnixSignals,
                ..PstoreConfig::default()
            },
            u,
        )?;
        out.push(Fig3Measured {
            uses_per_pointer: u,
            checks_us: chk.micros,
            fast_exceptions_us: fast.micros,
            signal_exceptions_us: slow.micros,
        });
    }
    Ok(out)
}

/// One point of a Figure 4 curve.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Point {
    /// Swizzle cost `s`, µs.
    pub swizzle_us: f64,
    /// Fraction of pointers per page that must be used before eager wins.
    pub breakeven_fraction: f64,
}

/// The two analytic curves of Figure 4 (50 pointers per page, as in the
/// paper): break-even used-fraction vs swizzle cost, for Ultrix-cost and
/// fast exceptions.
pub fn figure4_curves() -> (Vec<Fig4Point>, Vec<Fig4Point>) {
    let curve = |t_us: f64| {
        (1..=30)
            .map(|i| {
                let s = i as f64 * 0.2;
                let p = swizzle::SwizzleParams {
                    exception_micros: t_us,
                    swizzle_micros: s,
                    pointers_per_page: 50.0,
                    pointers_used: 0.0,
                };
                Fig4Point {
                    swizzle_us: s,
                    breakeven_fraction: swizzle::breakeven_pointers_used(p) / 50.0,
                }
            })
            .collect()
    };
    (curve(74.0), curve(6.0))
}

/// A measured Figure 4 data point: eager vs lazy traversal time at a given
/// pointer-use density.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Measured {
    /// Pointers actually used per page.
    pub pointers_used: u32,
    /// Simulated eager-swizzling time, µs.
    pub eager_us: f64,
    /// Simulated lazy-swizzling time, µs.
    pub lazy_us: f64,
}

/// Measures Figure 4 companion points on the simulator.
///
/// # Errors
///
/// Fails on store errors.
pub fn figure4_measured(densities: &[u32]) -> Result<Vec<Fig4Measured>, efex_pstore::PstoreError> {
    let graph = || StableGraph::random(48, 50, 50, 0xf4);
    let mut out = Vec::new();
    for &pu in densities {
        let eager = ps_workloads::sparse_traversal(
            graph(),
            PstoreConfig {
                strategy: Strategy::ProtFault,
                policy: Policy::Eager,
                path: DeliveryPath::FastUser,
                ..PstoreConfig::default()
            },
            pu,
            24,
        )?;
        let lazy = ps_workloads::sparse_traversal(
            graph(),
            PstoreConfig {
                strategy: Strategy::Unaligned,
                policy: Policy::Lazy,
                path: DeliveryPath::FastUser,
                ..PstoreConfig::default()
            },
            pu,
            24,
        )?;
        out.push(Fig4Measured {
            pointers_used: pu,
            eager_us: eager.micros,
            lazy_us: lazy.micros,
        });
    }
    Ok(out)
}

/// Extension experiment: DSM coherence-miss latency under each path.
#[derive(Clone, Copy, Debug)]
pub struct DsmRow {
    /// The delivery path under test.
    pub path: DeliveryPath,
    /// Total simulated time, µs.
    pub total_us: f64,
    /// Coherence faults taken.
    pub faults: u64,
}

/// Runs a ping-pong DSM workload under each delivery path.
///
/// # Errors
///
/// Fails on DSM errors.
pub fn dsm_comparison(rounds: u32) -> Result<Vec<DsmRow>, efex_dsm::DsmError> {
    let mut rows = Vec::new();
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        let mut d = efex_dsm::Dsm::new(efex_dsm::DsmConfig {
            nodes: 2,
            pages: 2,
            path,
            ..efex_dsm::DsmConfig::default()
        })?;
        let a = d.base();
        for i in 0..rounds {
            d.write((i % 2) as usize, a, i)?;
            d.read(((i + 1) % 2) as usize, a)?;
        }
        rows.push(DsmRow {
            path,
            total_us: d.total_micros(),
            faults: d.stats().faults,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_systems_with_sunos_best() {
        let t = table1();
        assert_eq!(t.len(), 6);
        let sunos = t.iter().find(|r| r.system.contains("SunOS")).unwrap();
        for r in &t {
            assert!(r.round_trip_us >= sunos.round_trip_us - 0.5, "{}", r.system);
        }
    }

    #[test]
    fn table5_matches_paper_conclusion() {
        for row in table5() {
            assert!(
                row.fast_wins,
                "{}: fast exceptions must win",
                row.application
            );
            assert!(!row.ultrix_wins, "{}: Ultrix must lose", row.application);
        }
    }

    #[test]
    fn figure3_fast_curve_sits_below_ultrix_curve() {
        let (ultrix, fast) = figure3_curves();
        for (u, f) in ultrix.iter().zip(&fast) {
            assert!(f.breakeven_uses < u.breakeven_uses);
        }
    }

    #[test]
    fn figure4_fast_curve_extends_the_lazy_region() {
        let (ultrix, fast) = figure4_curves();
        for (u, f) in ultrix.iter().zip(&fast) {
            assert!(
                f.breakeven_fraction >= u.breakeven_fraction,
                "at s={}: {} vs {}",
                u.swizzle_us,
                f.breakeven_fraction,
                u.breakeven_fraction
            );
        }
    }
}
