//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - eager amplification on/off (Section 3.2.3);
//! - subpage protection vs whole-page protection (Section 3.2.4);
//! - the DSM extension under each delivery path;
//! - hardware vectoring vs the software fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use efex_core::{
    DeliveryPath, ExceptionKind, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot,
    Protection, System,
};
use efex_gc::{workloads as gcw, BarrierKind, Gc, GcConfig};
use std::hint::black_box;

/// Simulated µs of the array workload under a given barrier granularity.
fn gc_barrier_granularity(barrier: BarrierKind) -> f64 {
    let mut gc = Gc::new(GcConfig {
        path: DeliveryPath::FastUser,
        barrier,
        eager_amplification: barrier == BarrierKind::PageProtection,
        heap_bytes: 4 * 1024 * 1024,
        minor_threshold: 16 * 1024,
        ..GcConfig::default()
    })
    .expect("gc");
    gcw::array_test(
        &mut gc,
        gcw::ArrayTestParams {
            array_words: 32 * 1024,
            replacements: 1_500,
            mutator_cycles: 200,
            seed: 5,
        },
    )
    .expect("workload")
    .micros
}

/// Simulated cycles for a protect-store-fault-reprotect loop with and
/// without eager amplification.
fn barrier_loop(eager: bool, rounds: u32) -> u64 {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .eager_amplification(eager)
        .build()
        .expect("host");
    let base = h.alloc_region(4096, Prot::ReadWrite).expect("region");
    h.store_u32(base, 0).expect("touch");
    if eager {
        h.set_handler(HandlerSpec::new(|_, _| HandlerAction::Retry));
    } else {
        h.set_handler(HandlerSpec::new(|ctx, info| {
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .expect("amplify");
            HandlerAction::Retry
        }));
    }
    let start = h.cycles();
    for i in 0..rounds {
        h.protect(Protection::region(base, 4096).read_only())
            .expect("protect");
        h.store_u32(base, i).expect("store");
    }
    h.cycles() - start
}

fn bench(c: &mut Criterion) {
    println!(
        "[ablation] eager amplification: {} cycles/fault vs {} without",
        barrier_loop(true, 50) / 50,
        barrier_loop(false, 50) / 50
    );
    {
        let mut s = System::builder()
            .delivery(DeliveryPath::FastUser)
            .build()
            .expect("boot");
        let emul = s.measure_subpage_emulation().expect("emulation");
        println!("[ablation] subpage kernel emulation: {emul} cycles per store");
    }
    println!(
        "[ablation] GC barrier granularity: page {:.0} us, subpage {:.0} us, checks {:.0} us",
        gc_barrier_granularity(BarrierKind::PageProtection),
        gc_barrier_granularity(BarrierKind::SubpageProtection),
        gc_barrier_granularity(BarrierKind::SoftwareCheck),
    );
    for r in efex_bench::dsm_comparison(30).expect("dsm") {
        println!(
            "[ablation] dsm ping-pong on {:<18} {:>9.0} us ({} faults)",
            r.path.to_string(),
            r.total_us,
            r.faults
        );
    }

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("eager_amplification_on", |b| {
        b.iter(|| black_box(barrier_loop(true, 20)))
    });
    g.bench_function("eager_amplification_off", |b| {
        b.iter(|| black_box(barrier_loop(false, 20)))
    });
    g.bench_function("hw_vectoring_roundtrip", |b| {
        b.iter(|| {
            let us = System::builder()
                .delivery(DeliveryPath::HardwareVectored)
                .build()
                .expect("boot")
                .measure_null_roundtrip(ExceptionKind::Breakpoint)
                .expect("measure")
                .total_micros();
            black_box(us)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
