//! Table 4 bench: the generational-GC workloads under each barrier and
//! delivery mechanism (reduced scale under the timer; the full-scale
//! numbers come from `tables --table4`).

use criterion::{criterion_group, criterion_main, Criterion};
use efex_core::DeliveryPath;
use efex_gc::{workloads, BarrierKind, Gc, GcConfig};
use std::hint::black_box;

fn run_lisp(path: DeliveryPath, barrier: BarrierKind, eager: bool) -> f64 {
    let mut gc = Gc::new(GcConfig {
        path,
        barrier,
        eager_amplification: eager,
        heap_bytes: 4 * 1024 * 1024,
        minor_threshold: 16 * 1024,
        ..GcConfig::default()
    })
    .expect("gc");
    workloads::lisp_ops(
        &mut gc,
        workloads::LispOpsParams {
            iterations: 10,
            depth: 6,
            table_pages: 32,
            stores_per_iteration: 20,
            mutator_cycles: 10_000,
            seed: 1,
        },
    )
    .expect("workload")
    .micros
}

fn bench(c: &mut Criterion) {
    let rows = efex_bench::table4(efex_bench::Table4Scale {
        lisp_iterations: 20,
        lisp_depth: 6,
        array_words: 32 * 1024,
        array_replacements: 2_000,
    })
    .expect("table4");
    for r in &rows {
        println!(
            "[table4-small] {:<18} improvement {:>5.1}% (paper {:>3.0}%), {} faults",
            r.application, r.improvement_pct, r.paper_improvement_pct, r.faults
        );
    }
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    for (name, path, barrier, eager) in [
        (
            "lisp_sigsegv_mprotect",
            DeliveryPath::UnixSignals,
            BarrierKind::PageProtection,
            false,
        ),
        (
            "lisp_fast_eager",
            DeliveryPath::FastUser,
            BarrierKind::PageProtection,
            true,
        ),
        (
            "lisp_software_checks",
            DeliveryPath::FastUser,
            BarrierKind::SoftwareCheck,
            false,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_lisp(path, barrier, eager)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
