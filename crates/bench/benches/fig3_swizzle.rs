//! Figure 3 bench: software checks vs exception-based residency detection
//! in the persistent store.

use criterion::{criterion_group, criterion_main, Criterion};
use efex_core::DeliveryPath;
use efex_pstore::{workloads, Policy, PstoreConfig, StableGraph, Strategy};
use std::hint::black_box;

fn run(strategy: Strategy, path: DeliveryPath, uses: u32) -> f64 {
    workloads::pointer_uses(
        StableGraph::random(20, 50, 40, 0xf3),
        PstoreConfig {
            strategy,
            policy: Policy::Lazy,
            path,
            ..PstoreConfig::default()
        },
        uses,
    )
    .expect("workload")
    .micros
}

fn bench(c: &mut Criterion) {
    for m in efex_bench::figure3_measured(&[1, 20, 60]).expect("fig3") {
        println!(
            "[fig3] u={:<3} checks {:>6.0} us, fast exc {:>6.0} us, signals {:>6.0} us",
            m.uses_per_pointer, m.checks_us, m.fast_exceptions_us, m.signal_exceptions_us
        );
    }
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for (name, strategy, path, uses) in [
        (
            "checks_u20",
            Strategy::SoftwareCheck,
            DeliveryPath::FastUser,
            20,
        ),
        (
            "fast_exceptions_u20",
            Strategy::Unaligned,
            DeliveryPath::FastUser,
            20,
        ),
        (
            "signal_exceptions_u20",
            Strategy::Unaligned,
            DeliveryPath::UnixSignals,
            20,
        ),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(run(strategy, path, uses))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
