//! Table 2 bench: the guest microbenchmarks measuring exception delivery
//! and return on each path.

use criterion::{criterion_group, criterion_main, Criterion};
use efex_core::{DeliveryPath, ExceptionKind, System};
use std::hint::black_box;

fn measure(path: DeliveryPath, kind: ExceptionKind) -> f64 {
    System::builder()
        .delivery(path)
        .build()
        .expect("boot")
        .measure_null_roundtrip(kind)
        .expect("measure")
        .total_micros()
}

fn bench(c: &mut Criterion) {
    for r in efex_bench::table2().expect("table2") {
        println!(
            "[table2] {:<48} fast {:>5.1} us (paper {:>3.0})",
            r.operation, r.fast_us, r.paper_fast_us
        );
    }
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for (name, path, kind) in [
        (
            "unix_simple",
            DeliveryPath::UnixSignals,
            ExceptionKind::Breakpoint,
        ),
        (
            "fast_simple",
            DeliveryPath::FastUser,
            ExceptionKind::Breakpoint,
        ),
        (
            "hw_simple",
            DeliveryPath::HardwareVectored,
            ExceptionKind::Breakpoint,
        ),
        (
            "fast_write_prot",
            DeliveryPath::FastUser,
            ExceptionKind::WriteProtect,
        ),
        (
            "fast_subpage",
            DeliveryPath::FastUser,
            ExceptionKind::Subpage,
        ),
        (
            "fast_unaligned_specialized",
            DeliveryPath::FastUser,
            ExceptionKind::UnalignedSpecialized,
        ),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(measure(path, kind))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
