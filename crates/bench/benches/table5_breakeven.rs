//! Table 5 bench: the write-barrier break-even model over the Hosking &
//! Moss application parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use efex_analysis::gc::{breakeven_exception_micros, table5_apps};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for r in efex_bench::table5() {
        println!(
            "[table5] {:<14} breakeven {:>6.1} us  fast wins: {}",
            r.application, r.breakeven_us, r.fast_wins
        );
    }
    c.bench_function("table5/breakeven_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (_, p) in table5_apps() {
                acc += breakeven_exception_micros(black_box(p));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
