//! Table 1 bench: evaluating the conventional-OS delivery cost models.
//!
//! The scientific output is the `tables --table1` binary; this bench keeps
//! the model evaluation itself under the timer so regressions in the model
//! code are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Print the simulated results once, so `cargo bench` output documents
    // the table alongside the host-time measurement.
    for r in efex_bench::table1() {
        println!(
            "[table1] {:<44} round trip {:>7.0} us",
            r.system, r.round_trip_us
        );
    }
    c.bench_function("table1/model_evaluation", |b| {
        b.iter(|| {
            let rows = efex_bench::table1();
            black_box(rows.len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
