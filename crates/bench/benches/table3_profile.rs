//! Table 3 bench: profiling the guest kernel fast-path handler's phase
//! instruction counts.

use criterion::{criterion_group, criterion_main, Criterion};
use efex_core::{DeliveryPath, System};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = efex_bench::table3().expect("table3");
    for r in &rows {
        println!(
            "[table3] {:<28} measured {:>3} (paper {:>3})",
            r.name, r.measured_instructions, r.paper_instructions
        );
    }
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("profile_one_delivery", |b| {
        b.iter(|| {
            let rows = System::builder()
                .delivery(DeliveryPath::FastUser)
                .build()
                .expect("boot")
                .measure_table3()
                .expect("profile");
            black_box(rows.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
