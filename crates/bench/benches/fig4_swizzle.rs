//! Figure 4 bench: eager vs lazy swizzling at several use densities.

use criterion::{criterion_group, criterion_main, Criterion};
use efex_core::DeliveryPath;
use efex_pstore::{workloads, Policy, PstoreConfig, StableGraph, Strategy};
use std::hint::black_box;

fn run(strategy: Strategy, policy: Policy, used: u32) -> f64 {
    workloads::sparse_traversal(
        StableGraph::random(32, 50, 50, 0xf4),
        PstoreConfig {
            strategy,
            policy,
            path: DeliveryPath::FastUser,
            ..PstoreConfig::default()
        },
        used,
        16,
    )
    .expect("workload")
    .micros
}

fn bench(c: &mut Criterion) {
    for m in efex_bench::figure4_measured(&[2, 25, 50]).expect("fig4") {
        println!(
            "[fig4] pu={:<3} eager {:>7.0} us, lazy {:>7.0} us",
            m.pointers_used, m.eager_us, m.lazy_us
        );
    }
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for (name, strategy, policy, used) in [
        ("eager_dense", Strategy::ProtFault, Policy::Eager, 50),
        ("lazy_dense", Strategy::Unaligned, Policy::Lazy, 50),
        ("eager_sparse", Strategy::ProtFault, Policy::Eager, 2),
        ("lazy_sparse", Strategy::Unaligned, Policy::Lazy, 2),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(run(strategy, policy, used))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
