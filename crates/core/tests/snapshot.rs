//! Snapshot/restore fidelity: a checkpoint taken mid-run, serialized,
//! deserialized and restored into a freshly booted receiver must resume
//! bit-exactly — same final register digest, same cycle count, same exit —
//! as the uninterrupted run, for every Table 2 delivery row, under both
//! execution engines, and regardless of what the receiver ran before
//! (live decode/superblock caches must be invalidated by restore).

use efex_core::{DeliveryPath, ExceptionKind, System, SystemSnapshot};
use efex_mips::machine::{ExecEngine, MachineConfig};
use efex_simos::RunOutcome;
use proptest::prelude::*;

/// Every Table 2 delivery row (same set the bench harness measures).
const COMBOS: &[(DeliveryPath, ExceptionKind)] = &[
    (DeliveryPath::FastUser, ExceptionKind::Breakpoint),
    (DeliveryPath::FastUser, ExceptionKind::WriteProtect),
    (DeliveryPath::FastUser, ExceptionKind::Subpage),
    (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized),
    (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect),
];

fn source_for(path: DeliveryPath, kind: ExceptionKind) -> String {
    use efex_core::debug_progs as progs;
    const ITERS: u32 = 2;
    match (path, kind) {
        (DeliveryPath::FastUser, ExceptionKind::Breakpoint) => progs::fast_simple_bench(ITERS),
        (DeliveryPath::FastUser, ExceptionKind::WriteProtect) => progs::fast_prot_bench(ITERS),
        (DeliveryPath::FastUser, ExceptionKind::Subpage) => progs::fast_subpage_bench(ITERS),
        (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized) => {
            progs::fast_unaligned_specialized_bench(ITERS)
        }
        (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint) => {
            progs::hw_simple_bench(ITERS)
        }
        (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint) => progs::unix_simple_bench(ITERS),
        (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect) => progs::unix_prot_bench(ITERS),
        _ => unreachable!(),
    }
}

fn boot(path: DeliveryPath, engine: ExecEngine) -> System {
    System::builder()
        .delivery(path)
        .machine_config(MachineConfig::default().engine(engine))
        .build()
        .expect("boot")
}

/// Loads the row's guest program and leaves the system ready to step.
fn load(sys: &mut System, path: DeliveryPath, kind: ExceptionKind) {
    let source = source_for(path, kind);
    let prog = sys
        .kernel_mut()
        .load_user_program(&source)
        .expect("assemble");
    let sp = sys.kernel_mut().setup_stack(16).expect("stack");
    if path == DeliveryPath::HardwareVectored {
        let cp0 = sys.kernel_mut().machine_mut().cp0_mut();
        cp0.status |= efex_mips::cp0::status::UXE;
        cp0.uxm = efex_simos::fastexc::FastExcState::allowed_mask();
    }
    sys.kernel_mut().exec(prog.entry(), sp);
}

/// Runs to completion one retired instruction at a time; returns the step
/// count and exit outcome.
fn finish(sys: &mut System) -> (u64, RunOutcome) {
    let mut steps = 0u64;
    loop {
        steps += 1;
        match sys.kernel_mut().run_user(1).expect("run") {
            RunOutcome::StepLimit => continue,
            out => return (steps, out),
        }
    }
}

/// Digest + cycle fingerprint of the final state.
fn fingerprint(sys: &System) -> (u64, u64) {
    let m = sys.kernel().machine();
    (m.step_digest(), m.cycles())
}

#[test]
fn mid_run_snapshot_resumes_bit_exact_every_row_both_engines() {
    for engine in [ExecEngine::Interpreter, ExecEngine::Superblock] {
        for &(path, kind) in COMBOS {
            // Reference: uninterrupted run.
            let mut a = boot(path, engine);
            load(&mut a, path, kind);
            let (steps, a_out) = finish(&mut a);
            let a_fp = fingerprint(&a);

            // Run B: snapshot at the midpoint (through the wire), then
            // keep going — taking a snapshot must not perturb the run.
            let mut b = boot(path, engine);
            load(&mut b, path, kind);
            for _ in 0..steps / 2 {
                assert_eq!(b.kernel_mut().run_user(1).unwrap(), RunOutcome::StepLimit);
            }
            let bytes = b.snapshot().to_bytes();
            let (_, b_out) = finish(&mut b);
            assert_eq!(
                b_out, a_out,
                "{path} {kind:?} {engine:?}: snapshot perturbed the run"
            );
            assert_eq!(fingerprint(&b), a_fp, "{path} {kind:?} {engine:?}");

            // Run C: fresh boot, restore the deserialized snapshot, resume.
            let snap = SystemSnapshot::from_bytes(&bytes).expect("decode");
            let mut c = boot(path, engine);
            c.restore(&snap).expect("restore");
            let (_, c_out) = finish(&mut c);
            assert_eq!(
                c_out, a_out,
                "{path} {kind:?} {engine:?}: restored run diverged"
            );
            assert_eq!(
                fingerprint(&c),
                a_fp,
                "{path} {kind:?} {engine:?}: restored run diverged"
            );
        }
    }
}

/// Restore into a receiver whose decode and superblock caches are hot from
/// running a *different* program: stale cached translations must not leak
/// into the resumed run.
#[test]
fn restore_invalidates_live_caches() {
    for engine in [ExecEngine::Interpreter, ExecEngine::Superblock] {
        let (path, kind) = (DeliveryPath::FastUser, ExceptionKind::Breakpoint);

        let mut a = boot(path, engine);
        load(&mut a, path, kind);
        let mut b = boot(path, engine);
        load(&mut b, path, kind);
        for _ in 0..200 {
            assert_eq!(b.kernel_mut().run_user(1).unwrap(), RunOutcome::StepLimit);
        }
        let snap = b.snapshot();
        let (_, a_out) = finish(&mut a);
        let a_fp = fingerprint(&a);

        // Warm the receiver's caches on an unrelated guest program first.
        let mut c = boot(path, engine);
        c.run_program(
            &source_for(DeliveryPath::FastUser, ExceptionKind::WriteProtect),
            1_000_000,
        )
        .expect("warm-up run");
        c.restore(&snap).expect("restore over live caches");
        let (_, c_out) = finish(&mut c);
        assert_eq!(
            c_out, a_out,
            "{engine:?}: stale cache state leaked into resumed run"
        );
        assert_eq!(
            fingerprint(&c),
            a_fp,
            "{engine:?}: stale cache state leaked into resumed run"
        );
    }
}

/// A snapshot taken under one engine restores into a receiver running the
/// other engine and still resumes bit-exactly — the engines are
/// bit-identical, and restore keeps the receiver's configuration.
#[test]
fn snapshots_restore_across_engines() {
    let (path, kind) = (DeliveryPath::FastUser, ExceptionKind::Subpage);
    let mut a = boot(path, ExecEngine::Interpreter);
    load(&mut a, path, kind);
    let (steps, a_out) = finish(&mut a);
    let a_fp = fingerprint(&a);

    let mut b = boot(path, ExecEngine::Interpreter);
    load(&mut b, path, kind);
    for _ in 0..steps / 3 {
        assert_eq!(b.kernel_mut().run_user(1).unwrap(), RunOutcome::StepLimit);
    }
    let snap = b.snapshot();

    let mut c = boot(path, ExecEngine::Superblock);
    c.restore(&snap).expect("cross-engine restore");
    let (_, c_out) = finish(&mut c);
    assert_eq!(c_out, a_out);
    assert_eq!(fingerprint(&c), a_fp, "cross-engine resume diverged");
}

/// Snapshot at every step through the exception-delivery window — from
/// just before the fault is raised, through the comm-frame save, across
/// every instruction of the user handler, to the resume — and verify each
/// one restores and finishes identically. The fast-user "vulnerable
/// window" (comm frame live, handler not yet returned) consists entirely
/// of guest memory and CP0 state, so it round-trips like any other step;
/// this test is the proof.
#[test]
fn snapshot_inside_vulnerable_window_round_trips() {
    let (path, kind) = (DeliveryPath::FastUser, ExceptionKind::Breakpoint);
    let engine = ExecEngine::Interpreter;

    // Reference run; find the step that raised the first exception.
    let mut a = boot(path, engine);
    load(&mut a, path, kind);
    let mut first_exc_step = None;
    let mut steps = 0u64;
    let a_out = loop {
        steps += 1;
        let out = a.kernel_mut().run_user(1).expect("run");
        if first_exc_step.is_none() && a.kernel().machine().exceptions_taken() > 0 {
            first_exc_step = Some(steps);
        }
        if out != RunOutcome::StepLimit {
            break out;
        }
    };
    let a_fp = fingerprint(&a);
    let exc = first_exc_step.expect("benchmark raised no exception");

    // Every step from 2 before the fault to 40 into the handler.
    let from = exc.saturating_sub(2);
    let to = (exc + 40).min(steps - 1);
    let mut b = boot(path, engine);
    load(&mut b, path, kind);
    for _ in 0..from {
        assert_eq!(b.kernel_mut().run_user(1).unwrap(), RunOutcome::StepLimit);
    }
    for at in from..=to {
        let bytes = b.snapshot().to_bytes();
        let snap = SystemSnapshot::from_bytes(&bytes).expect("decode");
        let mut c = boot(path, engine);
        c.restore(&snap).expect("restore");
        let (_, c_out) = finish(&mut c);
        assert_eq!(c_out, a_out, "snapshot at step {at} diverged");
        assert_eq!(fingerprint(&c), a_fp, "snapshot at step {at} diverged");
        assert_eq!(b.kernel_mut().run_user(1).unwrap(), RunOutcome::StepLimit);
    }
}

/// Restoring across delivery paths is rejected with a typed error — the
/// measured costs are path-specific.
#[test]
fn cross_path_restore_is_rejected() {
    let mut fast = boot(DeliveryPath::FastUser, ExecEngine::Interpreter);
    let snap = fast.snapshot();
    let mut unix = boot(DeliveryPath::UnixSignals, ExecEngine::Interpreter);
    let err = unix.restore(&snap).unwrap_err();
    assert!(
        matches!(err, efex_core::CoreError::Invalid(_)),
        "expected Invalid, got {err}"
    );
}

/// Wrong-flavor bytes (a host snapshot fed to the system decoder) are a
/// typed error, not garbage state.
#[test]
fn wrong_flavor_bytes_are_rejected() {
    let mut host = efex_core::HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let bytes = host.snapshot().unwrap().to_bytes();
    let err = SystemSnapshot::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(err, efex_snap::SnapError::FlavorMismatch { .. }),
        "expected FlavorMismatch, got {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrarily mutated or truncated snapshot bytes never panic the
    /// decoder: every outcome is `Ok` or a typed `SnapError`. Mutations
    /// that dodge the checksum (we re-seal the frame after corrupting the
    /// payload) exercise the structural validation underneath it.
    #[test]
    fn mutated_snapshot_bytes_never_panic(
        flips in proptest::collection::vec((0usize..1_000_000, any::<u8>()), 1..8),
        cut in 0usize..1_000_000,
        reseal in any::<bool>(),
    ) {
        let mut sys = boot(DeliveryPath::FastUser, ExecEngine::Interpreter);
        load(&mut sys, DeliveryPath::FastUser, ExceptionKind::Breakpoint);
        for _ in 0..50 {
            sys.kernel_mut().run_user(1).unwrap();
        }
        let mut bytes = sys.snapshot().to_bytes();
        for (pos, val) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= val;
        }
        bytes.truncate(cut % bytes.len() + 1);
        if reseal && bytes.len() > 8 {
            // Recompute the trailing checksum so decoding reaches the
            // structural validators instead of stopping at the seal.
            let body = bytes.len() - 8;
            let sum = efex_snap::fnv64(&bytes[..body]);
            bytes[body..].copy_from_slice(&sum.to_le_bytes());
        }
        // Must not panic; corrupt inputs yield typed errors.
        let _ = SystemSnapshot::from_bytes(&bytes);
    }
}
