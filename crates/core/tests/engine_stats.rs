//! Engine-invariance of the measurement plane: any guest microbenchmark,
//! run under the superblock engine, must produce the same `RoundTrip`
//! figures and the same trace-metrics `StatsSnapshot` as the reference
//! interpreter — the numbers the paper reproduction reports cannot depend
//! on how the simulator executes the guest.

use efex_core::{DeliveryPath, ExceptionKind, System};
use efex_mips::machine::{ExecEngine, MachineConfig};
use efex_trace::Snapshot;
use proptest::prelude::*;

/// Every (path, kind) pair `measure_null_roundtrip` has a guest program for.
const COMBOS: &[(DeliveryPath, ExceptionKind)] = &[
    (DeliveryPath::FastUser, ExceptionKind::Breakpoint),
    (DeliveryPath::FastUser, ExceptionKind::WriteProtect),
    (DeliveryPath::FastUser, ExceptionKind::Subpage),
    (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized),
    (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint),
    (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect),
];

fn run(
    engine: ExecEngine,
    combos: &[usize],
) -> (
    Vec<efex_core::RoundTrip>,
    Vec<efex_trace::StatsSnapshot>,
    Vec<u64>,
) {
    let mut trips = Vec::new();
    let mut snaps = Vec::new();
    let mut cycles = Vec::new();
    for &i in combos {
        let (path, kind) = COMBOS[i];
        let mut sys = System::builder()
            .delivery(path)
            .machine_config(MachineConfig::default().engine(engine))
            .build()
            .expect("boot");
        trips.push(sys.measure_null_roundtrip(kind).expect("roundtrip"));
        snaps.push(sys.trace_metrics().snapshot());
        cycles.push(sys.kernel().machine().cycles());
    }
    (trips, snaps, cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Random sequences of microbenchmarks yield identical measurements
    /// under both engines.
    #[test]
    fn engines_produce_identical_stats_snapshots(
        combos in proptest::collection::vec(0usize..COMBOS.len(), 1..4),
    ) {
        let interp = run(ExecEngine::Interpreter, &combos);
        let sb = run(ExecEngine::Superblock, &combos);
        prop_assert_eq!(&interp.0, &sb.0, "RoundTrip figures diverged");
        prop_assert_eq!(&interp.1, &sb.1, "trace StatsSnapshots diverged");
        prop_assert_eq!(&interp.2, &sb.2, "machine cycle counts diverged");
    }
}

/// Deterministic spot-check of every combo (proptest samples; this pins).
#[test]
fn every_microbenchmark_is_engine_invariant() {
    let all: Vec<usize> = (0..COMBOS.len()).collect();
    let interp = run(ExecEngine::Interpreter, &all);
    let sb = run(ExecEngine::Superblock, &all);
    assert_eq!(interp.0, sb.0, "RoundTrip figures diverged");
    assert_eq!(interp.1, sb.1, "trace StatsSnapshots diverged");
    assert_eq!(interp.2, sb.2, "machine cycle counts diverged");
}
