//! Tests of `HandlerAction::Emulate`: the handler completes the access
//! with kernel rights and the protection stays in place.

use efex_core::{
    CoreError, DeliveryPath, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot, Protection,
};

#[test]
fn emulated_stores_land_and_keep_protection() {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
    h.store_u32(base, 0).unwrap();
    h.protect(Protection::region(base, 4096).read_only())
        .unwrap();
    h.set_handler(HandlerSpec::new(|_, _| HandlerAction::Emulate));
    for i in 1..=5 {
        h.store_u32(base + 4 * i, i).unwrap();
    }
    assert_eq!(h.stats().faults_delivered, 5, "every store still faults");
    for i in 1..=5 {
        assert_eq!(h.load_u32(base + 4 * i).unwrap(), i);
    }
}

#[test]
fn emulated_loads_return_the_real_value() {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
    h.store_u32(base + 8, 77).unwrap();
    // Revoke ALL access: loads fault too (read-watchpoint style).
    h.protect(Protection::region(base, 4096).no_access())
        .unwrap();
    h.set_handler(HandlerSpec::new(|_, _| HandlerAction::Emulate));
    assert_eq!(h.load_u32(base + 8).unwrap(), 77);
    assert_eq!(h.stats().faults_delivered, 1);
    // Still protected: the next load faults again.
    assert_eq!(h.load_u32(base + 8).unwrap(), 77);
    assert_eq!(h.stats().faults_delivered, 2);
}

#[test]
fn store_value_reaches_the_handler() {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
    h.store_u32(base, 0).unwrap();
    h.protect(Protection::region(base, 4096).read_only())
        .unwrap();
    use std::cell::Cell;
    use std::rc::Rc;
    let seen: Rc<Cell<Option<u32>>> = Rc::default();
    let s2 = seen.clone();
    h.set_handler(HandlerSpec::new(move |_, info| {
        s2.set(info.value);
        HandlerAction::Emulate
    }));
    h.store_u32(base, 0xabcd).unwrap();
    assert_eq!(seen.get(), Some(0xabcd));
}

#[test]
fn loads_carry_no_store_value() {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let base = h.alloc_region(4096, Prot::None).unwrap();
    use std::cell::Cell;
    use std::rc::Rc;
    let seen: Rc<Cell<Option<Option<u32>>>> = Rc::default();
    let s2 = seen.clone();
    h.set_handler(HandlerSpec::new(move |_, info| {
        s2.set(Some(info.value));
        HandlerAction::Emulate
    }));
    let _ = h.load_u32(base);
    assert_eq!(seen.get(), Some(None));
}

#[test]
fn abort_from_emulating_handler_possible() {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let base = h.alloc_region(4096, Prot::Read).unwrap();
    h.set_handler(HandlerSpec::new(|_, info| {
        if info.vaddr % 8 == 0 {
            HandlerAction::Emulate
        } else {
            HandlerAction::Abort
        }
    }));
    assert!(h.store_u32(base, 1).is_ok());
    assert!(matches!(
        h.store_u32(base + 4, 1),
        Err(CoreError::Aborted(_))
    ));
}
