use efex_core::{DeliveryPath, ExceptionKind, System};

#[test]
#[ignore = "prints measured microbenchmark numbers"]
fn print_numbers() {
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        for kind in [
            ExceptionKind::Breakpoint,
            ExceptionKind::WriteProtect,
            ExceptionKind::Subpage,
            ExceptionKind::UnalignedSpecialized,
        ] {
            let mut s = System::builder().delivery(path).build().unwrap();
            match s.measure_null_roundtrip(kind) {
                Ok(r) => println!(
                    "{path} {kind:?}: deliver {:.1}us ({}cy) return {:.1}us ({}cy) total {:.1}us",
                    r.deliver_micros(),
                    r.deliver_cycles,
                    r.return_micros(),
                    r.return_cycles,
                    r.total_micros()
                ),
                Err(e) => println!("{path} {kind:?}: n/a ({e})"),
            }
        }
    }
    let mut s = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    println!(
        "subpage emulation: {} cycles",
        s.measure_subpage_emulation().unwrap()
    );
    let rows = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap()
        .measure_table3()
        .unwrap();
    for r in rows {
        println!(
            "table3 {}: measured {} paper {}",
            r.name, r.measured_instructions, r.paper_instructions
        );
    }
}
