//! The decode cache must actually *hit* on the delivery path, not merely be
//! transparent. A systematic slot-aliasing bug (user text and KSEG0 kernel
//! text evicting each other every exception) once drove the hit rate to
//! zero while every correctness test still passed — this pins the cache's
//! effectiveness, not just its invisibility.

use efex_core::{DeliveryPath, ExceptionKind, System};

#[test]
fn fast_path_delivery_hits_the_decode_cache() {
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    sys.measure_null_roundtrip(ExceptionKind::WriteProtect)
        .unwrap();
    let (hits, misses) = sys.kernel().machine().decode_cache_stats();
    assert!(
        hits > misses,
        "repeated deliveries re-execute the same user loop and kernel fast \
         path, so hits must dominate: {hits} hits vs {misses} misses"
    );
}

#[test]
fn every_delivery_path_keeps_a_warm_cache() {
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        let mut sys = System::builder().delivery(path).build().unwrap();
        sys.measure_null_roundtrip(ExceptionKind::Breakpoint)
            .unwrap();
        let (hits, misses) = sys.kernel().machine().decode_cache_stats();
        // The signal path runs more once-executed setup code than the fast
        // paths, so only require a substantial hit share, not a majority.
        assert!(
            hits * 2 > misses,
            "{path:?}: {hits} hits vs {misses} misses"
        );
    }
}
