//! The crate error type.

use std::error::Error;
use std::fmt;

use efex_simos::KernelError;

/// Errors surfaced by the efex-core API.
#[derive(Debug)]
pub enum CoreError {
    /// An underlying kernel/machine failure.
    Kernel(KernelError),
    /// A guest microbenchmark did not behave as expected (simulator bug).
    Measurement(String),
    /// Invalid configuration or argument.
    Invalid(String),
    /// A fault was raised while already inside a fault handler — the
    /// recursive-exception case the paper routes to the kernel as an error
    /// (Section 2.2).
    RecursiveFault(crate::host::FaultInfo),
    /// The handler aborted the access.
    Aborted(crate::host::FaultInfo),
    /// An access faulted with no handler registered.
    Unhandled(crate::host::FaultInfo),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Kernel(e) => write!(f, "kernel error: {e}"),
            CoreError::Measurement(s) => write!(f, "measurement failed: {s}"),
            CoreError::Invalid(s) => write!(f, "invalid argument: {s}"),
            CoreError::RecursiveFault(i) => write!(f, "recursive fault: {i}"),
            CoreError::Aborted(i) => write!(f, "access aborted by handler: {i}"),
            CoreError::Unhandled(i) => write!(f, "unhandled fault: {i}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for CoreError {
    fn from(e: KernelError) -> CoreError {
        CoreError::Kernel(e)
    }
}
