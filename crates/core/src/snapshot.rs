//! System- and host-level checkpoint state and its wire encoding.
//!
//! Both structs wrap a kernel image ([`efex_simos::snapshot::KernelState`])
//! and add the layer's own identity and host-modeled state:
//!
//! - [`SystemSnapshot`] records the configured delivery path, so a
//!   fast-user checkpoint cannot be restored into a Unix-signals system
//!   and silently measure the wrong thing;
//! - [`HostSnapshot`] additionally carries the [`HostProcess`] accounting
//!   (stats, access cost, allocation cursor, degrade policy and any
//!   injected degradations still pending).
//!
//! What is deliberately *not* here: the registered fault handler. A
//! handler is an arbitrary host-side Rust closure — it cannot be
//! serialized, and pretending otherwise would be a lie in the format.
//! Restore keeps whatever handler the receiving process has registered;
//! [`HostProcess::snapshot`] refuses to run while a handler invocation is
//! on the host stack (`in_handler`), which is the one moment the closure's
//! own state would be load-bearing.
//!
//! [`HostProcess`]: crate::HostProcess
//! [`HostProcess::snapshot`]: crate::HostProcess::snapshot

use efex_simos::snapshot::KernelState;
use efex_snap::{Flavor, Reader, SnapError, Writer};

use crate::delivery::DeliveryPath;
use crate::host::{DegradePolicy, HostStats};

fn path_tag(p: DeliveryPath) -> u8 {
    match p {
        DeliveryPath::UnixSignals => 0,
        DeliveryPath::FastUser => 1,
        DeliveryPath::HardwareVectored => 2,
    }
}

fn path_from_tag(tag: u8) -> Result<DeliveryPath, SnapError> {
    match tag {
        0 => Ok(DeliveryPath::UnixSignals),
        1 => Ok(DeliveryPath::FastUser),
        2 => Ok(DeliveryPath::HardwareVectored),
        t => Err(SnapError::Corrupt(format!("delivery-path tag {t}"))),
    }
}

/// A checkpoint of a [`crate::System`]: delivery-path identity plus the
/// full kernel state.
#[derive(Clone, Debug)]
pub struct SystemSnapshot {
    /// The delivery path the system was built with. Restore requires the
    /// receiver to match.
    pub path: DeliveryPath,
    /// The complete kernel (and machine) state.
    pub kernel: KernelState,
}

impl SystemSnapshot {
    /// Serializes as a standalone [`Flavor::System`] artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(Flavor::System);
        w.u8(path_tag(self.path));
        self.kernel.encode(&mut w);
        w.finish()
    }

    /// Deserializes a standalone [`Flavor::System`] artifact.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on any malformation; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<SystemSnapshot, SnapError> {
        let mut r = Reader::open(bytes, Flavor::System)?;
        let path = path_from_tag(r.u8()?)?;
        let kernel = KernelState::decode(&mut r)?;
        r.done()?;
        Ok(SystemSnapshot { path, kernel })
    }
}

/// A checkpoint of a [`crate::HostProcess`]: delivery-path identity, the
/// full kernel state, and the host-side delivery accounting. The
/// registered handler closure is *not* part of the snapshot (see the
/// module docs); neither is the metrics/trace plane, which belongs to the
/// observer.
#[derive(Clone, Debug)]
pub struct HostSnapshot {
    /// The delivery path the process was built with.
    pub path: DeliveryPath,
    /// The complete kernel (and machine) state.
    pub kernel: KernelState,
    /// Host-side delivery counters.
    pub stats: HostStats,
    /// Cycles charged per raw host access.
    pub access_cost: u64,
    /// Bump-allocator cursor for [`crate::HostProcess::alloc_region`].
    pub next_alloc: u32,
    /// Recursive-fault degrade policy.
    pub degrade_policy: DegradePolicy,
    /// Injected degradations still pending consumption.
    pub degrade_next: u64,
}

impl HostSnapshot {
    /// Serializes as a standalone [`Flavor::Host`] artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(Flavor::Host);
        w.u8(path_tag(self.path));
        self.kernel.encode(&mut w);
        w.u64(self.stats.faults_delivered);
        w.u64(self.stats.accesses);
        w.u64(self.stats.protect_calls);
        w.u64(self.stats.eager_amplified);
        w.u64(self.stats.subpage_emulated);
        w.u64(self.stats.degraded_deliveries);
        w.u64(self.access_cost);
        w.u32(self.next_alloc);
        w.u8(match self.degrade_policy {
            DegradePolicy::Strict => 0,
            DegradePolicy::FallbackUnix => 1,
        });
        w.u64(self.degrade_next);
        w.finish()
    }

    /// Deserializes a standalone [`Flavor::Host`] artifact.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on any malformation; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<HostSnapshot, SnapError> {
        let mut r = Reader::open(bytes, Flavor::Host)?;
        let path = path_from_tag(r.u8()?)?;
        let kernel = KernelState::decode(&mut r)?;
        let stats = HostStats {
            faults_delivered: r.u64()?,
            accesses: r.u64()?,
            protect_calls: r.u64()?,
            eager_amplified: r.u64()?,
            subpage_emulated: r.u64()?,
            degraded_deliveries: r.u64()?,
        };
        let access_cost = r.u64()?;
        let next_alloc = r.u32()?;
        let degrade_policy = match r.u8()? {
            0 => DegradePolicy::Strict,
            1 => DegradePolicy::FallbackUnix,
            t => return Err(SnapError::Corrupt(format!("degrade-policy tag {t}"))),
        };
        let degrade_next = r.u64()?;
        r.done()?;
        Ok(HostSnapshot {
            path,
            kernel,
            stats,
            access_cost,
            next_alloc,
            degrade_policy,
            degrade_next,
        })
    }
}
