//! Host-level processes: Rust applications over the simulated MMU.
//!
//! The paper's application studies (garbage collection, pointer swizzling,
//! DSM, lazy data structures) are run-time systems that *use* the exception
//! mechanism. [`HostProcess`] lets those applications be written in Rust
//! while keeping the memory behaviour honest: every access goes through the
//! simulated page tables, protection faults are materialized, and each
//! delivery/return/protect operation charges the cycle cost measured for
//! the configured [`DeliveryPath`] on the instruction-level simulator.
//!
//! Handlers are Rust closures. As in the paper, a fault taken while a
//! handler is active is a *recursive exception* and is treated as an error
//! (Section 2.2).

use std::fmt;

use efex_mips::exception::ExcCode;
use efex_mips::machine::MachineConfig;
use efex_simos::kernel::{HostFault, Kernel, KernelConfig};
use efex_simos::layout::PAGE_SIZE;
use efex_simos::vm::FaultKind;
use efex_simos::Prot;
use efex_trace::{
    EventKind, FaultClass, Metrics, SharedSink, Snapshot, StatsSnapshot, TraceEvent, TracePath,
};

use crate::delivery::{DeliveryCosts, DeliveryPath};
use crate::error::CoreError;
use crate::guestmem::{GuestMem, Protection};

/// Information handed to a fault handler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultInfo {
    /// The hardware exception code.
    pub code: ExcCode,
    /// The faulting virtual address.
    pub vaddr: u32,
    /// Whether the access was a write.
    pub write: bool,
    /// The kernel's classification.
    pub kind: FaultKind,
    /// The value being stored, for write faults (handlers that emulate the
    /// access — debuggers, tracers — need it; a real handler would decode
    /// it from the faulting instruction's register).
    pub value: Option<u32>,
}

impl fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) at {:#010x} [{}]",
            self.code,
            self.kind,
            self.vaddr,
            if self.write { "write" } else { "read" }
        )
    }
}

/// What the handler wants done with the faulting access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HandlerAction {
    /// Retry the access (the handler has amplified protection, resolved the
    /// pointer, or otherwise fixed the cause).
    Retry,
    /// Retry at a different address — the unaligned-pointer idiom: the
    /// handler resolves the tagged pointer and redirects the access to the
    /// real (aligned) location.
    Redirect(u32),
    /// Complete the access with kernel rights and continue, leaving the
    /// protection in place — the watchpoint/tracing idiom: every later
    /// access to the page still faults.
    Emulate,
    /// Abort the access; the caller receives [`CoreError::Aborted`].
    Abort,
}

/// Capabilities a handler may exercise while servicing a fault.
///
/// This is the user-level run-time system's view of the kernel interface:
/// protection changes are charged at the configured path's cost (an
/// `mprotect` on the signal path, the lean call on the fast path, a
/// user-level `utlbp` on the hardware path).
pub struct FaultCtx<'a> {
    kernel: &'a mut Kernel,
    costs: &'a DeliveryCosts,
    stats: &'a mut HostStats,
}

impl FaultCtx<'_> {
    /// Changes protection on a page-aligned region, charging one
    /// protection call.
    ///
    /// # Errors
    ///
    /// Fails on unmapped pages or misalignment.
    pub fn protect(&mut self, region: Protection) -> Result<(), CoreError> {
        protect_charged(self.kernel, self.costs, self.stats, region)
    }

    /// Toggles subpage protection on a 1 KB-aligned range (Section 3.2.4),
    /// charging one lean protection call; armed when
    /// [`Protection::restricts_writes`].
    ///
    /// # Errors
    ///
    /// Fails on misalignment or unmapped pages.
    pub fn subpage_protect(&mut self, region: Protection) -> Result<(), CoreError> {
        self.stats.protect_calls += 1;
        self.kernel
            .sys_subpage_protect(region.base(), region.len(), region.restricts_writes())?;
        Ok(())
    }

    /// Reads a word bypassing protection (kernel rights) — handlers often
    /// need to inspect the faulting location.
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped.
    pub fn read_raw(&mut self, vaddr: u32) -> Result<u32, CoreError> {
        let bytes = self.kernel.host_read_bytes(vaddr, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Writes a word bypassing protection (kernel rights).
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped.
    pub fn write_raw(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError> {
        self.kernel
            .host_write_bytes(vaddr, &value.to_le_bytes())
            .map_err(CoreError::from)
    }

    /// Charges handler compute cycles (handlers model their own work).
    pub fn charge(&mut self, cycles: u64) {
        self.kernel.charge(cycles);
    }
}

/// Counters kept by a [`HostProcess`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Faults delivered to the handler.
    pub faults_delivered: u64,
    /// Loads + stores performed.
    pub accesses: u64,
    /// Protection-change calls.
    pub protect_calls: u64,
    /// Pages eagerly amplified before delivery.
    pub eager_amplified: u64,
    /// Kernel subpage emulations (invisible to the application).
    pub subpage_emulated: u64,
    /// Deliveries that could not take the configured path and fell back to
    /// Unix-signal costs (fault injection, recursive-fault fallback).
    pub degraded_deliveries: u64,
}

impl Snapshot for HostStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("host")
            .counter("faults_delivered", self.faults_delivered)
            .counter("accesses", self.accesses)
            .counter("protect_calls", self.protect_calls)
            .counter("eager_amplified", self.eager_amplified)
            .counter("subpage_emulated", self.subpage_emulated)
            .counter("degraded_deliveries", self.degraded_deliveries)
    }
}

/// What a [`HostProcess`] does when a delivery cannot take the configured
/// path — a recursive fault, or an injected loss of fast-path state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DegradePolicy {
    /// Recursive faults are errors (the paper's Section 2.2 semantics);
    /// injected degradations still fall back to Unix-signal costs.
    #[default]
    Strict,
    /// Recursive faults are completed with kernel rights at Unix-signal
    /// cost and counted as degraded deliveries — the application survives
    /// where `Strict` would surface [`CoreError::RecursiveFault`].
    FallbackUnix,
}

/// Builds a [`HostProcess`] — the same fluent shape as
/// [`System::builder`](crate::System::builder).
#[derive(Clone)]
pub struct HostBuilder {
    path: DeliveryPath,
    phys_bytes: usize,
    eager_amplification: bool,
    access_cost: u64,
    trace: Option<SharedSink>,
    degrade_policy: DegradePolicy,
    machine: Option<MachineConfig>,
}

impl fmt::Debug for HostBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostBuilder")
            .field("path", &self.path)
            .field("phys_bytes", &self.phys_bytes)
            .field("eager_amplification", &self.eager_amplification)
            .field("access_cost", &self.access_cost)
            .field("trace", &self.trace.is_some())
            .field("degrade_policy", &self.degrade_policy)
            .field("machine", &self.machine)
            .finish()
    }
}

impl Default for HostBuilder {
    fn default() -> HostBuilder {
        HostBuilder {
            path: DeliveryPath::FastUser,
            phys_bytes: efex_simos::layout::DEFAULT_PHYS_BYTES,
            eager_amplification: false,
            access_cost: 2,
            trace: None,
            degrade_policy: DegradePolicy::default(),
            machine: None,
        }
    }
}

impl HostBuilder {
    /// Selects the delivery path to model.
    pub fn delivery(mut self, path: DeliveryPath) -> HostBuilder {
        self.path = path;
        self
    }

    /// Sets the physical memory size for the underlying machine.
    pub fn phys_bytes(mut self, bytes: usize) -> HostBuilder {
        self.phys_bytes = bytes;
        self
    }

    /// Enables eager amplification (fast/hardware paths only;
    /// Section 3.2.3).
    pub fn eager_amplification(mut self, on: bool) -> HostBuilder {
        self.eager_amplification = on;
        self
    }

    /// Sets the cycles charged per application memory access (models the
    /// application's own load/store, warm cache).
    pub fn access_cost(mut self, cycles: u64) -> HostBuilder {
        self.access_cost = cycles;
        self
    }

    /// Routes exception lifecycle events to `sink` (shared with the
    /// kernel; the default [`NullSink`] drops them for free).
    ///
    /// [`NullSink`]: efex_trace::NullSink
    pub fn trace_sink(mut self, sink: SharedSink) -> HostBuilder {
        self.trace = Some(sink);
        self
    }

    /// Sets what happens when a delivery cannot take the configured path
    /// (default [`DegradePolicy::Strict`]).
    pub fn degrade_policy(mut self, policy: DegradePolicy) -> HostBuilder {
        self.degrade_policy = policy;
        self
    }

    /// Selects the machine configuration (execution engine, decode cache).
    /// Unset, the booting thread's scoped default applies — see
    /// [`efex_mips::machine::with_machine_config`].
    pub fn machine_config(mut self, cfg: MachineConfig) -> HostBuilder {
        self.machine = Some(cfg);
        self
    }

    /// Boots the kernel and creates the process.
    ///
    /// # Errors
    ///
    /// Fails if the kernel cannot boot.
    pub fn build(self) -> Result<HostProcess, CoreError> {
        let mut kernel = Kernel::boot(KernelConfig {
            phys_bytes: self.phys_bytes,
            machine: self.machine,
            ..KernelConfig::default()
        })?;
        kernel.set_trace_path(self.path.into());
        if let Some(sink) = self.trace {
            kernel.set_trace_sink(sink);
        }
        kernel.set_eager_amplification(
            self.eager_amplification && self.path != DeliveryPath::UnixSignals,
        );
        Ok(HostProcess {
            kernel,
            path: self.path,
            costs: DeliveryCosts::for_path(self.path),
            handler: None,
            handler_name: None,
            in_handler: false,
            stats: HostStats::default(),
            metrics: Metrics::new(),
            access_cost: self.access_cost,
            next_alloc: efex_simos::layout::USER_DATA_VADDR,
            degrade_policy: self.degrade_policy,
            degrade_next: 0,
        })
    }
}

type Handler = Box<dyn FnMut(&mut FaultCtx<'_>, FaultInfo) -> HandlerAction>;

/// A typed fault-handler registration: the closure plus a diagnostic name.
///
/// Built fluently, like every builder in the workspace:
///
/// ```no_run
/// use efex_core::{HandlerAction, HandlerSpec, HostProcess};
///
/// # fn main() -> Result<(), efex_core::CoreError> {
/// let mut host = HostProcess::builder().build()?;
/// host.set_handler(
///     HandlerSpec::new(|_ctx, _info| HandlerAction::Retry).named("gc-barrier"),
/// );
/// assert_eq!(host.handler_name(), Some("gc-barrier"));
/// # Ok(())
/// # }
/// ```
pub struct HandlerSpec {
    name: &'static str,
    handler: Handler,
}

impl HandlerSpec {
    /// Wraps a handler closure under the default name `"handler"`.
    pub fn new(
        handler: impl FnMut(&mut FaultCtx<'_>, FaultInfo) -> HandlerAction + 'static,
    ) -> HandlerSpec {
        HandlerSpec {
            name: "handler",
            handler: Box::new(handler),
        }
    }

    /// Names the handler for diagnostics (`Debug` output, fleet reports).
    pub fn named(mut self, name: &'static str) -> HandlerSpec {
        self.name = name;
        self
    }

    /// The diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for HandlerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerSpec")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A Rust application running over the simulated MMU with fault delivery.
pub struct HostProcess {
    kernel: Kernel,
    path: DeliveryPath,
    costs: DeliveryCosts,
    handler: Option<Handler>,
    handler_name: Option<&'static str>,
    in_handler: bool,
    stats: HostStats,
    metrics: Metrics,
    access_cost: u64,
    next_alloc: u32,
    degrade_policy: DegradePolicy,
    /// Deliveries remaining that are forced onto the Unix-cost fallback
    /// (fault injection: models comm-page loss at the host level).
    degrade_next: u64,
}

impl fmt::Debug for HostProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostProcess")
            .field("path", &self.path)
            .field("handler", &self.handler_name)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl HostProcess {
    /// Starts building a process (mirrors [`System::builder`]).
    ///
    /// [`System::builder`]: crate::System::builder
    pub fn builder() -> HostBuilder {
        HostBuilder::default()
    }

    /// The configured delivery path.
    pub fn path(&self) -> DeliveryPath {
        self.path
    }

    /// The cost profile in force.
    pub fn costs(&self) -> &DeliveryCosts {
        &self.costs
    }

    /// Simulated cycles so far.
    pub fn cycles(&self) -> u64 {
        self.kernel.cycles()
    }

    /// Simulated microseconds so far.
    pub fn micros(&self) -> f64 {
        self.kernel.micros()
    }

    /// Charges application compute cycles.
    pub fn charge(&mut self, cycles: u64) {
        self.kernel.charge(cycles);
    }

    /// The statistics counters.
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// Exception metrics: per-(path, class) counters, phase histograms, and
    /// per-page fault counts for the faults this process delivered.
    pub fn trace_metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Emits one lifecycle event stamped with the current cycle counter.
    fn emit(&self, kind: EventKind, class: FaultClass, fault: &HostFault) {
        self.kernel.trace_sink().emit(&TraceEvent {
            seq: 0,
            cycles: self.kernel.cycles(),
            kind,
            path: self.path.into(),
            class,
            exc_code: fault.code.code() as u8,
            vaddr: fault.vaddr,
            pc: 0,
        });
    }

    /// Read-only access to the underlying kernel (stats, page-table and
    /// machine inspection).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Access to the underlying kernel (advanced uses: subpage setup,
    /// TLB grants, page-table inspection).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Checkpoints this process: the full kernel state plus the host-side
    /// delivery accounting (stats, access cost, allocation cursor, degrade
    /// policy, pending injected degradations).
    ///
    /// The registered fault handler is a host-side Rust closure and is
    /// *never* serialized — restore keeps the receiver's handler (see
    /// [`crate::HostSnapshot`]). For the same reason a snapshot cannot be
    /// taken while a handler invocation is on the host stack: the
    /// closure's in-flight state would be load-bearing and unsaveable.
    /// Guest-side delivery state, including the vulnerable window between
    /// the comm-frame save and handler entry, lives entirely in guest
    /// memory and CP0 and round-trips fine.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] when called from inside a fault handler.
    pub fn snapshot(&mut self) -> Result<crate::HostSnapshot, CoreError> {
        if self.in_handler {
            return Err(CoreError::Invalid(
                "cannot checkpoint while a fault handler is running — the \
                 handler closure's state lives on the host stack"
                    .into(),
            ));
        }
        Ok(crate::HostSnapshot {
            path: self.path,
            kernel: self.kernel.snapshot(),
            stats: self.stats,
            access_cost: self.access_cost,
            next_alloc: self.next_alloc,
            degrade_policy: self.degrade_policy,
            degrade_next: self.degrade_next,
        })
    }

    /// Restores a checkpoint taken by [`HostProcess::snapshot`]. The
    /// receiver must be built with the same delivery path and must not be
    /// inside a handler invocation; it keeps its own registered handler
    /// closure and metrics/trace plane.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] on path mismatch or when called from inside
    /// a handler; kernel-level snapshot errors propagate as
    /// [`CoreError::Kernel`].
    pub fn restore(&mut self, s: &crate::HostSnapshot) -> Result<(), CoreError> {
        if self.in_handler {
            return Err(CoreError::Invalid(
                "cannot restore while a fault handler is running".into(),
            ));
        }
        if s.path != self.path {
            return Err(CoreError::Invalid(format!(
                "snapshot was taken on the {} path, this process delivers via {}",
                s.path, self.path
            )));
        }
        self.kernel.restore(&s.kernel)?;
        self.stats = s.stats;
        self.access_cost = s.access_cost;
        self.next_alloc = s.next_alloc;
        self.degrade_policy = s.degrade_policy;
        self.degrade_next = s.degrade_next;
        Ok(())
    }

    /// Health-plane snapshot: the kernel's [`Kernel::health_snapshot`]
    /// merged with this host's own delivery counters. Pure read — charges
    /// no simulated cycles.
    pub fn health_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.kernel.health_snapshot();
        snap.component = "host-health";
        for (name, value) in self.stats.snapshot().counters {
            // `degraded_deliveries` exists in both; the kernel's copy counts
            // the same degradations from the other side, so keep them
            // distinct rather than summing.
            if name == "degraded_deliveries" {
                snap.counters
                    .push(("host_degraded_deliveries".into(), value));
            } else {
                snap.counters.push((name, value));
            }
        }
        snap
    }

    /// Whether eager amplification is on.
    pub fn eager_amplification(&self) -> bool {
        self.kernel.process().fast.eager_amplification
    }

    /// Registers the fault handler, replacing any previous one.
    pub fn set_handler(&mut self, spec: HandlerSpec) {
        self.handler_name = Some(spec.name);
        self.handler = Some(spec.handler);
    }

    /// Removes the handler.
    pub fn clear_handler(&mut self) {
        self.handler = None;
        self.handler_name = None;
    }

    /// The registered handler's diagnostic name, if any.
    pub fn handler_name(&self) -> Option<&'static str> {
        self.handler_name
    }

    /// The degradation policy in force.
    pub fn degrade_policy(&self) -> DegradePolicy {
        self.degrade_policy
    }

    /// Fault injection: forces the next `n` deliveries onto the Unix-cost
    /// fallback (models the loss of fast-path state — e.g. an evicted comm
    /// page — at the host level). Handlers still run; the deliveries are
    /// counted in [`HostStats::degraded_deliveries`] and in the metrics
    /// snapshot's `degraded_deliveries` counter.
    pub fn inject_degrade_next_deliveries(&mut self, n: u64) {
        self.degrade_next = self.degrade_next.saturating_add(n);
    }

    /// Consumes one queued injected degradation, if any: counts it in
    /// [`HostStats::degraded_deliveries`] and the metrics, and returns
    /// `true`. Subsystems that drive their own fault handling off the
    /// kernel (the DSM coherence protocol reads faults directly) call this
    /// at their delivery point and charge Unix-signal costs when it fires;
    /// `HostProcess::deliver`-based subsystems never need it.
    pub fn consume_injected_degradation(&mut self, class: FaultClass) -> bool {
        if self.degrade_next == 0 {
            return false;
        }
        self.degrade_next -= 1;
        self.stats.degraded_deliveries += 1;
        self.metrics.record_degraded(self.path.into(), class);
        true
    }

    // --- memory management -------------------------------------------------

    /// Maps a page-aligned region with the given protection.
    ///
    /// # Errors
    ///
    /// Fails on overlap or misalignment.
    pub fn map(&mut self, vaddr: u32, len: u32, prot: Prot) -> Result<(), CoreError> {
        self.kernel.map_user_region(vaddr, len, prot)?;
        Ok(())
    }

    /// Allocates a fresh page-aligned region of at least `len` bytes in the
    /// data segment and returns its base address.
    ///
    /// # Errors
    ///
    /// Fails when the address space region is exhausted.
    pub fn alloc_region(&mut self, len: u32, prot: Prot) -> Result<u32, CoreError> {
        let len = (len + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
        let base = self.next_alloc;
        self.kernel.map_user_region(base, len, prot)?;
        // Leave a guard page between regions: stray accesses fault loudly.
        self.next_alloc = base + len + PAGE_SIZE;
        Ok(base)
    }

    // --- delivery ---------------------------------------------------------------

    fn deliver_store(&mut self, fault: HostFault, value: u32) -> Result<Deliverance, CoreError> {
        // Subpage engine first: an access to an unprotected subpage of a
        // managed page is emulated by the kernel, invisibly (Section 3.2.4).
        if fault.kind == FaultKind::Protection
            && self.kernel.process().subpage.manages(fault.vaddr)
            && !self.kernel.process().subpage.is_protected(fault.vaddr)
        {
            // Take the exception + emulate the store with kernel rights.
            self.kernel
                .charge(efex_mips::cycles::EXCEPTION_ENTRY + self.costs.subpage_emulate);
            self.kernel
                .host_write_bytes(fault.vaddr, &value.to_le_bytes())?;
            self.kernel.process_mut().stats.subpage_emulations += 1;
            self.stats.subpage_emulated += 1;
            self.metrics
                .record_page_fault(self.path.into(), FaultClass::Subpage, fault.vaddr);
            return Ok(Deliverance::Emulated);
        }
        self.deliver(fault, Some(value)).map(Deliverance::Handled)
    }

    fn deliver(
        &mut self,
        fault: HostFault,
        value: Option<u32>,
    ) -> Result<HandlerAction, CoreError> {
        let info = FaultInfo {
            code: fault.code,
            vaddr: fault.vaddr,
            write: fault.write,
            kind: fault.kind,
            value,
        };
        if self.in_handler {
            // Recursive exception. The paper routes these to the kernel as
            // errors (Section 2.2); under `FallbackUnix` the kernel instead
            // completes the access with kernel rights at Unix-signal cost
            // and counts the delivery as degraded.
            match self.degrade_policy {
                DegradePolicy::Strict => return Err(CoreError::RecursiveFault(info)),
                DegradePolicy::FallbackUnix => {
                    let unix = DeliveryCosts::for_path(DeliveryPath::UnixSignals);
                    self.kernel.charge(unix.simple_deliver + unix.simple_return);
                    self.stats.degraded_deliveries += 1;
                    let class = FaultClass::Other;
                    self.metrics.record_degraded(self.path.into(), class);
                    return Ok(HandlerAction::Emulate);
                }
            }
        }
        if self.handler.is_none() {
            return Err(CoreError::Unhandled(info));
        }

        // An injected degradation forces this delivery onto Unix-signal
        // costs: the handler still runs (the signal machinery reaches it),
        // but the fast path's cycle advantage is gone for this fault.
        let degraded = if self.degrade_next > 0 {
            self.degrade_next -= 1;
            true
        } else {
            false
        };
        let costs = if degraded {
            DeliveryCosts::for_path(DeliveryPath::UnixSignals)
        } else {
            self.costs
        };

        // Charge the delivery cost for this fault class on this path.
        let subpage = self.kernel.process().subpage.manages(fault.vaddr);
        let class = if subpage {
            FaultClass::Subpage
        } else {
            match fault.code {
                ExcCode::AddrErrLoad | ExcCode::AddrErrStore => FaultClass::Unaligned,
                ExcCode::Breakpoint => FaultClass::Breakpoint,
                _ => match fault.kind {
                    FaultKind::NotResident => FaultClass::PageFault,
                    FaultKind::Protection => FaultClass::WriteProtect,
                    FaultKind::NotMapped => FaultClass::Other,
                },
            }
        };
        let trace_path: TracePath = self.path.into();
        let t_raised = self.kernel.cycles();
        self.emit(EventKind::FaultRaised, class, &fault);
        self.emit(EventKind::KernelEntered, class, &fault);
        let deliver_cost = match (fault.kind, subpage) {
            (FaultKind::Protection | FaultKind::NotMapped, true) => costs.subpage_deliver,
            (FaultKind::Protection | FaultKind::NotMapped, false) if fault.code.is_tlb() => {
                costs.prot_deliver
            }
            _ => costs.simple_deliver,
        };
        self.kernel.charge(deliver_cost);
        if degraded {
            self.stats.degraded_deliveries += 1;
        }

        // Eager amplification: grant access before vectoring (Section 3.2.3).
        if self.eager_amplification()
            && fault.kind == FaultKind::Protection
            && self.kernel.process().space().pte(fault.vaddr).is_some()
        {
            let page = fault.vaddr & !(PAGE_SIZE - 1);
            self.kernel
                .process_mut()
                .space_mut()
                .protect_region(page, PAGE_SIZE, Prot::ReadWrite)
                .map_err(efex_simos::KernelError::Map)?;
            self.stats.eager_amplified += 1;
            self.kernel.process_mut().stats.eager_amplifications += 1;
        }

        // Subpage delivery amplifies the hardware page *before* vectoring
        // (Section 3.2.4: "the kernel enables user access to the entire
        // page and vectors to the user handler"); the handler may itself
        // re-enable protection checks afterwards.
        let amplified_subpage = subpage && fault.kind == FaultKind::Protection;
        if amplified_subpage {
            let page = fault.vaddr & !(PAGE_SIZE - 1);
            self.kernel
                .process_mut()
                .space_mut()
                .protect_region(page, PAGE_SIZE, Prot::ReadWrite)
                .map_err(efex_simos::KernelError::Map)?;
        }

        // Run the handler.
        let t_entered = self.kernel.cycles();
        self.emit(EventKind::StateSaved, class, &fault);
        self.emit(EventKind::HandlerEntered, class, &fault);
        self.metrics
            .record_deliver(trace_path, class, t_entered - t_raised);
        self.metrics
            .record_page_fault(trace_path, class, fault.vaddr);
        if degraded {
            self.metrics.record_degraded(trace_path, class);
        }
        self.in_handler = true;
        let Some(mut handler) = self.handler.take() else {
            // Checked above; a typed error beats a panic if a handler ever
            // unregisters itself mid-delivery.
            self.in_handler = false;
            return Err(CoreError::Unhandled(info));
        };
        let action = {
            let mut ctx = FaultCtx {
                kernel: &mut self.kernel,
                costs: &costs,
                stats: &mut self.stats,
            };
            handler(&mut ctx, info)
        };
        self.handler = Some(handler);
        self.in_handler = false;
        self.stats.faults_delivered += 1;
        let t_returned = self.kernel.cycles();
        self.emit(EventKind::HandlerReturned, class, &fault);
        self.metrics
            .record_handler(trace_path, class, t_returned - t_entered);

        // An emulating handler (watchpoints) keeps its protection: if the
        // page is still under subpage management, restore the hardware
        // write-protection the pre-vectoring amplification removed.
        if action == HandlerAction::Emulate
            && amplified_subpage
            && self.kernel.process().subpage.manages(fault.vaddr)
        {
            let page = fault.vaddr & !(PAGE_SIZE - 1);
            self.kernel
                .process_mut()
                .space_mut()
                .protect_region(page, PAGE_SIZE, Prot::Read)
                .map_err(efex_simos::KernelError::Map)?;
        }

        // Charge the return-to-application cost.
        self.kernel.charge(costs.simple_return);
        self.emit(EventKind::Resumed, class, &fault);
        self.metrics
            .record_return(trace_path, class, self.kernel.cycles() - t_returned);

        if action == HandlerAction::Abort {
            return Err(CoreError::Aborted(info));
        }
        Ok(action)
    }
}

impl GuestMem for HostProcess {
    /// Loads a word with full fault semantics: protection/unmapped faults
    /// are delivered to the registered handler on the configured path, then
    /// the access is retried (or redirected/emulated per the handler's
    /// [`HandlerAction`]).
    fn load_u32(&mut self, vaddr: u32) -> Result<u32, CoreError> {
        self.stats.accesses += 1;
        self.kernel.charge(self.access_cost);
        let mut addr = vaddr;
        for _attempt in 0..MAX_RETRIES {
            match self.kernel.host_load_u32(addr) {
                Ok(v) => return Ok(v),
                Err(fault) => match self.deliver(fault, None)? {
                    HandlerAction::Retry => {}
                    HandlerAction::Redirect(a) => addr = a,
                    HandlerAction::Emulate => {
                        // Perform the load with kernel rights, leaving the
                        // protection in place.
                        self.kernel.charge(efex_simos::costs::SUBPAGE_EMULATE);
                        let bytes = self.kernel.host_read_bytes(addr, 4)?;
                        return Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]));
                    }
                    HandlerAction::Abort => unreachable!("deliver maps Abort to Err"),
                },
            }
        }
        Err(CoreError::Measurement(format!(
            "load at {vaddr:#x} still faulting after {MAX_RETRIES} handler retries"
        )))
    }

    fn store_u32(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError> {
        self.stats.accesses += 1;
        self.kernel.charge(self.access_cost);
        let mut addr = vaddr;
        for _attempt in 0..MAX_RETRIES {
            match self.kernel.host_store_u32(addr, value) {
                Ok(()) => return Ok(()),
                Err(fault) => match self.deliver_store(fault, value)? {
                    Deliverance::Handled(HandlerAction::Retry) => {}
                    Deliverance::Handled(HandlerAction::Redirect(a)) => addr = a,
                    Deliverance::Handled(HandlerAction::Emulate) => {
                        self.kernel.charge(efex_simos::costs::SUBPAGE_EMULATE);
                        self.kernel.host_write_bytes(addr, &value.to_le_bytes())?;
                        return Ok(());
                    }
                    Deliverance::Handled(HandlerAction::Abort) => {
                        unreachable!("deliver maps Abort to Err")
                    }
                    Deliverance::Emulated => return Ok(()),
                },
            }
        }
        Err(CoreError::Measurement(format!(
            "store at {vaddr:#x} still faulting after {MAX_RETRIES} handler retries"
        )))
    }

    /// Reads a word with kernel rights (no faults, no delivery): run-time
    /// system internals such as GC scanning use this.
    fn read_raw(&mut self, vaddr: u32) -> Result<u32, CoreError> {
        let bytes = self.kernel.host_read_bytes(vaddr, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn write_raw(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError> {
        self.kernel
            .host_write_bytes(vaddr, &value.to_le_bytes())
            .map_err(CoreError::from)
    }

    /// Changes protection on a page-aligned region, charging one protection
    /// call on the configured delivery path plus per-page page-table work,
    /// and shooting down the affected TLB entries.
    fn protect(&mut self, region: Protection) -> Result<(), CoreError> {
        protect_charged(&mut self.kernel, &self.costs, &mut self.stats, region)
    }

    fn subpage_protect(&mut self, region: Protection) -> Result<(), CoreError> {
        self.stats.protect_calls += 1;
        self.kernel
            .sys_subpage_protect(region.base(), region.len(), region.restricts_writes())?;
        Ok(())
    }
}

enum Deliverance {
    Handled(HandlerAction),
    Emulated,
}

const MAX_RETRIES: u32 = 8;

fn protect_charged(
    kernel: &mut Kernel,
    costs: &DeliveryCosts,
    stats: &mut HostStats,
    region: Protection,
) -> Result<(), CoreError> {
    stats.protect_calls += 1;
    let pages = u64::from(region.len().div_ceil(PAGE_SIZE));
    kernel.charge(costs.protect_call + costs.protect_per_page * pages);
    // The uncharged kernel half does the page-table work; we already
    // charged the modeled cost above, so use the internal (free) interface.
    let touched = kernel
        .process_mut()
        .space_mut()
        .protect_region(region.base(), region.len(), region.prot())
        .map_err(efex_simos::KernelError::Map)?;
    let asid = kernel.process().space().asid();
    for page in touched {
        kernel.machine_mut().tlb_mut().invalidate_page(page, asid);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn host(path: DeliveryPath) -> HostProcess {
        HostProcess::builder().delivery(path).build().unwrap()
    }

    #[test]
    fn plain_access_round_trips() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(8192, Prot::ReadWrite).unwrap();
        h.store_u32(base + 4, 77).unwrap();
        assert_eq!(h.load_u32(base + 4).unwrap(), 77);
        assert_eq!(h.stats().faults_delivered, 0);
    }

    #[test]
    fn unhandled_protection_fault_errors() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::Read).unwrap();
        match h.store_u32(base, 1) {
            Err(CoreError::Unhandled(info)) => {
                assert_eq!(info.vaddr, base);
                assert!(info.write);
            }
            other => panic!("expected Unhandled, got {other:?}"),
        }
    }

    #[test]
    fn write_barrier_handler_amplifies_and_retries() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base, 0).unwrap();
        h.protect(Protection::region(base, 4096).read_only())
            .unwrap();
        let dirty: Rc<RefCell<Vec<u32>>> = Rc::default();
        let log = dirty.clone();
        h.set_handler(HandlerSpec::new(move |ctx, info| {
            log.borrow_mut().push(info.vaddr & !0xfff);
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .unwrap();
            HandlerAction::Retry
        }));
        h.store_u32(base + 8, 42).unwrap();
        assert_eq!(h.load_u32(base + 8).unwrap(), 42);
        assert_eq!(*dirty.borrow(), vec![base]);
        assert_eq!(h.stats().faults_delivered, 1);
        // Subsequent stores to the now-writable page are silent.
        h.store_u32(base + 12, 1).unwrap();
        assert_eq!(h.stats().faults_delivered, 1);
    }

    #[test]
    fn eager_amplification_spares_the_handler_a_protect_call() {
        let mut h = HostProcess::builder()
            .delivery(DeliveryPath::FastUser)
            .eager_amplification(true)
            .build()
            .unwrap();
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base, 0).unwrap();
        h.protect(Protection::region(base, 4096).read_only())
            .unwrap();
        h.set_handler(HandlerSpec::new(|_, _| HandlerAction::Retry)); // no protect needed
        h.store_u32(base, 9).unwrap();
        assert_eq!(h.stats().eager_amplified, 1);
        assert_eq!(h.load_u32(base).unwrap(), 9);
    }

    #[test]
    fn redirect_resolves_unaligned_pointers() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base + 16, 1234).unwrap();
        h.set_handler(HandlerSpec::new(move |_, info| {
            // Unaligned tag: real address is vaddr - 2.
            HandlerAction::Redirect(info.vaddr - 2)
        }));
        assert_eq!(h.load_u32(base + 18).unwrap(), 1234);
        assert_eq!(h.stats().faults_delivered, 1);
    }

    #[test]
    fn recursive_fault_is_an_error() {
        // A handler that itself triggers a protected access cannot be
        // delivered recursively; but the host API delivers faults only on
        // load_u32/store_u32 of the *application*, so recursion means the
        // handler called back into the app path. Simulate via Abort check:
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::Read).unwrap();
        h.set_handler(HandlerSpec::new(|_, _| HandlerAction::Abort));
        match h.store_u32(base, 1) {
            Err(CoreError::Aborted(_)) => {}
            other => panic!("expected Aborted, got {other:?}"),
        }
    }

    #[test]
    fn delivery_costs_accrue_per_path() {
        let mut cycle_counts = Vec::new();
        for path in [
            DeliveryPath::UnixSignals,
            DeliveryPath::FastUser,
            DeliveryPath::HardwareVectored,
        ] {
            let mut h = host(path);
            let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
            h.store_u32(base, 0).unwrap();
            h.protect(Protection::region(base, 4096).read_only())
                .unwrap();
            h.set_handler(HandlerSpec::new(move |ctx, info| {
                ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                    .unwrap();
                HandlerAction::Retry
            }));
            let before = h.cycles();
            h.store_u32(base, 1).unwrap();
            cycle_counts.push(h.cycles() - before);
        }
        assert!(
            cycle_counts[0] > 4 * cycle_counts[1],
            "signals {} vs fast {}",
            cycle_counts[0],
            cycle_counts[1]
        );
        assert!(
            cycle_counts[1] > cycle_counts[2],
            "fast {} vs hardware {}",
            cycle_counts[1],
            cycle_counts[2]
        );
    }

    #[test]
    fn subpage_managed_stores_emulate_invisibly() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base, 0).unwrap();
        // Protect only the first 1 KB subpage.
        h.subpage_protect(Protection::region(base, 1024).read_only())
            .unwrap();
        h.set_handler(HandlerSpec::new(|_, _| HandlerAction::Retry));
        // Store into an unprotected subpage: emulated, no handler call.
        h.store_u32(base + 2048, 5).unwrap();
        assert_eq!(h.stats().subpage_emulated, 1);
        assert_eq!(h.stats().faults_delivered, 0);
        assert_eq!(h.read_raw(base + 2048).unwrap(), 5);
        // Store into the protected subpage: delivered.
        h.store_u32(base + 4, 6).unwrap();
        assert_eq!(h.stats().faults_delivered, 1);
        assert_eq!(h.load_u32(base + 4).unwrap(), 6);
    }

    #[test]
    fn delivery_emits_ordered_lifecycle_events_and_metrics() {
        let ring = Rc::new(efex_trace::RingSink::new());
        let mut h = HostProcess::builder()
            .delivery(DeliveryPath::FastUser)
            .trace_sink(ring.clone())
            .build()
            .unwrap();
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base, 0).unwrap();
        h.protect(Protection::region(base, 4096).read_only())
            .unwrap();
        h.set_handler(HandlerSpec::new(move |ctx, info| {
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .unwrap();
            HandlerAction::Retry
        }));
        h.store_u32(base, 7).unwrap();

        use efex_trace::EventKind::*;
        let events = ring.events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                FaultRaised,
                KernelEntered,
                StateSaved,
                HandlerEntered,
                HandlerReturned,
                Resumed
            ]
        );
        assert!(events.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        assert!(events.iter().all(|e| e.vaddr == base));

        let m = h.trace_metrics();
        let k = m.kind(
            efex_trace::TracePath::FastUser,
            efex_trace::FaultClass::WriteProtect,
        );
        assert_eq!(k.count, 1);
        assert_eq!(k.deliver.count(), 1);
        assert_eq!(k.handler.count(), 1);
        assert_eq!(k.ret.count(), 1);
        assert_eq!(k.pages.get(&(base >> 12)), Some(&1));
    }

    #[test]
    fn injected_degradation_charges_unix_costs_and_counts() {
        let mut fast = host(DeliveryPath::FastUser);
        let mut degraded = host(DeliveryPath::FastUser);
        for h in [&mut fast, &mut degraded] {
            let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
            h.store_u32(base, 0).unwrap();
            h.protect(Protection::region(base, 4096).read_only())
                .unwrap();
            h.set_handler(HandlerSpec::new(move |ctx, info| {
                ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                    .unwrap();
                HandlerAction::Retry
            }));
        }
        let base = efex_simos::layout::USER_DATA_VADDR;
        degraded.inject_degrade_next_deliveries(1);

        let t0 = fast.cycles();
        fast.store_u32(base, 1).unwrap();
        let fast_cost = fast.cycles() - t0;
        let t0 = degraded.cycles();
        degraded.store_u32(base, 1).unwrap();
        let degraded_cost = degraded.cycles() - t0;

        assert!(
            degraded_cost > 3 * fast_cost,
            "degraded {degraded_cost} vs fast {fast_cost}"
        );
        assert_eq!(degraded.stats().degraded_deliveries, 1);
        assert_eq!(fast.stats().degraded_deliveries, 0);
        assert_eq!(degraded.read_raw(base).unwrap(), 1, "handler still ran");
        assert_eq!(degraded.stats().faults_delivered, 1);
        // The injection is one-shot: the next fault takes the fast path.
        degraded
            .protect(Protection::region(base, 4096).read_only())
            .unwrap();
        let t0 = degraded.cycles();
        degraded.store_u32(base, 2).unwrap();
        assert!(degraded.cycles() - t0 <= fast_cost + 16);
        assert_eq!(degraded.stats().degraded_deliveries, 1);
    }

    #[test]
    fn degraded_deliveries_reach_the_metrics_snapshot() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base, 0).unwrap();
        h.protect(Protection::region(base, 4096).read_only())
            .unwrap();
        h.set_handler(HandlerSpec::new(move |ctx, info| {
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .unwrap();
            HandlerAction::Retry
        }));
        h.inject_degrade_next_deliveries(1);
        h.store_u32(base, 1).unwrap();
        let snap = h.trace_metrics().snapshot();
        assert_eq!(snap.get("degraded_deliveries"), Some(1));
    }

    #[test]
    fn fallback_unix_policy_survives_recursive_faults() {
        // Drive deliver() with in_handler forced on — the recursive window
        // a fault inside a fault handler opens.
        let fault = HostFault {
            code: ExcCode::TlbMod,
            vaddr: 0x1000_0000,
            kind: FaultKind::Protection,
            write: true,
        };
        let mut strict = host(DeliveryPath::FastUser);
        strict.set_handler(HandlerSpec::new(|_, _| HandlerAction::Retry));
        strict.in_handler = true;
        assert!(matches!(
            strict.deliver(fault, None),
            Err(CoreError::RecursiveFault(_))
        ));

        let mut fallback = HostProcess::builder()
            .delivery(DeliveryPath::FastUser)
            .degrade_policy(DegradePolicy::FallbackUnix)
            .build()
            .unwrap();
        fallback.set_handler(HandlerSpec::new(|_, _| HandlerAction::Retry));
        fallback.in_handler = true;
        let t0 = fallback.cycles();
        let action = fallback.deliver(fault, None).unwrap();
        assert_eq!(action, HandlerAction::Emulate, "access completes inline");
        assert_eq!(fallback.stats().degraded_deliveries, 1);
        let unix = DeliveryCosts::for_path(DeliveryPath::UnixSignals);
        assert_eq!(fallback.cycles() - t0, unix.simple_round_trip());
    }

    #[test]
    fn guard_pages_between_regions_fault() {
        let mut h = host(DeliveryPath::FastUser);
        let a = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        let b = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        assert!(b >= a + 8192, "guard page must separate regions");
        assert!(matches!(h.load_u32(a + 4096), Err(CoreError::Unhandled(_))));
    }

    #[test]
    fn snapshot_inside_handler_is_rejected() {
        // The handler closure's in-flight state lives on the host stack and
        // cannot be serialized; both snapshot and restore refuse the window.
        let mut h = host(DeliveryPath::FastUser);
        let snap = h.snapshot().unwrap();
        h.in_handler = true;
        assert!(matches!(h.snapshot(), Err(CoreError::Invalid(_))));
        assert!(matches!(h.restore(&snap), Err(CoreError::Invalid(_))));
        h.in_handler = false;
        h.restore(&snap).unwrap();
    }

    #[test]
    fn host_snapshot_round_trips_accounting_and_memory() {
        let mut h = host(DeliveryPath::FastUser);
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        let hits = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let hits2 = hits.clone();
        h.set_handler(HandlerSpec::new(move |_, _| {
            hits2.set(hits2.get() + 1);
            HandlerAction::Emulate
        }));
        h.store_u32(base, 7).unwrap();
        h.protect(Protection::region(base, 4096).read_only())
            .unwrap();
        h.store_u32(base, 8).unwrap();
        let snap = h.snapshot().unwrap();
        let bytes = snap.to_bytes();

        // A fresh process (with its own handler re-registered) restored
        // from the wire continues with identical memory, stats and cycles.
        let mut g = host(DeliveryPath::FastUser);
        g.set_handler(HandlerSpec::new(|_, _| HandlerAction::Retry));
        g.restore(&crate::HostSnapshot::from_bytes(&bytes).unwrap())
            .unwrap();
        assert_eq!(g.cycles(), h.cycles(), "restored cycle clock diverged");
        assert_eq!(g.stats().faults_delivered, h.stats().faults_delivered);
        assert_eq!(g.load_u32(base).unwrap(), 8, "restored memory diverged");
        assert_eq!(hits.get(), 1, "original handler saw the protect fault");
    }
}
