//! Guest-level systems and the Table 2 / Table 3 microbenchmarks.
//!
//! A [`System`] boots the simulated kernel, loads a guest measurement
//! program for the configured [`DeliveryPath`], and measures delivery and
//! return costs by stepping the machine instruction-by-instruction and
//! recording the cycle counter as the PC crosses the program's labels —
//! the simulator equivalent of the logic-analyzer measurements a 1994
//! paper would make.

use efex_mips::cycles::to_micros;

use efex_mips::machine::MachineConfig;
use efex_mips::profile::{Profiler, RegionSpan};
use efex_simos::fastexc::TABLE3_PHASES;
use efex_simos::kernel::{Kernel, KernelConfig, RunOutcome};
use efex_simos::layout::PAGE_SIZE;
use efex_trace::{EventKind, FaultClass, Metrics, SharedSink, TraceEvent};

use crate::delivery::{DeliveryCosts, DeliveryPath};
use crate::error::CoreError;
use crate::guestmem::{GuestMem, Protection};
use crate::progs;

/// The exception classes the microbenchmarks exercise (Table 2 rows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExceptionKind {
    /// A simple synchronous exception (`break`): Table 2 row 1.
    Breakpoint,
    /// A write-protection fault (with eager amplification): row 2.
    WriteProtect,
    /// A protection fault on a subpage-managed page: row 3.
    Subpage,
    /// An unaligned access delivered to the specialized swizzling handler
    /// of Section 4.2.2 (the 6 µs figure).
    UnalignedSpecialized,
}

impl From<ExceptionKind> for FaultClass {
    fn from(kind: ExceptionKind) -> FaultClass {
        match kind {
            ExceptionKind::Breakpoint => FaultClass::Breakpoint,
            ExceptionKind::WriteProtect => FaultClass::WriteProtect,
            ExceptionKind::Subpage => FaultClass::Subpage,
            ExceptionKind::UnalignedSpecialized => FaultClass::Unaligned,
        }
    }
}

/// One measured exception round trip, in cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoundTrip {
    /// Fault occurrence → first instruction of the null handler.
    pub deliver_cycles: u64,
    /// Null-handler return → next application instruction.
    pub return_cycles: u64,
    /// Simulated clock (MHz) for µs conversion.
    clock_mhz_x100: u32,
}

impl RoundTrip {
    /// Delivery time in µs.
    pub fn deliver_micros(&self) -> f64 {
        to_micros(self.deliver_cycles, self.clock())
    }

    /// Return time in µs.
    pub fn return_micros(&self) -> f64 {
        to_micros(self.return_cycles, self.clock())
    }

    /// Round trip in µs.
    pub fn total_micros(&self) -> f64 {
        to_micros(self.deliver_cycles + self.return_cycles, self.clock())
    }

    fn clock(&self) -> f64 {
        f64::from(self.clock_mhz_x100) / 100.0
    }
}

/// One row of the regenerated Table 3: a kernel fast-path handler phase.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table3Row {
    /// Phase label in the guest source (`fexc_*`).
    pub label: &'static str,
    /// The paper's name for the phase.
    pub name: &'static str,
    /// Dynamic instructions we measure for one delivery.
    pub measured_instructions: u64,
    /// The paper's reported count.
    pub paper_instructions: u64,
}

/// Builds a [`System`].
#[derive(Clone)]
pub struct SystemBuilder {
    path: DeliveryPath,
    phys_bytes: usize,
    trace: Option<SharedSink>,
    machine: Option<MachineConfig>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("path", &self.path)
            .field("phys_bytes", &self.phys_bytes)
            .field("trace", &self.trace.is_some())
            .field("machine", &self.machine)
            .finish()
    }
}

impl Default for SystemBuilder {
    fn default() -> SystemBuilder {
        SystemBuilder {
            path: DeliveryPath::FastUser,
            phys_bytes: efex_simos::layout::DEFAULT_PHYS_BYTES,
            trace: None,
            machine: None,
        }
    }
}

impl SystemBuilder {
    /// Selects the delivery path.
    pub fn delivery(mut self, path: DeliveryPath) -> SystemBuilder {
        self.path = path;
        self
    }

    /// Sets the physical memory size.
    pub fn phys_bytes(mut self, bytes: usize) -> SystemBuilder {
        self.phys_bytes = bytes;
        self
    }

    /// Selects the machine configuration (execution engine, decode cache).
    /// Unset, the booting thread's scoped default applies — see
    /// [`efex_mips::machine::with_machine_config`].
    pub fn machine_config(mut self, cfg: MachineConfig) -> SystemBuilder {
        self.machine = Some(cfg);
        self
    }

    /// Routes exception lifecycle events to `sink` (shared with the
    /// kernel; the default [`NullSink`] drops them for free).
    ///
    /// [`NullSink`]: efex_trace::NullSink
    pub fn trace_sink(mut self, sink: SharedSink) -> SystemBuilder {
        self.trace = Some(sink);
        self
    }

    /// Boots the system.
    ///
    /// # Errors
    ///
    /// Fails if the kernel cannot boot.
    pub fn build(self) -> Result<System, CoreError> {
        let mut kernel = Kernel::boot(KernelConfig {
            phys_bytes: self.phys_bytes,
            machine: self.machine,
            ..KernelConfig::default()
        })?;
        kernel.set_trace_path(self.path.into());
        if let Some(sink) = self.trace {
            kernel.set_trace_sink(sink);
        }
        Ok(System {
            kernel,
            path: self.path,
            metrics: Metrics::new(),
        })
    }
}

/// A booted guest-level system.
pub struct System {
    kernel: Kernel,
    path: DeliveryPath,
    metrics: Metrics,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Starts building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The configured delivery path.
    pub fn path(&self) -> DeliveryPath {
        self.path
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Consumes the system, yielding the kernel — the replay driver
    /// ([`crate::replay::KernelReplay`]) owns a bare kernel; the system's
    /// measurement plane is host-side and irrelevant to replay.
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// Checkpoints the system: the full kernel state plus the delivery
    /// path it was built with. Serialize with
    /// [`SystemSnapshot::to_bytes`](crate::SystemSnapshot::to_bytes).
    pub fn snapshot(&mut self) -> crate::SystemSnapshot {
        crate::SystemSnapshot {
            path: self.path,
            kernel: self.kernel.snapshot(),
        }
    }

    /// Restores a checkpoint taken by [`System::snapshot`]. The receiver
    /// must be built with the same delivery path — a snapshot's measured
    /// costs are path-specific, and restoring across paths would silently
    /// measure the wrong thing. The measurement metrics plane is host-side
    /// observability and keeps the receiver's history.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invalid`] on delivery-path mismatch; kernel-level
    /// snapshot errors propagate as [`CoreError::Kernel`].
    pub fn restore(&mut self, s: &crate::SystemSnapshot) -> Result<(), CoreError> {
        if s.path != self.path {
            return Err(CoreError::Invalid(format!(
                "snapshot was taken on the {} path, this system delivers via {}",
                s.path, self.path
            )));
        }
        self.kernel.restore(&s.kernel)?;
        Ok(())
    }

    /// Measurement-level metrics: one sample per measured round trip,
    /// keyed by (path, class). The kernel keeps its own table for the
    /// deliveries it mediates; merge both with [`Metrics::merge`] for a
    /// complete picture.
    pub fn trace_metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Health-plane snapshot of the underlying kernel (see
    /// [`Kernel::health_snapshot`]). Pure read — charges no simulated
    /// cycles.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        self.kernel.health_snapshot()
    }

    /// Emits a measurement-level lifecycle event at a recorded timestamp.
    fn emit(&self, kind: EventKind, cycles: u64, class: FaultClass, exc_code: u8, pc: u32) {
        self.kernel.trace_sink().emit(&TraceEvent {
            seq: 0,
            cycles,
            kind,
            path: self.path.into(),
            class,
            exc_code,
            vaddr: 0,
            pc,
        });
    }

    /// Runs a guest program to completion (convenience for examples and
    /// tests).
    ///
    /// # Errors
    ///
    /// Fails on assembly or kernel errors.
    pub fn run_program(&mut self, source: &str, max_steps: u64) -> Result<RunOutcome, CoreError> {
        let prog = self.kernel.load_user_program(source)?;
        let sp = self.kernel.setup_stack(16)?;
        self.prepare_path();
        self.kernel.exec(prog.entry(), sp);
        Ok(self.kernel.run_user(max_steps)?)
    }

    fn prepare_path(&mut self) {
        if self.path == DeliveryPath::HardwareVectored {
            // The kernel grants direct user vectoring: enable bit + mask.
            let cp0 = self.kernel.machine_mut().cp0_mut();
            cp0.status |= efex_mips::cp0::status::UXE;
            cp0.uxm = efex_simos::fastexc::FastExcState::allowed_mask();
        }
    }

    /// Measures the delivery and return cost of one exception round trip to
    /// a null handler — the paper's Table 2 methodology. Several warm-up
    /// iterations run first (warm caches and TLB, as in the paper); the
    /// last iteration is measured.
    ///
    /// # Errors
    ///
    /// Fails if the guest program misbehaves (a simulator bug).
    pub fn measure_null_roundtrip(&mut self, kind: ExceptionKind) -> Result<RoundTrip, CoreError> {
        const ITERS: u32 = 6;
        let source = match (self.path, kind) {
            (DeliveryPath::FastUser, ExceptionKind::Breakpoint) => progs::fast_simple_bench(ITERS),
            (DeliveryPath::FastUser, ExceptionKind::WriteProtect) => progs::fast_prot_bench(ITERS),
            (DeliveryPath::FastUser, ExceptionKind::Subpage) => progs::fast_subpage_bench(ITERS),
            (DeliveryPath::FastUser, ExceptionKind::UnalignedSpecialized) => {
                progs::fast_unaligned_specialized_bench(ITERS)
            }
            (DeliveryPath::HardwareVectored, ExceptionKind::Breakpoint) => {
                progs::hw_simple_bench(ITERS)
            }
            (DeliveryPath::UnixSignals, ExceptionKind::Breakpoint) => {
                progs::unix_simple_bench(ITERS)
            }
            (DeliveryPath::UnixSignals, ExceptionKind::WriteProtect) => {
                progs::unix_prot_bench(ITERS)
            }
            (path, kind) => {
                return Err(CoreError::Invalid(format!(
                    "no guest microbenchmark for {kind:?} on the {path} path"
                )))
            }
        };
        let prog = self.kernel.load_user_program(&source)?;
        let sp = self.kernel.setup_stack(16)?;
        self.prepare_path();
        self.kernel.exec(prog.entry(), sp);

        let fault_site = prog.symbol("fault_site").expect("bench label");
        let after_fault = prog.symbol("after_fault").expect("bench label");
        let null_entry = prog.symbol("null_handler").expect("bench label");
        let null_ret = prog.symbol("null_ret").expect("bench label");

        // Warm up: run all but the last iteration.
        for _ in 0..ITERS - 1 {
            self.step_until(after_fault, 2_000_000)?;
        }
        // Measured iteration.
        let t0 = self.step_until(fault_site, 2_000_000)?;
        let t1 = self.step_until(null_entry, 2_000_000)?;
        let t2 = self.step_until(null_ret, 2_000_000)?;
        let t3 = self.step_until(after_fault, 2_000_000)?;

        // Trace the measured iteration. The kernel already emitted the
        // raise-through-handler-entry events for the deliveries it mediated
        // (Unix signals, and fast-path TLB faults); the label crossings
        // supply whatever the kernel could not see.
        let class = FaultClass::from(kind);
        let exc = match kind {
            ExceptionKind::Breakpoint => 9,
            ExceptionKind::WriteProtect | ExceptionKind::Subpage => 1,
            ExceptionKind::UnalignedSpecialized => 5,
        };
        let kernel_mediated = matches!(
            (self.path, kind),
            (DeliveryPath::UnixSignals, _)
                | (DeliveryPath::FastUser, ExceptionKind::WriteProtect)
                | (DeliveryPath::FastUser, ExceptionKind::Subpage)
        );
        if !kernel_mediated {
            self.emit(EventKind::FaultRaised, t0, class, exc, fault_site);
            if self.path == DeliveryPath::FastUser {
                // The guest low-level vector and save phases run even when
                // the host kernel is bypassed; direct hardware vectoring
                // skips them entirely.
                self.emit(EventKind::KernelEntered, t0, class, exc, fault_site);
                self.emit(EventKind::StateSaved, t1, class, exc, null_entry);
            }
            self.emit(EventKind::HandlerEntered, t1, class, exc, null_entry);
        }
        if self.path != DeliveryPath::UnixSignals {
            // The fast and hardware paths return to the application without
            // kernel involvement, so only the labels observe the return.
            self.emit(EventKind::HandlerReturned, t2, class, exc, null_ret);
            self.emit(EventKind::Resumed, t3, class, exc, after_fault);
        }
        let path = self.path.into();
        self.metrics.record_deliver(path, class, t1 - t0);
        self.metrics.record_handler(path, class, t2.max(t1) - t1);
        self.metrics.record_return(path, class, t3 - t2.max(t1));

        let clock = self.kernel.clock_mhz();
        Ok(RoundTrip {
            deliver_cycles: t1 - t0,
            return_cycles: t3 - t2.max(t1),
            clock_mhz_x100: (clock * 100.0) as u32,
        })
    }

    /// Measures the kernel's subpage *emulation* cost: a store to an
    /// unprotected logical subpage of a managed page, serviced invisibly
    /// (Section 3.2.4). Returns cycles per emulated store.
    ///
    /// # Errors
    ///
    /// Fails if the path is not `FastUser` or the guest misbehaves.
    pub fn measure_subpage_emulation(&mut self) -> Result<u64, CoreError> {
        if self.path != DeliveryPath::FastUser {
            return Err(CoreError::Invalid(
                "subpage emulation is a fast-path feature".into(),
            ));
        }
        const ITERS: u32 = 6;
        let source = progs::fast_subpage_bench(ITERS);
        let prog = self.kernel.load_user_program(&source)?;
        let sp = self.kernel.setup_stack(16)?;
        self.kernel.exec(prog.entry(), sp);
        let emul_site = prog.symbol("emul_site").expect("bench label");
        let after_emul = prog.symbol("after_emul").expect("bench label");
        let after_fault = prog.symbol("after_fault").expect("bench label");
        for _ in 0..ITERS - 1 {
            self.step_until(after_fault, 2_000_000)?;
        }
        let t0 = self.step_until(emul_site, 2_000_000)?;
        let t1 = self.step_until(after_emul, 2_000_000)?;
        Ok(t1 - t0)
    }

    /// Regenerates Table 3: per-phase dynamic instruction counts of the
    /// guest kernel fast-path handler for one simple-exception delivery.
    ///
    /// # Errors
    ///
    /// Fails if the path is not `FastUser` or the guest misbehaves.
    pub fn measure_table3(&mut self) -> Result<Vec<Table3Row>, CoreError> {
        Ok(self.measure_table3_spans()?.0)
    }

    /// Like [`System::measure_table3`], but also returns the profiler's
    /// [`RegionSpan`]s for the measured delivery — the per-region timeline
    /// that `efex-report` turns into Chrome-trace rows and folded stacks.
    /// Spans cover only the measured iteration (the warm-up is reset away).
    ///
    /// # Errors
    ///
    /// Fails if the path is not `FastUser` or the guest misbehaves.
    pub fn measure_table3_spans(&mut self) -> Result<(Vec<Table3Row>, Vec<RegionSpan>), CoreError> {
        if self.path != DeliveryPath::FastUser {
            return Err(CoreError::Invalid("Table 3 profiles the fast path".into()));
        }
        const ITERS: u32 = 3;
        let source = progs::fast_simple_bench(ITERS);
        let prog = self.kernel.load_user_program(&source)?;
        let sp = self.kernel.setup_stack(16)?;
        self.kernel.exec(prog.entry(), sp);

        // Build profiler regions from the handler's phase labels.
        let end = self
            .kernel
            .kernel_symbol("fexc_end")
            .ok_or_else(|| CoreError::Measurement("missing fexc_end".into()))?;
        let mut labels: Vec<(&str, u32)> = Vec::new();
        for (label, _, _) in TABLE3_PHASES {
            let addr = self
                .kernel
                .kernel_symbol(label)
                .ok_or_else(|| CoreError::Measurement(format!("missing {label}")))?;
            labels.push((label, addr));
        }
        let profiler = Profiler::from_labels(labels, end);
        self.kernel.machine_mut().set_profiler(Some(profiler));

        // Warm up one iteration, then reset counts and measure exactly one
        // delivery.
        let after_fault = prog.symbol("after_fault").expect("bench label");
        self.step_until(after_fault, 2_000_000)?;
        if let Some(p) = self.kernel.machine_mut().profiler_mut() {
            p.reset();
        }
        self.step_until(after_fault, 2_000_000)?;

        let profiler = self
            .kernel
            .machine_mut()
            .profiler_mut()
            .expect("attached above");
        let spans = profiler.take_spans();
        let report = profiler.report();
        let rows = TABLE3_PHASES
            .iter()
            .map(|(label, name, paper)| Table3Row {
                label,
                name,
                measured_instructions: report.get(*label).map_or(0, |c| c.instructions),
                paper_instructions: *paper,
            })
            .collect();
        self.kernel.machine_mut().set_profiler(None);
        Ok((rows, spans))
    }

    /// Steps the machine until the PC *next* reaches `target` (at least one
    /// instruction executes), returning the cycle counter at that point.
    fn step_until(&mut self, target: u32, max: u64) -> Result<u64, CoreError> {
        for _ in 0..max {
            match self.kernel.run_user(1)? {
                RunOutcome::StepLimit => {}
                other => {
                    return Err(CoreError::Measurement(format!(
                        "program ended ({other:?}) before reaching {target:#x}"
                    )))
                }
            }
            if self.kernel.machine().cpu().pc == target {
                return Ok(self.kernel.cycles());
            }
        }
        Err(CoreError::Measurement(format!(
            "PC never reached {target:#x} within {max} steps"
        )))
    }
}

/// Guest-level access goes through the kernel's host interface: faults are
/// *not* delivered to a handler (there is no registered Rust closure at
/// guest level); they surface as [`CoreError::Unhandled`] for the caller —
/// injection scenarios and fleet tenants — to deal with.
impl GuestMem for System {
    fn load_u32(&mut self, vaddr: u32) -> Result<u32, CoreError> {
        self.kernel.host_load_u32(vaddr).map_err(unhandled)
    }

    fn store_u32(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError> {
        self.kernel.host_store_u32(vaddr, value).map_err(unhandled)
    }

    fn read_raw(&mut self, vaddr: u32) -> Result<u32, CoreError> {
        let bytes = self.kernel.host_read_bytes(vaddr, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn write_raw(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError> {
        self.kernel
            .host_write_bytes(vaddr, &value.to_le_bytes())
            .map_err(CoreError::from)
    }

    fn protect(&mut self, region: Protection) -> Result<(), CoreError> {
        let costs = DeliveryCosts::for_path(self.path);
        let pages = u64::from(region.len().div_ceil(PAGE_SIZE));
        self.kernel
            .charge(costs.protect_call + costs.protect_per_page * pages);
        let touched = self
            .kernel
            .process_mut()
            .space_mut()
            .protect_region(region.base(), region.len(), region.prot())
            .map_err(efex_simos::KernelError::Map)?;
        let asid = self.kernel.process().space().asid();
        for page in touched {
            self.kernel
                .machine_mut()
                .tlb_mut()
                .invalidate_page(page, asid);
        }
        Ok(())
    }

    fn subpage_protect(&mut self, region: Protection) -> Result<(), CoreError> {
        self.kernel
            .sys_subpage_protect(region.base(), region.len(), region.restricts_writes())?;
        Ok(())
    }
}

/// Maps a raw host-interface fault to the unhandled-fault error.
fn unhandled(fault: efex_simos::kernel::HostFault) -> CoreError {
    CoreError::Unhandled(crate::host::FaultInfo {
        code: fault.code,
        vaddr: fault.vaddr,
        write: fault.write,
        kind: fault.kind,
        value: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(path: DeliveryPath) -> System {
        System::builder().delivery(path).build().unwrap()
    }

    #[test]
    fn fast_simple_roundtrip_is_order_of_magnitude_under_unix() {
        let fast = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::Breakpoint)
            .unwrap();
        let unix = system(DeliveryPath::UnixSignals)
            .measure_null_roundtrip(ExceptionKind::Breakpoint)
            .unwrap();
        assert!(
            unix.total_micros() / fast.total_micros() >= 5.0,
            "unix {:.1}us vs fast {:.1}us",
            unix.total_micros(),
            fast.total_micros()
        );
        // Fast path in the single-digit microseconds, as in Table 2.
        assert!(fast.total_micros() < 20.0, "got {:.1}", fast.total_micros());
        // Unix path near the paper's 80us.
        assert!(
            (40.0..160.0).contains(&unix.total_micros()),
            "got {:.1}",
            unix.total_micros()
        );
    }

    #[test]
    fn hardware_vectoring_beats_software_fast_path() {
        let hw = system(DeliveryPath::HardwareVectored)
            .measure_null_roundtrip(ExceptionKind::Breakpoint)
            .unwrap();
        let fast = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::Breakpoint)
            .unwrap();
        assert!(
            hw.total_micros() < fast.total_micros(),
            "hw {:.1}us vs fast {:.1}us",
            hw.total_micros(),
            fast.total_micros()
        );
    }

    #[test]
    fn write_protect_costs_more_than_simple() {
        let mut s = system(DeliveryPath::FastUser);
        let prot = s
            .measure_null_roundtrip(ExceptionKind::WriteProtect)
            .unwrap();
        let simple = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::Breakpoint)
            .unwrap();
        assert!(
            prot.deliver_cycles > simple.deliver_cycles,
            "prot {} vs simple {}",
            prot.deliver_cycles,
            simple.deliver_cycles
        );
    }

    #[test]
    fn subpage_delivery_adds_lookup_over_write_protect() {
        let sub = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::Subpage)
            .unwrap();
        let prot = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::WriteProtect)
            .unwrap();
        assert!(
            sub.deliver_cycles > prot.deliver_cycles,
            "subpage {} vs prot {}",
            sub.deliver_cycles,
            prot.deliver_cycles
        );
    }

    #[test]
    fn table3_counts_sum_to_a_small_handler() {
        let rows = system(DeliveryPath::FastUser).measure_table3().unwrap();
        let total: u64 = rows.iter().map(|r| r.measured_instructions).sum();
        assert!(total > 20, "phases must actually execute: {total}");
        assert!(total < 80, "handler must stay small: {total}");
        // Save-state dominates, as in the paper.
        let save = rows
            .iter()
            .find(|r| r.label == "fexc_save")
            .unwrap()
            .measured_instructions;
        for r in &rows {
            assert!(save >= r.measured_instructions, "{} > save", r.label);
        }
    }

    #[test]
    fn subpage_emulation_is_cheaper_than_delivery() {
        let mut s = system(DeliveryPath::FastUser);
        let emul = s.measure_subpage_emulation().unwrap();
        let deliver = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::Subpage)
            .unwrap();
        assert!(
            emul < deliver.deliver_cycles + deliver.return_cycles,
            "emulation {} vs delivery {}",
            emul,
            deliver.deliver_cycles + deliver.return_cycles
        );
    }

    #[test]
    fn specialized_unaligned_handler_is_cheap() {
        let r = system(DeliveryPath::FastUser)
            .measure_null_roundtrip(ExceptionKind::UnalignedSpecialized)
            .unwrap();
        // The paper quotes 6us; allow generous slack but keep it well under
        // the conventional path.
        assert!(r.total_micros() < 15.0, "got {:.1}", r.total_micros());
    }
}
