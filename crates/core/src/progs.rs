//! Guest assembly programs for the microbenchmarks (Tables 2 and 3).
//!
//! Every program follows the same shape: set up a delivery path, then take
//! `n` exceptions in a loop between the labels `fault_site` and
//! `after_fault`. The user-side handler is a low-level veneer that saves
//! "the same state as Ultrix" (the caller-saved register set) before
//! calling a null C-style handler — mirroring the paper's methodology so
//! the comparison with the signal path is fair.

use efex_mips::ExcCode;

/// The user stack frame the veneer builds: $ra, $at, $v0-$v1, $a0-$a3,
/// $t0-$t9 — 18 registers.
const VENEER_SAVE: &str = r#"
    addiu $sp, $sp, -80
    sw  $ra, 0($sp)
    sw  $at, 4($sp)
    sw  $v0, 8($sp)
    sw  $v1, 12($sp)
    sw  $a0, 16($sp)
    sw  $a1, 20($sp)
    sw  $a2, 24($sp)
    sw  $a3, 28($sp)
    sw  $t0, 32($sp)
    sw  $t1, 36($sp)
    sw  $t2, 40($sp)
    sw  $t3, 44($sp)
    sw  $t4, 48($sp)
    sw  $t5, 52($sp)
    sw  $t6, 56($sp)
    sw  $t7, 60($sp)
    sw  $t8, 64($sp)
    sw  $t9, 68($sp)
"#;

const VENEER_RESTORE: &str = r#"
    lw  $ra, 0($sp)
    lw  $at, 4($sp)
    lw  $v0, 8($sp)
    lw  $v1, 12($sp)
    lw  $a0, 16($sp)
    lw  $a1, 20($sp)
    lw  $a2, 24($sp)
    lw  $a3, 28($sp)
    lw  $t0, 32($sp)
    lw  $t1, 36($sp)
    lw  $t2, 40($sp)
    lw  $t3, 44($sp)
    lw  $t4, 48($sp)
    lw  $t5, 52($sp)
    lw  $t6, 56($sp)
    lw  $t7, 60($sp)
    lw  $t8, 64($sp)
    lw  $t9, 68($sp)
    addiu $sp, $sp, 80
"#;

/// The communication page user virtual address used by all benches.
pub const COMM: u32 = efex_simos::layout::COMM_PAGE_VADDR;

/// Offset of the saved EPC in the comm frame for `code`.
fn frame_epc_off(code: ExcCode) -> u32 {
    code.code() * efex_simos::layout::COMM_FRAME_SIZE
}

/// Fast-path benchmark: `n` breakpoints delivered to a null handler via
/// the software fast path. Labels: `fault_site`, `after_fault`,
/// `uh_entry` (veneer), `null_handler`, `null_ret`.
pub fn fast_simple_bench(n: u32) -> String {
    let mask = 1u32 << ExcCode::Breakpoint.code();
    let epc_off = frame_epc_off(ExcCode::Breakpoint);
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, uh_entry
    li  $a2, {COMM:#x}
    li  $v0, 7              # uexc_enable
    syscall
    li  $s0, {n}
loop:
fault_site:
    break 0
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

uh_entry:
{VENEER_SAVE}
    jal null_handler
    nop
uh_restore:
{VENEER_RESTORE}
    lui $k0, {comm_hi:#x}
    lw  $k1, {epc_lo}($k0)  # saved EPC from the comm frame
    addiu $k1, $k1, 4       # skip the break
    jr  $k1                 # return directly: no kernel re-entry
    nop

null_handler:
    nop                     # the null handler body
null_ret:
    jr  $ra
    nop
"#,
        comm_hi = COMM >> 16,
        epc_lo = (COMM & 0xffff) + epc_off,
    )
}

/// Hardware-vectored benchmark: same shape, but the CPU exchanges PC with
/// the UXT register; the handler returns with `xpcu`. The kernel only sets
/// the enable bit and mask (done by `System` before running).
pub fn hw_simple_bench(n: u32) -> String {
    format!(
        r#"
.org 0x00400000
main:
    la  $t0, uh_entry
    mtc0 $t0, $uxt          # user loads its exception target (Section 2.1)
    li  $s0, {n}
loop:
fault_site:
    break 0
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

uh_entry:
{VENEER_SAVE}
    jal null_handler
    nop
uh_restore:
{VENEER_RESTORE}
    mfc0 $k0, $uxt          # faulting PC
    addiu $k0, $k0, 4       # skip the break
    mtc0 $k0, $uxt
    xpcu                    # exchange PC and UXT: return, clear active flag
    # The exchange leaves UXT pointing here, so the NEXT exception enters
    # at this instruction: loop back to the handler entry (the indirect-
    # jump-in-first-instruction idiom of Section 2.2).
    b   uh_entry
    nop

null_handler:
    nop                     # the null handler body
null_ret:
    jr  $ra
    nop
"#
    )
}

/// Unix-signal benchmark: `n` breakpoints through `sigaction` +
/// trampoline + `sigreturn`. The handler advances the saved PC in the
/// sigcontext (offset 136 = word 34).
pub fn unix_simple_bench(n: u32) -> String {
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, 5              # SIGTRAP
    la  $a1, handler
    li  $v0, 4              # sigaction
    syscall
    li  $s0, {n}
loop:
fault_site:
    break 0
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

handler:
null_handler:
    lw  $t1, 136($a2)       # sigcontext saved PC
    addiu $t1, $t1, 4       # skip the break
    sw  $t1, 136($a2)
null_ret:
    jr  $ra
    nop
"#
    )
}

/// Fast-path write-protection benchmark with eager amplification:
/// each iteration re-protects a page (lean call) and stores to it; the
/// fault is amplified by the kernel and delivered; the handler returns to
/// retry the store.
pub fn fast_prot_bench(n: u32) -> String {
    let mask = (1u32 << ExcCode::TlbMod.code())
        | (1 << ExcCode::TlbLoad.code())
        | (1 << ExcCode::TlbStore.code());
    let epc_off = frame_epc_off(ExcCode::TlbMod);
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, uh_entry
    li  $a2, {COMM:#x}
    li  $v0, 7              # uexc_enable
    syscall
    li  $a0, 1
    li  $v0, 10             # eager amplification on
    syscall
    li  $a0, 4096
    li  $v0, 13             # sbrk one page
    syscall
    move $s1, $v0           # the test page
    sw  $zero, 0($s1)       # touch: make it resident
    li  $s0, {n}
loop:
    move $a0, $s1
    li  $a1, 4096
    li  $a2, 1              # read-only
    li  $v0, 9              # lean protect call
    syscall
fault_site:
    sw  $s0, 0($s1)         # write-protection fault -> fast delivery
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

uh_entry:
{VENEER_SAVE}
    jal null_handler
    nop
uh_restore:
{VENEER_RESTORE}
    lui $k0, {comm_hi:#x}
    lw  $k1, {epc_lo}($k0)  # saved EPC (the faulting store)
    jr  $k1                 # retry: eager amplification made it legal
    nop

null_handler:
    nop                     # the null handler body
null_ret:
    jr  $ra
    nop
"#,
        comm_hi = COMM >> 16,
        epc_lo = (COMM & 0xffff) + epc_off,
    )
}

/// Unix-path write-protection benchmark: `mprotect` + SIGSEGV handler that
/// un-protects from inside the handler (conventional GC-barrier style).
pub fn unix_prot_bench(n: u32) -> String {
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, 11             # SIGSEGV
    la  $a1, handler
    li  $v0, 4              # sigaction
    syscall
    li  $a0, 4096
    li  $v0, 13             # sbrk one page
    syscall
    move $s1, $v0
    sw  $zero, 0($s1)
    li  $s0, {n}
loop:
    move $a0, $s1
    li  $a1, 4096
    li  $a2, 1              # read-only
    li  $v0, 6              # mprotect
    syscall
fault_site:
    sw  $s0, 0($s1)
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

handler:
null_handler:
    move $s2, $ra           # sigreturn will restore the app's $s2
    move $a0, $s1
    li  $a1, 4096
    li  $a2, 2              # read-write again
    li  $v0, 6              # mprotect from the handler
    syscall
null_ret:
    jr  $s2
    nop
"#
    )
}

/// Subpage benchmark: protect one 1 KB logical page, store into it
/// (delivered), and separately store into an unprotected subpage of the
/// same hardware page (kernel-emulated, invisible). Labels add
/// `emul_site` / `after_emul`.
pub fn fast_subpage_bench(n: u32) -> String {
    let mask = (1u32 << ExcCode::TlbMod.code())
        | (1 << ExcCode::TlbLoad.code())
        | (1 << ExcCode::TlbStore.code());
    let epc_off = frame_epc_off(ExcCode::TlbMod);
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, uh_entry
    li  $a2, {COMM:#x}
    li  $v0, 7              # uexc_enable
    syscall
    li  $a0, 1
    li  $v0, 10             # eager amplification on
    syscall
    li  $a0, 4096
    li  $v0, 13             # sbrk one page
    syscall
    move $s1, $v0
    sw  $zero, 0($s1)       # resident
    li  $s0, {n}
loop:
    move $a0, $s1
    li  $a1, 1024           # protect ONLY the first logical subpage
    li  $a2, 1
    li  $v0, 11             # subpage_protect
    syscall
emul_site:
    sw  $s0, 2048($s1)      # unprotected subpage: kernel emulates silently
after_emul:
fault_site:
    sw  $s0, 0($s1)         # protected subpage: delivered to the handler
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

uh_entry:
{VENEER_SAVE}
    jal null_handler
    nop
uh_restore:
{VENEER_RESTORE}
    lui $k0, {comm_hi:#x}
    lw  $k1, {epc_lo}($k0)
    jr  $k1                 # retry the store (page was amplified)
    nop

null_handler:
    nop                     # the null handler body
null_ret:
    jr  $ra
    nop
"#,
        comm_hi = COMM >> 16,
        epc_lo = (COMM & 0xffff) + epc_off,
    )
}

/// The specialized swizzling handler of Section 4.2.2: an unaligned load
/// is delivered to a handler that saves only a few registers before
/// calling a null procedure ("callee-saved registers are not saved"),
/// giving the paper's 6 µs figure.
pub fn fast_unaligned_specialized_bench(n: u32) -> String {
    let mask = (1u32 << ExcCode::AddrErrLoad.code()) | (1 << ExcCode::AddrErrStore.code());
    let epc_off = frame_epc_off(ExcCode::AddrErrLoad);
    format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, uh_entry
    li  $a2, {COMM:#x}
    li  $v0, 7              # uexc_enable
    syscall
    li  $a0, 4096
    li  $v0, 13             # sbrk
    syscall
    move $s1, $v0
    addiu $s1, $s1, 2       # a deliberately unaligned pointer
    li  $s0, {n}
loop:
fault_site:
    lw  $t0, 0($s1)         # unaligned -> AddrErrLoad, fast delivery
after_fault:
    addiu $s0, $s0, -1
    bnez $s0, loop
    nop
    li  $v0, 2
    li  $a0, 0
    syscall
    nop

uh_entry:
    addiu $sp, $sp, -16     # specialized: save only what we use
    sw  $ra, 0($sp)
    sw  $t0, 4($sp)
    jal null_handler
    nop
    lw  $ra, 0($sp)
    lw  $t0, 4($sp)
    addiu $sp, $sp, 16
    lui $k0, {comm_hi:#x}
    lw  $k1, {epc_lo}($k0)
    addiu $k1, $k1, 4       # skip the unaligned load
    jr  $k1
    nop

null_handler:
    nop                     # the null handler body
null_ret:
    jr  $ra
    nop
"#,
        comm_hi = COMM >> 16,
        epc_lo = (COMM & 0xffff) + epc_off,
    )
}

#[cfg(test)]
mod tests {
    use efex_mips::asm::assemble;

    #[test]
    fn all_bench_programs_assemble() {
        for (name, src) in [
            ("fast_simple", super::fast_simple_bench(3)),
            ("hw_simple", super::hw_simple_bench(3)),
            ("unix_simple", super::unix_simple_bench(3)),
            ("fast_prot", super::fast_prot_bench(3)),
            ("unix_prot", super::unix_prot_bench(3)),
            ("fast_subpage", super::fast_subpage_bench(3)),
            ("fast_unaligned", super::fast_unaligned_specialized_bench(3)),
        ] {
            let prog = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            for label in ["fault_site", "after_fault", "null_ret"] {
                assert!(prog.symbol(label).is_some(), "{name} missing {label}");
            }
        }
    }
}
