//! The shape every application crate's `tenant_workload` returns.
//!
//! Fleet scheduling needs two things from a tenant run that must never mix:
//! the *deterministic* payload (simulated micros and the app's own counter
//! snapshot — these enter the fleet fingerprint) and the *health-plane*
//! payload (kernel/machine effectiveness counters — observability only,
//! excluded from the fingerprint so a run with monitoring on stays
//! bit-identical to one without).

use efex_trace::StatsSnapshot;

/// One tenant workload run: deterministic results plus a health snapshot.
#[derive(Clone, Debug)]
pub struct WorkloadRun {
    /// Simulated time the workload consumed, in microseconds. Part of the
    /// deterministic payload (enters the fleet fingerprint).
    pub micros: f64,
    /// The application's own counters (e.g. `GcStats`). Deterministic.
    pub stats: StatsSnapshot,
    /// Health-plane counters from the host kernel underneath the app
    /// (decode cache, TLB repairs, degraded deliveries, …). Observability
    /// only — never part of the fingerprint.
    pub health: StatsSnapshot,
}

impl WorkloadRun {
    /// Bundles a run from its parts.
    pub fn new(micros: f64, stats: StatsSnapshot, health: StatsSnapshot) -> WorkloadRun {
        WorkloadRun {
            micros,
            stats,
            health,
        }
    }
}
