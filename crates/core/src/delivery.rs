//! Delivery paths and their cost profiles.

use std::fmt;

/// How synchronous exceptions reach user code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeliveryPath {
    /// Conventional Unix signals (the paper's baseline, Section 3.1).
    UnixSignals,
    /// The paper's software fast path (Section 3.2).
    FastUser,
    /// The paper's hardware proposal: direct user vectoring via the
    /// PC/UXT exchange (Section 2).
    HardwareVectored,
}

impl fmt::Display for DeliveryPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeliveryPath::UnixSignals => "unix-signals",
            DeliveryPath::FastUser => "fast-user",
            DeliveryPath::HardwareVectored => "hardware-vectored",
        })
    }
}

impl From<DeliveryPath> for efex_trace::TracePath {
    fn from(path: DeliveryPath) -> efex_trace::TracePath {
        match path {
            DeliveryPath::UnixSignals => efex_trace::TracePath::UnixSignals,
            DeliveryPath::FastUser => efex_trace::TracePath::FastUser,
            DeliveryPath::HardwareVectored => efex_trace::TracePath::HardwareVectored,
        }
    }
}

/// Cycle costs charged to **host-level** applications per exception event.
///
/// Guest-level code pays instruction-by-instruction; host-level
/// applications (GC, persistent store, DSM) charge these constants instead.
/// The defaults for each path come from the guest-level microbenchmarks of
/// [`crate::System`] (Table 2 of EXPERIMENTS.md records the measured
/// values); `DeliveryCosts::measured_on` re-derives them on a live system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeliveryCosts {
    /// Fault → first user handler instruction, simple exception.
    pub simple_deliver: u64,
    /// Handler return → next application instruction, simple exception.
    pub simple_return: u64,
    /// Fault → handler, write-protection fault (adds page-table work).
    pub prot_deliver: u64,
    /// Fault → handler, protection fault on a subpage-managed page.
    pub subpage_deliver: u64,
    /// One protection-change call (protect or unprotect a region).
    pub protect_call: u64,
    /// Extra per page protected/unprotected in one call.
    pub protect_per_page: u64,
    /// Kernel emulation of an access to an unprotected subpage.
    pub subpage_emulate: u64,
}

impl DeliveryCosts {
    /// The default cost profile for a path, in 25 MHz cycles.
    ///
    /// These constants mirror what the guest microbenchmarks measure (see
    /// `System::measure_null_roundtrip`); keeping them as constants makes
    /// host-level application runs deterministic and cheap to construct.
    pub fn for_path(path: DeliveryPath) -> DeliveryCosts {
        use efex_simos::costs;
        match path {
            DeliveryPath::UnixSignals => DeliveryCosts {
                // ~70 us deliver + ~30 us return at 25 MHz; the paper's
                // Table 1/2 baseline (80 us round trip for the null
                // handler; protection faults reach ~60 us delivery).
                simple_deliver: 1750,
                simple_return: 750,
                prot_deliver: 1500,
                subpage_deliver: 1600,
                protect_call: costs::ULTRIX_SYSCALL_WRAPPER,
                protect_per_page: costs::ULTRIX_MPROTECT_PER_PAGE,
                subpage_emulate: costs::SUBPAGE_EMULATE,
            },
            DeliveryPath::FastUser => DeliveryCosts {
                // Table 2: 5 us deliver, 3 us return, 15 us write-protect,
                // 19 us subpage.
                simple_deliver: 125,
                simple_return: 75,
                prot_deliver: 375,
                subpage_deliver: 475,
                protect_call: costs::FAST_PROTECT_SYSCALL,
                protect_per_page: 2,
                subpage_emulate: costs::SUBPAGE_EMULATE,
            },
            DeliveryPath::HardwareVectored => DeliveryCosts {
                // The PC/UXT exchange: a few cycles in, a few cycles out;
                // protection changes through user-level TLB modification
                // (utlbp), no kernel call. Kernel still validates TLB-type
                // faults' page-table state in the software fallback, so
                // protection faults keep a modest cost.
                simple_deliver: 40,
                simple_return: 20,
                prot_deliver: 90,
                subpage_deliver: 190,
                protect_call: 8,
                protect_per_page: 3,
                subpage_emulate: costs::SUBPAGE_EMULATE,
            },
        }
    }

    /// The round-trip cost of one simple exception.
    pub fn simple_round_trip(&self) -> u64 {
        self.simple_deliver + self.simple_return
    }

    /// The cost of one protection fault handled and returned from,
    /// excluding any protection-change calls the handler makes.
    pub fn prot_round_trip(&self) -> u64 {
        self.prot_deliver + self.simple_return
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efex_mips::cycles::{to_micros, CLOCK_MHZ};

    #[test]
    fn fast_path_matches_paper_table2() {
        let c = DeliveryCosts::for_path(DeliveryPath::FastUser);
        assert_eq!(to_micros(c.simple_deliver, CLOCK_MHZ), 5.0);
        assert_eq!(to_micros(c.simple_return, CLOCK_MHZ), 3.0);
        assert_eq!(to_micros(c.prot_deliver, CLOCK_MHZ), 15.0);
        assert_eq!(to_micros(c.subpage_deliver, CLOCK_MHZ), 19.0);
        assert_eq!(to_micros(c.simple_round_trip(), CLOCK_MHZ), 8.0);
    }

    #[test]
    fn unix_path_is_an_order_of_magnitude_slower() {
        let fast = DeliveryCosts::for_path(DeliveryPath::FastUser);
        let slow = DeliveryCosts::for_path(DeliveryPath::UnixSignals);
        let ratio = slow.simple_round_trip() as f64 / fast.simple_round_trip() as f64;
        assert!(ratio >= 10.0, "paper's headline: got {ratio:.1}x");
    }

    #[test]
    fn hardware_path_is_another_2_to_3x() {
        let fast = DeliveryCosts::for_path(DeliveryPath::FastUser);
        let hw = DeliveryCosts::for_path(DeliveryPath::HardwareVectored);
        let ratio = fast.simple_round_trip() as f64 / hw.simple_round_trip() as f64;
        assert!((2.0..=4.5).contains(&ratio), "got {ratio:.1}x");
    }

    #[test]
    fn eager_amplification_anchor() {
        // Fault + re-enable = 15 us + 3 us = the paper's 18 us.
        let c = DeliveryCosts::for_path(DeliveryPath::FastUser);
        let total = to_micros(c.prot_deliver + c.protect_call, CLOCK_MHZ);
        assert!((17.0..=19.0).contains(&total), "got {total}");
    }
}
