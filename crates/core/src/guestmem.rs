//! The unified guest-memory API: one trait over every entry point that can
//! read, write, and protect simulated memory.
//!
//! [`System`] (guest-level) and [`HostProcess`] (host-level) historically
//! grew separate, duplicated accessor sets. [`GuestMem`] unifies them so
//! fleet aggregation, fault-injection scenarios, and test helpers can be
//! written once, generic over both; [`Protection`] replaces the bare
//! `(vaddr, len, prot)`/`(vaddr, len, on)` argument triples with one typed,
//! builder-style request (matching the workspace's `builder()` conventions).
//!
//! [`GuestConfig`] rounds the module out for the fleet engine: a `Send +
//! Clone` construction recipe. The builders themselves are not `Send` (they
//! may hold an `Rc` trace sink, and handlers are single-threaded closures),
//! so multi-tenant workers ship a `GuestConfig` across the thread boundary
//! and build the tenant — sink, handlers and all — inside the worker.

use efex_mips::machine::MachineConfig;
use efex_simos::Prot;

use crate::delivery::DeliveryPath;
use crate::error::CoreError;
use crate::host::{DegradePolicy, HostBuilder, HostProcess};
use crate::system::{System, SystemBuilder};

/// A typed protection request: *which region*, *what protection*.
///
/// Built fluently; the default protection is full access:
///
/// ```
/// use efex_core::Protection;
/// use efex_simos::Prot;
///
/// let p = Protection::region(0x1000, 0x2000).read_only();
/// assert_eq!(p.base(), 0x1000);
/// assert_eq!(p.len(), 0x2000);
/// assert_eq!(p.prot(), Prot::Read);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Protection {
    base: u32,
    len: u32,
    prot: Prot,
}

impl Protection {
    /// A request covering `[base, base + len)`, defaulting to full access.
    pub fn region(base: u32, len: u32) -> Protection {
        Protection {
            base,
            len,
            prot: Prot::ReadWrite,
        }
    }

    /// Sets an explicit protection.
    pub fn with_prot(mut self, prot: Prot) -> Protection {
        self.prot = prot;
        self
    }

    /// Write-protects the region (the write-barrier mode).
    pub fn read_only(self) -> Protection {
        self.with_prot(Prot::Read)
    }

    /// Grants full access.
    pub fn read_write(self) -> Protection {
        self.with_prot(Prot::ReadWrite)
    }

    /// Revokes all access (the access-detection mode).
    pub fn no_access(self) -> Protection {
        self.with_prot(Prot::None)
    }

    /// The region base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The region length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The requested protection.
    pub fn prot(&self) -> Prot {
        self.prot
    }

    /// Whether the request restricts writes — for
    /// [`GuestMem::subpage_protect`], where protection is a write-protect
    /// toggle: `read_only()`/`no_access()` arm it, `read_write()` releases.
    pub fn restricts_writes(&self) -> bool {
        !matches!(self.prot, Prot::ReadWrite)
    }
}

/// Uniform access to simulated guest memory.
///
/// Implemented by [`HostProcess`] (accesses go through the simulated page
/// tables with full fault delivery) and [`System`] (accesses use the
/// kernel's host interface against the instruction-level machine). Code
/// that only needs "a guest to poke at" — fleet tenants, injection
/// scenarios, generic test helpers — takes `&mut impl GuestMem`.
pub trait GuestMem {
    /// Loads a word with full fault semantics.
    ///
    /// # Errors
    ///
    /// Implementation-specific delivery errors ([`CoreError::Unhandled`],
    /// [`CoreError::Aborted`], [`CoreError::RecursiveFault`], …).
    fn load_u32(&mut self, vaddr: u32) -> Result<u32, CoreError>;

    /// Stores a word with full fault semantics.
    ///
    /// # Errors
    ///
    /// As for [`GuestMem::load_u32`].
    fn store_u32(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError>;

    /// Reads a word with kernel rights (no faults, no delivery).
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped.
    fn read_raw(&mut self, vaddr: u32) -> Result<u32, CoreError>;

    /// Writes a word with kernel rights (no faults, no delivery).
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped.
    fn write_raw(&mut self, vaddr: u32, value: u32) -> Result<(), CoreError>;

    /// Changes protection on a page-aligned region, charging the configured
    /// path's protection-call cost.
    ///
    /// # Errors
    ///
    /// Fails on unmapped pages or misalignment.
    fn protect(&mut self, region: Protection) -> Result<(), CoreError>;

    /// Toggles subpage write protection on a 1 KB-aligned range
    /// (Section 3.2.4): protection is armed when
    /// [`Protection::restricts_writes`], released otherwise.
    ///
    /// # Errors
    ///
    /// Fails on misalignment or unmapped pages.
    fn subpage_protect(&mut self, region: Protection) -> Result<(), CoreError>;
}

/// A `Send + Clone` recipe for constructing a guest inside a worker thread.
///
/// Carries every builder knob that is plain data; anything thread-bound
/// (trace sinks, fault handlers) is attached by the worker after
/// [`GuestConfig::host_builder`]/[`GuestConfig::system_builder`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GuestConfig {
    /// Delivery path to model.
    pub path: DeliveryPath,
    /// Physical memory for the underlying machine.
    pub phys_bytes: usize,
    /// Eager amplification (fast/hardware paths only).
    pub eager_amplification: bool,
    /// Cycles charged per host-level application access.
    pub access_cost: u64,
    /// Degradation policy for deliveries that cannot take the path.
    pub degrade_policy: DegradePolicy,
    /// Machine configuration (execution engine, decode cache). `None`
    /// inherits the building thread's scoped default — see
    /// [`efex_mips::machine::with_machine_config`].
    pub machine: Option<MachineConfig>,
}

impl Default for GuestConfig {
    fn default() -> GuestConfig {
        GuestConfig::new(DeliveryPath::FastUser)
    }
}

impl GuestConfig {
    /// A config for `path` with the builders' default knobs.
    pub fn new(path: DeliveryPath) -> GuestConfig {
        GuestConfig {
            path,
            phys_bytes: efex_simos::layout::DEFAULT_PHYS_BYTES,
            eager_amplification: false,
            access_cost: 2,
            degrade_policy: DegradePolicy::default(),
            machine: None,
        }
    }

    /// A [`HostBuilder`] primed with this config.
    pub fn host_builder(&self) -> HostBuilder {
        let mut b = HostProcess::builder()
            .delivery(self.path)
            .phys_bytes(self.phys_bytes)
            .eager_amplification(self.eager_amplification)
            .access_cost(self.access_cost)
            .degrade_policy(self.degrade_policy);
        if let Some(m) = self.machine {
            b = b.machine_config(m);
        }
        b
    }

    /// A [`SystemBuilder`] primed with this config.
    pub fn system_builder(&self) -> SystemBuilder {
        let mut b = System::builder()
            .delivery(self.path)
            .phys_bytes(self.phys_bytes);
        if let Some(m) = self.machine {
            b = b.machine_config(m);
        }
        b
    }
}

// The whole point of `GuestConfig`: it must stay shippable to workers.
const _: () = {
    const fn assert_send<T: Send + 'static>() {}
    assert_send::<GuestConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_builder_round_trips() {
        let p = Protection::region(0x4000, 0x1000);
        assert_eq!(p.prot(), Prot::ReadWrite, "default is full access");
        assert!(!p.restricts_writes());
        assert!(p.read_only().restricts_writes());
        assert!(p.no_access().restricts_writes());
        assert_eq!(p.read_only().read_write().prot(), Prot::ReadWrite);
        assert!(!p.is_empty());
        assert!(Protection::region(0, 0).is_empty());
    }

    #[test]
    fn guest_config_builders_carry_knobs() {
        let cfg = GuestConfig {
            eager_amplification: true,
            access_cost: 5,
            ..GuestConfig::new(DeliveryPath::HardwareVectored)
        };
        let host = cfg.host_builder().build().unwrap();
        assert_eq!(host.path(), DeliveryPath::HardwareVectored);
        assert!(host.eager_amplification());
        let sys = cfg.system_builder().build().unwrap();
        assert_eq!(sys.path(), DeliveryPath::HardwareVectored);
    }
}
