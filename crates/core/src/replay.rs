//! Deterministic record-replay with divergence bisection.
//!
//! The paper's delivery paths are deterministic by construction, and the
//! repo's fingerprint machinery proves two runs identical — but a bare
//! fingerprint mismatch says nothing about *where* two runs parted ways.
//! This module closes that gap:
//!
//! 1. **Record**: run a workload stepping one retired instruction at a
//!    time, folding the machine's register-state digest
//!    ([`efex_mips::machine::Machine::step_digest`]) into a [`Recording`]
//!    at a configurable stride.
//! 2. **Compare**: [`first_divergence`] binary-searches two recordings
//!    for the first differing stride checkpoint — valid because the
//!    digest covers the monotone cycle/instret counters, so once two runs
//!    diverge their digests never re-converge.
//! 3. **Bisect**: [`bisect`] replays both runs into the diverging stride
//!    window and steps them in lockstep to the exact first diverging
//!    step, reporting both sides' PC and disassembly context as a
//!    [`Divergence`].
//!
//! Replay is abstracted by the [`Replay`] trait; [`KernelReplay`] is the
//! standard implementation over a freshly booted kernel factory, with an
//! optional per-step hook for deliberately perturbing a run (how the CI
//! demo and tests manufacture a divergence to bisect).

use efex_simos::Kernel;
use efex_snap::{Flavor, Reader, SnapError, Writer};

use crate::CoreError;

/// A per-step digest trail captured at fixed stride.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recording {
    /// Steps between recorded digests.
    pub stride: u64,
    /// `digests[i]` is the machine digest after `i * stride` steps
    /// (`digests[0]` is the initial state); one final digest is appended
    /// at the end of the run if it did not land on a stride boundary.
    pub digests: Vec<u64>,
    /// Total steps the recorded run executed.
    pub steps: u64,
}

impl Recording {
    /// Serializes as a standalone [`Flavor::Recording`] artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(Flavor::Recording);
        w.u64(self.stride);
        w.u64(self.steps);
        w.u32(self.digests.len() as u32);
        for d in &self.digests {
            w.u64(*d);
        }
        w.finish()
    }

    /// Deserializes a standalone [`Flavor::Recording`] artifact.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on any malformation; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, SnapError> {
        let mut r = Reader::open(bytes, Flavor::Recording)?;
        let stride = r.u64()?;
        if stride == 0 {
            return Err(SnapError::Corrupt("zero stride".into()));
        }
        let steps = r.u64()?;
        let n = r.count(8)?;
        let mut digests = Vec::with_capacity(n);
        for _ in 0..n {
            digests.push(r.u64()?);
        }
        r.done()?;
        Ok(Recording {
            stride,
            digests,
            steps,
        })
    }
}

/// One side's state at a step, as reported by [`bisect`].
#[derive(Clone, Debug)]
pub struct StepState {
    /// Machine register-state digest after the step.
    pub digest: u64,
    /// PC of the *next* instruction to execute.
    pub pc: u32,
    /// Disassembly of a few instructions at that PC.
    pub disasm: String,
}

/// The first diverging step of two replayed runs.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The first step after which the two runs' digests differ
    /// (divergence happened *during* this step; steps are 1-based here:
    /// step `n` means the n-th retired instruction of the run).
    pub step: u64,
    /// The baseline run's state after that step.
    pub a: StepState,
    /// The diverged run's state after that step.
    pub b: StepState,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "first divergence at step {}: digest {:#018x} vs {:#018x}",
            self.step, self.a.digest, self.b.digest
        )?;
        writeln!(f, "  run A at pc {:#010x}:", self.a.pc)?;
        for line in self.a.disasm.lines() {
            writeln!(f, "    {line}")?;
        }
        writeln!(f, "  run B at pc {:#010x}:", self.b.pc)?;
        for line in self.b.disasm.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// A deterministic run that can be rewound and stepped one retired
/// instruction at a time (exception deliveries ride along inside a step,
/// exactly as they do in a normal run).
pub trait Replay {
    /// Rewinds to the initial state of the run.
    ///
    /// # Errors
    ///
    /// Propagates construction failures from the underlying run factory.
    fn reset(&mut self) -> Result<(), CoreError>;

    /// Advances exactly one retired instruction. Returns `false` once the
    /// run has ended (process exit or termination).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (double faults, unknown hcalls).
    fn step(&mut self) -> Result<bool, CoreError>;

    /// Digest of the current architectural register state.
    fn digest(&self) -> u64;

    /// Current PC plus a short disassembly context for diagnostics.
    fn context(&self) -> StepState;
}

/// A per-step perturbation hook: called with `(step index, kernel)`.
type StepHook = Box<dyn FnMut(u64, &mut Kernel)>;

/// The standard [`Replay`] implementation: a factory that boots (or
/// rebuilds) a kernel, stepped via [`Kernel::run_user`] with a
/// single-instruction budget. An optional per-step hook can perturb the
/// kernel after a chosen step — the supported way to manufacture a
/// divergence for the bisector to find.
pub struct KernelReplay {
    factory: Box<dyn FnMut() -> Result<Kernel, CoreError>>,
    hook: Option<StepHook>,
    kernel: Option<Kernel>,
    steps: u64,
    running: bool,
}

impl KernelReplay {
    /// A replay over kernels produced by `factory`. The factory runs once
    /// per [`Replay::reset`] and must produce identical kernels each time
    /// (same program, same seed) for replay to be meaningful.
    pub fn new(factory: impl FnMut() -> Result<Kernel, CoreError> + 'static) -> KernelReplay {
        KernelReplay {
            factory: Box::new(factory),
            hook: None,
            kernel: None,
            steps: 0,
            running: false,
        }
    }

    /// Installs a hook called after every step with `(step index, kernel)`
    /// — perturb state at a chosen step to create a controlled divergence.
    #[must_use]
    pub fn with_hook(mut self, hook: impl FnMut(u64, &mut Kernel) + 'static) -> KernelReplay {
        self.hook = Some(Box::new(hook));
        self
    }

    /// Steps executed since the last reset.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current kernel (after a reset).
    pub fn kernel(&self) -> Option<&Kernel> {
        self.kernel.as_ref()
    }
}

impl Replay for KernelReplay {
    fn reset(&mut self) -> Result<(), CoreError> {
        self.kernel = Some((self.factory)()?);
        self.steps = 0;
        self.running = true;
        Ok(())
    }

    fn step(&mut self) -> Result<bool, CoreError> {
        if !self.running {
            return Ok(false);
        }
        let kernel = self
            .kernel
            .as_mut()
            .ok_or_else(|| CoreError::Invalid("replay not reset".into()))?;
        match kernel.run_user(1)? {
            efex_simos::RunOutcome::StepLimit => {
                self.steps += 1;
                if let Some(hook) = &mut self.hook {
                    hook(self.steps, kernel);
                }
                Ok(true)
            }
            efex_simos::RunOutcome::Exited(_) | efex_simos::RunOutcome::Terminated(_) => {
                self.steps += 1;
                self.running = false;
                Ok(false)
            }
        }
    }

    fn digest(&self) -> u64 {
        self.kernel
            .as_ref()
            .map_or(0, |k| k.machine().step_digest())
    }

    fn context(&self) -> StepState {
        match self.kernel.as_ref() {
            None => StepState {
                digest: 0,
                pc: 0,
                disasm: String::new(),
            },
            Some(k) => {
                let m = k.machine();
                let pc = m.cpu().pc;
                let rows = efex_mips::disasm::disassemble_range(m, pc, 4, None);
                StepState {
                    digest: m.step_digest(),
                    pc,
                    disasm: efex_mips::disasm::listing(&rows, None),
                }
            }
        }
    }
}

/// Runs a replay from its initial state for up to `max_steps`, recording
/// the digest every `stride` steps (plus the initial and final states).
///
/// # Errors
///
/// [`CoreError::Invalid`] for a zero stride; replay errors propagate.
pub fn record(
    replay: &mut dyn Replay,
    stride: u64,
    max_steps: u64,
) -> Result<Recording, CoreError> {
    if stride == 0 {
        return Err(CoreError::Invalid("record stride must be nonzero".into()));
    }
    replay.reset()?;
    let mut digests = vec![replay.digest()];
    let mut steps = 0u64;
    while steps < max_steps {
        if !replay.step()? {
            steps += 1;
            break;
        }
        steps += 1;
        if steps.is_multiple_of(stride) {
            digests.push(replay.digest());
        }
    }
    if !steps.is_multiple_of(stride) {
        digests.push(replay.digest());
    }
    Ok(Recording {
        stride,
        digests,
        steps,
    })
}

/// The first stride index at which two recordings disagree, found by
/// binary search (sound because the digest covers the monotone
/// cycle/instret counters: once two runs diverge, their digests stay
/// different). Returns `None` when the recordings are identical.
pub fn first_divergence(a: &Recording, b: &Recording) -> Option<usize> {
    let n = a.digests.len().min(b.digests.len());
    if n == 0 {
        return if a.digests.len() == b.digests.len() {
            None
        } else {
            Some(0)
        };
    }
    if a.digests[..n] == b.digests[..n] {
        // Identical common prefix: diverged only if one run kept going.
        return if a.digests.len() == b.digests.len() && a.steps == b.steps {
            None
        } else {
            Some(n)
        };
    }
    // Invariant: digests equal at `lo`, different somewhere in (lo, hi].
    let (mut lo, mut hi) = (0usize, n - 1);
    if a.digests[0] != b.digests[0] {
        return Some(0);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if a.digests[mid] == b.digests[mid] {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Replays both runs into the first diverging stride window and steps
/// them in lockstep to the exact first diverging step.
///
/// Returns `Ok(None)` when the recordings are identical.
///
/// # Errors
///
/// [`CoreError::Invalid`] if the recordings' strides differ, or
/// [`CoreError::Measurement`] if the replays do not reproduce the
/// recorded divergence (the drivers are not the runs that were recorded).
pub fn bisect(
    a_rec: &Recording,
    b_rec: &Recording,
    a: &mut dyn Replay,
    b: &mut dyn Replay,
) -> Result<Option<Divergence>, CoreError> {
    if a_rec.stride != b_rec.stride {
        return Err(CoreError::Invalid(format!(
            "recordings have different strides ({} vs {})",
            a_rec.stride, b_rec.stride
        )));
    }
    let Some(idx) = first_divergence(a_rec, b_rec) else {
        return Ok(None);
    };
    // Digests matched after (idx-1)*stride steps; the divergence lies in
    // the following window.
    let window_start = (idx.saturating_sub(1) as u64) * a_rec.stride;
    a.reset()?;
    b.reset()?;
    for _ in 0..window_start {
        if !a.step()? || !b.step()? {
            return Err(CoreError::Measurement(
                "replay ended before the recorded divergence window".into(),
            ));
        }
    }
    if a.digest() != b.digest() {
        return Err(CoreError::Measurement(
            "replays already differ at the window start — drivers do not \
             match the recorded runs"
                .into(),
        ));
    }
    // Search at most two windows past the start: the recorded divergence
    // must appear within one stride, the slack covers an end-of-run
    // checkpoint off the stride grid.
    let budget = 2 * a_rec.stride + 2;
    for step in window_start + 1..=window_start + budget {
        let a_alive = a.step()?;
        let b_alive = b.step()?;
        if a.digest() != b.digest() || a_alive != b_alive {
            return Ok(Some(Divergence {
                step,
                a: a.context(),
                b: b.context(),
            }));
        }
        if !a_alive {
            break;
        }
    }
    Err(CoreError::Measurement(
        "recorded divergence did not reproduce during step-level replay".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        limit: u64,
        poison_at: Option<u64>,
        n: u64,
    }

    impl Replay for Counter {
        fn reset(&mut self) -> Result<(), CoreError> {
            self.n = 0;
            Ok(())
        }
        fn step(&mut self) -> Result<bool, CoreError> {
            self.n += 1;
            Ok(self.n < self.limit)
        }
        fn digest(&self) -> u64 {
            if self.poison_at.is_some_and(|p| self.n >= p) {
                self.n.wrapping_mul(31).wrapping_add(7)
            } else {
                self.n.wrapping_mul(31)
            }
        }
        fn context(&self) -> StepState {
            StepState {
                digest: self.digest(),
                pc: self.n as u32,
                disasm: format!("step {}", self.n),
            }
        }
    }

    #[test]
    fn identical_runs_have_no_divergence() {
        let mut a = Counter {
            limit: 100,
            poison_at: None,
            n: 0,
        };
        let mut b = Counter {
            limit: 100,
            poison_at: None,
            n: 0,
        };
        let ra = record(&mut a, 8, 1000).unwrap();
        let rb = record(&mut b, 8, 1000).unwrap();
        assert_eq!(ra.steps, 100);
        assert_eq!(first_divergence(&ra, &rb), None);
        assert!(bisect(&ra, &rb, &mut a, &mut b).unwrap().is_none());
    }

    #[test]
    fn bisect_finds_exact_step() {
        let mut a = Counter {
            limit: 200,
            poison_at: None,
            n: 0,
        };
        let mut b = Counter {
            limit: 200,
            poison_at: Some(77),
            n: 0,
        };
        let ra = record(&mut a, 16, 1000).unwrap();
        let rb = record(&mut b, 16, 1000).unwrap();
        let idx = first_divergence(&ra, &rb).unwrap();
        // 77 lies in window (64, 80] → first differing checkpoint index 5
        // (80 steps).
        assert_eq!(idx, 5);
        let d = bisect(&ra, &rb, &mut a, &mut b).unwrap().unwrap();
        assert_eq!(d.step, 77);
        assert_ne!(d.a.digest, d.b.digest);
    }

    #[test]
    fn recording_wire_round_trip() {
        let rec = Recording {
            stride: 64,
            digests: vec![1, 2, 3, 0xdead_beef],
            steps: 200,
        };
        let bytes = rec.to_bytes();
        assert_eq!(Recording::from_bytes(&bytes).unwrap(), rec);
        assert!(Recording::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn length_mismatch_is_divergence() {
        let a = Recording {
            stride: 4,
            digests: vec![1, 2, 3],
            steps: 8,
        };
        let b = Recording {
            stride: 4,
            digests: vec![1, 2],
            steps: 4,
        };
        assert_eq!(first_divergence(&a, &b), Some(2));
    }
}
