//! # efex-core — user-level exception handling (Thekkath & Levy, ASPLOS 1994)
//!
//! The paper's primary contribution as a library: efficient delivery of
//! program-synchronous exceptions to user-level code, over the simulated
//! MIPS machine (`efex-mips`) and kernel (`efex-simos`).
//!
//! Three delivery paths are provided, matching the paper:
//!
//! - [`DeliveryPath::UnixSignals`] — the conventional baseline: full state
//!   save, signal post/recognize/deliver, trampoline, `sigreturn`
//!   (Section 3.1; ~80 µs per round trip at 25 MHz).
//! - [`DeliveryPath::FastUser`] — the paper's software implementation: the
//!   kernel's modified trap handler saves minimal state into a pinned
//!   communication page and returns from the exception directly into the
//!   user handler, which returns by jumping back — no kernel re-entry
//!   (Section 3.2; ~8 µs per round trip).
//! - [`DeliveryPath::HardwareVectored`] — the architectural proposal: the
//!   CPU exchanges PC with a user exception target register, Tera-style;
//!   the kernel is never entered (Section 2; the further 2–3× the paper
//!   estimates).
//!
//! # Two ways to use it
//!
//! **Guest level** ([`System`]): assemble real guest programs and handlers;
//! every instruction of the delivery path executes on the simulator. The
//! microbenchmarks that regenerate the paper's Tables 2 and 3 run this way.
//!
//! **Host level** ([`HostProcess`]): applications written in Rust (the
//! garbage collector, persistent store, DSM, lazy data structures) perform
//! memory accesses through the simulated MMU and receive faults in Rust
//! closures; delivery costs are charged from the guest-level measurements.
//!
//! Both entry points are built the same way — a fluent builder:
//!
//! ```no_run
//! use efex_core::{DeliveryPath, ExceptionKind, HostProcess, System};
//!
//! # fn main() -> Result<(), efex_core::CoreError> {
//! let mut sys = System::builder().delivery(DeliveryPath::FastUser).build()?;
//! let r = sys.measure_null_roundtrip(ExceptionKind::Breakpoint)?;
//! println!("deliver {:.1} us + return {:.1} us", r.deliver_micros(), r.return_micros());
//!
//! let mut host = HostProcess::builder()
//!     .delivery(DeliveryPath::FastUser)
//!     .eager_amplification(true)
//!     .build()?;
//! # let _ = host.cycles();
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! Every exception transits a lifecycle — fault raised, kernel entered,
//! state saved, handler entered, handler returned, resumed — and both
//! builders accept a [`efex_trace::TraceSink`] that observes it. The default
//! sink drops events for free; a ring buffer captures the recent history
//! without allocation:
//!
//! ```no_run
//! use efex_core::{DeliveryPath, ExceptionKind, System};
//! use efex_trace::RingSink;
//! use std::rc::Rc;
//!
//! # fn main() -> Result<(), efex_core::CoreError> {
//! let ring = Rc::new(RingSink::new());
//! let mut sys = System::builder()
//!     .delivery(DeliveryPath::FastUser)
//!     .trace_sink(ring.clone())
//!     .build()?;
//! sys.measure_null_roundtrip(ExceptionKind::Breakpoint)?;
//! for event in ring.events() {
//!     println!("{} @{}cy", event.kind, event.cycles);
//! }
//! println!("{}", sys.trace_metrics().to_json());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod delivery;
mod error;
mod guestmem;
mod host;
pub(crate) mod progs;
pub mod replay;
mod snapshot;
mod system;
mod workload;

pub use delivery::{DeliveryCosts, DeliveryPath};
pub use error::CoreError;
pub use guestmem::{GuestConfig, GuestMem, Protection};
pub use host::{
    DegradePolicy, FaultCtx, FaultInfo, HandlerAction, HandlerSpec, HostBuilder, HostProcess,
    HostStats,
};
pub use snapshot::{HostSnapshot, SystemSnapshot};
pub use system::{ExceptionKind, RoundTrip, System, SystemBuilder, Table3Row};
pub use workload::WorkloadRun;

pub use efex_mips::ExcCode;
pub use efex_simos::Prot;

/// Internal benchmark program sources, exposed for integration tests and
/// the bench harness.
#[doc(hidden)]
pub mod debug_progs {
    pub use crate::progs::*;
}
