//! A two-pass MIPS assembler.
//!
//! The simulated kernel's exception handlers — including the fast-path
//! handler whose instruction counts regenerate the paper's Table 3 — are
//! written in assembly source and assembled at startup by this module.
//!
//! # Syntax
//!
//! - One statement per line; `#` or `;` starts a comment.
//! - Labels: `name:`, optionally followed by a statement on the same line.
//! - Directives: `.org ADDR`, `.word V, …`, `.half V, …`, `.byte V, …`,
//!   `.asciiz "s"`, `.space N`, `.align N` (power of two), `.globl SYM`
//!   (accepted, ignored), `.entry SYM`, `.equ NAME, EXPR` (constants; may
//!   reference earlier symbols).
//! - Registers: `$t0` or `$8`; CP0 registers by name (`$epc`, `$status`,
//!   `$cause`, `$badvaddr`, `$entryhi`, `$entrylo`, `$index`, `$context`,
//!   `$uxt`, `$uxc`, `$uxm`) or number in `mfc0`/`mtc0`.
//! - Pseudo-instructions: `nop`, `li`, `la`, `move`, `b`, `beqz`, `bnez`,
//!   `not`, `neg`, and the two-instruction comparison branches
//!   `blt`/`bge`/`bgt`/`ble` (+ unsigned `…u` forms) through `$at`.
//!
//! # Example
//!
//! ```
//! use efex_mips::asm::assemble;
//! let prog = assemble(r#"
//!     .org 0x80002000
//!     loop:
//!         addiu $t0, $t0, 1
//!         bne   $t0, $t1, loop
//!         nop
//!         hcall 0
//! "#).unwrap();
//! assert_eq!(prog.symbol("loop"), Some(0x8000_2000));
//! ```

mod lexer;
mod parser;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::encode::encode;
use crate::isa::Instruction;

pub(crate) use lexer::{tokenize, Token};
pub(crate) use parser::{parse_line, Item, Stmt};

/// A contiguous chunk of assembled bytes at a fixed address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Start (virtual) address.
    pub addr: u32,
    /// The assembled bytes.
    pub bytes: Vec<u8>,
}

/// The output of [`assemble`]: segments plus the symbol table and source
/// metadata (code labels, per-word source lines) for diagnostics.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    entry: u32,
    segments: Vec<Segment>,
    symbols: BTreeMap<String, u32>,
    /// Symbols defined as *code labels* (`name:`), excluding `.equ`
    /// constants — the set against which addresses are located.
    labels: BTreeMap<String, u32>,
    /// Emitted address → 1-based source line. Every instruction word gets an
    /// entry (pseudo-instruction expansions share their statement's line);
    /// data statements record their start address only.
    lines: BTreeMap<u32, u32>,
}

impl Program {
    /// The entry point: the `.entry` symbol if given, else the first
    /// instruction assembled.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The assembled segments in source order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Looks up a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Iterates `(name, address)` over symbols with a given prefix — used to
    /// build profiler regions from phase labels.
    pub fn symbols_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u32)> + 'a {
        self.symbols
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// The code labels (symbols defined with `name:`, excluding `.equ`
    /// constants), name → address.
    pub fn labels(&self) -> &BTreeMap<String, u32> {
        &self.labels
    }

    /// The 1-based source line that emitted the word at `addr`, if any.
    pub fn line_at(&self, addr: u32) -> Option<u32> {
        self.lines.get(&addr).copied()
    }

    /// Resolves `addr` to `(label, byte offset)` against the nearest code
    /// label at or before it. Returns `None` when no label precedes `addr`.
    pub fn locate(&self, addr: u32) -> Option<(&str, u32)> {
        self.labels
            .iter()
            .filter(|&(_, &a)| a <= addr)
            .max_by_key(|&(_, &a)| a)
            .map(|(name, &a)| (name.as_str(), addr - a))
    }

    /// Fetches the little-endian word assembled at `addr`, if `addr` falls
    /// inside a segment with at least 4 bytes remaining.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        for seg in &self.segments {
            if addr >= seg.addr {
                let off = (addr - seg.addr) as usize;
                if off + 4 <= seg.bytes.len() {
                    let b = &seg.bytes[off..off + 4];
                    return Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                }
            }
        }
        None
    }
}

/// An assembly error, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, undefined or duplicate labels, and out-of-range
/// operands.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Parse every line once.
    let mut items: Vec<(usize, Item)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let tokens = tokenize(raw).map_err(|m| AsmError::new(line_no, m))?;
        let parsed = parse_line(&tokens).map_err(|m| AsmError::new(line_no, m))?;
        for item in parsed {
            items.push((line_no, item));
        }
    }

    // Pass 1: lay out addresses and collect symbols.
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut addr: u32 = 0;
    let mut entry_sym: Option<(usize, String)> = None;
    let mut first_inst: Option<u32> = None;
    for (line, item) in &items {
        match item {
            Item::Label(name) => {
                if symbols.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::new(*line, format!("duplicate label `{name}`")));
                }
                labels.insert(name.clone(), addr);
            }
            Item::Stmt(stmt) => {
                if let Stmt::Org(a) = stmt {
                    addr = *a;
                    continue;
                }
                if let Stmt::Entry(sym) = stmt {
                    entry_sym = Some((*line, sym.clone()));
                    continue;
                }
                if let Stmt::Equ(name, expr) = stmt {
                    let value = expr.eval(&symbols).map_err(|m| AsmError::new(*line, m))?;
                    if symbols.insert(name.clone(), value as u32).is_some() {
                        return Err(AsmError::new(*line, format!("duplicate symbol `{name}`")));
                    }
                    continue;
                }
                if let Stmt::Align(n) = stmt {
                    let a = 1u32 << *n;
                    addr = (addr + a - 1) & !(a - 1);
                    continue;
                }
                let size = stmt.size_bytes().map_err(|m| AsmError::new(*line, m))?;
                if stmt.is_instruction() && first_inst.is_none() {
                    first_inst = Some(addr);
                }
                if stmt.is_instruction() && !addr.is_multiple_of(4) {
                    return Err(AsmError::new(
                        *line,
                        format!("instruction at unaligned address {addr:#x}"),
                    ));
                }
                addr = addr.wrapping_add(size);
            }
        }
    }

    // Pass 2: emit bytes.
    let mut segments: Vec<Segment> = Vec::new();
    let mut lines: BTreeMap<u32, u32> = BTreeMap::new();
    let mut cur: Option<Segment> = None;
    let mut addr: u32 = 0;
    let flush = |cur: &mut Option<Segment>, segments: &mut Vec<Segment>| {
        if let Some(seg) = cur.take() {
            if !seg.bytes.is_empty() {
                segments.push(seg);
            }
        }
    };
    for (line, item) in &items {
        let Item::Stmt(stmt) = item else { continue };
        match stmt {
            Stmt::Org(a) => {
                flush(&mut cur, &mut segments);
                addr = *a;
            }
            Stmt::Entry(_) => {}
            Stmt::Align(n) => {
                let a = 1u32 << *n;
                let new = (addr + a - 1) & !(a - 1);
                if let Some(seg) = cur.as_mut() {
                    seg.bytes.resize(seg.bytes.len() + (new - addr) as usize, 0);
                } else if new != addr {
                    cur = Some(Segment {
                        addr,
                        bytes: vec![0; (new - addr) as usize],
                    });
                }
                addr = new;
            }
            _ => {
                let seg = cur.get_or_insert_with(|| Segment {
                    addr,
                    bytes: Vec::new(),
                });
                let insts = stmt
                    .emit(addr, &symbols)
                    .map_err(|m| AsmError::new(*line, m))?;
                match insts {
                    Emitted::Insts(list) => {
                        for inst in list {
                            lines.insert(addr, *line as u32);
                            seg.bytes.extend_from_slice(&encode(inst).to_le_bytes());
                            addr = addr.wrapping_add(4);
                        }
                    }
                    Emitted::Bytes(bytes) => {
                        if !bytes.is_empty() {
                            lines.insert(addr, *line as u32);
                        }
                        addr = addr.wrapping_add(bytes.len() as u32);
                        seg.bytes.extend_from_slice(&bytes);
                    }
                }
            }
        }
    }
    flush(&mut cur, &mut segments);

    let entry = match entry_sym {
        Some((line, sym)) => *symbols
            .get(&sym)
            .ok_or_else(|| AsmError::new(line, format!("undefined entry symbol `{sym}`")))?,
        None => first_inst.unwrap_or(0),
    };

    Ok(Program {
        entry,
        segments,
        symbols,
        labels,
        lines,
    })
}

/// What one statement emits.
pub(crate) enum Emitted {
    Insts(Vec<Instruction>),
    Bytes(Vec<u8>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::isa::{Instruction, Reg};

    fn words(prog: &Program) -> Vec<u32> {
        let seg = &prog.segments()[0];
        seg.bytes
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    #[test]
    fn assembles_basic_instructions() {
        let p = assemble(
            r#"
            .org 0x80001000
            addiu $t0, $zero, 5
            addu  $t1, $t0, $t0
            sw    $t1, 8($sp)
            jr    $ra
            nop
        "#,
        )
        .unwrap();
        let w = words(&p);
        assert_eq!(
            decode(w[0]).unwrap(),
            Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 5
            }
        );
        assert_eq!(
            decode(w[2]).unwrap(),
            Instruction::Sw {
                rt: Reg::T1,
                base: Reg::SP,
                imm: 8
            }
        );
        assert_eq!(decode(w[4]).unwrap(), Instruction::NOP);
        assert_eq!(p.entry(), 0x8000_1000);
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r#"
            .org 0x80001000
            top:
                bne $t0, $t1, top
                nop
                beq $zero, $zero, done
                nop
            done:
                hcall 0
        "#,
        )
        .unwrap();
        let w = words(&p);
        // bne back to itself: offset -1.
        assert_eq!(
            decode(w[0]).unwrap(),
            Instruction::Bne {
                rs: Reg::T0,
                rt: Reg::T1,
                imm: -1
            }
        );
        // beq forward over one nop: offset +1.
        assert_eq!(
            decode(w[2]).unwrap(),
            Instruction::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: 1
            }
        );
        assert_eq!(p.symbol("done"), Some(0x8000_1010));
    }

    #[test]
    fn li_expands_by_operand_size() {
        let p = assemble(
            r#"
            .org 0x80001000
            li $t0, 5          # addiu
            li $t1, -3         # addiu
            li $t2, 0xffff     # ori
            li $t3, 0x12345678 # lui + ori
        "#,
        )
        .unwrap();
        let w = words(&p);
        assert_eq!(w.len(), 5);
        assert_eq!(
            decode(w[3]).unwrap(),
            Instruction::Lui {
                rt: Reg::T3,
                imm: 0x1234
            }
        );
        assert_eq!(
            decode(w[4]).unwrap(),
            Instruction::Ori {
                rt: Reg::T3,
                rs: Reg::T3,
                imm: 0x5678
            }
        );
    }

    #[test]
    fn la_is_always_two_instructions() {
        let p = assemble(
            r#"
            .org 0x80001000
            la $t0, data
            hcall 0
            data: .word 0xdeadbeef
        "#,
        )
        .unwrap();
        let w = words(&p);
        assert_eq!(w.len(), 4);
        assert_eq!(p.symbol("data"), Some(0x8000_100c));
        assert_eq!(
            decode(w[0]).unwrap(),
            Instruction::Lui {
                rt: Reg::T0,
                imm: 0x8000
            }
        );
        assert_eq!(w[3], 0xdead_beef);
    }

    #[test]
    fn data_directives() {
        let p = assemble(
            r#"
            .org 0x80002000
            .word 1, 2
            .half 3, 4
            .byte 5
            .align 2
            .word 6
            s: .asciiz "hi"
        "#,
        )
        .unwrap();
        let seg = &p.segments()[0];
        assert_eq!(&seg.bytes[0..4], &1u32.to_le_bytes());
        assert_eq!(&seg.bytes[8..10], &3u16.to_le_bytes());
        assert_eq!(seg.bytes[12], 5);
        assert_eq!(&seg.bytes[16..20], &6u32.to_le_bytes());
        assert_eq!(&seg.bytes[20..23], b"hi\0");
        assert_eq!(p.symbol("s"), Some(0x8000_2014));
    }

    #[test]
    fn multiple_org_segments() {
        let p = assemble(
            r#"
            .org 0x80000080
            j handler
            nop
            .org 0x80003000
            handler: hcall 1
        "#,
        )
        .unwrap();
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.segments()[0].addr, 0x8000_0080);
        assert_eq!(p.segments()[1].addr, 0x8000_3000);
    }

    #[test]
    fn entry_directive() {
        let p = assemble(
            r#"
            .org 0x80001000
            .entry main
            helper: nop
            main: hcall 0
        "#,
        )
        .unwrap();
        assert_eq!(p.entry(), 0x8000_1004);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus $t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
        let e = assemble("b nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined"), "{e}");
    }

    #[test]
    fn branch_out_of_range_is_an_error() {
        let src = ".org 0x80001000\nb far\n.org 0x80041000\nfar: nop\n".to_string();
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("range"), "{e}");
    }

    #[test]
    fn cp0_registers_by_name() {
        let p = assemble(
            r#"
            .org 0x80001000
            mfc0 $k0, $epc
            mtc0 $k0, $uxt
            mfc0 $k1, $14
        "#,
        )
        .unwrap();
        let w = words(&p);
        assert_eq!(
            decode(w[0]).unwrap(),
            Instruction::Mfc0 {
                rt: Reg::K0,
                rd: 14
            }
        );
        assert_eq!(
            decode(w[1]).unwrap(),
            Instruction::Mtc0 {
                rt: Reg::K0,
                rd: 24
            }
        );
        assert_eq!(
            decode(w[2]).unwrap(),
            Instruction::Mfc0 {
                rt: Reg::K1,
                rd: 14
            }
        );
    }

    #[test]
    fn utlbp_and_extension_ops() {
        let p = assemble(
            r#"
            .org 0x80001000
            utlbp $a0, wp
            utlbp $a1, we
            xpcu
            rfe
            tlbwi
        "#,
        )
        .unwrap();
        let w = words(&p);
        assert_eq!(
            decode(w[0]).unwrap(),
            Instruction::Utlbp {
                rs: Reg::A0,
                op: crate::isa::TlbProtOp::WriteProtect
            }
        );
        assert_eq!(decode(w[2]).unwrap(), Instruction::Xpcu);
    }

    #[test]
    fn program_metadata_locates_and_cites_lines() {
        let p = assemble(
            "\
.org 0x80001000
.equ FOUR, 4
start:
    nop
    li $t0, 0x12345678   # expands to two words, one source line
body:
    lw $t1, FOUR($t0)
",
        )
        .unwrap();
        // `.equ` constants are symbols but not code labels.
        assert_eq!(p.symbol("FOUR"), Some(4));
        assert!(p.labels().contains_key("start"));
        assert!(!p.labels().contains_key("FOUR"));
        // label+offset resolution picks the nearest preceding label.
        assert_eq!(p.locate(0x8000_1000), Some(("start", 0)));
        assert_eq!(p.locate(0x8000_1008), Some(("start", 8)));
        assert_eq!(p.locate(0x8000_100c), Some(("body", 0)));
        assert_eq!(p.locate(0x8000_0fff), None);
        // Both words of the li expansion cite the same source line.
        assert_eq!(p.line_at(0x8000_1004), Some(5));
        assert_eq!(p.line_at(0x8000_1008), Some(5));
        assert_eq!(p.line_at(0x8000_100c), Some(7));
        assert_eq!(p.line_at(0x8000_1010), None);
        // Word fetch straddles the emitted image exactly.
        assert_eq!(
            p.word_at(0x8000_1000),
            Some(crate::encode::encode(Instruction::NOP))
        );
        assert_eq!(p.word_at(0x8000_1010), None);
    }

    #[test]
    fn symbol_arithmetic() {
        let p = assemble(
            r#"
            .org 0x80001000
            la $t0, data + 4
            data: .word 1, 2
        "#,
        )
        .unwrap();
        let w = words(&p);
        assert_eq!(
            decode(w[1]).unwrap(),
            Instruction::Ori {
                rt: Reg::T0,
                rs: Reg::T0,
                imm: 0x100c
            }
        );
    }
}

#[cfg(test)]
mod equ_tests {
    use super::*;
    use crate::decode::decode;
    use crate::isa::{Instruction, Reg};

    #[test]
    fn equ_defines_usable_constants() {
        let p = assemble(
            r#"
            .equ COMM, 0x7ffe0000
            .equ FRAME, 32
            .equ BRK_EPC, FRAME * 0 + 288   ; no multiply: use additions
            .org 0x80001000
            lui $k0, 0x7ffe
            lw  $k1, FRAME($k0)
        "#,
        );
        // The line with `*` must fail (no multiplication operator); try the
        // supported additive form instead.
        assert!(p.is_err());
        let p = assemble(
            r#"
            .equ COMM_HI, 0x7ffe
            .equ FRAME, 32
            .equ SLOT, FRAME + 4
            .org 0x80001000
            lui $k0, COMM_HI
            lw  $k1, SLOT($k0)
        "#,
        )
        .unwrap();
        let seg = &p.segments()[0];
        let w1 = u32::from_le_bytes(seg.bytes[0..4].try_into().unwrap());
        let w2 = u32::from_le_bytes(seg.bytes[4..8].try_into().unwrap());
        assert_eq!(
            decode(w1).unwrap(),
            Instruction::Lui {
                rt: Reg::K0,
                imm: 0x7ffe
            }
        );
        assert_eq!(
            decode(w2).unwrap(),
            Instruction::Lw {
                rt: Reg::K1,
                base: Reg::K0,
                imm: 36
            }
        );
        assert_eq!(p.symbol("SLOT"), Some(36));
    }

    #[test]
    fn equ_rejects_duplicates_and_forward_refs() {
        let e = assemble(".equ A, 1\n.equ A, 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        let e = assemble(".equ A, B\n.equ B, 1\n").unwrap_err();
        assert!(e.message.contains("undefined"), "{e}");
    }
}
