//! Statement parser and instruction emitter for the assembler.

use std::collections::BTreeMap;

use super::{Emitted, Token};
use crate::isa::{Instruction, Reg, TlbProtOp};

/// A parsed line item: a label definition or a statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    Label(String),
    Stmt(Stmt),
}

/// A symbolic expression: a signed sum of integers and symbols.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Expr {
    terms: Vec<(bool, Term)>, // (negated, term)
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Term {
    Int(i64),
    Sym(String),
}

impl Expr {
    fn int(v: i64) -> Expr {
        Expr {
            terms: vec![(false, Term::Int(v))],
        }
    }

    /// Evaluates with a symbol table.
    pub fn eval(&self, symbols: &BTreeMap<String, u32>) -> Result<i64, String> {
        let mut total: i64 = 0;
        for (neg, term) in &self.terms {
            let v = match term {
                Term::Int(v) => *v,
                Term::Sym(s) => i64::from(
                    *symbols
                        .get(s)
                        .ok_or_else(|| format!("undefined symbol `{s}`"))?,
                ),
            };
            total += if *neg { -v } else { v };
        }
        Ok(total)
    }

    /// Evaluates when the expression contains no symbols.
    fn eval_literal(&self) -> Option<i64> {
        self.eval(&BTreeMap::new()).ok()
    }

    /// If the expression is a single bare symbol, its name.
    fn as_bare_symbol(&self) -> Option<&str> {
        match self.terms.as_slice() {
            [(false, Term::Sym(s))] => Some(s),
            _ => None,
        }
    }
}

/// A parsed operand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operand {
    /// `$name` — a GPR or CP0 register alias; resolved per position.
    Reg(String),
    /// A symbolic/integer expression.
    Expr(Expr),
    /// `offset(base)` memory operand.
    Mem { offset: Expr, base: String },
}

/// A parsed statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    Org(u32),
    Entry(String),
    Align(u32),
    /// `.equ NAME, expr` — defines a symbol (expr may use earlier symbols).
    Equ(String, Expr),
    Word(Vec<Expr>),
    Half(Vec<Expr>),
    Byte(Vec<Expr>),
    Asciiz(String),
    Space(u32),
    Inst {
        mnemonic: String,
        operands: Vec<Operand>,
    },
}

impl Stmt {
    /// Whether the statement emits executable instructions.
    pub fn is_instruction(&self) -> bool {
        matches!(self, Stmt::Inst { .. })
    }

    /// Bytes this statement will occupy (layout pass).
    pub fn size_bytes(&self) -> Result<u32, String> {
        Ok(match self {
            Stmt::Org(_) | Stmt::Entry(_) | Stmt::Align(_) | Stmt::Equ(..) => 0,
            Stmt::Word(v) => 4 * v.len() as u32,
            Stmt::Half(v) => 2 * v.len() as u32,
            Stmt::Byte(v) => v.len() as u32,
            Stmt::Asciiz(s) => s.len() as u32 + 1,
            Stmt::Space(n) => *n,
            Stmt::Inst { mnemonic, operands } => inst_size(mnemonic, operands)?,
        })
    }

    /// Emits instructions or bytes at `addr` with all symbols known.
    pub fn emit(&self, addr: u32, symbols: &BTreeMap<String, u32>) -> Result<Emitted, String> {
        match self {
            Stmt::Org(_) | Stmt::Entry(_) | Stmt::Align(_) | Stmt::Equ(..) => {
                Ok(Emitted::Bytes(Vec::new()))
            }
            Stmt::Word(v) => {
                let mut bytes = Vec::with_capacity(4 * v.len());
                for e in v {
                    let val = e.eval(symbols)?;
                    bytes.extend_from_slice(&(val as u32).to_le_bytes());
                }
                Ok(Emitted::Bytes(bytes))
            }
            Stmt::Half(v) => {
                let mut bytes = Vec::with_capacity(2 * v.len());
                for e in v {
                    let val = e.eval(symbols)?;
                    bytes.extend_from_slice(&(val as u16).to_le_bytes());
                }
                Ok(Emitted::Bytes(bytes))
            }
            Stmt::Byte(v) => {
                let mut bytes = Vec::with_capacity(v.len());
                for e in v {
                    bytes.push(e.eval(symbols)? as u8);
                }
                Ok(Emitted::Bytes(bytes))
            }
            Stmt::Asciiz(s) => {
                let mut bytes = s.clone().into_bytes();
                bytes.push(0);
                Ok(Emitted::Bytes(bytes))
            }
            Stmt::Space(n) => Ok(Emitted::Bytes(vec![0; *n as usize])),
            Stmt::Inst { mnemonic, operands } => {
                emit_inst(mnemonic, operands, addr, symbols).map(Emitted::Insts)
            }
        }
    }
}

/// Parses one tokenized line into items (labels then at most one statement).
pub fn parse_line(tokens: &[Token]) -> Result<Vec<Item>, String> {
    let mut items = Vec::new();
    let mut toks = tokens;
    // Leading labels.
    while let [Token::Ident(name), Token::Colon, rest @ ..] = toks {
        items.push(Item::Label(name.clone()));
        toks = rest;
    }
    if toks.is_empty() {
        return Ok(items);
    }
    let stmt = match &toks[0] {
        Token::Directive(d) => parse_directive(d, &toks[1..])?,
        Token::Ident(m) => Some(Stmt::Inst {
            mnemonic: m.to_ascii_lowercase(),
            operands: parse_operands(&toks[1..])?,
        }),
        other => return Err(format!("unexpected token {other:?}")),
    };
    if let Some(s) = stmt {
        items.push(Item::Stmt(s));
    }
    Ok(items)
}

fn parse_directive(name: &str, rest: &[Token]) -> Result<Option<Stmt>, String> {
    let exprs = || -> Result<Vec<Expr>, String> {
        let ops = parse_operands(rest)?;
        ops.into_iter()
            .map(|o| match o {
                Operand::Expr(e) => Ok(e),
                other => Err(format!("expected expression, got {other:?}")),
            })
            .collect()
    };
    let one_int = || -> Result<i64, String> {
        match rest {
            [Token::Int(v)] => Ok(*v),
            _ => Err(format!(".{name} expects one integer")),
        }
    };
    Ok(Some(match name {
        "org" => Stmt::Org(one_int()? as u32),
        "align" => Stmt::Align(one_int()? as u32),
        "space" => Stmt::Space(one_int()? as u32),
        "word" => Stmt::Word(exprs()?),
        "half" => Stmt::Half(exprs()?),
        "byte" => Stmt::Byte(exprs()?),
        "asciiz" => match rest {
            [Token::Str(s)] => Stmt::Asciiz(s.clone()),
            _ => return Err(".asciiz expects one string".into()),
        },
        "entry" => match rest {
            [Token::Ident(s)] => Stmt::Entry(s.clone()),
            _ => return Err(".entry expects a symbol".into()),
        },
        "equ" | "set" => match rest {
            [Token::Ident(name), Token::Comma, expr_toks @ ..] if !expr_toks.is_empty() => {
                let (op, used) = parse_operand(expr_toks, 0)?;
                if used != expr_toks.len() {
                    return Err(".equ has trailing tokens".into());
                }
                match op {
                    Operand::Expr(e) => Stmt::Equ(name.clone(), e),
                    other => return Err(format!(".equ expects an expression, got {other:?}")),
                }
            }
            _ => return Err(".equ expects `NAME, expression`".into()),
        },
        "globl" | "global" | "text" | "data" => return Ok(None), // accepted, ignored
        other => return Err(format!("unknown directive `.{other}`")),
    }))
}

fn parse_operands(tokens: &[Token]) -> Result<Vec<Operand>, String> {
    let mut ops = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (op, next) = parse_operand(tokens, i)?;
        ops.push(op);
        i = next;
        match tokens.get(i) {
            None => break,
            Some(Token::Comma) => i += 1,
            Some(t) => return Err(format!("expected `,`, got {t:?}")),
        }
    }
    Ok(ops)
}

fn parse_operand(tokens: &[Token], mut i: usize) -> Result<(Operand, usize), String> {
    match &tokens[i] {
        Token::Reg(name) => Ok((Operand::Reg(name.clone()), i + 1)),
        Token::LParen => {
            // `(base)` — zero-offset memory operand.
            if let (Some(Token::Reg(base)), Some(Token::RParen)) =
                (tokens.get(i + 1), tokens.get(i + 2))
            {
                Ok((
                    Operand::Mem {
                        offset: Expr::int(0),
                        base: base.clone(),
                    },
                    i + 3,
                ))
            } else {
                Err("malformed memory operand".into())
            }
        }
        Token::Int(_) | Token::Ident(_) | Token::Minus => {
            let mut terms = Vec::new();
            let mut negate = false;
            loop {
                match tokens.get(i) {
                    Some(Token::Minus) => {
                        negate = !negate;
                        i += 1;
                    }
                    Some(Token::Plus) => {
                        i += 1;
                    }
                    _ => {}
                }
                match tokens.get(i) {
                    Some(Token::Int(v)) => terms.push((negate, Term::Int(*v))),
                    Some(Token::Ident(s)) => terms.push((negate, Term::Sym(s.clone()))),
                    other => return Err(format!("expected expression term, got {other:?}")),
                }
                i += 1;
                negate = false;
                match tokens.get(i) {
                    Some(Token::Plus) => {
                        i += 1;
                    }
                    Some(Token::Minus) => {
                        negate = true;
                        i += 1;
                    }
                    _ => break,
                }
            }
            let expr = Expr { terms };
            // `expr(base)` memory operand?
            if let (Some(Token::LParen), Some(Token::Reg(base)), Some(Token::RParen)) =
                (tokens.get(i), tokens.get(i + 1), tokens.get(i + 2))
            {
                Ok((
                    Operand::Mem {
                        offset: expr,
                        base: base.clone(),
                    },
                    i + 3,
                ))
            } else {
                Ok((Operand::Expr(expr), i))
            }
        }
        other => Err(format!("unexpected operand token {other:?}")),
    }
}

// --- emission --------------------------------------------------------------

fn gpr(name: &str) -> Result<Reg, String> {
    Reg::parse(name).ok_or_else(|| format!("unknown register `${name}`"))
}

fn cp0_number(name: &str) -> Result<u8, String> {
    if let Ok(n) = name.parse::<u8>() {
        return Ok(n);
    }
    Ok(match name {
        "index" => 0,
        "random" => 1,
        "entrylo" => 2,
        "context" => 4,
        "badvaddr" => 8,
        "entryhi" => 10,
        "status" => 12,
        "cause" => 13,
        "epc" => 14,
        "prid" => 15,
        "uxt" => 24,
        "uxc" => 25,
        "uxm" => 26,
        other => return Err(format!("unknown CP0 register `${other}`")),
    })
}

fn want_reg(op: &Operand) -> Result<Reg, String> {
    match op {
        Operand::Reg(name) => gpr(name),
        other => Err(format!("expected register, got {other:?}")),
    }
}

fn want_cp0(op: &Operand) -> Result<u8, String> {
    match op {
        Operand::Reg(name) => cp0_number(name),
        other => Err(format!("expected CP0 register, got {other:?}")),
    }
}

fn want_expr(op: &Operand) -> Result<&Expr, String> {
    match op {
        Operand::Expr(e) => Ok(e),
        other => Err(format!("expected expression, got {other:?}")),
    }
}

fn want_mem(op: &Operand) -> Result<(&Expr, Reg), String> {
    match op {
        Operand::Mem { offset, base } => Ok((offset, gpr(base)?)),
        other => Err(format!("expected memory operand, got {other:?}")),
    }
}

fn imm16s(v: i64) -> Result<i16, String> {
    i16::try_from(v).map_err(|_| format!("immediate {v} does not fit in 16 signed bits"))
}

/// Sign-extended immediates also accept the 0..0xffff bit-pattern form
/// (`sltiu $t0, $t1, 0xffff` is idiomatic for "compare against -1
/// sign-extended"), as conventional MIPS assemblers do.
fn imm16s_or_bits(v: i64) -> Result<i16, String> {
    if let Ok(s) = i16::try_from(v) {
        return Ok(s);
    }
    u16::try_from(v)
        .map(|u| u as i16)
        .map_err(|_| format!("immediate {v} does not fit in 16 bits"))
}

fn imm16u(v: i64) -> Result<u16, String> {
    u16::try_from(v).map_err(|_| format!("immediate {v} does not fit in 16 unsigned bits"))
}

fn arity(ops: &[Operand], n: usize, mnemonic: &str) -> Result<(), String> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(format!(
            "`{mnemonic}` expects {n} operand(s), got {}",
            ops.len()
        ))
    }
}

/// Size in bytes of one instruction statement (pseudo-expansion aware).
fn inst_size(mnemonic: &str, operands: &[Operand]) -> Result<u32, String> {
    match mnemonic {
        "li" => {
            arity(operands, 2, "li")?;
            // Literal values pick the short form when they fit; symbolic
            // values (e.g. `.equ` constants) always take the two-instruction
            // form so the layout is known in pass 1.
            match want_expr(&operands[1])?.eval_literal() {
                Some(v) if i16::try_from(v).is_ok() || u16::try_from(v).is_ok() => Ok(4),
                _ => Ok(8),
            }
        }
        "la" => Ok(8),
        // Comparison branches expand to slt/sltu + beq/bne through $at.
        "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" | "bgtu" | "bleu" => Ok(8),
        _ => Ok(4),
    }
}

fn emit_inst(
    mnemonic: &str,
    ops: &[Operand],
    addr: u32,
    symbols: &BTreeMap<String, u32>,
) -> Result<Vec<Instruction>, String> {
    use Instruction::*;

    let branch_off = |e: &Expr| -> Result<i16, String> {
        let target = e.eval(symbols)? as u32;
        let delta = target.wrapping_sub(addr.wrapping_add(4)) as i32;
        if delta % 4 != 0 {
            return Err("branch target is not word-aligned".into());
        }
        i16::try_from(delta / 4).map_err(|_| "branch target out of range".into())
    };
    let jump_target = |e: &Expr| -> Result<u32, String> {
        let target = e.eval(symbols)? as u32;
        if target & 3 != 0 {
            return Err("jump target is not word-aligned".into());
        }
        if (target & 0xf000_0000) != (addr.wrapping_add(4) & 0xf000_0000) {
            return Err("jump target outside the current 256MB region".into());
        }
        Ok((target >> 2) & 0x03ff_ffff)
    };

    let one = |i: Instruction| Ok(vec![i]);

    match mnemonic {
        // --- three-register ALU ---
        "add" | "addu" | "sub" | "subu" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" => {
            arity(ops, 3, mnemonic)?;
            let rd = want_reg(&ops[0])?;
            let rs = want_reg(&ops[1])?;
            let rt = want_reg(&ops[2])?;
            one(match mnemonic {
                "add" => Add { rd, rs, rt },
                "addu" => Addu { rd, rs, rt },
                "sub" => Sub { rd, rs, rt },
                "subu" => Subu { rd, rs, rt },
                "and" => And { rd, rs, rt },
                "or" => Or { rd, rs, rt },
                "xor" => Xor { rd, rs, rt },
                "nor" => Nor { rd, rs, rt },
                "slt" => Slt { rd, rs, rt },
                _ => Sltu { rd, rs, rt },
            })
        }
        // --- shifts ---
        "sll" | "srl" | "sra" => {
            arity(ops, 3, mnemonic)?;
            let rd = want_reg(&ops[0])?;
            let rt = want_reg(&ops[1])?;
            let sh = want_expr(&ops[2])?.eval(symbols)?;
            let shamt = u8::try_from(sh)
                .ok()
                .filter(|s| *s < 32)
                .ok_or("shift amount out of range")?;
            one(match mnemonic {
                "sll" => Sll { rd, rt, shamt },
                "srl" => Srl { rd, rt, shamt },
                _ => Sra { rd, rt, shamt },
            })
        }
        "sllv" | "srlv" | "srav" => {
            arity(ops, 3, mnemonic)?;
            let rd = want_reg(&ops[0])?;
            let rt = want_reg(&ops[1])?;
            let rs = want_reg(&ops[2])?;
            one(match mnemonic {
                "sllv" => Sllv { rd, rt, rs },
                "srlv" => Srlv { rd, rt, rs },
                _ => Srav { rd, rt, rs },
            })
        }
        // --- jumps through registers ---
        "jr" => {
            arity(ops, 1, "jr")?;
            one(Jr {
                rs: want_reg(&ops[0])?,
            })
        }
        "jalr" => match ops.len() {
            1 => one(Jalr {
                rd: Reg::RA,
                rs: want_reg(&ops[0])?,
            }),
            2 => one(Jalr {
                rd: want_reg(&ops[0])?,
                rs: want_reg(&ops[1])?,
            }),
            n => Err(format!("`jalr` expects 1 or 2 operands, got {n}")),
        },
        // --- traps ---
        "syscall" => one(Syscall {
            code: match ops {
                [] => 0,
                [op] => want_expr(op)?.eval(symbols)? as u32,
                _ => return Err("`syscall` expects at most one operand".into()),
            },
        }),
        "break" => one(Break {
            code: match ops {
                [] => 0,
                [op] => want_expr(op)?.eval(symbols)? as u32,
                _ => return Err("`break` expects at most one operand".into()),
            },
        }),
        "hcall" => {
            arity(ops, 1, "hcall")?;
            one(Hcall {
                code: want_expr(&ops[0])?.eval(symbols)? as u32,
            })
        }
        // --- HI/LO ---
        "mfhi" => one(Mfhi {
            rd: want_reg(&ops[0])?,
        }),
        "mflo" => one(Mflo {
            rd: want_reg(&ops[0])?,
        }),
        "mthi" => one(Mthi {
            rs: want_reg(&ops[0])?,
        }),
        "mtlo" => one(Mtlo {
            rs: want_reg(&ops[0])?,
        }),
        "mult" | "multu" | "div" | "divu" => {
            arity(ops, 2, mnemonic)?;
            let rs = want_reg(&ops[0])?;
            let rt = want_reg(&ops[1])?;
            one(match mnemonic {
                "mult" => Mult { rs, rt },
                "multu" => Multu { rs, rt },
                "div" => Div { rs, rt },
                _ => Divu { rs, rt },
            })
        }
        // --- immediate ALU ---
        "addi" | "addiu" | "slti" | "sltiu" => {
            arity(ops, 3, mnemonic)?;
            let rt = want_reg(&ops[0])?;
            let rs = want_reg(&ops[1])?;
            let imm = imm16s_or_bits(want_expr(&ops[2])?.eval(symbols)?)?;
            one(match mnemonic {
                "addi" => Addi { rt, rs, imm },
                "addiu" => Addiu { rt, rs, imm },
                "slti" => Slti { rt, rs, imm },
                _ => Sltiu { rt, rs, imm },
            })
        }
        "andi" | "ori" | "xori" => {
            arity(ops, 3, mnemonic)?;
            let rt = want_reg(&ops[0])?;
            let rs = want_reg(&ops[1])?;
            let imm = imm16u(want_expr(&ops[2])?.eval(symbols)?)?;
            one(match mnemonic {
                "andi" => Andi { rt, rs, imm },
                "ori" => Ori { rt, rs, imm },
                _ => Xori { rt, rs, imm },
            })
        }
        "lui" => {
            arity(ops, 2, "lui")?;
            one(Lui {
                rt: want_reg(&ops[0])?,
                imm: imm16u(want_expr(&ops[1])?.eval(symbols)?)?,
            })
        }
        // --- branches ---
        "beq" | "bne" => {
            arity(ops, 3, mnemonic)?;
            let rs = want_reg(&ops[0])?;
            let rt = want_reg(&ops[1])?;
            let imm = branch_off(want_expr(&ops[2])?)?;
            one(if mnemonic == "beq" {
                Beq { rs, rt, imm }
            } else {
                Bne { rs, rt, imm }
            })
        }
        "blez" | "bgtz" | "bltz" | "bgez" | "bltzal" | "bgezal" => {
            arity(ops, 2, mnemonic)?;
            let rs = want_reg(&ops[0])?;
            let imm = branch_off(want_expr(&ops[1])?)?;
            one(match mnemonic {
                "blez" => Blez { rs, imm },
                "bgtz" => Bgtz { rs, imm },
                "bltz" => Bltz { rs, imm },
                "bgez" => Bgez { rs, imm },
                "bltzal" => Bltzal { rs, imm },
                _ => Bgezal { rs, imm },
            })
        }
        // --- memory ---
        "lb" | "lh" | "lw" | "lbu" | "lhu" | "sb" | "sh" | "sw" => {
            arity(ops, 2, mnemonic)?;
            let rt = want_reg(&ops[0])?;
            let (off, base) = want_mem(&ops[1])?;
            let imm = imm16s(off.eval(symbols)?)?;
            one(match mnemonic {
                "lb" => Lb { rt, base, imm },
                "lh" => Lh { rt, base, imm },
                "lw" => Lw { rt, base, imm },
                "lbu" => Lbu { rt, base, imm },
                "lhu" => Lhu { rt, base, imm },
                "sb" => Sb { rt, base, imm },
                "sh" => Sh { rt, base, imm },
                _ => Sw { rt, base, imm },
            })
        }
        // --- absolute jumps ---
        "j" => {
            arity(ops, 1, "j")?;
            one(J {
                target: jump_target(want_expr(&ops[0])?)?,
            })
        }
        "jal" => {
            arity(ops, 1, "jal")?;
            one(Jal {
                target: jump_target(want_expr(&ops[0])?)?,
            })
        }
        // --- CP0 ---
        "mfc0" => {
            arity(ops, 2, "mfc0")?;
            one(Mfc0 {
                rt: want_reg(&ops[0])?,
                rd: want_cp0(&ops[1])?,
            })
        }
        "mtc0" => {
            arity(ops, 2, "mtc0")?;
            one(Mtc0 {
                rt: want_reg(&ops[0])?,
                rd: want_cp0(&ops[1])?,
            })
        }
        "tlbr" => one(Tlbr),
        "tlbwi" => one(Tlbwi),
        "tlbwr" => one(Tlbwr),
        "tlbp" => one(Tlbp),
        "rfe" => one(Rfe),
        "xpcu" => one(Xpcu),
        "utlbp" => {
            arity(ops, 2, "utlbp")?;
            let rs = want_reg(&ops[0])?;
            let name = want_expr(&ops[1])?
                .as_bare_symbol()
                .ok_or("`utlbp` expects a protection op: wp, we, pa, re")?;
            let op = match name {
                "wp" => TlbProtOp::WriteProtect,
                "we" => TlbProtOp::WriteEnable,
                "pa" => TlbProtOp::ProtectAll,
                "re" => TlbProtOp::ReadEnable,
                other => return Err(format!("unknown protection op `{other}`")),
            };
            one(Utlbp { rs, op })
        }
        // --- pseudo-instructions ---
        "nop" => one(Instruction::NOP),
        "move" => {
            arity(ops, 2, "move")?;
            one(Addu {
                rd: want_reg(&ops[0])?,
                rs: want_reg(&ops[1])?,
                rt: Reg::ZERO,
            })
        }
        "not" => {
            arity(ops, 2, "not")?;
            one(Nor {
                rd: want_reg(&ops[0])?,
                rs: want_reg(&ops[1])?,
                rt: Reg::ZERO,
            })
        }
        "neg" => {
            arity(ops, 2, "neg")?;
            one(Sub {
                rd: want_reg(&ops[0])?,
                rs: Reg::ZERO,
                rt: want_reg(&ops[1])?,
            })
        }
        "b" => {
            arity(ops, 1, "b")?;
            one(Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: branch_off(want_expr(&ops[0])?)?,
            })
        }
        "beqz" => {
            arity(ops, 2, "beqz")?;
            one(Beq {
                rs: want_reg(&ops[0])?,
                rt: Reg::ZERO,
                imm: branch_off(want_expr(&ops[1])?)?,
            })
        }
        "bnez" => {
            arity(ops, 2, "bnez")?;
            one(Bne {
                rs: want_reg(&ops[0])?,
                rt: Reg::ZERO,
                imm: branch_off(want_expr(&ops[1])?)?,
            })
        }
        "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" | "bgtu" | "bleu" => {
            arity(ops, 3, mnemonic)?;
            let rs = want_reg(&ops[0])?;
            let rt = want_reg(&ops[1])?;
            // The branch is the second emitted instruction, at addr + 4.
            let target = want_expr(&ops[2])?.eval(symbols)? as u32;
            let delta = target.wrapping_sub(addr.wrapping_add(8)) as i32;
            if delta % 4 != 0 {
                return Err("branch target is not word-aligned".into());
            }
            let imm = i16::try_from(delta / 4).map_err(|_| "branch target out of range")?;
            let unsigned = mnemonic.ends_with('u');
            // blt: at = rs < rt ; bgt: at = rt < rs (operands swapped).
            let (cmp_rs, cmp_rt) = match mnemonic.trim_end_matches('u') {
                "blt" | "bge" => (rs, rt),
                _ => (rt, rs),
            };
            let cmp = if unsigned {
                Sltu {
                    rd: Reg::AT,
                    rs: cmp_rs,
                    rt: cmp_rt,
                }
            } else {
                Slt {
                    rd: Reg::AT,
                    rs: cmp_rs,
                    rt: cmp_rt,
                }
            };
            // blt/bgt branch when the comparison is true; bge/ble when false.
            let br = match mnemonic.trim_end_matches('u') {
                "blt" | "bgt" => Bne {
                    rs: Reg::AT,
                    rt: Reg::ZERO,
                    imm,
                },
                _ => Beq {
                    rs: Reg::AT,
                    rt: Reg::ZERO,
                    imm,
                },
            };
            Ok(vec![cmp, br])
        }
        "li" => {
            arity(ops, 2, "li")?;
            let rt = want_reg(&ops[0])?;
            let expr = want_expr(&ops[1])?;
            // Mirror the pass-1 sizing rule exactly: only literals use the
            // short forms.
            if let Some(v) = expr.eval_literal() {
                if let Ok(s) = i16::try_from(v) {
                    return one(Addiu {
                        rt,
                        rs: Reg::ZERO,
                        imm: s,
                    });
                }
                if let Ok(u) = u16::try_from(v) {
                    return one(Ori {
                        rt,
                        rs: Reg::ZERO,
                        imm: u,
                    });
                }
            }
            let v = expr.eval(symbols)?;
            let w = u32::try_from(v)
                .or_else(|_| i32::try_from(v).map(|s| s as u32))
                .map_err(|_| format!("`li` value {v} does not fit in 32 bits"))?;
            Ok(vec![
                Lui {
                    rt,
                    imm: (w >> 16) as u16,
                },
                Ori {
                    rt,
                    rs: rt,
                    imm: (w & 0xffff) as u16,
                },
            ])
        }
        "la" => {
            arity(ops, 2, "la")?;
            let rt = want_reg(&ops[0])?;
            let v = want_expr(&ops[1])?.eval(symbols)? as u32;
            Ok(vec![
                Lui {
                    rt,
                    imm: (v >> 16) as u16,
                },
                Ori {
                    rt,
                    rs: rt,
                    imm: (v & 0xffff) as u16,
                },
            ])
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tokenize;
    use super::*;

    fn parse(line: &str) -> Vec<Item> {
        parse_line(&tokenize(line).unwrap()).unwrap()
    }

    #[test]
    fn parses_label_and_statement_on_one_line() {
        let items = parse("start: addiu $t0, $zero, 1");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], Item::Label("start".into()));
        assert!(matches!(items[1], Item::Stmt(Stmt::Inst { .. })));
    }

    #[test]
    fn parses_memory_operands() {
        let items = parse("lw $t0, 4($sp)");
        let Item::Stmt(Stmt::Inst { operands, .. }) = &items[0] else {
            panic!()
        };
        assert!(matches!(operands[1], Operand::Mem { .. }));
        // Zero-offset shorthand.
        let items = parse("lw $t0, ($sp)");
        let Item::Stmt(Stmt::Inst { operands, .. }) = &items[0] else {
            panic!()
        };
        assert!(matches!(operands[1], Operand::Mem { .. }));
    }

    #[test]
    fn expr_eval_with_symbols() {
        let items = parse("la $t0, base + 8 - 4");
        let Item::Stmt(Stmt::Inst { operands, .. }) = &items[0] else {
            panic!()
        };
        let Operand::Expr(e) = &operands[1] else {
            panic!()
        };
        let mut syms = BTreeMap::new();
        syms.insert("base".to_string(), 0x100u32);
        assert_eq!(e.eval(&syms).unwrap(), 0x104);
        assert!(e.eval(&BTreeMap::new()).is_err());
    }

    #[test]
    fn directive_parsing() {
        assert!(matches!(
            parse(".org 0x80000000")[0],
            Item::Stmt(Stmt::Org(0x8000_0000))
        ));
        assert!(matches!(parse(".space 16")[0], Item::Stmt(Stmt::Space(16))));
        // globl is accepted and ignored.
        assert!(parse(".globl main").is_empty());
    }

    #[test]
    fn size_of_pseudo_instructions() {
        let size = |line: &str| -> u32 {
            let items = parse(line);
            let Item::Stmt(s) = &items[0] else { panic!() };
            s.size_bytes().unwrap()
        };
        assert_eq!(size("li $t0, 1"), 4);
        assert_eq!(size("li $t0, 0x8000"), 4); // fits unsigned
        assert_eq!(size("li $t0, 0x10000"), 8);
        assert_eq!(size("la $t0, x"), 8);
        assert_eq!(size("nop"), 4);
    }

    #[test]
    fn emit_rejects_bad_arity_and_ranges() {
        let syms = BTreeMap::new();
        let emit = |line: &str| -> Result<(), String> {
            let items = parse_line(&tokenize(line).unwrap())?;
            let Item::Stmt(s) = &items[0] else { panic!() };
            s.emit(0x8000_0000, &syms).map(|_| ())
        };
        assert!(emit("add $t0, $t1").is_err());
        // 40000 is accepted as a 16-bit pattern; 70000 fits nowhere.
        assert!(emit("addiu $t0, $zero, 40000").is_ok());
        assert!(emit("addiu $t0, $zero, 70000").is_err());
        assert!(emit("addiu $t0, $zero, -40000").is_err());
        assert!(emit("sll $t0, $t1, 32").is_err());
        assert!(emit("utlbp $a0, zz").is_err());
    }
}
