//! Line tokenizer for the assembler.

/// One token of an assembly line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Bare identifier: mnemonic, label, or symbol reference.
    Ident(String),
    /// `.directive` name, without the dot.
    Directive(String),
    /// `$`-prefixed register name (GPR or CP0 alias), without the `$`.
    Reg(String),
    /// Integer literal (decimal, `0x…`, or negative); value as i64 so both
    /// signed and unsigned 32-bit ranges fit.
    Int(i64),
    /// Quoted string (escapes processed).
    Str(String),
    Comma,
    Colon,
    LParen,
    RParen,
    Plus,
    Minus,
}

/// Tokenizes a single source line; comments (`#`, `;`) are stripped.
pub fn tokenize(line: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '#' | ';' => break,
            ' ' | '\t' | '\r' => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Negative literal or operator; decide by lookahead.
                if i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit() {
                    let (v, next) = scan_int(line, i + 1)?;
                    out.push(Token::Int(-v));
                    i = next;
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '"' => {
                let (s, next) = scan_string(line, i + 1)?;
                out.push(Token::Str(s));
                i = next;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err("empty register name after `$`".into());
                }
                out.push(Token::Reg(line[start..j].to_string()));
                i = j;
            }
            '.' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err("empty directive name after `.`".into());
                }
                out.push(Token::Directive(line[start..j].to_string()));
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let (v, next) = scan_int(line, i)?;
                out.push(Token::Int(v));
                i = next;
            }
            _ if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                out.push(Token::Ident(line[start..j].to_string()));
                i = j;
            }
            _ => return Err(format!("unexpected character `{c}`")),
        }
    }
    Ok(out)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn scan_int(line: &str, start: usize) -> Result<(i64, usize), String> {
    let bytes = line.as_bytes();
    let mut j = start;
    while j < bytes.len() && (bytes[j] as char).is_ascii_alphanumeric() {
        j += 1;
    }
    let text = &line[start..j];
    let v = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = text.strip_prefix("0b").or_else(|| text.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2)
    } else {
        text.parse::<i64>()
    }
    .map_err(|_| format!("bad integer literal `{text}`"))?;
    Ok((v, j))
}

fn scan_string(line: &str, start: usize) -> Result<(String, usize), String> {
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] as char {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                i += 1;
                let esc = *bytes.get(i).ok_or("unterminated escape")? as char;
                out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    '0' => '\0',
                    '\\' => '\\',
                    '"' => '"',
                    other => return Err(format!("unknown escape `\\{other}`")),
                });
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err("unterminated string literal".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_instructions() {
        let t = tokenize("  lw $t0, -8($sp)  # load").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("lw".into()),
                Token::Reg("t0".into()),
                Token::Comma,
                Token::Int(-8),
                Token::LParen,
                Token::Reg("sp".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_labels_and_directives() {
        let t = tokenize("main: .word 0x10, 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("main".into()),
                Token::Colon,
                Token::Directive("word".into()),
                Token::Int(0x10),
                Token::Comma,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        let t = tokenize(r#".asciiz "a\n\"b""#).unwrap();
        assert_eq!(
            t,
            vec![
                Token::Directive("asciiz".into()),
                Token::Str("a\n\"b".into()),
            ]
        );
    }

    #[test]
    fn comments_are_stripped() {
        assert!(tokenize("# whole line").unwrap().is_empty());
        assert!(tokenize("; semicolon too").unwrap().is_empty());
        assert_eq!(tokenize("nop ; tail").unwrap().len(), 1);
    }

    #[test]
    fn plus_minus_between_symbols() {
        let t = tokenize("la $t0, sym + 4").unwrap();
        assert!(t.contains(&Token::Plus));
        let t = tokenize("la $t0, sym - 4").unwrap();
        assert!(t.contains(&Token::Minus));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("mov $t0, @").is_err());
        assert!(tokenize("li $t0, 0xzz").is_err());
        assert!(tokenize(r#".asciiz "oops"#).is_err());
    }
}
