//! The machine: fetch/decode/execute with precise exceptions.
//!
//! [`Machine`] ties together the CPU register file, CP0, the TLB, and
//! physical memory. It implements:
//!
//! - the R3000 memory map (KUSEG mapped through the TLB; KSEG0/KSEG1
//!   unmapped kernel windows; KSEG2 mapped kernel space);
//! - branch delay slots, including the `Cause.BD` / EPC-at-the-branch
//!   behaviour that the paper's subpage emulation must deal with
//!   (Section 3.2.4);
//! - precise synchronous exceptions vectored to the kernel at the R3000
//!   addresses (`0x8000_0000` for user TLB refill, `0x8000_0080` general);
//! - the paper's **hardware user-level vectoring** (Section 2): when
//!   enabled, a synchronous exception in user mode whose kind is in the
//!   user exception mask is delivered by *exchanging PC with the UXT
//!   register* — no mode change, no kernel;
//! - cycle accounting per the [`crate::cycles`] model and optional
//!   per-region instruction attribution via [`crate::profile::Profiler`].

use std::error::Error;
use std::fmt;

use crate::asm::Program;
use crate::cp0::{status, Cp0, Cp0Reg};
use crate::cycles;
use crate::decode::decode;
use crate::exception::{ExcCode, Exception};
use crate::isa::{Instruction, Reg, TlbProtOp};
use crate::mem::Memory;
use crate::profile::Profiler;
use crate::tlb::{Tlb, TlbFault};

/// General exception vector (all exceptions except user-space TLB refills).
pub const GENERAL_VECTOR: u32 = 0x8000_0080;
/// User TLB refill vector.
pub const UTLB_VECTOR: u32 = 0x8000_0000;

/// Why [`Machine::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// A privileged `hcall` instruction executed; the host kernel services
    /// the request and may resume the machine. The PC has already advanced
    /// past the `hcall`.
    HostCall(u32),
    /// The step budget was exhausted.
    StepLimit,
}

/// A fatal simulation error (not an architectural exception).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineError {
    /// An image segment referred to an address outside KSEG0/KSEG1.
    UnmappedImageSegment(u32),
    /// An image segment fell outside physical memory.
    ImageOutOfRange(u32),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnmappedImageSegment(a) => {
                write!(f, "image segment at {a:#010x} is not in KSEG0/KSEG1")
            }
            MachineError::ImageOutOfRange(a) => {
                write!(f, "image segment at {a:#010x} exceeds physical memory")
            }
        }
    }
}

impl Error for MachineError {}

/// The CPU register file and program counters.
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u32; 32],
    hi: u32,
    lo: u32,
    /// Address of the next instruction to execute.
    pub pc: u32,
    /// Address of the instruction after that (differs from `pc + 4` when a
    /// branch is pending — i.e., while executing a delay slot).
    pub next_pc: u32,
}

impl Cpu {
    fn new() -> Cpu {
        Cpu {
            regs: [0; 32],
            hi: 0,
            lo: 0,
            pc: 0,
            next_pc: 4,
        }
    }

    /// Reads a general-purpose register (`$zero` always reads 0).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Writes a general-purpose register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = v;
        }
    }

    /// The multiply/divide HI register.
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// Sets the multiply/divide HI register.
    pub fn set_hi(&mut self, v: u32) {
        self.hi = v;
    }

    /// The multiply/divide LO register.
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Sets the multiply/divide LO register.
    pub fn set_lo(&mut self, v: u32) {
        self.lo = v;
    }

    /// Snapshot of all 32 registers.
    pub fn regs(&self) -> [u32; 32] {
        self.regs
    }

    /// Replaces all 32 registers (`$zero` is forced back to 0).
    pub fn set_regs(&mut self, regs: [u32; 32]) {
        self.regs = regs;
        self.regs[0] = 0;
    }
}

/// Classifies a memory access for exception reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl Access {
    fn addr_err(self) -> ExcCode {
        match self {
            Access::Store => ExcCode::AddrErrStore,
            _ => ExcCode::AddrErrLoad,
        }
    }

    fn tlb_err(self) -> ExcCode {
        match self {
            Access::Store => ExcCode::TlbStore,
            _ => ExcCode::TlbLoad,
        }
    }

    fn bus_err(self) -> ExcCode {
        match self {
            Access::Fetch => ExcCode::BusErrFetch,
            _ => ExcCode::BusErrData,
        }
    }
}

/// How an exception was (or would be) delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vectored {
    /// Entered kernel mode at the given vector.
    Kernel(u32),
    /// Delivered directly to the user handler via the UXT exchange.
    User(u32),
}

/// Slots in the decoded-instruction cache (direct-mapped by virtual page).
const DCACHE_SLOTS: usize = 64;
/// Instruction words per 4 KB page.
const DCACHE_WORDS: usize = 1024;

/// One page of decoded instructions.
///
/// A cached line is only usable while every input that produced it is
/// provably unchanged:
///
/// - the *translation* — tagged by virtual page, ASID, processor mode, and
///   the TLB's [`Tlb::generation`] counter (TLB-mapped pages only; KSEG0/1
///   translations are fixed by the architecture);
/// - the *text* — tagged by physical page and the page's
///   [`Memory::page_version`] write counter.
///
/// Any TLB write/eviction/flush, `utlbp` protection change, or store to the
/// page (guest or host) changes a tag and the stale lines miss. The cache
/// therefore never affects architectural state, cycle accounting, or fault
/// behaviour — only host-side wall-clock time.
#[derive(Clone)]
struct DecodePage {
    vpn: u32,
    asid: u8,
    user: bool,
    /// Translation went through the TLB (KUSEG/KSEG2) rather than the
    /// fixed KSEG0/KSEG1 windows.
    mapped: bool,
    tlb_gen: u64,
    page_paddr: u32,
    mem_version: u32,
    lines: Box<[Option<(u32, Instruction)>; DCACHE_WORDS]>,
}

impl fmt::Debug for DecodePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodePage")
            .field("vpn", &self.vpn)
            .field("asid", &self.asid)
            .field("user", &self.user)
            .field("mapped", &self.mapped)
            .field("tlb_gen", &self.tlb_gen)
            .field("page_paddr", &self.page_paddr)
            .field("mem_version", &self.mem_version)
            .field("lines", &self.lines.iter().flatten().count())
            .finish()
    }
}

/// Decode-cache slot for a virtual page number. Folds the high vpn bits in
/// so pages that are congruent mod `DCACHE_SLOTS` in different address
/// windows don't systematically alias: user text at `0x0040_k000` and the
/// kernel's KSEG0 text at `0x8000_k000` are both multiples of 64 pages
/// apart, and a plain `vpn % DCACHE_SLOTS` maps every user page onto its
/// kernel counterpart — each exception delivery then evicts the other's
/// lines and the cache never hits.
fn dcache_slot_hash(vpn: u32, mod64: bool) -> usize {
    if mod64 {
        // Test-only pathological hash (see `MachineConfig::mod64_slots`):
        // the plain modulo mapping whose systematic user/KSEG0 aliasing the
        // XOR fold above exists to prevent.
        return (vpn as usize) & (DCACHE_SLOTS - 1);
    }
    ((vpn ^ (vpn >> 6) ^ (vpn >> 12)) as usize) & (DCACHE_SLOTS - 1)
}

/// Which engine drives [`Machine::run`].
///
/// Both engines are architecturally identical — same register/CP0/TLB state,
/// same cycle and instruction counts, same trace events, same exception
/// delivery points. They differ only in host-side wall-clock cost (and in
/// the host-side cache counters they maintain).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecEngine {
    /// The reference engine: one full fetch–decode–dispatch round per
    /// instruction through [`Machine::step`].
    #[default]
    Interpreter,
    /// The superblock engine: straight-line runs (up to the next control
    /// transfer, delay slot included) are pre-decoded once into flat blocks
    /// with precomputed cycle costs, then replayed by a tight dispatch loop
    /// that re-enters the generic [`Machine::step`] path only on block
    /// exit, exception, TLB miss, or self-modified text.
    Superblock,
}

impl ExecEngine {
    /// Stable lower-case name (`"interpreter"` / `"superblock"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecEngine::Interpreter => "interpreter",
            ExecEngine::Superblock => "superblock",
        }
    }

    /// Parses the name produced by [`ExecEngine::as_str`].
    pub fn parse(s: &str) -> Option<ExecEngine> {
        match s {
            "interpreter" => Some(ExecEngine::Interpreter),
            "superblock" => Some(ExecEngine::Superblock),
            _ => None,
        }
    }
}

impl fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-machine execution configuration, fixed at construction.
///
/// This replaces the old process-global decode-cache switches (which fleet
/// worker threads raced): every knob is a plain field, owned by the machine
/// that was built from it. Code that cannot pass a config down to the
/// machines it constructs internally (the kernel, app workloads) inherits
/// the calling thread's scoped default — see [`with_machine_config`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Execution engine for [`Machine::run`].
    pub engine: ExecEngine,
    /// Whether the per-instruction decode cache starts enabled.
    pub decode_cache: bool,
    /// Test-only: force the pathological mod-64 decode-cache slot hash on
    /// (`Some(true)`) or off (`Some(false)`). `None` follows the deprecated
    /// process-wide hook for back-compat with older canary harnesses.
    pub mod64_slots: Option<bool>,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            engine: ExecEngine::Interpreter,
            decode_cache: true,
            mod64_slots: None,
        }
    }
}

impl MachineConfig {
    /// Returns the config with the execution engine replaced.
    #[must_use]
    pub fn engine(mut self, engine: ExecEngine) -> MachineConfig {
        self.engine = engine;
        self
    }

    /// Returns the config with the decode-cache switch replaced.
    #[must_use]
    pub fn decode_cache(mut self, on: bool) -> MachineConfig {
        self.decode_cache = on;
        self
    }

    /// Returns the config with the mod-64 slot-hash override replaced.
    #[must_use]
    pub fn mod64_slots(mut self, on: bool) -> MachineConfig {
        self.mod64_slots = Some(on);
        self
    }

    /// The config [`Machine::new`] uses: the calling thread's scoped
    /// override when one is active (see [`with_machine_config`]), else the
    /// defaults (seeded from the deprecated process-wide shims so existing
    /// A/B binaries keep working).
    pub fn inherited() -> MachineConfig {
        CONFIG_OVERRIDE.with(|c| c.get()).unwrap_or_else(|| {
            #[allow(deprecated)]
            MachineConfig::default().decode_cache(decode_cache_default())
        })
    }
}

thread_local! {
    static CONFIG_OVERRIDE: std::cell::Cell<Option<MachineConfig>> =
        const { std::cell::Cell::new(None) };
}

/// Runs `f` with `cfg` as the calling thread's machine-construction default:
/// every [`Machine::new`] on this thread inside `f` (however deeply nested —
/// kernel boot, app workloads) builds from `cfg`. Scopes nest and restore on
/// unwind, and the override is thread-local, so concurrent fleet tenants can
/// each select their own engine without racing — the fix for the old
/// process-global switches.
pub fn with_machine_config<R>(cfg: MachineConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<MachineConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CONFIG_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = CONFIG_OVERRIDE.with(|c| c.replace(Some(cfg)));
    let _restore = Restore(prev);
    f()
}

/// Deprecated process-wide mod-64 slot-hash hook. Superseded by
/// [`MachineConfig::mod64_slots`]; kept so older canary harnesses keep
/// working. Only consulted at machine *construction* (when the config
/// leaves `mod64_slots` unset), so mid-run toggles no longer race workers.
static DECODE_CACHE_MOD64_SLOTS: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Arms (or disarms) the pathological mod-64 slot hash for machines built
/// afterwards without an explicit [`MachineConfig::mod64_slots`].
#[doc(hidden)]
#[deprecated(note = "use MachineConfig::mod64_slots (per-machine, race-free)")]
pub fn set_decode_cache_mod64_slots(on: bool) {
    DECODE_CACHE_MOD64_SLOTS.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Whether the deprecated process-wide mod-64 hook is armed.
#[doc(hidden)]
#[deprecated(note = "use MachineConfig::mod64_slots (per-machine, race-free)")]
pub fn decode_cache_mod64_slots() -> bool {
    DECODE_CACHE_MOD64_SLOTS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Deprecated process-wide decode-cache default. Superseded by
/// [`MachineConfig::decode_cache`] plus [`with_machine_config`]; kept as a
/// thin shim for existing A/B binaries. Read once per [`Machine::new`] when
/// no scoped config is active.
static DECODE_CACHE_DEFAULT: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(true);

/// Sets the decode-cache default newly-created machines inherit.
#[deprecated(note = "use with_machine_config (per-thread, race-free)")]
pub fn set_decode_cache_default(on: bool) {
    DECODE_CACHE_DEFAULT.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// The decode-cache default newly-created machines inherit.
#[deprecated(note = "use with_machine_config (per-thread, race-free)")]
pub fn decode_cache_default() -> bool {
    DECODE_CACHE_DEFAULT.load(std::sync::atomic::Ordering::Relaxed)
}

/// Longest straight-line run one superblock may hold. Runs end at the first
/// control transfer anyway, so 64 comfortably covers real basic blocks; the
/// cap only bounds pathological branch-free pages.
const SBLOCK_MAX_OPS: usize = 64;
/// Superblock cache slots (direct-mapped by block start address).
const SBLOCK_SLOTS: usize = 256;

/// One pre-decoded instruction inside a superblock.
#[derive(Clone, Copy)]
struct SbOp {
    /// The raw instruction word (trace events record it).
    word: u32,
    inst: Instruction,
    /// Static part of the cycle cost (`BASE` + `MEM_ACCESS` for loads and
    /// stores); `execute` adds dynamic extras (mult/div, TLB ops) on top.
    base_cost: u64,
    /// Control transfer — the op after it (if present) is its delay slot,
    /// and a block never extends past that slot.
    is_ct: bool,
    /// Store — after it retires the block re-checks its own text page's
    /// write version so in-place patches take effect on the next fetch.
    is_store: bool,
}

/// A cached straight-line run, validated by the same tag set as
/// [`DecodePage`] (translation identity + text-page write version) but as a
/// whole: one check at entry covers every op in the block. A store inside
/// the block that hits the block's own page aborts it mid-run (and drops
/// it), so self-modifying code observes patched text on the very next
/// fetch, exactly like the interpreter.
#[derive(Clone)]
struct SuperBlock {
    start_pc: u32,
    user: bool,
    /// Translation went through the TLB (KUSEG/KSEG2) rather than the
    /// fixed KSEG0/KSEG1 windows.
    mapped: bool,
    asid: u8,
    tlb_gen: u64,
    page_paddr: u32,
    mem_version: u32,
    ops: Vec<SbOp>,
}

impl fmt::Debug for SuperBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuperBlock")
            .field("start_pc", &self.start_pc)
            .field("user", &self.user)
            .field("mapped", &self.mapped)
            .field("asid", &self.asid)
            .field("tlb_gen", &self.tlb_gen)
            .field("page_paddr", &self.page_paddr)
            .field("mem_version", &self.mem_version)
            .field("ops", &self.ops.len())
            .finish()
    }
}

/// Superblock-cache slot for a block start address. Folds high bits in for
/// the same reason as the decode cache's slot hash: user text and its KSEG0
/// kernel counterpart must not systematically alias.
fn sblock_slot(pc: u32) -> usize {
    let x = pc >> 2;
    ((x ^ (x >> 8) ^ (x >> 17)) as usize) & (SBLOCK_SLOTS - 1)
}

/// Whether an instruction must run through the generic [`Machine::step`]
/// path and therefore ends superblock construction *before* it.
///
/// These are the ops that can invalidate a block's entry-time tags mid-run:
/// CP0 writes (mode/ASID changes), TLB mutations (translation changes),
/// `rfe` (mode change), and `xpcu` (PC redirect with no delay slot).
/// `syscall`/`break`/`hcall` are safe inside blocks — they leave via the
/// fault/host-call arms, which exit the block.
fn ends_block(inst: Instruction) -> bool {
    use Instruction::*;
    matches!(
        inst,
        Mtc0 { .. } | Tlbr | Tlbwi | Tlbwr | Tlbp | Utlbp { .. } | Rfe | Xpcu
    )
}

/// Static per-op cycle cost (the dynamic extras stay in `execute`).
fn sb_base_cost(inst: Instruction) -> u64 {
    let mut cost = cycles::BASE;
    if inst.is_memory_access() {
        cost += cycles::MEM_ACCESS;
    }
    cost
}

/// The simulated machine.
#[derive(Clone, Debug)]
pub struct Machine {
    cpu: Cpu,
    cp0: Cp0,
    tlb: Tlb,
    mem: Memory,
    cycles: u64,
    instret: u64,
    exceptions_taken: u64,
    /// The previous executed instruction was a branch/jump, so the current
    /// one sits in its delay slot.
    prev_was_branch: bool,
    profiler: Option<Profiler>,
    trace: Option<crate::trace::Trace>,
    dcache: [Option<Box<DecodePage>>; DCACHE_SLOTS],
    dcache_enabled: bool,
    /// Pathological mod-64 decode-cache slot hash (test-only), resolved
    /// once at construction so the hot path never reads process globals.
    dcache_mod64: bool,
    dcache_hits: u64,
    dcache_misses: u64,
    dcache_evictions: u64,
    engine: ExecEngine,
    /// Superblock cache (empty unless the superblock engine is selected).
    sbcache: Vec<Option<Box<SuperBlock>>>,
    sb_hits: u64,
    sb_misses: u64,
    sb_invalidations: u64,
}

impl Machine {
    /// Creates a machine with `phys_bytes` of physical memory, in kernel
    /// mode at PC 0, configured from [`MachineConfig::inherited`] (the
    /// calling thread's scoped config, else the process defaults).
    pub fn new(phys_bytes: usize) -> Machine {
        Machine::with_config(phys_bytes, MachineConfig::inherited())
    }

    /// Creates a machine with `phys_bytes` of physical memory, in kernel
    /// mode at PC 0, with an explicit per-machine configuration.
    ///
    /// ```
    /// use efex_mips::machine::{ExecEngine, Machine, MachineConfig};
    ///
    /// let cfg = MachineConfig::default().engine(ExecEngine::Superblock);
    /// let m = Machine::with_config(1 << 20, cfg);
    /// assert_eq!(m.engine(), ExecEngine::Superblock);
    /// assert_eq!(m.cycles(), 0);
    /// ```
    pub fn with_config(phys_bytes: usize, cfg: MachineConfig) -> Machine {
        #[allow(deprecated)]
        let mod64 = cfg.mod64_slots.unwrap_or_else(decode_cache_mod64_slots);
        Machine {
            cpu: Cpu::new(),
            cp0: Cp0::new(),
            tlb: Tlb::new(),
            mem: Memory::new(phys_bytes),
            cycles: 0,
            instret: 0,
            exceptions_taken: 0,
            prev_was_branch: false,
            profiler: None,
            trace: None,
            dcache: std::array::from_fn(|_| None),
            dcache_enabled: cfg.decode_cache,
            dcache_mod64: mod64,
            dcache_hits: 0,
            dcache_misses: 0,
            dcache_evictions: 0,
            engine: cfg.engine,
            sbcache: match cfg.engine {
                ExecEngine::Superblock => (0..SBLOCK_SLOTS).map(|_| None).collect(),
                ExecEngine::Interpreter => Vec::new(),
            },
            sb_hits: 0,
            sb_misses: 0,
            sb_invalidations: 0,
        }
    }

    // --- accessors -------------------------------------------------------

    /// The CPU register file.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU register file (host kernel services use this).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The system coprocessor.
    pub fn cp0(&self) -> &Cp0 {
        &self.cp0
    }

    /// Mutable system coprocessor.
    pub fn cp0_mut(&mut self) -> &mut Cp0 {
        &mut self.cp0
    }

    /// The TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Mutable TLB (host kernel services use this).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Physical memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable physical memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Total cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Adds externally-modeled cycles (host-level kernel services charge
    /// their costs through this).
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Total instructions retired.
    pub fn instructions_retired(&self) -> u64 {
        self.instret
    }

    /// Number of exceptions taken (kernel- or user-vectored).
    pub fn exceptions_taken(&self) -> u64 {
        self.exceptions_taken
    }

    /// Attaches a profiler; returns the previous one.
    pub fn set_profiler(&mut self, p: Option<Profiler>) -> Option<Profiler> {
        std::mem::replace(&mut self.profiler, p)
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Attaches an execution trace; returns the previous one.
    pub fn set_trace(&mut self, t: Option<crate::trace::Trace>) -> Option<crate::trace::Trace> {
        std::mem::replace(&mut self.trace, t)
    }

    /// The attached execution trace, if any.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Mutable access to the attached profiler.
    pub fn profiler_mut(&mut self) -> Option<&mut Profiler> {
        self.profiler.as_mut()
    }

    /// Enables or disables the decoded-instruction cache. Disabling drops
    /// all cached pages; the architecturally-visible behaviour is identical
    /// either way (the reference runs in the invalidation tests rely on
    /// that).
    pub fn set_decode_cache_enabled(&mut self, on: bool) {
        if !on {
            self.dcache = std::array::from_fn(|_| None);
        }
        self.dcache_enabled = on;
    }

    /// Whether the decoded-instruction cache is active (default: yes).
    pub fn decode_cache_enabled(&self) -> bool {
        self.dcache_enabled
    }

    /// Decode-cache (hits, misses) over the machine's lifetime. Host-side
    /// observability only — never part of architectural state.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (self.dcache_hits, self.dcache_misses)
    }

    /// Decode-cache slot evictions over the machine's lifetime: installs
    /// that displaced a *different* cached page (slot re-tag churn). A
    /// healthy slot hash keeps this far below the miss count; systematic
    /// aliasing (two hot pages congruent in the slot function) drives it to
    /// ~one eviction per miss. Host-side observability only.
    pub fn decode_cache_evictions(&self) -> u64 {
        self.dcache_evictions
    }

    /// The execution engine driving [`Machine::run`].
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Switches the execution engine. Cached superblocks are dropped on any
    /// switch; architecturally-visible behaviour is identical either way.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        if engine != self.engine {
            self.sbcache = match engine {
                ExecEngine::Superblock => (0..SBLOCK_SLOTS).map(|_| None).collect(),
                ExecEngine::Interpreter => Vec::new(),
            };
            self.engine = engine;
        }
    }

    /// Superblock-cache (hits, misses, invalidations) over the machine's
    /// lifetime. Hits and misses count block *entries*; invalidations count
    /// blocks dropped because a store rewrote their own text mid-run.
    /// Host-side observability only — never part of architectural state.
    pub fn superblock_stats(&self) -> (u64, u64, u64) {
        (self.sb_hits, self.sb_misses, self.sb_invalidations)
    }

    /// Current ASID (from `EntryHi`).
    pub fn asid(&self) -> u8 {
        ((self.cp0.entry_hi >> 6) & 0x3f) as u8
    }

    /// Sets the current ASID.
    pub fn set_asid(&mut self, asid: u8) {
        self.cp0.entry_hi = (self.cp0.entry_hi & !0xfc0) | (u32::from(asid & 0x3f) << 6);
    }

    /// Sets the PC (and the sequential next-PC).
    pub fn set_pc(&mut self, pc: u32) {
        self.cpu.pc = pc;
        self.cpu.next_pc = pc.wrapping_add(4);
        self.prev_was_branch = false;
    }

    /// Whether the machine is in user mode.
    pub fn user_mode(&self) -> bool {
        self.cp0.user_mode()
    }

    // --- checkpoint / restore --------------------------------------------

    /// Captures the complete architectural state of the machine as a
    /// [`crate::snapshot::MachineState`]: registers, CP0, every TLB slot
    /// (empty-slot identity preserved) plus the generation counter, the
    /// pending delay-slot flag, cycle/instret/exception counters, and the
    /// non-zero pages of physical memory (sparse). Host-side observability —
    /// profiler, trace hooks, decode/superblock caches and their counters —
    /// is deliberately excluded: it is not architectural state, and the
    /// caches are rebuilt on demand after a restore.
    pub fn snapshot(&self) -> crate::snapshot::MachineState {
        let mem_size = self.mem.size();
        let mut pages = Vec::new();
        let mut paddr = 0u32;
        while (paddr as usize) < mem_size {
            let page = self
                .mem
                .read_bytes(paddr, crate::snapshot::SNAP_PAGE)
                .expect("page within physical memory");
            if page.iter().any(|&b| b != 0) {
                pages.push((paddr >> 12, page.to_vec()));
            }
            paddr += crate::snapshot::SNAP_PAGE as u32;
        }
        crate::snapshot::MachineState {
            regs: self.cpu.regs(),
            hi: self.cpu.hi(),
            lo: self.cpu.lo(),
            pc: self.cpu.pc,
            next_pc: self.cpu.next_pc,
            prev_was_branch: self.prev_was_branch,
            cp0: self.cp0.clone(),
            tlb_slots: *self.tlb.slots(),
            tlb_generation: self.tlb.generation(),
            cycles: self.cycles,
            instret: self.instret,
            exceptions_taken: self.exceptions_taken,
            mem_size: mem_size as u32,
            pages,
        }
    }

    /// Restores architectural state captured by [`Machine::snapshot`].
    ///
    /// The receiver keeps its own host-side configuration (execution
    /// engine, decode-cache switch, profiler, trace hooks) — a snapshot
    /// taken under the interpreter restores onto a superblock machine and
    /// vice versa, and both resume bit-exact. Both instruction caches are
    /// dropped: their tags reference the *receiver's* pre-restore TLB
    /// generation and page write-versions, and memory is rewritten below
    /// them. Memory restore goes through the normal write path, so page
    /// write-version counters advance and any text cached by observers of
    /// this memory is invalidated, exactly as a guest store would.
    ///
    /// # Errors
    ///
    /// [`efex_snap::SnapError::Invalid`] if the snapshot's physical memory
    /// size differs from the receiver's.
    pub fn restore(
        &mut self,
        s: &crate::snapshot::MachineState,
    ) -> Result<(), efex_snap::SnapError> {
        if s.mem_size as usize != self.mem.size() {
            return Err(efex_snap::SnapError::Invalid(format!(
                "snapshot has {} bytes of physical memory, machine has {}",
                s.mem_size,
                self.mem.size()
            )));
        }
        for (page_idx, bytes) in &s.pages {
            if bytes.len() != crate::snapshot::SNAP_PAGE
                || (*page_idx as usize) >= self.mem.size() >> 12
            {
                return Err(efex_snap::SnapError::Invalid(format!(
                    "snapshot page {page_idx:#x} out of range"
                )));
            }
        }
        self.mem.zero(0, self.mem.size()).expect("zero fits");
        for (page_idx, bytes) in &s.pages {
            self.mem
                .write_bytes(page_idx << 12, bytes)
                .expect("page range checked above");
        }
        self.cpu.set_regs(s.regs);
        self.cpu.set_hi(s.hi);
        self.cpu.set_lo(s.lo);
        self.cpu.pc = s.pc;
        self.cpu.next_pc = s.next_pc;
        self.prev_was_branch = s.prev_was_branch;
        self.cp0 = s.cp0.clone();
        self.tlb.restore(s.tlb_slots, s.tlb_generation);
        self.cycles = s.cycles;
        self.instret = s.instret;
        self.exceptions_taken = s.exceptions_taken;
        // Drop both instruction caches: their tags predate the restore.
        self.dcache = std::array::from_fn(|_| None);
        if !self.sbcache.is_empty() {
            let slots = self.sbcache.len();
            self.sbcache = (0..slots).map(|_| None).collect();
        }
        Ok(())
    }

    /// A cheap digest of the machine's architectural register state: GPRs,
    /// HI/LO, both PCs, the delay-slot flag, all CP0 registers, the full
    /// TLB (slots + generation), and the cycle/instret/exception counters.
    /// Physical memory is *excluded* — hashing it every step would dominate
    /// the simulation — so record-replay strides catch register-visible
    /// divergence at the digest and fall back to memory-visible divergence
    /// at the next faulting access.
    pub fn step_digest(&self) -> u64 {
        let mut d = efex_snap::Fnv64::new();
        for r in self.cpu.regs() {
            d.write_u32(r);
        }
        d.write_u32(self.cpu.hi());
        d.write_u32(self.cpu.lo());
        d.write_u32(self.cpu.pc);
        d.write_u32(self.cpu.next_pc);
        d.update(&[u8::from(self.prev_was_branch)]);
        for v in [
            self.cp0.index,
            self.cp0.random,
            self.cp0.entry_lo,
            self.cp0.context,
            self.cp0.bad_vaddr,
            self.cp0.entry_hi,
            self.cp0.status,
            self.cp0.cause,
            self.cp0.epc,
            self.cp0.uxt,
            self.cp0.uxc,
            self.cp0.uxm,
        ] {
            d.write_u32(v);
        }
        d.write_u64(self.tlb.generation());
        for slot in self.tlb.slots() {
            match slot {
                None => d.update(&[0]),
                Some(e) => {
                    d.update(&[1]);
                    d.write_u32(e.entry_hi());
                    d.write_u32(e.entry_lo());
                }
            }
        }
        d.write_u64(self.cycles);
        d.write_u64(self.instret);
        d.write_u64(self.exceptions_taken);
        d.finish()
    }

    // --- image loading ---------------------------------------------------

    /// Loads an assembled program image. Segment addresses must be KSEG0 or
    /// KSEG1 virtual addresses (the kernel's unmapped windows).
    ///
    /// # Errors
    ///
    /// Fails if a segment lies outside KSEG0/KSEG1 or past physical memory.
    pub fn load_image(&mut self, prog: &Program) -> Result<(), MachineError> {
        for seg in prog.segments() {
            let paddr =
                kseg_to_phys(seg.addr).ok_or(MachineError::UnmappedImageSegment(seg.addr))?;
            self.mem
                .write_bytes(paddr, &seg.bytes)
                .map_err(|_| MachineError::ImageOutOfRange(seg.addr))?;
        }
        Ok(())
    }

    // --- address translation --------------------------------------------

    /// Translates a virtual address for the given access, raising no
    /// exception: returns the fault that *would* be raised.
    ///
    /// # Errors
    ///
    /// Returns the exception code and bad address on failure.
    pub fn translate(
        &self,
        vaddr: u32,
        access: Access,
        user_mode: bool,
    ) -> Result<u32, (ExcCode, u32)> {
        // Alignment is checked by callers (it depends on access width).
        if vaddr < 0x8000_0000 {
            // KUSEG: TLB-mapped for everyone.
            self.tlb
                .translate(vaddr, self.asid(), access == Access::Store)
                .map_err(|f| (tlb_fault_code(f, access), vaddr))
        } else if user_mode {
            // User access to kernel space: address error.
            Err((access.addr_err(), vaddr))
        } else if vaddr < 0xc000_0000 {
            // KSEG0 / KSEG1: unmapped.
            Ok(vaddr & 0x1fff_ffff)
        } else {
            // KSEG2: TLB-mapped kernel space.
            self.tlb
                .translate(vaddr, self.asid(), access == Access::Store)
                .map_err(|f| (tlb_fault_code(f, access), vaddr))
        }
    }

    // --- execution -------------------------------------------------------

    /// Runs until a host call, or until `max_steps` instructions retire.
    /// The step budget counts instructions *attempted* (a faulting
    /// instruction consumes its slot) — identically under both engines.
    pub fn run(&mut self, max_steps: u64) -> Result<StopReason, MachineError> {
        if self.engine == ExecEngine::Superblock {
            return self.run_superblock(max_steps);
        }
        for _ in 0..max_steps {
            if let Some(stop) = self.step()? {
                return Ok(stop);
            }
        }
        Ok(StopReason::StepLimit)
    }

    /// The superblock engine's run loop: execute whole cached blocks from
    /// the current PC, falling back to one generic [`Machine::step`]
    /// whenever the leading instruction can't live in a block (pending
    /// delay slot, misaligned PC, sensitive op, fetch fault).
    fn run_superblock(&mut self, max_steps: u64) -> Result<StopReason, MachineError> {
        let mut remaining = max_steps;
        while remaining > 0 {
            if self.prev_was_branch || self.cpu.pc & 3 != 0 {
                // A pending branch means the next op is a delay slot whose
                // next_pc must not be sequential — blocks assume sequential
                // entry, so the generic path runs it (this also covers the
                // branch-in-delay-slot corner exactly as the interpreter).
                if let Some(stop) = self.step()? {
                    return Ok(stop);
                }
                remaining -= 1;
                continue;
            }
            if let Some(stop) = self.exec_block(&mut remaining)? {
                return Ok(stop);
            }
        }
        Ok(StopReason::StepLimit)
    }

    /// Probes (building on miss) and dispatches the superblock starting at
    /// the current PC, charging `remaining` once per instruction attempted.
    fn exec_block(&mut self, remaining: &mut u64) -> Result<Option<StopReason>, MachineError> {
        let pc = self.cpu.pc;
        let user = self.cp0.user_mode();
        let slot = sblock_slot(pc);
        let asid = self.asid();
        let tlb_gen = self.tlb.generation();
        let valid = self.sbcache[slot].as_deref().is_some_and(|b| {
            b.start_pc == pc
                && b.user == user
                && (!b.mapped || (b.asid == asid && b.tlb_gen == tlb_gen))
                && b.mem_version == self.mem.page_version(b.page_paddr)
        });
        if valid {
            self.sb_hits += 1;
        } else {
            self.sb_misses += 1;
            if !self.build_block(pc, user) {
                // No block can start here (sensitive leading op, fetch
                // fault, undecodable word): one generic step handles it —
                // including raising the exact fault the interpreter would.
                let stop = self.step()?;
                *remaining -= 1;
                return Ok(stop);
            }
        }
        let block = self.sbcache[slot]
            .take()
            .expect("block probed or just built");
        let result = self.exec_ops(&block, remaining);
        if self.mem.page_version(block.page_paddr) == block.mem_version {
            self.sbcache[slot] = Some(block);
        } else {
            // A store rewrote the block's own text page: the pre-decoded
            // ops are stale, so the block is dropped instead of reinstalled
            // and the next entry refetches the patched words.
            self.sb_invalidations += 1;
        }
        result
    }

    /// Pre-decodes the straight-line run starting at `pc` into a superblock
    /// and installs it. The run ends at the first control transfer (its
    /// delay slot rides along when it is a plain same-page op), before any
    /// block-ending sensitive op (see [`ends_block`]), at the page
    /// boundary, or at [`SBLOCK_MAX_OPS`]. Returns `false` when no block
    /// can start at `pc`.
    fn build_block(&mut self, pc: u32, user: bool) -> bool {
        let Ok(paddr) = self.translate(pc, Access::Fetch, user) else {
            return false;
        };
        let page_paddr = paddr & !0xfff;
        let mem_version = self.mem.page_version(page_paddr);
        let mut ops: Vec<SbOp> = Vec::with_capacity(8);
        let mut va = pc;
        let mut pa = paddr;
        while ops.len() < SBLOCK_MAX_OPS {
            let Ok(word) = self.mem.read_u32(pa) else {
                break;
            };
            let Ok(inst) = decode(word) else { break };
            if ends_block(inst) {
                break;
            }
            let is_ct = inst.is_control_transfer();
            ops.push(SbOp {
                word,
                inst,
                base_cost: sb_base_cost(inst),
                is_ct,
                is_store: inst.is_store(),
            });
            if is_ct {
                // The delay slot joins the block when it is a plain op on
                // the same page; otherwise the block ends at the branch and
                // the generic path picks the slot up (covering cross-page
                // slots and branch-in-delay-slot identically either way).
                if va.wrapping_add(4) & 0xfff != 0 {
                    if let Ok(w) = self.mem.read_u32(pa + 4) {
                        if let Ok(di) = decode(w) {
                            if !di.is_control_transfer() && !ends_block(di) {
                                ops.push(SbOp {
                                    word: w,
                                    inst: di,
                                    base_cost: sb_base_cost(di),
                                    is_ct: false,
                                    is_store: di.is_store(),
                                });
                            }
                        }
                    }
                }
                break;
            }
            va = va.wrapping_add(4);
            if va & 0xfff == 0 {
                break;
            }
            pa += 4;
        }
        if ops.is_empty() {
            return false;
        }
        let mapped = !(0x8000_0000..0xc000_0000).contains(&pc);
        self.sbcache[sblock_slot(pc)] = Some(Box::new(SuperBlock {
            start_pc: pc,
            user,
            mapped,
            asid: self.asid(),
            tlb_gen: self.tlb.generation(),
            page_paddr,
            mem_version,
            ops,
        }));
        true
    }

    /// Dispatches a pre-decoded block. Every op replays exactly what
    /// [`Machine::step`] would have done — trace record, sequential PC
    /// advance, cycle/instret accounting, profiler attribution, fault
    /// delivery — minus the per-instruction fetch, tag probe, and decode.
    fn exec_ops(
        &mut self,
        b: &SuperBlock,
        remaining: &mut u64,
    ) -> Result<Option<StopReason>, MachineError> {
        let user = b.user;
        for op in &b.ops {
            if *remaining == 0 {
                return Ok(None);
            }
            let pc = self.cpu.pc;
            let in_delay = self.prev_was_branch;
            if let Some(t) = self.trace.as_mut() {
                t.record(pc, op.word, user);
            }
            self.cpu.pc = self.cpu.next_pc;
            self.cpu.next_pc = self.cpu.next_pc.wrapping_add(4);
            self.prev_was_branch = op.is_ct;
            let mut cost = op.base_cost;
            let outcome = self.execute(op.inst, pc, in_delay, user, &mut cost);
            self.cycles += cost;
            *remaining -= 1;
            match outcome {
                Exec::Ok => {
                    self.instret += 1;
                    if let Some(p) = self.profiler.as_mut() {
                        p.record(pc, cost);
                    }
                }
                Exec::HostCall(code) => {
                    self.instret += 1;
                    if let Some(p) = self.profiler.as_mut() {
                        p.record(pc, cost);
                    }
                    return Ok(Some(StopReason::HostCall(code)));
                }
                Exec::Fault(code, bad) => {
                    self.raise(code, pc, bad, in_delay);
                    return Ok(None);
                }
            }
            if op.is_store && self.mem.page_version(b.page_paddr) != b.mem_version {
                // The store hit this block's own text: the remaining
                // pre-decoded ops may be stale, so fall back to the generic
                // path, which refetches the patched words.
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// Executes one instruction (or takes one exception).
    ///
    /// Returns `Some(StopReason::HostCall(..))` if the instruction was a
    /// privileged `hcall`.
    pub fn step(&mut self) -> Result<Option<StopReason>, MachineError> {
        let pc = self.cpu.pc;
        let in_delay = self.prev_was_branch;
        let user = self.cp0.user_mode();

        // Fetch: alignment, translation, then memory.
        if pc & 3 != 0 {
            self.raise(ExcCode::AddrErrLoad, pc, Some(pc), in_delay);
            return Ok(None);
        }
        // Decode-cache probe: skips translate + memory read + decode when
        // every tag still matches (see `DecodePage`).
        let mut cached = None;
        if self.dcache_enabled {
            let slot = dcache_slot_hash(pc >> 12, self.dcache_mod64);
            let asid = self.asid();
            let tlb_gen = self.tlb.generation();
            if let Some(page) = self.dcache[slot].as_deref() {
                if page.vpn == pc >> 12
                    && page.user == user
                    && (!page.mapped || (page.asid == asid && page.tlb_gen == tlb_gen))
                    && page.mem_version == self.mem.page_version(page.page_paddr)
                {
                    cached = page.lines[((pc >> 2) & 0x3ff) as usize];
                }
            }
        }
        let inst = match cached {
            Some((word, inst)) => {
                self.dcache_hits += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.record(pc, word, user);
                }
                inst
            }
            None => {
                let paddr = match self.translate(pc, Access::Fetch, user) {
                    Ok(p) => p,
                    Err((code, bad)) => {
                        self.raise(code, pc, Some(bad), in_delay);
                        return Ok(None);
                    }
                };
                let word = match self.mem.read_u32(paddr) {
                    Ok(w) => w,
                    Err(_) => {
                        self.raise(ExcCode::BusErrFetch, pc, Some(pc), in_delay);
                        return Ok(None);
                    }
                };
                let inst = match decode(word) {
                    Ok(i) => i,
                    Err(_) => {
                        self.raise(ExcCode::ReservedInstr, pc, None, in_delay);
                        return Ok(None);
                    }
                };
                if self.dcache_enabled {
                    self.dcache_misses += 1;
                    self.dcache_install(pc, user, paddr, word, inst);
                }
                if let Some(t) = self.trace.as_mut() {
                    t.record(pc, word, user);
                }
                inst
            }
        };

        // Advance sequentially; branches below overwrite next_pc.
        self.cpu.pc = self.cpu.next_pc;
        self.cpu.next_pc = self.cpu.next_pc.wrapping_add(4);
        self.prev_was_branch = inst.is_control_transfer();

        let mut cost = cycles::BASE;
        if inst.is_memory_access() {
            cost += cycles::MEM_ACCESS;
        }

        let outcome = self.execute(inst, pc, in_delay, user, &mut cost);

        self.cycles += cost;
        match outcome {
            Exec::Ok => {
                self.instret += 1;
                if let Some(p) = self.profiler.as_mut() {
                    p.record(pc, cost);
                }
                Ok(None)
            }
            Exec::HostCall(code) => {
                self.instret += 1;
                if let Some(p) = self.profiler.as_mut() {
                    p.record(pc, cost);
                }
                Ok(Some(StopReason::HostCall(code)))
            }
            Exec::Fault(code, bad) => {
                // The faulting instruction must not retire: rewind the
                // sequential advance (raise() sets the PC anyway).
                self.raise(code, pc, bad, in_delay);
                Ok(None)
            }
        }
    }

    /// Installs a freshly fetched+decoded instruction into the cache. The
    /// slot is re-tagged when any tag moved; decoded lines survive a pure
    /// translation-tag change (same physical text) since decode is a pure
    /// function of the word.
    fn dcache_install(&mut self, pc: u32, user: bool, paddr: u32, word: u32, inst: Instruction) {
        let vpn = pc >> 12;
        let slot = dcache_slot_hash(vpn, self.dcache_mod64);
        let mapped = !(0x8000_0000..0xc000_0000).contains(&pc);
        let asid = self.asid();
        let tlb_gen = self.tlb.generation();
        let page_paddr = paddr & !0xfff;
        let mem_version = self.mem.page_version(page_paddr);
        if self.dcache[slot]
            .as_deref()
            .is_some_and(|p| p.vpn != vpn || p.user != user)
        {
            // The slot held a different page: its decoded lines are about
            // to be displaced. Per-page churn like this is exactly what a
            // slot-aliasing pathology amplifies, so it is counted.
            self.dcache_evictions += 1;
        }
        let page = self.dcache[slot].get_or_insert_with(|| {
            Box::new(DecodePage {
                vpn,
                asid,
                user,
                mapped,
                tlb_gen,
                page_paddr,
                mem_version,
                lines: Box::new([None; DCACHE_WORDS]),
            })
        });
        if page.page_paddr != page_paddr || page.mem_version != mem_version {
            page.lines.fill(None);
        }
        page.vpn = vpn;
        page.asid = asid;
        page.user = user;
        page.mapped = mapped;
        page.tlb_gen = tlb_gen;
        page.page_paddr = page_paddr;
        page.mem_version = mem_version;
        page.lines[((pc >> 2) & 0x3ff) as usize] = Some((word, inst));
    }

    fn execute(
        &mut self,
        inst: Instruction,
        pc: u32,
        in_delay: bool,
        user: bool,
        cost: &mut u64,
    ) -> Exec {
        use Instruction::*;
        let c = &mut self.cpu;
        match inst {
            Sll { rd, rt, shamt } => c.set_reg(rd, c.reg(rt) << shamt),
            Srl { rd, rt, shamt } => c.set_reg(rd, c.reg(rt) >> shamt),
            Sra { rd, rt, shamt } => c.set_reg(rd, ((c.reg(rt) as i32) >> shamt) as u32),
            Sllv { rd, rt, rs } => c.set_reg(rd, c.reg(rt) << (c.reg(rs) & 31)),
            Srlv { rd, rt, rs } => c.set_reg(rd, c.reg(rt) >> (c.reg(rs) & 31)),
            Srav { rd, rt, rs } => c.set_reg(rd, ((c.reg(rt) as i32) >> (c.reg(rs) & 31)) as u32),
            Jr { rs } => c.next_pc = c.reg(rs),
            Jalr { rd, rs } => {
                let target = c.reg(rs);
                c.set_reg(rd, pc.wrapping_add(8));
                c.next_pc = target;
            }
            Syscall { .. } => return Exec::Fault(ExcCode::Syscall, None),
            Break { .. } => return Exec::Fault(ExcCode::Breakpoint, None),
            Mfhi { rd } => c.set_reg(rd, c.hi),
            Mthi { rs } => c.hi = c.reg(rs),
            Mflo { rd } => c.set_reg(rd, c.lo),
            Mtlo { rs } => c.lo = c.reg(rs),
            Mult { rs, rt } => {
                *cost += cycles::MULT;
                let p = i64::from(c.reg(rs) as i32) * i64::from(c.reg(rt) as i32);
                c.lo = p as u32;
                c.hi = (p >> 32) as u32;
            }
            Multu { rs, rt } => {
                *cost += cycles::MULT;
                let p = u64::from(c.reg(rs)) * u64::from(c.reg(rt));
                c.lo = p as u32;
                c.hi = (p >> 32) as u32;
            }
            Div { rs, rt } => {
                *cost += cycles::DIV;
                let (a, b) = (c.reg(rs) as i32, c.reg(rt) as i32);
                // MIPS-I: division by zero is silent; HI/LO stay undefined.
                #[allow(clippy::manual_checked_ops)]
                if b != 0 {
                    c.lo = a.wrapping_div(b) as u32;
                    c.hi = a.wrapping_rem(b) as u32;
                }
                // Division by zero leaves HI/LO undefined; we leave them be.
            }
            Divu { rs, rt } => {
                *cost += cycles::DIV;
                let (a, b) = (c.reg(rs), c.reg(rt));
                // MIPS-I: division by zero is silent; HI/LO stay undefined.
                #[allow(clippy::manual_checked_ops)]
                if b != 0 {
                    c.lo = a / b;
                    c.hi = a % b;
                }
            }
            Add { rd, rs, rt } => match (c.reg(rs) as i32).checked_add(c.reg(rt) as i32) {
                Some(v) => c.set_reg(rd, v as u32),
                None => return Exec::Fault(ExcCode::Overflow, None),
            },
            Addu { rd, rs, rt } => c.set_reg(rd, c.reg(rs).wrapping_add(c.reg(rt))),
            Sub { rd, rs, rt } => match (c.reg(rs) as i32).checked_sub(c.reg(rt) as i32) {
                Some(v) => c.set_reg(rd, v as u32),
                None => return Exec::Fault(ExcCode::Overflow, None),
            },
            Subu { rd, rs, rt } => c.set_reg(rd, c.reg(rs).wrapping_sub(c.reg(rt))),
            And { rd, rs, rt } => c.set_reg(rd, c.reg(rs) & c.reg(rt)),
            Or { rd, rs, rt } => c.set_reg(rd, c.reg(rs) | c.reg(rt)),
            Xor { rd, rs, rt } => c.set_reg(rd, c.reg(rs) ^ c.reg(rt)),
            Nor { rd, rs, rt } => c.set_reg(rd, !(c.reg(rs) | c.reg(rt))),
            Slt { rd, rs, rt } => c.set_reg(rd, ((c.reg(rs) as i32) < (c.reg(rt) as i32)) as u32),
            Sltu { rd, rs, rt } => c.set_reg(rd, (c.reg(rs) < c.reg(rt)) as u32),
            Beq { rs, rt, imm } => {
                if c.reg(rs) == c.reg(rt) {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Bne { rs, rt, imm } => {
                if c.reg(rs) != c.reg(rt) {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Blez { rs, imm } => {
                if (c.reg(rs) as i32) <= 0 {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Bgtz { rs, imm } => {
                if (c.reg(rs) as i32) > 0 {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Bltz { rs, imm } => {
                if (c.reg(rs) as i32) < 0 {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Bgez { rs, imm } => {
                if (c.reg(rs) as i32) >= 0 {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Bltzal { rs, imm } => {
                let taken = (c.reg(rs) as i32) < 0;
                c.set_reg(Reg::RA, pc.wrapping_add(8));
                if taken {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Bgezal { rs, imm } => {
                let taken = (c.reg(rs) as i32) >= 0;
                c.set_reg(Reg::RA, pc.wrapping_add(8));
                if taken {
                    c.next_pc = branch_target(pc, imm);
                }
            }
            Addi { rt, rs, imm } => match (c.reg(rs) as i32).checked_add(i32::from(imm)) {
                Some(v) => c.set_reg(rt, v as u32),
                None => return Exec::Fault(ExcCode::Overflow, None),
            },
            Addiu { rt, rs, imm } => c.set_reg(rt, c.reg(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => c.set_reg(rt, ((c.reg(rs) as i32) < i32::from(imm)) as u32),
            Sltiu { rt, rs, imm } => c.set_reg(rt, (c.reg(rs) < (imm as i32 as u32)) as u32),
            Andi { rt, rs, imm } => c.set_reg(rt, c.reg(rs) & u32::from(imm)),
            Ori { rt, rs, imm } => c.set_reg(rt, c.reg(rs) | u32::from(imm)),
            Xori { rt, rs, imm } => c.set_reg(rt, c.reg(rs) ^ u32::from(imm)),
            Lui { rt, imm } => c.set_reg(rt, u32::from(imm) << 16),
            Lb { rt, base, imm } => return self.load(rt, base, imm, 1, true, user),
            Lh { rt, base, imm } => return self.load(rt, base, imm, 2, true, user),
            Lw { rt, base, imm } => return self.load(rt, base, imm, 4, false, user),
            Lbu { rt, base, imm } => return self.load(rt, base, imm, 1, false, user),
            Lhu { rt, base, imm } => return self.load(rt, base, imm, 2, false, user),
            Sb { rt, base, imm } => return self.store(rt, base, imm, 1, user),
            Sh { rt, base, imm } => return self.store(rt, base, imm, 2, user),
            Sw { rt, base, imm } => return self.store(rt, base, imm, 4, user),
            J { target } => c.next_pc = (pc.wrapping_add(4) & 0xf000_0000) | (target << 2),
            Jal { target } => {
                c.set_reg(Reg::RA, pc.wrapping_add(8));
                c.next_pc = (pc.wrapping_add(4) & 0xf000_0000) | (target << 2);
            }
            Mfc0 { rt, rd } => {
                if user && !user_cp0_reg(rd) {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                let v = self.cp0.read(rd);
                self.cpu.set_reg(rt, v);
            }
            Mtc0 { rt, rd } => {
                if user && !user_cp0_reg_writable(rd) {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                let v = self.cpu.reg(rt);
                self.cp0.write(rd, v);
            }
            Tlbr => {
                if user {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                *cost += cycles::TLB_OP;
                let idx = ((self.cp0.index >> 8) & 0x3f) as usize;
                let e = self.tlb.read(idx % crate::tlb::TLB_ENTRIES);
                self.cp0.entry_hi = e.entry_hi();
                self.cp0.entry_lo = e.entry_lo();
            }
            Tlbwi => {
                if user {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                *cost += cycles::TLB_OP;
                let idx = ((self.cp0.index >> 8) & 0x3f) as usize;
                let e = crate::tlb::TlbEntry::from_raw(self.cp0.entry_hi, self.cp0.entry_lo);
                self.tlb.write(idx % crate::tlb::TLB_ENTRIES, e);
            }
            Tlbwr => {
                if user {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                *cost += cycles::TLB_OP;
                // Random replacement avoids the 8 wired entries, like the
                // R3000; the CP0 "random" value is a deterministic counter.
                let idx = 8 + (self.cp0.random as usize % (crate::tlb::TLB_ENTRIES - 8));
                let e = crate::tlb::TlbEntry::from_raw(self.cp0.entry_hi, self.cp0.entry_lo);
                self.tlb.write(idx, e);
                self.cp0.random = self.cp0.random.wrapping_add(13) % 56;
            }
            Tlbp => {
                if user {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                *cost += cycles::TLB_OP;
                let vaddr = self.cp0.entry_hi & 0xffff_f000;
                let asid = ((self.cp0.entry_hi >> 6) & 0x3f) as u8;
                match self.tlb.probe(vaddr, asid) {
                    Some(i) => self.cp0.index = (i as u32) << 8,
                    None => self.cp0.index = 1 << 31,
                }
            }
            Rfe => {
                if user {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                self.cp0.rfe();
            }
            Xpcu => {
                // The Tera-style return: exchange PC and UXT, clearing the
                // in-handler flag. Legal from user mode — that is its point.
                let target = self.cp0.uxt;
                self.cp0.uxt = pc.wrapping_add(4);
                self.cpu.pc = target;
                self.cpu.next_pc = target.wrapping_add(4);
                self.prev_was_branch = false;
                self.cp0.status &= !status::UXA;
            }
            Utlbp { rs, op } => {
                *cost += cycles::TLB_OP;
                let vaddr = self.cpu.reg(rs);
                return self.utlbp(vaddr, op, user);
            }
            Hcall { code } => {
                if user {
                    return Exec::Fault(ExcCode::CopUnusable, None);
                }
                return Exec::HostCall(code);
            }
        }
        if in_delay {
            // Delay-slot instruction executed normally; nothing special.
        }
        Exec::Ok
    }

    fn load(&mut self, rt: Reg, base: Reg, imm: i16, width: u32, sign: bool, user: bool) -> Exec {
        let vaddr = self.cpu.reg(base).wrapping_add(imm as i32 as u32);
        if !vaddr.is_multiple_of(width) {
            return Exec::Fault(ExcCode::AddrErrLoad, Some(vaddr));
        }
        let paddr = match self.translate(vaddr, Access::Load, user) {
            Ok(p) => p,
            Err((code, bad)) => return Exec::Fault(code, Some(bad)),
        };
        let raw = match width {
            1 => self.mem.read_u8(paddr).map(u32::from),
            2 => self.mem.read_u16(paddr).map(u32::from),
            _ => self.mem.read_u32(paddr),
        };
        let v = match raw {
            Ok(v) => v,
            Err(_) => return Exec::Fault(Access::Load.bus_err(), Some(vaddr)),
        };
        let v = if sign {
            match width {
                1 => v as u8 as i8 as i32 as u32,
                2 => v as u16 as i16 as i32 as u32,
                _ => v,
            }
        } else {
            v
        };
        self.cpu.set_reg(rt, v);
        Exec::Ok
    }

    fn store(&mut self, rt: Reg, base: Reg, imm: i16, width: u32, user: bool) -> Exec {
        let vaddr = self.cpu.reg(base).wrapping_add(imm as i32 as u32);
        if !vaddr.is_multiple_of(width) {
            return Exec::Fault(ExcCode::AddrErrStore, Some(vaddr));
        }
        let paddr = match self.translate(vaddr, Access::Store, user) {
            Ok(p) => p,
            Err((code, bad)) => return Exec::Fault(code, Some(bad)),
        };
        let v = self.cpu.reg(rt);
        let res = match width {
            1 => self.mem.write_u8(paddr, v as u8),
            2 => self.mem.write_u16(paddr, v as u16),
            _ => self.mem.write_u32(paddr, v),
        };
        match res {
            Ok(()) => Exec::Ok,
            Err(_) => Exec::Fault(Access::Store.bus_err(), Some(vaddr)),
        }
    }

    fn utlbp(&mut self, vaddr: u32, op: TlbProtOp, user: bool) -> Exec {
        if user && vaddr >= 0x8000_0000 {
            return Exec::Fault(ExcCode::AddrErrLoad, Some(vaddr));
        }
        let asid = self.asid();
        let Some(entry) = self.tlb.entry_matching_mut(vaddr, asid) else {
            // No resident entry: fault so the kernel can refill and retry.
            return Exec::Fault(ExcCode::TlbLoad, Some(vaddr));
        };
        if user && !entry.user_modifiable {
            return Exec::Fault(ExcCode::CopUnusable, None);
        }
        match op {
            TlbProtOp::WriteProtect => entry.dirty = false,
            TlbProtOp::WriteEnable => entry.dirty = true,
            TlbProtOp::ProtectAll => entry.valid = false,
            TlbProtOp::ReadEnable => entry.valid = true,
        }
        Exec::Ok
    }

    /// Raises an exception from the instruction at `pc`.
    ///
    /// If the paper's hardware user-level vectoring applies — user mode,
    /// vectoring enabled, not already in a user handler, the cause is
    /// synchronous, maskable, and not a TLB *miss* (refills always belong to
    /// the kernel) — the exception is delivered by exchanging PC with UXT.
    /// Otherwise CP0 performs the standard kernel entry.
    pub fn raise(
        &mut self,
        code: ExcCode,
        pc: u32,
        bad_vaddr: Option<u32>,
        in_delay: bool,
    ) -> Vectored {
        self.exceptions_taken += 1;
        // EPC semantics: point at the branch when faulting in a delay slot.
        let epc = if in_delay { pc.wrapping_sub(4) } else { pc };

        let user_deliverable = self.cp0.user_mode()
            && self.cp0.user_vectoring_available()
            && code.is_synchronous()
            && code != ExcCode::Syscall
            && self.cp0.user_mask_allows(code)
            && !is_tlb_miss(code, bad_vaddr, &self.tlb, self.asid());

        if user_deliverable {
            self.cycles += cycles::USER_VECTOR_ENTRY;
            let handler = self.cp0.uxt;
            self.cp0.uxt = epc;
            self.cp0.uxc = Cp0::make_uxc(code, in_delay);
            if let Some(v) = bad_vaddr {
                self.cp0.bad_vaddr = v;
            }
            self.cp0.status |= status::UXA;
            self.cpu.pc = handler;
            self.cpu.next_pc = handler.wrapping_add(4);
            self.prev_was_branch = false;
            Vectored::User(handler)
        } else {
            self.cycles += cycles::EXCEPTION_ENTRY;
            let was_user = self.cp0.user_mode();
            self.cp0.enter_exception(code, epc, bad_vaddr, in_delay);
            let vector = if was_user
                && matches!(code, ExcCode::TlbLoad | ExcCode::TlbStore)
                && bad_vaddr
                    .is_some_and(|v| v < 0x8000_0000 && self.tlb.probe(v, self.asid()).is_none())
            {
                UTLB_VECTOR
            } else {
                GENERAL_VECTOR
            };
            self.cpu.pc = vector;
            self.cpu.next_pc = vector.wrapping_add(4);
            self.prev_was_branch = false;
            Vectored::Kernel(vector)
        }
    }

    /// Exception reentry point used by host kernel services that emulate a
    /// trap on behalf of guest code (e.g. the subpage engine): behaves like
    /// [`Machine::raise`] but never user-vectors.
    pub fn raise_to_kernel(&mut self, code: ExcCode, epc: u32, bad_vaddr: Option<u32>, bd: bool) {
        self.exceptions_taken += 1;
        self.cycles += cycles::EXCEPTION_ENTRY;
        self.cp0.enter_exception(code, epc, bad_vaddr, bd);
        self.cpu.pc = GENERAL_VECTOR;
        self.cpu.next_pc = GENERAL_VECTOR.wrapping_add(4);
        self.prev_was_branch = false;
    }

    // --- host memory access (used by the host-level kernel) --------------

    /// Reads a word at a *virtual* address using the current translation
    /// state, without raising exceptions or charging cycles.
    ///
    /// # Errors
    ///
    /// Returns the exception that a guest load would have raised.
    pub fn peek_u32(&self, vaddr: u32, user: bool) -> Result<u32, Exception> {
        if vaddr & 3 != 0 {
            return Err(self.fault(ExcCode::AddrErrLoad, vaddr));
        }
        let paddr = self
            .translate(vaddr, Access::Load, user)
            .map_err(|(c, v)| self.fault(c, v))?;
        self.mem
            .read_u32(paddr)
            .map_err(|_| self.fault(ExcCode::BusErrData, vaddr))
    }

    /// Writes a word at a *virtual* address (see [`Machine::peek_u32`]).
    ///
    /// # Errors
    ///
    /// Returns the exception that a guest store would have raised.
    pub fn poke_u32(&mut self, vaddr: u32, value: u32, user: bool) -> Result<(), Exception> {
        if vaddr & 3 != 0 {
            return Err(self.fault(ExcCode::AddrErrStore, vaddr));
        }
        let paddr = self
            .translate(vaddr, Access::Store, user)
            .map_err(|(c, v)| self.fault(c, v))?;
        self.mem
            .write_u32(paddr, value)
            .map_err(|_| self.fault(ExcCode::BusErrData, vaddr))
    }

    /// Reads one byte at a virtual address (see [`Machine::peek_u32`]).
    ///
    /// # Errors
    ///
    /// Returns the exception that a guest load would have raised.
    pub fn peek_u8(&self, vaddr: u32, user: bool) -> Result<u8, Exception> {
        let paddr = self
            .translate(vaddr, Access::Load, user)
            .map_err(|(c, v)| self.fault(c, v))?;
        self.mem
            .read_u8(paddr)
            .map_err(|_| self.fault(ExcCode::BusErrData, vaddr))
    }

    /// Writes one byte at a virtual address (see [`Machine::poke_u32`]).
    ///
    /// # Errors
    ///
    /// Returns the exception that a guest store would have raised.
    pub fn poke_u8(&mut self, vaddr: u32, value: u8, user: bool) -> Result<(), Exception> {
        let paddr = self
            .translate(vaddr, Access::Store, user)
            .map_err(|(c, v)| self.fault(c, v))?;
        self.mem
            .write_u8(paddr, value)
            .map_err(|_| self.fault(ExcCode::BusErrData, vaddr))
    }

    /// Reads a halfword at a virtual address (see [`Machine::peek_u32`]).
    ///
    /// # Errors
    ///
    /// Returns the exception that a guest load would have raised.
    pub fn peek_u16(&self, vaddr: u32, user: bool) -> Result<u16, Exception> {
        if vaddr & 1 != 0 {
            return Err(self.fault(ExcCode::AddrErrLoad, vaddr));
        }
        let paddr = self
            .translate(vaddr, Access::Load, user)
            .map_err(|(c, v)| self.fault(c, v))?;
        self.mem
            .read_u16(paddr)
            .map_err(|_| self.fault(ExcCode::BusErrData, vaddr))
    }

    /// Writes a halfword at a virtual address (see [`Machine::poke_u32`]).
    ///
    /// # Errors
    ///
    /// Returns the exception that a guest store would have raised.
    pub fn poke_u16(&mut self, vaddr: u32, value: u16, user: bool) -> Result<(), Exception> {
        if vaddr & 1 != 0 {
            return Err(self.fault(ExcCode::AddrErrStore, vaddr));
        }
        let paddr = self
            .translate(vaddr, Access::Store, user)
            .map_err(|(c, v)| self.fault(c, v))?;
        self.mem
            .write_u16(paddr, value)
            .map_err(|_| self.fault(ExcCode::BusErrData, vaddr))
    }

    fn fault(&self, code: ExcCode, vaddr: u32) -> Exception {
        Exception {
            code,
            bad_vaddr: Some(vaddr),
            in_delay_slot: false,
            pc: self.cpu.pc,
        }
    }
}

enum Exec {
    Ok,
    HostCall(u32),
    Fault(ExcCode, Option<u32>),
}

fn branch_target(pc: u32, imm: i16) -> u32 {
    pc.wrapping_add(4)
        .wrapping_add((i32::from(imm) << 2) as u32)
}

fn tlb_fault_code(f: TlbFault, access: Access) -> ExcCode {
    match f {
        TlbFault::Modification => ExcCode::TlbMod,
        _ => access.tlb_err(),
    }
}

fn is_tlb_miss(code: ExcCode, bad_vaddr: Option<u32>, tlb: &Tlb, asid: u8) -> bool {
    if !matches!(code, ExcCode::TlbLoad | ExcCode::TlbStore) {
        return false;
    }
    bad_vaddr.is_none_or(|v| tlb.probe(v, asid).is_none())
}

/// Converts a KSEG0/KSEG1 virtual address to its physical address.
pub fn kseg_to_phys(vaddr: u32) -> Option<u32> {
    (0x8000_0000..0xc000_0000)
        .contains(&vaddr)
        .then_some(vaddr & 0x1fff_ffff)
}

/// Whether user mode may read the CP0 register (paper extension registers
/// UXT and UXC are user-visible so handlers can dispatch and return).
fn user_cp0_reg(rd: u8) -> bool {
    matches!(
        Cp0Reg::from_number(rd),
        Some(Cp0Reg::Uxt | Cp0Reg::Uxc | Cp0Reg::BadVaddr)
    )
}

/// Whether user mode may write the CP0 register (only the user exception
/// target: "user-level software loads [it] with its exception handler
/// address", Section 2.1).
fn user_cp0_reg_writable(rd: u8) -> bool {
    matches!(Cp0Reg::from_number(rd), Some(Cp0Reg::Uxt))
}

impl Instruction {
    /// Convenience: the encoded machine word (`encode(self)`).
    pub fn into_word(self) -> u32 {
        crate::encode::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn machine_with(words: &[u32], at: u32) -> Machine {
        let mut m = Machine::new(1 << 20);
        let paddr = kseg_to_phys(at).unwrap();
        for (i, w) in words.iter().enumerate() {
            m.mem_mut().write_u32(paddr + 4 * i as u32, *w).unwrap();
        }
        m.set_pc(at);
        m
    }

    fn run_to_hcall(m: &mut Machine) -> u32 {
        match m.run(10_000).unwrap() {
            StopReason::HostCall(c) => c,
            other => panic!("expected hcall, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_hcall() {
        let words = [
            encode(Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 21,
            }),
            encode(Instruction::Addu {
                rd: Reg::T1,
                rs: Reg::T0,
                rt: Reg::T0,
            }),
            encode(Instruction::Hcall { code: 3 }),
        ];
        let mut m = machine_with(&words, 0x8000_1000);
        assert_eq!(run_to_hcall(&mut m), 3);
        assert_eq!(m.cpu().reg(Reg::T1), 42);
        assert_eq!(m.instructions_retired(), 3);
    }

    #[test]
    fn zero_register_is_immutable() {
        let words = [
            encode(Instruction::Addiu {
                rt: Reg::ZERO,
                rs: Reg::ZERO,
                imm: 5,
            }),
            encode(Instruction::Hcall { code: 0 }),
        ];
        let mut m = machine_with(&words, 0x8000_1000);
        run_to_hcall(&mut m);
        assert_eq!(m.cpu().reg(Reg::ZERO), 0);
    }

    #[test]
    fn branch_delay_slot_executes() {
        // beq taken; the delay-slot addiu must still execute.
        let words = [
            encode(Instruction::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: 2, // skip one instruction beyond the slot
            }),
            encode(Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 1,
            }), // delay slot: executes
            encode(Instruction::Addiu {
                rt: Reg::T1,
                rs: Reg::ZERO,
                imm: 1,
            }), // skipped
            encode(Instruction::Hcall { code: 0 }),
        ];
        let mut m = machine_with(&words, 0x8000_1000);
        run_to_hcall(&mut m);
        assert_eq!(m.cpu().reg(Reg::T0), 1, "delay slot must execute");
        assert_eq!(m.cpu().reg(Reg::T1), 0, "branch target must skip");
    }

    #[test]
    fn jal_links_past_delay_slot() {
        let base = 0x8000_1000u32;
        let words = [
            encode(Instruction::Jal {
                target: (base + 16) >> 2,
            }),
            Instruction::NOP.into_word(),
            encode(Instruction::Hcall { code: 9 }), // should be skipped
            Instruction::NOP.into_word(),
            encode(Instruction::Hcall { code: 1 }), // jal target
        ];
        let mut m = machine_with(&words, base);
        assert_eq!(run_to_hcall(&mut m), 1);
        assert_eq!(m.cpu().reg(Reg::RA), base + 8);
    }

    #[test]
    fn overflow_raises_and_preserves_rd() {
        let words = [
            encode(Instruction::Lui {
                rt: Reg::T0,
                imm: 0x7fff,
            }),
            encode(Instruction::Add {
                rd: Reg::T1,
                rs: Reg::T0,
                rt: Reg::T0,
            }),
        ];
        let mut m = machine_with(&words, 0x8000_1000);
        m.run(2).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::Overflow));
        assert_eq!(m.cpu().pc, GENERAL_VECTOR);
        assert_eq!(m.cpu().reg(Reg::T1), 0, "faulting add must not retire");
        assert_eq!(m.cp0().epc, 0x8000_1004);
    }

    #[test]
    fn unaligned_load_faults_with_bad_vaddr() {
        let words = [
            encode(Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 0x102,
            }),
            encode(Instruction::Lw {
                rt: Reg::T1,
                base: Reg::T0,
                imm: 0,
            }),
        ];
        let mut m = machine_with(&words, 0x8000_1000);
        m.run(2).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::AddrErrLoad));
        assert_eq!(m.cp0().bad_vaddr, 0x102);
    }

    #[test]
    fn delay_slot_fault_sets_bd_and_branch_epc() {
        let words = [
            encode(Instruction::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                imm: 4,
            }),
            encode(Instruction::Lw {
                rt: Reg::T1,
                base: Reg::ZERO,
                imm: 0x103, // unaligned -> faults in the delay slot
            }),
        ];
        let mut m = machine_with(&words, 0x8000_1000);
        m.run(2).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::AddrErrLoad));
        assert!(m.cp0().cause_bd(), "BD must be set");
        assert_eq!(m.cp0().epc, 0x8000_1000, "EPC must point at the branch");
    }

    #[test]
    fn syscall_vectors_to_kernel() {
        let words = [encode(Instruction::Syscall { code: 0 })];
        let mut m = machine_with(&words, 0x8000_1000);
        m.run(1).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::Syscall));
        assert_eq!(m.cpu().pc, GENERAL_VECTOR);
    }

    #[test]
    fn user_mode_cannot_touch_kernel_space() {
        // Put the machine in user mode executing from a TLB-mapped page.
        let mut m = Machine::new(1 << 20);
        // Map user page 0x0040_0000 -> phys 0x2000.
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: true,
                global: false,
                user_modifiable: false,
            },
        );
        let insts = [encode(Instruction::Lw {
            rt: Reg::T0,
            base: Reg::ZERO,
            imm: 0, // vaddr 0 — unmapped user page -> UTLB miss
        })];
        for (i, w) in insts.iter().enumerate() {
            m.mem_mut().write_u32(0x2000 + 4 * i as u32, *w).unwrap();
        }
        m.cp0_mut().status = status::KUC; // user mode
        m.set_pc(0x0040_0000);
        m.run(1).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::TlbLoad));
        assert_eq!(
            m.cpu().pc,
            UTLB_VECTOR,
            "user TLB miss uses the refill vector"
        );
        assert!(!m.cp0().user_mode(), "exception enters kernel mode");
    }

    #[test]
    fn write_protected_page_faults_tlbmod() {
        let mut m = Machine::new(1 << 20);
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: false, // write-protected
                global: false,
                user_modifiable: false,
            },
        );
        let insts = [encode(Instruction::Sw {
            rt: Reg::T0,
            base: Reg::ZERO,
            imm: 0x0040_0000u32 as i32 as i16, // won't fit; use register form below
        })];
        let _ = insts;
        // Build: lui t0, 0x0040; sw t1, 0(t0)
        let prog = [
            encode(Instruction::Lui {
                rt: Reg::T0,
                imm: 0x0040,
            }),
            encode(Instruction::Sw {
                rt: Reg::T1,
                base: Reg::T0,
                imm: 0,
            }),
        ];
        let paddr = 0x3000;
        for (i, w) in prog.iter().enumerate() {
            m.mem_mut().write_u32(paddr + 4 * i as u32, *w).unwrap();
        }
        // Map the code page too (vpn 0x401 -> pfn 3).
        m.tlb_mut().write(
            1,
            crate::tlb::TlbEntry {
                vpn: 0x401,
                asid: 0,
                pfn: 3,
                valid: true,
                dirty: false,
                global: false,
                user_modifiable: false,
            },
        );
        m.cp0_mut().status = status::KUC;
        m.set_pc(0x0040_1000);
        m.run(2).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::TlbMod));
        assert_eq!(m.cp0().bad_vaddr, 0x0040_0000);
    }

    #[test]
    fn hardware_user_vectoring_swaps_pc_and_uxt() {
        let mut m = Machine::new(1 << 20);
        // user code page: vpn 0x400 -> pfn 2; handler page vpn 0x500 -> pfn 5.
        for (i, (vpn, pfn)) in [(0x400u32, 2u32), (0x500, 5)].iter().enumerate() {
            m.tlb_mut().write(
                i,
                crate::tlb::TlbEntry {
                    vpn: *vpn,
                    asid: 0,
                    pfn: *pfn,
                    valid: true,
                    dirty: true,
                    global: false,
                    user_modifiable: false,
                },
            );
        }
        // user code: break (vectored to user); then hcall (never reached in user mode)
        m.mem_mut()
            .write_u32(0x2000, encode(Instruction::Break { code: 0 }))
            .unwrap();
        m.mem_mut()
            .write_u32(
                0x2004,
                encode(Instruction::Addiu {
                    rt: Reg::T5,
                    rs: Reg::ZERO,
                    imm: 7,
                }),
            )
            .unwrap();
        m.mem_mut()
            .write_u32(0x2008, encode(Instruction::Break { code: 1 }))
            .unwrap();
        // handler at 0x0050_0000: set t3 = 1; advance uxt past the break; xpcu back.
        let handler = [
            encode(Instruction::Addiu {
                rt: Reg::T3,
                rs: Reg::ZERO,
                imm: 1,
            }),
            encode(Instruction::Mfc0 {
                rt: Reg::T4,
                rd: Cp0Reg::Uxt as u8,
            }),
            encode(Instruction::Addiu {
                rt: Reg::T4,
                rs: Reg::T4,
                imm: 4,
            }),
            encode(Instruction::Mtc0 {
                rt: Reg::T4,
                rd: Cp0Reg::Uxt as u8,
            }),
            encode(Instruction::Xpcu),
        ];
        for (i, w) in handler.iter().enumerate() {
            m.mem_mut().write_u32(0x5000 + 4 * i as u32, *w).unwrap();
        }
        m.cp0_mut().status = status::KUC | status::UXE;
        m.cp0_mut().uxm = 1 << ExcCode::Breakpoint.code();
        m.cp0_mut().uxt = 0x0050_0000;
        m.set_pc(0x0040_0000);
        // Run until the second break vectors (mask still set but UXA cleared
        // by xpcu, so it vectors to user again; we stop after a few steps).
        for _ in 0..8 {
            m.step().unwrap();
        }
        assert_eq!(m.cpu().reg(Reg::T3), 1, "handler ran");
        assert_eq!(m.cpu().reg(Reg::T5), 7, "resumed after the break");
        assert!(m.cp0().user_mode(), "never left user mode");
    }

    #[test]
    fn recursive_user_exception_falls_back_to_kernel() {
        let mut m = Machine::new(1 << 20);
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: true,
                global: false,
                user_modifiable: false,
            },
        );
        // user code: break; handler is ALSO a break at the same spot (uxt
        // points at code that faults again).
        m.mem_mut()
            .write_u32(0x2000, encode(Instruction::Break { code: 0 }))
            .unwrap();
        m.mem_mut()
            .write_u32(0x2010, encode(Instruction::Break { code: 1 }))
            .unwrap();
        m.cp0_mut().status = status::KUC | status::UXE;
        m.cp0_mut().uxm = 1 << ExcCode::Breakpoint.code();
        m.cp0_mut().uxt = 0x0040_0010;
        m.set_pc(0x0040_0000);
        m.step().unwrap(); // first break: user-vectored
        assert!(m.cp0().status & status::UXA != 0);
        m.step().unwrap(); // second break: recursive -> kernel
        assert!(
            !m.cp0().user_mode(),
            "recursive exception must enter kernel"
        );
        assert_eq!(m.cpu().pc, GENERAL_VECTOR);
    }

    #[test]
    fn utlbp_requires_user_modifiable_bit() {
        let mut m = Machine::new(1 << 20);
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: true,
                global: false,
                user_modifiable: false,
            },
        );
        // code page
        m.tlb_mut().write(
            1,
            crate::tlb::TlbEntry {
                vpn: 0x401,
                asid: 0,
                pfn: 3,
                valid: true,
                dirty: false,
                global: false,
                user_modifiable: false,
            },
        );
        let prog = [
            encode(Instruction::Lui {
                rt: Reg::A0,
                imm: 0x0040,
            }),
            encode(Instruction::Utlbp {
                rs: Reg::A0,
                op: TlbProtOp::WriteProtect,
            }),
        ];
        for (i, w) in prog.iter().enumerate() {
            m.mem_mut().write_u32(0x3000 + 4 * i as u32, *w).unwrap();
        }
        m.cp0_mut().status = status::KUC;
        m.set_pc(0x0040_1000);
        m.run(2).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::CopUnusable));
    }

    #[test]
    fn utlbp_with_bit_set_modifies_protection() {
        let mut m = Machine::new(1 << 20);
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: true,
                global: false,
                user_modifiable: true,
            },
        );
        m.tlb_mut().write(
            1,
            crate::tlb::TlbEntry {
                vpn: 0x401,
                asid: 0,
                pfn: 3,
                valid: true,
                dirty: false,
                global: false,
                user_modifiable: false,
            },
        );
        let prog = [
            encode(Instruction::Lui {
                rt: Reg::A0,
                imm: 0x0040,
            }),
            encode(Instruction::Utlbp {
                rs: Reg::A0,
                op: TlbProtOp::WriteProtect,
            }),
            encode(Instruction::Sw {
                rt: Reg::T0,
                base: Reg::A0,
                imm: 0,
            }),
        ];
        for (i, w) in prog.iter().enumerate() {
            m.mem_mut().write_u32(0x3000 + 4 * i as u32, *w).unwrap();
        }
        m.cp0_mut().status = status::KUC;
        m.set_pc(0x0040_1000);
        m.run(3).unwrap();
        // The store after user-level write-protect must fault.
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::TlbMod));
    }

    #[test]
    fn hcall_is_privileged() {
        let mut m = Machine::new(1 << 20);
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: false,
                global: false,
                user_modifiable: false,
            },
        );
        m.mem_mut()
            .write_u32(0x2000, encode(Instruction::Hcall { code: 0 }))
            .unwrap();
        m.cp0_mut().status = status::KUC;
        m.set_pc(0x0040_0000);
        let r = m.run(1).unwrap();
        assert_eq!(r, StopReason::StepLimit, "hcall must not stop in user mode");
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::CopUnusable));
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let words = [
            encode(Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 1,
            }),
            encode(Instruction::Lw {
                rt: Reg::T1,
                base: Reg::ZERO,
                imm: 0, // vaddr 0: TLB miss in kernel mode? No — kernel KUSEG miss
            }),
        ];
        let mut m = machine_with(&words[..1], 0x8000_1000);
        m.step().unwrap();
        assert_eq!(m.cycles(), cycles::BASE);
        let _ = words;
    }

    #[test]
    fn peek_poke_respect_translation() {
        let mut m = Machine::new(1 << 20);
        m.tlb_mut().write(
            0,
            crate::tlb::TlbEntry {
                vpn: 0x400,
                asid: 0,
                pfn: 2,
                valid: true,
                dirty: true,
                global: false,
                user_modifiable: false,
            },
        );
        m.poke_u32(0x0040_0008, 0xfeed_f00d, true).unwrap();
        assert_eq!(m.peek_u32(0x0040_0008, true).unwrap(), 0xfeed_f00d);
        assert_eq!(m.mem().read_u32(0x2008).unwrap(), 0xfeed_f00d);
        let err = m.peek_u32(0x0050_0000, true).unwrap_err();
        assert_eq!(err.code, ExcCode::TlbLoad);
    }
}
