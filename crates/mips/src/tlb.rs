//! The translation lookaside buffer.
//!
//! A 64-entry, fully-associative, software-managed, *tagged* TLB in the
//! R3000 style, with one addition from the paper (Section 2.2): a
//! **user-modifiable bit** per entry. When the kernel sets that bit, user
//! code may amplify or restrict the read/write protection of the entry —
//! but never the translation itself — via the `utlbp` instruction. The tag
//! (ASID) ensures a process can only touch its own entries.

use std::fmt;

/// Number of TLB entries (as in the R3000).
pub const TLB_ENTRIES: usize = 64;

/// Hardware page size: 4 KB, the granularity the paper works against.
pub const PAGE_SIZE: u32 = 4096;

/// Bit positions within the raw `EntryLo` word.
pub mod entry_lo {
    /// Non-cacheable (kept for completeness; the cycle model ignores it).
    pub const N: u32 = 1 << 11;
    /// Dirty — in R3000 terms, "writes permitted".
    pub const D: u32 = 1 << 10;
    /// Valid.
    pub const V: u32 = 1 << 9;
    /// Global — matches regardless of ASID.
    pub const G: u32 = 1 << 8;
    /// efex extension: user-modifiable protection (paper, Section 2.2).
    pub const U: u32 = 1 << 7;
}

/// One TLB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TlbEntry {
    /// Virtual page number (`vaddr >> 12`).
    pub vpn: u32,
    /// Address-space identifier tag (6 bits).
    pub asid: u8,
    /// Physical frame number.
    pub pfn: u32,
    /// Entry participates in translation.
    pub valid: bool,
    /// Writes permitted.
    pub dirty: bool,
    /// Matches any ASID.
    pub global: bool,
    /// User code may modify this entry's protection bits via `utlbp`.
    pub user_modifiable: bool,
}

impl TlbEntry {
    /// Builds an entry from the raw `EntryHi`/`EntryLo` register pair.
    pub fn from_raw(entry_hi: u32, entry_lo: u32) -> TlbEntry {
        TlbEntry {
            vpn: entry_hi >> 12,
            asid: ((entry_hi >> 6) & 0x3f) as u8,
            pfn: entry_lo >> 12,
            valid: entry_lo & entry_lo::V != 0,
            dirty: entry_lo & entry_lo::D != 0,
            global: entry_lo & entry_lo::G != 0,
            user_modifiable: entry_lo & entry_lo::U != 0,
        }
    }

    /// The raw `EntryHi` register image.
    pub fn entry_hi(&self) -> u32 {
        (self.vpn << 12) | (u32::from(self.asid & 0x3f) << 6)
    }

    /// The raw `EntryLo` register image.
    pub fn entry_lo(&self) -> u32 {
        let mut lo = self.pfn << 12;
        if self.valid {
            lo |= entry_lo::V;
        }
        if self.dirty {
            lo |= entry_lo::D;
        }
        if self.global {
            lo |= entry_lo::G;
        }
        if self.user_modifiable {
            lo |= entry_lo::U;
        }
        lo
    }

    /// Whether the entry translates `vaddr` under `asid`.
    pub fn matches(&self, vaddr: u32, asid: u8) -> bool {
        self.vpn == vaddr >> 12 && (self.global || self.asid == asid)
    }
}

impl fmt::Display for TlbEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vpn={:#07x} asid={} pfn={:#07x}{}{}{}{}",
            self.vpn,
            self.asid,
            self.pfn,
            if self.valid { " V" } else { "" },
            if self.dirty { " D" } else { "" },
            if self.global { " G" } else { "" },
            if self.user_modifiable { " U" } else { "" },
        )
    }
}

/// Why a translation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbFault {
    /// No entry matches: a TLB refill is required.
    Miss,
    /// A matching entry exists but is invalid (protect-all, paged out, …).
    Invalid,
    /// A store hit an entry without write permission.
    Modification,
}

impl fmt::Display for TlbFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TlbFault::Miss => "TLB miss",
            TlbFault::Invalid => "TLB invalid",
            TlbFault::Modification => "TLB modification",
        };
        f.write_str(s)
    }
}

/// The TLB proper.
///
/// Slots are either empty or hold a [`TlbEntry`]; an *empty* slot never
/// matches any address (unlike an entry with the valid bit clear, which
/// matches and faults with [`TlbFault::Invalid`] — that distinction is what
/// makes protect-all pages work).
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: [Option<TlbEntry>; TLB_ENTRIES],
    /// Bumped by every mutating operation. Consumers that cache derived
    /// translation state (the decode cache in `machine.rs`) compare this to
    /// detect TLB writes, evictions, flushes, and protection changes.
    generation: u64,
}

impl Default for Tlb {
    fn default() -> Tlb {
        Tlb::new()
    }
}

impl Tlb {
    /// An empty TLB (all slots empty).
    pub fn new() -> Tlb {
        Tlb {
            entries: [None; TLB_ENTRIES],
            generation: 0,
        }
    }

    /// Mutation counter: changes whenever any entry may have changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Translates `vaddr` for `asid`, checking write permission when
    /// `is_write`.
    ///
    /// # Errors
    ///
    /// Returns the appropriate [`TlbFault`] when no usable translation
    /// exists.
    pub fn translate(&self, vaddr: u32, asid: u8, is_write: bool) -> Result<u32, TlbFault> {
        let entry = self
            .entries
            .iter()
            .flatten()
            .find(|e| e.matches(vaddr, asid))
            .ok_or(TlbFault::Miss)?;
        if !entry.valid {
            return Err(TlbFault::Invalid);
        }
        if is_write && !entry.dirty {
            return Err(TlbFault::Modification);
        }
        Ok((entry.pfn << 12) | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Finds the index of the entry matching `vaddr`/`asid`, if any
    /// (the `tlbp` probe).
    pub fn probe(&self, vaddr: u32, asid: u8) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.is_some_and(|e| e.matches(vaddr, asid)))
    }

    /// Reads the entry at `index`; empty slots read as an all-zero entry,
    /// as `tlbr` of an unwritten slot does on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `index >= TLB_ENTRIES`.
    pub fn read(&self, index: usize) -> TlbEntry {
        self.entries[index].unwrap_or_default()
    }

    /// Writes the entry at `index`, evicting any other entry that would
    /// create a duplicate match (real hardware shuts down on duplicates; we
    /// keep the machine deterministic instead).
    ///
    /// # Panics
    ///
    /// Panics if `index >= TLB_ENTRIES`.
    pub fn write(&mut self, index: usize, entry: TlbEntry) {
        self.generation = self.generation.wrapping_add(1);
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if i == index {
                continue;
            }
            if let Some(e) = slot {
                if e.vpn == entry.vpn && (e.global || entry.global || e.asid == entry.asid) {
                    *slot = None;
                }
            }
        }
        self.entries[index] = Some(entry);
    }

    /// Empties the slot at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= TLB_ENTRIES`.
    pub fn clear(&mut self, index: usize) {
        self.generation = self.generation.wrapping_add(1);
        self.entries[index] = None;
    }

    /// Empties every slot (full flush).
    pub fn flush(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        self.entries = [None; TLB_ENTRIES];
    }

    /// Empties all slots belonging to one address space.
    pub fn flush_asid(&mut self, asid: u8) {
        self.generation = self.generation.wrapping_add(1);
        for slot in &mut self.entries {
            if slot.is_some_and(|e| !e.global && e.asid == asid) {
                *slot = None;
            }
        }
    }

    /// Empties any slot translating `vaddr` for `asid` (kernel page
    /// protection changes must shoot the stale mapping down).
    pub fn invalidate_page(&mut self, vaddr: u32, asid: u8) {
        self.generation = self.generation.wrapping_add(1);
        for slot in &mut self.entries {
            if slot.is_some_and(|e| e.matches(vaddr, asid)) {
                *slot = None;
            }
        }
    }

    /// Mutable access to the entry matching `vaddr`/`asid`, used by the
    /// `utlbp` implementation.
    pub fn entry_matching_mut(&mut self, vaddr: u32, asid: u8) -> Option<&mut TlbEntry> {
        // The caller may rewrite protection bits through the returned
        // reference; bump conservatively at hand-out time.
        self.generation = self.generation.wrapping_add(1);
        self.entries
            .iter_mut()
            .flatten()
            .find(|e| e.matches(vaddr, asid))
    }

    /// Iterates over all occupied entries.
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.iter().flatten()
    }

    /// The raw slot array, empty slots included. [`Tlb::read`] deliberately
    /// collapses an empty slot and an all-zero entry into the same value
    /// (matching `tlbr` of an unwritten slot); checkpointing must preserve
    /// the distinction, because a restored all-zero *entry* would match
    /// VPN 0 where an empty slot matches nothing.
    pub fn slots(&self) -> &[Option<TlbEntry>; TLB_ENTRIES] {
        &self.entries
    }

    /// Replaces the entire TLB — slots *and* generation counter — with
    /// checkpointed state. Unlike [`Tlb::write`] this performs no duplicate
    /// eviction (the snapshot came from a TLB that already enforced it) and
    /// sets the generation exactly, so a restored run's translation-cache
    /// tags evolve identically to the uninterrupted run it forked from.
    pub fn restore(&mut self, slots: [Option<TlbEntry>; TLB_ENTRIES], generation: u64) {
        self.entries = slots;
        self.generation = generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u32, asid: u8, pfn: u32) -> TlbEntry {
        TlbEntry {
            vpn,
            asid,
            pfn,
            valid: true,
            dirty: true,
            global: false,
            user_modifiable: false,
        }
    }

    #[test]
    fn raw_round_trip() {
        let e = TlbEntry {
            vpn: 0x12345,
            asid: 0x2a,
            pfn: 0x00abc,
            valid: true,
            dirty: false,
            global: true,
            user_modifiable: true,
        };
        assert_eq!(TlbEntry::from_raw(e.entry_hi(), e.entry_lo()), e);
    }

    #[test]
    fn translate_hits_and_misses() {
        let mut tlb = Tlb::new();
        tlb.write(0, entry(0x00400, 1, 0x00080));
        assert_eq!(tlb.translate(0x0040_0123, 1, false), Ok(0x0008_0123));
        assert_eq!(tlb.translate(0x0040_1000, 1, false), Err(TlbFault::Miss));
        assert_eq!(tlb.translate(0x0040_0123, 2, false), Err(TlbFault::Miss));
    }

    #[test]
    fn global_entries_ignore_asid() {
        let mut tlb = Tlb::new();
        let mut e = entry(0x00400, 1, 0x00080);
        e.global = true;
        tlb.write(0, e);
        assert!(tlb.translate(0x0040_0000, 63, false).is_ok());
    }

    #[test]
    fn write_protection_faults_stores_only() {
        let mut tlb = Tlb::new();
        let mut e = entry(0x00400, 1, 0x00080);
        e.dirty = false;
        tlb.write(0, e);
        assert!(tlb.translate(0x0040_0000, 1, false).is_ok());
        assert_eq!(
            tlb.translate(0x0040_0000, 1, true),
            Err(TlbFault::Modification)
        );
    }

    #[test]
    fn invalid_entries_fault_loads_too() {
        let mut tlb = Tlb::new();
        let mut e = entry(0x00400, 1, 0x00080);
        e.valid = false;
        tlb.write(0, e);
        assert_eq!(tlb.translate(0x0040_0000, 1, false), Err(TlbFault::Invalid));
    }

    #[test]
    fn duplicate_writes_keep_translation_unique() {
        let mut tlb = Tlb::new();
        tlb.write(0, entry(0x00400, 1, 0x00080));
        tlb.write(1, entry(0x00400, 1, 0x00090));
        // The newer entry wins; the older was invalidated.
        assert_eq!(tlb.translate(0x0040_0000, 1, false), Ok(0x0009_0000));
        assert_eq!(tlb.probe(0x0040_0000, 1), Some(1));
    }

    #[test]
    fn same_vpn_different_asid_may_coexist() {
        let mut tlb = Tlb::new();
        tlb.write(0, entry(0x00400, 1, 0x00080));
        tlb.write(1, entry(0x00400, 2, 0x00090));
        assert_eq!(tlb.translate(0x0040_0000, 1, false), Ok(0x0008_0000));
        assert_eq!(tlb.translate(0x0040_0000, 2, false), Ok(0x0009_0000));
    }

    #[test]
    fn flush_asid_spares_globals_and_other_spaces() {
        let mut tlb = Tlb::new();
        tlb.write(0, entry(0x00400, 1, 0x00080));
        tlb.write(1, entry(0x00500, 2, 0x00090));
        let mut g = entry(0x00600, 1, 0x000a0);
        g.global = true;
        tlb.write(2, g);
        tlb.flush_asid(1);
        assert_eq!(tlb.translate(0x0040_0000, 1, false), Err(TlbFault::Miss));
        assert!(tlb.translate(0x0050_0000, 2, false).is_ok());
        assert!(tlb.translate(0x0060_0000, 1, false).is_ok());
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut tlb = Tlb::new();
        let g0 = tlb.generation();
        tlb.write(0, entry(0x00400, 1, 0x00080));
        let g1 = tlb.generation();
        assert_ne!(g0, g1);
        tlb.translate(0x0040_0000, 1, false).unwrap();
        tlb.probe(0x0040_0000, 1);
        assert_eq!(tlb.generation(), g1, "reads must not bump");
        tlb.entry_matching_mut(0x0040_0000, 1).unwrap().dirty = false;
        let g2 = tlb.generation();
        assert_ne!(g1, g2, "protection edits through entry_matching_mut bump");
        tlb.invalidate_page(0x0040_0000, 1);
        let g3 = tlb.generation();
        assert_ne!(g2, g3);
        tlb.flush();
        assert_ne!(g3, tlb.generation());
    }

    #[test]
    fn invalidate_page_shoots_down_mapping() {
        let mut tlb = Tlb::new();
        tlb.write(0, entry(0x00400, 1, 0x00080));
        tlb.invalidate_page(0x0040_0ff0, 1);
        assert_eq!(tlb.translate(0x0040_0000, 1, false), Err(TlbFault::Miss));
    }
}
