//! Execution tracing: a bounded ring of recently executed instructions.
//!
//! Attach a [`Trace`] to a [`crate::Machine`] to keep the last *N*
//! `(pc, word, mode)` tuples; [`Trace::dump`] renders them through the
//! disassembler. Intended for debugging guest kernels and handlers — the
//! first thing one wants after "the machine wedged" is the tail of the
//! instruction stream.

use std::collections::{BTreeMap, VecDeque};

use crate::decode::decode;
use crate::disasm::disassemble_at;

/// One executed instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// Address of the instruction.
    pub pc: u32,
    /// The machine word executed.
    pub word: u32,
    /// Whether the processor was in user mode.
    pub user_mode: bool,
}

/// A bounded execution trace.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: VecDeque<TraceEntry>,
    capacity: usize,
    recorded: u64,
}

impl Trace {
    /// A trace keeping the last `capacity` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Trace {
        assert!(capacity > 0, "empty trace is useless");
        Trace {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// Records one executed instruction.
    pub fn record(&mut self, pc: u32, word: u32, user_mode: bool) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEntry {
            pc,
            word,
            user_mode,
        });
        self.recorded += 1;
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// Total instructions ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Clears the ring (the total count is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Renders the retained tail as a listing, resolving targets through
    /// `symbols` when given.
    pub fn dump(&self, symbols: Option<&BTreeMap<String, u32>>) -> String {
        let mut out = String::new();
        for e in &self.ring {
            let text = match decode(e.word) {
                Ok(i) => disassemble_at(i, e.pc, symbols),
                Err(_) => format!(".word {:#010x}", e.word),
            };
            let mode = if e.user_mode { 'u' } else { 'k' };
            out.push_str(&format!("  [{mode}] {:#010x}:  {text}\n", e.pc));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::Machine;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u32 {
            t.record(i * 4, 0, true);
        }
        let pcs: Vec<u32> = t.entries().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![8, 12, 16]);
        assert_eq!(t.total_recorded(), 5);
    }

    #[test]
    fn machine_records_executed_instructions() {
        let prog = assemble(
            r#"
            .org 0x80001000
            main:
                li  $t0, 1
                li  $t1, 2
                addu $t2, $t0, $t1
                hcall 0
        "#,
        )
        .unwrap();
        let mut m = Machine::new(1 << 20);
        m.load_image(&prog).unwrap();
        m.set_pc(prog.entry());
        m.set_trace(Some(Trace::new(16)));
        m.run(100).unwrap();
        let t = m.trace().unwrap();
        assert_eq!(t.total_recorded(), 4);
        let dump = t.dump(Some(prog.symbols()));
        assert!(dump.contains("addu $t2, $t0, $t1"), "{dump}");
        assert!(dump.contains("[k]"), "kernel mode marked");
    }

    #[test]
    fn trace_survives_exceptions_and_marks_modes() {
        // A user program that takes a syscall: trace shows user then kernel
        // instructions.
        let prog = assemble(
            r#"
            .org 0x80001000
            main:
                break 0
        "#,
        )
        .unwrap();
        let mut m = Machine::new(1 << 20);
        m.load_image(&prog).unwrap();
        // Put an hcall at the general vector so the run stops there.
        m.mem_mut()
            .write_u32(
                0x80,
                crate::encode::encode(crate::isa::Instruction::Hcall { code: 1 }),
            )
            .unwrap();
        m.set_pc(prog.entry());
        m.set_trace(Some(Trace::new(8)));
        m.run(10).unwrap();
        let entries: Vec<_> = m.trace().unwrap().entries().copied().collect();
        // break retired nothing (it faulted), but the vector's hcall ran.
        assert!(entries.iter().any(|e| e.pc == 0x8000_0080));
    }

    #[test]
    #[should_panic(expected = "useless")]
    fn zero_capacity_panics() {
        let _ = Trace::new(0);
    }
}
