//! Per-region instruction and cycle attribution.
//!
//! Used to regenerate the paper's Table 3: the simulated kernel's fast-path
//! exception handler is guest assembly whose phases are delimited by labels;
//! a [`Profiler`] attached to the machine counts how many instructions
//! execute in each labeled region, so the table is *measured* rather than
//! asserted.

use std::collections::BTreeMap;

/// A half-open address range `[start, end)` with a name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    /// Name shown in reports (typically the source label).
    pub name: String,
    /// First instruction address in the region.
    pub start: u32,
    /// One past the last instruction address.
    pub end: u32,
}

/// Accumulated counts for one region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionCounts {
    /// Dynamic instructions executed within the region.
    pub instructions: u64,
    /// Cycles charged to instructions within the region.
    pub cycles: u64,
}

/// One contiguous stay inside a region: execution entered the region at
/// `start_cycles` on the profiler's clock and left (or is still inside) at
/// `end_cycles`. Spans are what timeline exporters (Chrome trace, folded
/// stacks with time weights) consume.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegionSpan {
    /// The region's name.
    pub name: String,
    /// Profiler-clock cycles when execution entered the region.
    pub start_cycles: u64,
    /// Profiler-clock cycles when execution left the region.
    pub end_cycles: u64,
    /// Instructions retired during the stay.
    pub instructions: u64,
}

impl RegionSpan {
    /// Cycles spent in the stay.
    pub fn cycles(&self) -> u64 {
        self.end_cycles - self.start_cycles
    }
}

/// Attributes executed instructions to named address regions.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    regions: Vec<Region>,
    counts: Vec<RegionCounts>,
    enabled: bool,
    /// Cycles accumulated across every `record` call while enabled — the
    /// profiler's own clock, used to timestamp spans (region transitions are
    /// relative times; absolute machine cycles are not needed).
    clock: u64,
    /// The open span: `(region index, start clock, instructions so far)`.
    open: Option<(usize, u64, u64)>,
    spans: Vec<RegionSpan>,
    /// Spans not recorded because [`SPAN_CAPACITY`] was reached.
    spans_dropped: u64,
}

/// Upper bound on retained spans; transitions past it count into
/// [`Profiler::spans_dropped`] instead of growing without bound.
pub const SPAN_CAPACITY: usize = 16_384;

impl Profiler {
    /// An empty, enabled profiler.
    pub fn new() -> Profiler {
        Profiler {
            regions: Vec::new(),
            counts: Vec::new(),
            enabled: true,
            clock: 0,
            open: None,
            spans: Vec::new(),
            spans_dropped: 0,
        }
    }

    /// Adds a region. Regions may not overlap; attribution picks the first
    /// match, so callers should keep them disjoint.
    pub fn add_region(&mut self, name: impl Into<String>, start: u32, end: u32) {
        self.regions.push(Region {
            name: name.into(),
            start,
            end,
        });
        self.counts.push(RegionCounts::default());
    }

    /// Builds regions from a sorted list of `(label, address)` pairs, where
    /// each region extends to the next label (the last extends to `end`).
    pub fn from_labels<'a>(labels: impl IntoIterator<Item = (&'a str, u32)>, end: u32) -> Profiler {
        let mut pairs: Vec<(&str, u32)> = labels.into_iter().collect();
        pairs.sort_by_key(|&(_, a)| a);
        let mut p = Profiler::new();
        for i in 0..pairs.len() {
            let (name, start) = pairs[i];
            let stop = pairs.get(i + 1).map(|&(_, a)| a).unwrap_or(end);
            p.add_region(name, start, stop);
        }
        p
    }

    /// Enables or disables counting (e.g. to measure only a window of
    /// execution).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether counting is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one executed instruction at `pc` costing `cycles`.
    pub fn record(&mut self, pc: u32, cycles: u64) {
        if !self.enabled {
            return;
        }
        let before = self.clock;
        self.clock += cycles;
        let hit = self
            .regions
            .iter()
            .position(|r| pc >= r.start && pc < r.end);
        match (self.open, hit) {
            (Some((open_idx, _, _)), Some(idx)) if open_idx == idx => {
                if let Some(open) = self.open.as_mut() {
                    open.2 += 1;
                }
            }
            (open, hit) => {
                if open.is_some() {
                    self.close_span(before);
                }
                if let Some(idx) = hit {
                    self.open = Some((idx, before, 1));
                }
            }
        }
        if let Some(idx) = hit {
            self.counts[idx].instructions += 1;
            self.counts[idx].cycles += cycles;
        }
    }

    fn close_span(&mut self, at: u64) {
        if let Some((idx, start, instructions)) = self.open.take() {
            if self.spans.len() < SPAN_CAPACITY {
                self.spans.push(RegionSpan {
                    name: self.regions[idx].name.clone(),
                    start_cycles: start,
                    end_cycles: at,
                    instructions,
                });
            } else {
                self.spans_dropped += 1;
            }
        }
    }

    /// Closes the open span (if any) at the current clock, so
    /// [`Profiler::spans`] reflects everything recorded so far.
    pub fn finish(&mut self) {
        let now = self.clock;
        self.close_span(now);
    }

    /// The recorded region stays, in execution order (call
    /// [`Profiler::finish`] first to include the still-open one).
    pub fn spans(&self) -> &[RegionSpan] {
        &self.spans
    }

    /// Consumes the recorded spans, leaving the profiler collecting afresh.
    pub fn take_spans(&mut self) -> Vec<RegionSpan> {
        self.finish();
        std::mem::take(&mut self.spans)
    }

    /// Spans discarded because [`SPAN_CAPACITY`] was reached.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// The profiler's clock: cycles accumulated over every recorded
    /// instruction (inside or outside regions).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Resets all counts and spans to zero (the clock keeps running, so
    /// spans recorded after a reset stay ordered after earlier ones).
    pub fn reset(&mut self) {
        for c in &mut self.counts {
            *c = RegionCounts::default();
        }
        self.open = None;
        self.spans.clear();
        self.spans_dropped = 0;
    }

    /// Counts for a region by name (summing duplicates).
    pub fn counts_for(&self, name: &str) -> RegionCounts {
        let mut total = RegionCounts::default();
        for (r, c) in self.regions.iter().zip(self.counts.iter()) {
            if r.name == name {
                total.instructions += c.instructions;
                total.cycles += c.cycles;
            }
        }
        total
    }

    /// A name → counts report over all regions, in name order.
    pub fn report(&self) -> BTreeMap<String, RegionCounts> {
        let mut map: BTreeMap<String, RegionCounts> = BTreeMap::new();
        for (r, c) in self.regions.iter().zip(self.counts.iter()) {
            let e = map.entry(r.name.clone()).or_default();
            e.instructions += c.instructions;
            e.cycles += c.cycles;
        }
        map
    }

    /// Total instructions attributed to any region.
    pub fn total_instructions(&self) -> u64 {
        self.counts.iter().map(|c| c.instructions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_respects_boundaries() {
        let mut p = Profiler::new();
        p.add_region("a", 0x100, 0x108);
        p.add_region("b", 0x108, 0x110);
        p.record(0x100, 1);
        p.record(0x104, 2);
        p.record(0x108, 3);
        p.record(0x200, 9); // outside every region
        assert_eq!(p.counts_for("a").instructions, 2);
        assert_eq!(p.counts_for("a").cycles, 3);
        assert_eq!(p.counts_for("b").instructions, 1);
        assert_eq!(p.total_instructions(), 3);
    }

    #[test]
    fn from_labels_builds_adjacent_regions() {
        let p = Profiler::from_labels(vec![("one", 0x10), ("two", 0x20)], 0x30);
        let mut q = p.clone();
        q.record(0x1c, 1);
        q.record(0x20, 1);
        q.record(0x2c, 1);
        assert_eq!(q.counts_for("one").instructions, 1);
        assert_eq!(q.counts_for("two").instructions, 2);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new();
        p.add_region("a", 0, 0x1000);
        p.set_enabled(false);
        p.record(4, 1);
        assert_eq!(p.total_instructions(), 0);
        p.set_enabled(true);
        p.record(4, 1);
        assert_eq!(p.total_instructions(), 1);
    }

    #[test]
    fn reset_clears_counts() {
        let mut p = Profiler::new();
        p.add_region("a", 0, 8);
        p.record(0, 5);
        p.reset();
        assert_eq!(p.counts_for("a"), RegionCounts::default());
        assert!(p.spans().is_empty());
    }

    #[test]
    fn spans_track_region_transitions() {
        let mut p = Profiler::new();
        p.add_region("a", 0x100, 0x108);
        p.add_region("b", 0x108, 0x110);
        p.record(0x100, 2); // a: [0, 2)
        p.record(0x104, 2); // a: [0, 4)
        p.record(0x108, 3); // b: [4, 7)
        p.record(0x200, 1); // outside: closes b at 7
        p.record(0x104, 2); // a again: [8, 10)
        p.finish();
        let spans = p.spans();
        let view: Vec<(&str, u64, u64, u64)> = spans
            .iter()
            .map(|s| {
                (
                    s.name.as_str(),
                    s.start_cycles,
                    s.end_cycles,
                    s.instructions,
                )
            })
            .collect();
        assert_eq!(
            view,
            [("a", 0, 4, 2), ("b", 4, 7, 1), ("a", 8, 10, 1)],
            "spans must tile the in-region execution"
        );
        assert!(spans
            .windows(2)
            .all(|w| w[0].end_cycles <= w[1].start_cycles));
        assert_eq!(p.spans_dropped(), 0);
    }

    #[test]
    fn take_spans_closes_and_drains() {
        let mut p = Profiler::new();
        p.add_region("a", 0, 0x100);
        p.record(0, 4);
        let spans = p.take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].cycles(), 4);
        assert!(p.spans().is_empty());
        // The clock keeps running so later spans stay ordered.
        p.record(4, 4);
        let later = p.take_spans();
        assert_eq!(later[0].start_cycles, 4);
    }

    #[test]
    fn disabled_profiler_records_no_spans() {
        let mut p = Profiler::new();
        p.add_region("a", 0, 0x100);
        p.set_enabled(false);
        p.record(0, 4);
        assert_eq!(p.take_spans().len(), 0);
    }
}
