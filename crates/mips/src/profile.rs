//! Per-region instruction and cycle attribution.
//!
//! Used to regenerate the paper's Table 3: the simulated kernel's fast-path
//! exception handler is guest assembly whose phases are delimited by labels;
//! a [`Profiler`] attached to the machine counts how many instructions
//! execute in each labeled region, so the table is *measured* rather than
//! asserted.

use std::collections::BTreeMap;

/// A half-open address range `[start, end)` with a name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    /// Name shown in reports (typically the source label).
    pub name: String,
    /// First instruction address in the region.
    pub start: u32,
    /// One past the last instruction address.
    pub end: u32,
}

/// Accumulated counts for one region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionCounts {
    /// Dynamic instructions executed within the region.
    pub instructions: u64,
    /// Cycles charged to instructions within the region.
    pub cycles: u64,
}

/// Attributes executed instructions to named address regions.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    regions: Vec<Region>,
    counts: Vec<RegionCounts>,
    enabled: bool,
}

impl Profiler {
    /// An empty, enabled profiler.
    pub fn new() -> Profiler {
        Profiler {
            regions: Vec::new(),
            counts: Vec::new(),
            enabled: true,
        }
    }

    /// Adds a region. Regions may not overlap; attribution picks the first
    /// match, so callers should keep them disjoint.
    pub fn add_region(&mut self, name: impl Into<String>, start: u32, end: u32) {
        self.regions.push(Region {
            name: name.into(),
            start,
            end,
        });
        self.counts.push(RegionCounts::default());
    }

    /// Builds regions from a sorted list of `(label, address)` pairs, where
    /// each region extends to the next label (the last extends to `end`).
    pub fn from_labels<'a>(labels: impl IntoIterator<Item = (&'a str, u32)>, end: u32) -> Profiler {
        let mut pairs: Vec<(&str, u32)> = labels.into_iter().collect();
        pairs.sort_by_key(|&(_, a)| a);
        let mut p = Profiler::new();
        for i in 0..pairs.len() {
            let (name, start) = pairs[i];
            let stop = pairs.get(i + 1).map(|&(_, a)| a).unwrap_or(end);
            p.add_region(name, start, stop);
        }
        p
    }

    /// Enables or disables counting (e.g. to measure only a window of
    /// execution).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether counting is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one executed instruction at `pc` costing `cycles`.
    pub fn record(&mut self, pc: u32, cycles: u64) {
        if !self.enabled {
            return;
        }
        for (r, c) in self.regions.iter().zip(self.counts.iter_mut()) {
            if pc >= r.start && pc < r.end {
                c.instructions += 1;
                c.cycles += cycles;
                return;
            }
        }
    }

    /// Resets all counts to zero.
    pub fn reset(&mut self) {
        for c in &mut self.counts {
            *c = RegionCounts::default();
        }
    }

    /// Counts for a region by name (summing duplicates).
    pub fn counts_for(&self, name: &str) -> RegionCounts {
        let mut total = RegionCounts::default();
        for (r, c) in self.regions.iter().zip(self.counts.iter()) {
            if r.name == name {
                total.instructions += c.instructions;
                total.cycles += c.cycles;
            }
        }
        total
    }

    /// A name → counts report over all regions, in name order.
    pub fn report(&self) -> BTreeMap<String, RegionCounts> {
        let mut map: BTreeMap<String, RegionCounts> = BTreeMap::new();
        for (r, c) in self.regions.iter().zip(self.counts.iter()) {
            let e = map.entry(r.name.clone()).or_default();
            e.instructions += c.instructions;
            e.cycles += c.cycles;
        }
        map
    }

    /// Total instructions attributed to any region.
    pub fn total_instructions(&self) -> u64 {
        self.counts.iter().map(|c| c.instructions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_respects_boundaries() {
        let mut p = Profiler::new();
        p.add_region("a", 0x100, 0x108);
        p.add_region("b", 0x108, 0x110);
        p.record(0x100, 1);
        p.record(0x104, 2);
        p.record(0x108, 3);
        p.record(0x200, 9); // outside every region
        assert_eq!(p.counts_for("a").instructions, 2);
        assert_eq!(p.counts_for("a").cycles, 3);
        assert_eq!(p.counts_for("b").instructions, 1);
        assert_eq!(p.total_instructions(), 3);
    }

    #[test]
    fn from_labels_builds_adjacent_regions() {
        let p = Profiler::from_labels(vec![("one", 0x10), ("two", 0x20)], 0x30);
        let mut q = p.clone();
        q.record(0x1c, 1);
        q.record(0x20, 1);
        q.record(0x2c, 1);
        assert_eq!(q.counts_for("one").instructions, 1);
        assert_eq!(q.counts_for("two").instructions, 2);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new();
        p.add_region("a", 0, 0x1000);
        p.set_enabled(false);
        p.record(4, 1);
        assert_eq!(p.total_instructions(), 0);
        p.set_enabled(true);
        p.record(4, 1);
        assert_eq!(p.total_instructions(), 1);
    }

    #[test]
    fn reset_clears_counts() {
        let mut p = Profiler::new();
        p.add_region("a", 0, 8);
        p.record(0, 5);
        p.reset();
        assert_eq!(p.counts_for("a"), RegionCounts::default());
    }
}
