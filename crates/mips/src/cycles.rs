//! The cycle cost model and its calibration.
//!
//! The paper's measurements were taken on a 25 MHz DECstation 5000/200 with
//! warm caches. We model that machine with a simple single-issue cost model:
//! every instruction takes [`BASE`] cycle, memory instructions pay
//! [`MEM_ACCESS`] extra (warm-cache load/store), multiplies and divides pay
//! their R3000 latencies, TLB management ops pay a small CP0 cost, and
//! exception entry flushes the pipeline for [`EXCEPTION_ENTRY`] cycles.
//!
//! ## Calibration anchors (from the paper)
//!
//! - *"the architectural limit for an exception that enters the kernel and
//!   returns immediately is about 2 µs"* — 50 cycles at 25 MHz. Our
//!   entry flush (30) + a minimal decode-and-`rfe` sequence (~10
//!   instructions ≈ 15 cycles) + return redirect ≈ 50.
//! - *"an Ultrix null kernel call (e.g. getpid) is 12 µs"* — 300 cycles;
//!   the simulated kernel charges [`ULTRIX_NULL_SYSCALL`] for its
//!   general-purpose syscall wrapper.
//!
//! All reported microseconds are `cycles / clock_mhz`.

/// Default simulated clock, MHz (DECstation 5000/200).
pub const CLOCK_MHZ: f64 = 25.0;

/// Cycles for any instruction's issue.
pub const BASE: u64 = 1;

/// Extra cycles for a warm-cache memory access (load or store).
pub const MEM_ACCESS: u64 = 1;

/// Extra cycles for `mult`/`multu` (R3000 latency, result interlock).
pub const MULT: u64 = 11;

/// Extra cycles for `div`/`divu`.
pub const DIV: u64 = 34;

/// Extra cycles for TLB management co-functions (`tlbwi`, `tlbwr`, `tlbr`,
/// `tlbp`) and the efex `utlbp`.
pub const TLB_OP: u64 = 2;

/// Pipeline flush + vectoring cost charged when the hardware takes an
/// exception into kernel mode.
pub const EXCEPTION_ENTRY: u64 = 30;

/// Hardware user-level vectoring (the Tera-style PC/UXT exchange) skips the
/// kernel-mode flush and mode change; entry costs only a short redirect.
pub const USER_VECTOR_ENTRY: u64 = 4;

/// Cycles the Ultrix-style kernel charges for a null system call
/// (12 µs at 25 MHz), used as the calibration for the conventional kernel's
/// general-purpose entry/exit wrapper.
pub const ULTRIX_NULL_SYSCALL: u64 = 300;

/// Converts a cycle count to microseconds at a given clock.
pub fn to_micros(cycles: u64, clock_mhz: f64) -> f64 {
    cycles as f64 / clock_mhz
}

/// Converts microseconds to cycles at a given clock (rounded).
pub fn from_micros(micros: f64, clock_mhz: f64) -> u64 {
    (micros * clock_mhz).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        assert_eq!(to_micros(250, CLOCK_MHZ), 10.0);
        assert_eq!(from_micros(10.0, CLOCK_MHZ), 250);
        assert_eq!(from_micros(to_micros(12345, CLOCK_MHZ), CLOCK_MHZ), 12345);
    }

    #[test]
    fn architectural_limit_anchor_holds() {
        // Entry flush + ~10 minimal kernel instructions + rfe return must be
        // near the paper's 2 us architectural limit.
        let approx = EXCEPTION_ENTRY + 15 + 5;
        let us = to_micros(approx, CLOCK_MHZ);
        assert!((1.5..=2.5).contains(&us), "got {us}");
    }
}
