//! Exception causes, matching the R3000 `Cause.ExcCode` field.

use std::fmt;

/// Hardware exception codes, as stored in `Cause.ExcCode`.
///
/// These follow the R3000 numbering. The paper's mechanisms deal with the
/// *program-synchronous* subset — everything except [`ExcCode::Interrupt`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum ExcCode {
    /// External interrupt (asynchronous; untouched by the paper's paths).
    Interrupt = 0,
    /// TLB modification: store hit an entry with the dirty bit clear
    /// (i.e., a write-protected page).
    TlbMod = 1,
    /// TLB miss or invalid entry on a load or instruction fetch.
    TlbLoad = 2,
    /// TLB miss or invalid entry on a store.
    TlbStore = 3,
    /// Address error on load/fetch: unaligned access or a user-mode
    /// reference to kernel space.
    AddrErrLoad = 4,
    /// Address error on store.
    AddrErrStore = 5,
    /// Bus error on instruction fetch (physical address out of range).
    BusErrFetch = 6,
    /// Bus error on data access.
    BusErrData = 7,
    /// `syscall` instruction.
    Syscall = 8,
    /// `break` instruction.
    Breakpoint = 9,
    /// Reserved (undefined) instruction.
    ReservedInstr = 10,
    /// Coprocessor unusable.
    CopUnusable = 11,
    /// Integer overflow from `add`, `addi`, or `sub`.
    Overflow = 12,
}

impl ExcCode {
    /// All defined codes.
    pub const ALL: [ExcCode; 13] = [
        ExcCode::Interrupt,
        ExcCode::TlbMod,
        ExcCode::TlbLoad,
        ExcCode::TlbStore,
        ExcCode::AddrErrLoad,
        ExcCode::AddrErrStore,
        ExcCode::BusErrFetch,
        ExcCode::BusErrData,
        ExcCode::Syscall,
        ExcCode::Breakpoint,
        ExcCode::ReservedInstr,
        ExcCode::CopUnusable,
        ExcCode::Overflow,
    ];

    /// Decodes the numeric `ExcCode` field value.
    pub fn from_code(code: u32) -> Option<ExcCode> {
        ExcCode::ALL.get(code as usize).copied()
    }

    /// The numeric value stored in `Cause.ExcCode`.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Whether the exception is program-synchronous (caused by the executing
    /// instruction), as opposed to an external interrupt.
    pub fn is_synchronous(self) -> bool {
        self != ExcCode::Interrupt
    }

    /// Whether this is one of the TLB-related exceptions that require the
    /// kernel to consult memory-management state (Section 3.2.2).
    pub fn is_tlb(self) -> bool {
        matches!(self, ExcCode::TlbMod | ExcCode::TlbLoad | ExcCode::TlbStore)
    }
}

impl fmt::Display for ExcCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExcCode::Interrupt => "interrupt",
            ExcCode::TlbMod => "TLB modification",
            ExcCode::TlbLoad => "TLB load miss",
            ExcCode::TlbStore => "TLB store miss",
            ExcCode::AddrErrLoad => "address error (load)",
            ExcCode::AddrErrStore => "address error (store)",
            ExcCode::BusErrFetch => "bus error (fetch)",
            ExcCode::BusErrData => "bus error (data)",
            ExcCode::Syscall => "syscall",
            ExcCode::Breakpoint => "breakpoint",
            ExcCode::ReservedInstr => "reserved instruction",
            ExcCode::CopUnusable => "coprocessor unusable",
            ExcCode::Overflow => "arithmetic overflow",
        };
        f.write_str(s)
    }
}

/// A raised exception, before vectoring: the cause plus the faulting
/// context the hardware latches into CP0.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Exception {
    /// Why the exception was raised.
    pub code: ExcCode,
    /// The bad virtual address, for address and TLB errors.
    pub bad_vaddr: Option<u32>,
    /// Whether the faulting instruction sits in a branch delay slot.
    pub in_delay_slot: bool,
    /// Address of the faulting instruction (the branch, if in a delay slot,
    /// is recorded separately by the machine when it builds EPC).
    pub pc: u32,
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at pc {:#010x}", self.code, self.pc)?;
        if let Some(v) = self.bad_vaddr {
            write!(f, " (vaddr {v:#010x})")?;
        }
        if self.in_delay_slot {
            write!(f, " [delay slot]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for c in ExcCode::ALL {
            assert_eq!(ExcCode::from_code(c.code()), Some(c));
        }
        assert_eq!(ExcCode::from_code(13), None);
    }

    #[test]
    fn classification() {
        assert!(!ExcCode::Interrupt.is_synchronous());
        assert!(ExcCode::Breakpoint.is_synchronous());
        assert!(ExcCode::TlbMod.is_tlb());
        assert!(!ExcCode::Overflow.is_tlb());
    }

    #[test]
    fn display_includes_context() {
        let e = Exception {
            code: ExcCode::AddrErrLoad,
            bad_vaddr: Some(0x1002),
            in_delay_slot: true,
            pc: 0x400000,
        };
        let s = e.to_string();
        assert!(s.contains("address error"));
        assert!(s.contains("0x00001002"));
        assert!(s.contains("delay slot"));
    }
}
