//! Machine-level checkpoint state and its wire encoding.
//!
//! [`MachineState`] is the plain-data image of everything
//! architecturally visible in a [`crate::machine::Machine`]: the register
//! file, CP0, the TLB with empty-slot identity preserved, the pending
//! delay-slot flag, the cycle/instret/exception counters, and the non-zero
//! pages of physical memory. [`Machine::snapshot`]/[`Machine::restore`]
//! convert between a live machine and this struct; the functions here
//! convert between the struct and the `efex-snap` wire format
//! ([`efex_snap::Flavor::Machine`] artifacts).
//!
//! [`Machine::snapshot`]: crate::machine::Machine::snapshot
//! [`Machine::restore`]: crate::machine::Machine::restore

use efex_snap::{Flavor, Reader, SnapError, Writer};

use crate::cp0::Cp0;
use crate::tlb::{TlbEntry, TLB_ENTRIES};

/// Snapshot memory granule: one 4 KB physical page.
pub const SNAP_PAGE: usize = 4096;

/// The complete architectural state of one machine. Plain data — every
/// field public — so higher layers (the simulated kernel, the fleet) can
/// embed it in their own snapshot payloads.
#[derive(Clone, Debug)]
pub struct MachineState {
    /// All 32 general-purpose registers.
    pub regs: [u32; 32],
    /// Multiply/divide HI register.
    pub hi: u32,
    /// Multiply/divide LO register.
    pub lo: u32,
    /// PC of the next instruction to execute.
    pub pc: u32,
    /// PC after that (differs from `pc + 4` inside a delay slot).
    pub next_pc: u32,
    /// The previous instruction was a branch: the next one is its delay
    /// slot (drives `Cause.BD` / EPC-at-the-branch on a fault there).
    pub prev_was_branch: bool,
    /// The system coprocessor, all twelve registers.
    pub cp0: Cp0,
    /// Every TLB slot, empty slots included (an empty slot and an all-zero
    /// entry translate differently — see [`crate::tlb::Tlb::slots`]).
    pub tlb_slots: [Option<TlbEntry>; TLB_ENTRIES],
    /// The TLB mutation counter at snapshot time.
    pub tlb_generation: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Exceptions taken.
    pub exceptions_taken: u64,
    /// Physical memory size in bytes.
    pub mem_size: u32,
    /// Non-zero physical pages: `(paddr >> 12, 4096 bytes)`, ascending.
    pub pages: Vec<(u32, Vec<u8>)>,
}

impl MachineState {
    /// Appends this state to an in-progress snapshot payload.
    pub fn encode(&self, w: &mut Writer) {
        for r in self.regs {
            w.u32(r);
        }
        w.u32(self.hi);
        w.u32(self.lo);
        w.u32(self.pc);
        w.u32(self.next_pc);
        w.bool(self.prev_was_branch);
        for v in [
            self.cp0.index,
            self.cp0.random,
            self.cp0.entry_lo,
            self.cp0.context,
            self.cp0.bad_vaddr,
            self.cp0.entry_hi,
            self.cp0.status,
            self.cp0.cause,
            self.cp0.epc,
            self.cp0.uxt,
            self.cp0.uxc,
            self.cp0.uxm,
        ] {
            w.u32(v);
        }
        w.u64(self.tlb_generation);
        for slot in &self.tlb_slots {
            match slot {
                None => w.bool(false),
                Some(e) => {
                    w.bool(true);
                    w.u32(e.vpn);
                    w.u8(e.asid);
                    w.u32(e.pfn);
                    w.bool(e.valid);
                    w.bool(e.dirty);
                    w.bool(e.global);
                    w.bool(e.user_modifiable);
                }
            }
        }
        w.u64(self.cycles);
        w.u64(self.instret);
        w.u64(self.exceptions_taken);
        w.u32(self.mem_size);
        w.u32(self.pages.len() as u32);
        for (page_idx, bytes) in &self.pages {
            w.u32(*page_idx);
            w.bytes(bytes);
        }
    }

    /// Decodes a state from an in-progress snapshot payload.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on truncation or forbidden field values.
    pub fn decode(r: &mut Reader<'_>) -> Result<MachineState, SnapError> {
        let mut regs = [0u32; 32];
        for reg in &mut regs {
            *reg = r.u32()?;
        }
        let hi = r.u32()?;
        let lo = r.u32()?;
        let pc = r.u32()?;
        let next_pc = r.u32()?;
        let prev_was_branch = r.bool()?;
        let mut cp0 = Cp0::new();
        cp0.index = r.u32()?;
        cp0.random = r.u32()?;
        cp0.entry_lo = r.u32()?;
        cp0.context = r.u32()?;
        cp0.bad_vaddr = r.u32()?;
        cp0.entry_hi = r.u32()?;
        cp0.status = r.u32()?;
        cp0.cause = r.u32()?;
        cp0.epc = r.u32()?;
        cp0.uxt = r.u32()?;
        cp0.uxc = r.u32()?;
        cp0.uxm = r.u32()?;
        let tlb_generation = r.u64()?;
        let mut tlb_slots = [None; TLB_ENTRIES];
        for slot in &mut tlb_slots {
            if r.bool()? {
                *slot = Some(TlbEntry {
                    vpn: r.u32()?,
                    asid: r.u8()?,
                    pfn: r.u32()?,
                    valid: r.bool()?,
                    dirty: r.bool()?,
                    global: r.bool()?,
                    user_modifiable: r.bool()?,
                });
            }
        }
        let cycles = r.u64()?;
        let instret = r.u64()?;
        let exceptions_taken = r.u64()?;
        let mem_size = r.u32()?;
        let n_pages = r.count(4 + 4 + SNAP_PAGE)?;
        let mut pages = Vec::with_capacity(n_pages);
        let mut prev_idx: Option<u32> = None;
        for _ in 0..n_pages {
            let page_idx = r.u32()?;
            if prev_idx.is_some_and(|p| page_idx <= p) {
                return Err(SnapError::Corrupt(format!(
                    "memory pages out of order at page {page_idx:#x}"
                )));
            }
            prev_idx = Some(page_idx);
            let bytes = r.bytes()?;
            if bytes.len() != SNAP_PAGE {
                return Err(SnapError::Corrupt(format!(
                    "memory page {page_idx:#x} is {} bytes, expected {SNAP_PAGE}",
                    bytes.len()
                )));
            }
            pages.push((page_idx, bytes.to_vec()));
        }
        Ok(MachineState {
            regs,
            hi,
            lo,
            pc,
            next_pc,
            prev_was_branch,
            cp0,
            tlb_slots,
            tlb_generation,
            cycles,
            instret,
            exceptions_taken,
            mem_size,
            pages,
        })
    }

    /// Serializes this state as a standalone [`Flavor::Machine`] artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(Flavor::Machine);
        self.encode(&mut w);
        w.finish()
    }

    /// Deserializes a standalone [`Flavor::Machine`] artifact.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on any malformation; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<MachineState, SnapError> {
        let mut r = Reader::open(bytes, Flavor::Machine)?;
        let s = MachineState::decode(&mut r)?;
        r.done()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut m = Machine::new(1 << 16);
        m.mem_mut().write_u32(0x2000, 0xdead_beef).unwrap();
        m.mem_mut().write_u32(0xf000, 0x1234_5678).unwrap();
        m.tlb_mut().write(
            3,
            TlbEntry {
                vpn: 0x400,
                asid: 5,
                pfn: 2,
                valid: true,
                dirty: false,
                global: false,
                user_modifiable: true,
            },
        );
        // An all-zero *entry* in slot 7, distinct from the empty slots.
        m.tlb_mut().write(7, TlbEntry::default());
        m.cpu_mut().set_reg(crate::isa::Reg::from_field(8), 42);
        m.cpu_mut().set_hi(0x11);
        m.cpu_mut().set_lo(0x22);
        m.set_pc(0x8000_2000);
        m.cp0_mut().epc = 0x1234;

        let state = m.snapshot();
        let bytes = state.to_bytes();
        let back = MachineState::from_bytes(&bytes).unwrap();

        assert_eq!(back.regs, state.regs);
        assert_eq!(back.hi, 0x11);
        assert_eq!(back.lo, 0x22);
        assert_eq!(back.pc, 0x8000_2000);
        assert_eq!(back.cp0.epc, 0x1234);
        assert_eq!(back.tlb_slots[3], state.tlb_slots[3]);
        assert_eq!(back.tlb_slots[7], Some(TlbEntry::default()));
        assert_eq!(back.tlb_slots[0], None);
        assert_eq!(back.tlb_generation, state.tlb_generation);
        assert_eq!(back.pages.len(), state.pages.len());
        assert_eq!(back.mem_size, 1 << 16);

        let mut m2 = Machine::new(1 << 16);
        m2.restore(&back).unwrap();
        assert_eq!(m2.step_digest(), m.step_digest());
        assert_eq!(m2.mem().read_u32(0x2000).unwrap(), 0xdead_beef);
        assert_eq!(m2.mem().read_u32(0xf000).unwrap(), 0x1234_5678);
    }

    #[test]
    fn restore_rejects_wrong_memory_size() {
        let m = Machine::new(1 << 16);
        let state = m.snapshot();
        let mut other = Machine::new(1 << 17);
        assert!(matches!(other.restore(&state), Err(SnapError::Invalid(_))));
    }
}
