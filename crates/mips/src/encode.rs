//! Binary encoding of [`Instruction`]s into 32-bit machine words.
//!
//! Encodings follow the MIPS-I manual for the standard subset. The three
//! efex extensions occupy otherwise-unused encodings:
//!
//! - `xpcu`  — COP0 co-function `0x20`
//! - `utlbp` — COP0 co-function `0x21`, with the address register in the
//!   `rt` field and the protection op in bits 7..6
//! - `hcall` — the unused COP3 primary opcode (`0x13`) with a 26-bit code

use crate::isa::{Instruction, Reg};

pub(crate) mod op {
    pub const SPECIAL: u32 = 0x00;
    pub const REGIMM: u32 = 0x01;
    pub const J: u32 = 0x02;
    pub const JAL: u32 = 0x03;
    pub const BEQ: u32 = 0x04;
    pub const BNE: u32 = 0x05;
    pub const BLEZ: u32 = 0x06;
    pub const BGTZ: u32 = 0x07;
    pub const ADDI: u32 = 0x08;
    pub const ADDIU: u32 = 0x09;
    pub const SLTI: u32 = 0x0a;
    pub const SLTIU: u32 = 0x0b;
    pub const ANDI: u32 = 0x0c;
    pub const ORI: u32 = 0x0d;
    pub const XORI: u32 = 0x0e;
    pub const LUI: u32 = 0x0f;
    pub const COP0: u32 = 0x10;
    pub const HCALL: u32 = 0x13;
    pub const LB: u32 = 0x20;
    pub const LH: u32 = 0x21;
    pub const LW: u32 = 0x23;
    pub const LBU: u32 = 0x24;
    pub const LHU: u32 = 0x25;
    pub const SB: u32 = 0x28;
    pub const SH: u32 = 0x29;
    pub const SW: u32 = 0x2b;
}

pub(crate) mod funct {
    pub const SLL: u32 = 0x00;
    pub const SRL: u32 = 0x02;
    pub const SRA: u32 = 0x03;
    pub const SLLV: u32 = 0x04;
    pub const SRLV: u32 = 0x06;
    pub const SRAV: u32 = 0x07;
    pub const JR: u32 = 0x08;
    pub const JALR: u32 = 0x09;
    pub const SYSCALL: u32 = 0x0c;
    pub const BREAK: u32 = 0x0d;
    pub const MFHI: u32 = 0x10;
    pub const MTHI: u32 = 0x11;
    pub const MFLO: u32 = 0x12;
    pub const MTLO: u32 = 0x13;
    pub const MULT: u32 = 0x18;
    pub const MULTU: u32 = 0x19;
    pub const DIV: u32 = 0x1a;
    pub const DIVU: u32 = 0x1b;
    pub const ADD: u32 = 0x20;
    pub const ADDU: u32 = 0x21;
    pub const SUB: u32 = 0x22;
    pub const SUBU: u32 = 0x23;
    pub const AND: u32 = 0x24;
    pub const OR: u32 = 0x25;
    pub const XOR: u32 = 0x26;
    pub const NOR: u32 = 0x27;
    pub const SLT: u32 = 0x2a;
    pub const SLTU: u32 = 0x2b;
}

pub(crate) mod cop0 {
    /// `rs` field values inside the COP0 opcode.
    pub const MF: u32 = 0x00;
    pub const MT: u32 = 0x04;
    /// Co-function marker (bit 25 set).
    pub const CO: u32 = 0x10;
    /// Co-function codes.
    pub const TLBR: u32 = 0x01;
    pub const TLBWI: u32 = 0x02;
    pub const TLBWR: u32 = 0x06;
    pub const TLBP: u32 = 0x08;
    pub const RFE: u32 = 0x10;
    /// efex extension: exchange PC with the user exception target register.
    pub const XPCU: u32 = 0x20;
    /// efex extension: user-level TLB protection modification.
    pub const UTLBP: u32 = 0x21;
}

pub(crate) mod regimm {
    pub const BLTZ: u32 = 0x00;
    pub const BGEZ: u32 = 0x01;
    pub const BLTZAL: u32 = 0x10;
    pub const BGEZAL: u32 = 0x11;
}

fn r(rs: Reg, rt: Reg, rd: Reg, shamt: u8, funct: u32) -> u32 {
    (u32::from(rs.number()) << 21)
        | (u32::from(rt.number()) << 16)
        | (u32::from(rd.number()) << 11)
        | (u32::from(shamt & 0x1f) << 6)
        | funct
}

fn i(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | (u32::from(rs.number()) << 21) | (u32::from(rt.number()) << 16) | u32::from(imm)
}

/// Encodes an instruction into its 32-bit machine word.
///
/// ```
/// use efex_mips::isa::{Instruction, Reg};
/// use efex_mips::encode::encode;
/// // addu $t1, $t0, $t0
/// let word = encode(Instruction::Addu { rd: Reg::T1, rs: Reg::T0, rt: Reg::T0 });
/// assert_eq!(word, 0x0108_4821);
/// ```
pub fn encode(inst: Instruction) -> u32 {
    use Instruction::*;
    match inst {
        Sll { rd, rt, shamt } => r(Reg::ZERO, rt, rd, shamt, funct::SLL),
        Srl { rd, rt, shamt } => r(Reg::ZERO, rt, rd, shamt, funct::SRL),
        Sra { rd, rt, shamt } => r(Reg::ZERO, rt, rd, shamt, funct::SRA),
        Sllv { rd, rt, rs } => r(rs, rt, rd, 0, funct::SLLV),
        Srlv { rd, rt, rs } => r(rs, rt, rd, 0, funct::SRLV),
        Srav { rd, rt, rs } => r(rs, rt, rd, 0, funct::SRAV),
        Jr { rs } => r(rs, Reg::ZERO, Reg::ZERO, 0, funct::JR),
        Jalr { rd, rs } => r(rs, Reg::ZERO, rd, 0, funct::JALR),
        Syscall { code } => ((code & 0xf_ffff) << 6) | funct::SYSCALL,
        Break { code } => ((code & 0xf_ffff) << 6) | funct::BREAK,
        Mfhi { rd } => r(Reg::ZERO, Reg::ZERO, rd, 0, funct::MFHI),
        Mthi { rs } => r(rs, Reg::ZERO, Reg::ZERO, 0, funct::MTHI),
        Mflo { rd } => r(Reg::ZERO, Reg::ZERO, rd, 0, funct::MFLO),
        Mtlo { rs } => r(rs, Reg::ZERO, Reg::ZERO, 0, funct::MTLO),
        Mult { rs, rt } => r(rs, rt, Reg::ZERO, 0, funct::MULT),
        Multu { rs, rt } => r(rs, rt, Reg::ZERO, 0, funct::MULTU),
        Div { rs, rt } => r(rs, rt, Reg::ZERO, 0, funct::DIV),
        Divu { rs, rt } => r(rs, rt, Reg::ZERO, 0, funct::DIVU),
        Add { rd, rs, rt } => r(rs, rt, rd, 0, funct::ADD),
        Addu { rd, rs, rt } => r(rs, rt, rd, 0, funct::ADDU),
        Sub { rd, rs, rt } => r(rs, rt, rd, 0, funct::SUB),
        Subu { rd, rs, rt } => r(rs, rt, rd, 0, funct::SUBU),
        And { rd, rs, rt } => r(rs, rt, rd, 0, funct::AND),
        Or { rd, rs, rt } => r(rs, rt, rd, 0, funct::OR),
        Xor { rd, rs, rt } => r(rs, rt, rd, 0, funct::XOR),
        Nor { rd, rs, rt } => r(rs, rt, rd, 0, funct::NOR),
        Slt { rd, rs, rt } => r(rs, rt, rd, 0, funct::SLT),
        Sltu { rd, rs, rt } => r(rs, rt, rd, 0, funct::SLTU),
        Beq { rs, rt, imm } => i(op::BEQ, rs, rt, imm as u16),
        Bne { rs, rt, imm } => i(op::BNE, rs, rt, imm as u16),
        Blez { rs, imm } => i(op::BLEZ, rs, Reg::ZERO, imm as u16),
        Bgtz { rs, imm } => i(op::BGTZ, rs, Reg::ZERO, imm as u16),
        Bltz { rs, imm } => i(op::REGIMM, rs, Reg::from_field(regimm::BLTZ), imm as u16),
        Bgez { rs, imm } => i(op::REGIMM, rs, Reg::from_field(regimm::BGEZ), imm as u16),
        Bltzal { rs, imm } => i(op::REGIMM, rs, Reg::from_field(regimm::BLTZAL), imm as u16),
        Bgezal { rs, imm } => i(op::REGIMM, rs, Reg::from_field(regimm::BGEZAL), imm as u16),
        Addi { rt, rs, imm } => i(op::ADDI, rs, rt, imm as u16),
        Addiu { rt, rs, imm } => i(op::ADDIU, rs, rt, imm as u16),
        Slti { rt, rs, imm } => i(op::SLTI, rs, rt, imm as u16),
        Sltiu { rt, rs, imm } => i(op::SLTIU, rs, rt, imm as u16),
        Andi { rt, rs, imm } => i(op::ANDI, rs, rt, imm),
        Ori { rt, rs, imm } => i(op::ORI, rs, rt, imm),
        Xori { rt, rs, imm } => i(op::XORI, rs, rt, imm),
        Lui { rt, imm } => i(op::LUI, Reg::ZERO, rt, imm),
        Lb { rt, base, imm } => i(op::LB, base, rt, imm as u16),
        Lh { rt, base, imm } => i(op::LH, base, rt, imm as u16),
        Lw { rt, base, imm } => i(op::LW, base, rt, imm as u16),
        Lbu { rt, base, imm } => i(op::LBU, base, rt, imm as u16),
        Lhu { rt, base, imm } => i(op::LHU, base, rt, imm as u16),
        Sb { rt, base, imm } => i(op::SB, base, rt, imm as u16),
        Sh { rt, base, imm } => i(op::SH, base, rt, imm as u16),
        Sw { rt, base, imm } => i(op::SW, base, rt, imm as u16),
        J { target } => (op::J << 26) | (target & 0x03ff_ffff),
        Jal { target } => (op::JAL << 26) | (target & 0x03ff_ffff),
        Mfc0 { rt, rd } => {
            (op::COP0 << 26)
                | (cop0::MF << 21)
                | (u32::from(rt.number()) << 16)
                | (u32::from(rd & 0x1f) << 11)
        }
        Mtc0 { rt, rd } => {
            (op::COP0 << 26)
                | (cop0::MT << 21)
                | (u32::from(rt.number()) << 16)
                | (u32::from(rd & 0x1f) << 11)
        }
        Tlbr => co(cop0::TLBR),
        Tlbwi => co(cop0::TLBWI),
        Tlbwr => co(cop0::TLBWR),
        Tlbp => co(cop0::TLBP),
        Rfe => co(cop0::RFE),
        Xpcu => co(cop0::XPCU),
        Utlbp { rs, op: p } => {
            co(cop0::UTLBP) | (u32::from(rs.number()) << 16) | (p.to_field() << 6)
        }
        Hcall { code } => (op::HCALL << 26) | (code & 0x03ff_ffff),
    }
}

fn co(f: u32) -> u32 {
    (op::COP0 << 26) | (cop0::CO << 21) | f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::TlbProtOp;

    #[test]
    fn encodes_reference_words() {
        // Cross-checked against the MIPS-I manual encodings.
        assert_eq!(
            encode(Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: -32
            }),
            0x27bd_ffe0
        );
        assert_eq!(
            encode(Instruction::Lw {
                rt: Reg::RA,
                base: Reg::SP,
                imm: 28
            }),
            0x8fbf_001c
        );
        assert_eq!(encode(Instruction::Jr { rs: Reg::RA }), 0x03e0_0008);
        assert_eq!(encode(Instruction::NOP), 0x0000_0000);
        assert_eq!(
            encode(Instruction::Lui {
                rt: Reg::T0,
                imm: 0x8000
            }),
            0x3c08_8000
        );
        assert_eq!(encode(Instruction::J { target: 0x10 }), 0x0800_0010);
    }

    #[test]
    fn cop0_encodings_are_distinct() {
        let words = [
            encode(Instruction::Tlbr),
            encode(Instruction::Tlbwi),
            encode(Instruction::Tlbwr),
            encode(Instruction::Tlbp),
            encode(Instruction::Rfe),
            encode(Instruction::Xpcu),
            encode(Instruction::Utlbp {
                rs: Reg::A0,
                op: TlbProtOp::WriteProtect,
            }),
        ];
        for (i, a) in words.iter().enumerate() {
            for b in &words[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn syscall_and_break_carry_codes() {
        assert_eq!(encode(Instruction::Syscall { code: 7 }) & 0x3f, 0x0c);
        assert_eq!(
            (encode(Instruction::Syscall { code: 7 }) >> 6) & 0xf_ffff,
            7
        );
        assert_eq!(
            (encode(Instruction::Break { code: 99 }) >> 6) & 0xf_ffff,
            99
        );
    }
}
