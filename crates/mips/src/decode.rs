//! Decoding of 32-bit machine words into [`Instruction`]s.
//!
//! [`decode`] is total over valid encodings and returns
//! [`DecodeError::Reserved`] for anything else; the machine turns that into
//! a reserved-instruction exception, exactly as the R3000 does.

use std::error::Error;
use std::fmt;

use crate::encode::{cop0, funct, op, regimm};
use crate::isa::{Instruction, Reg, TlbProtOp};

/// Failure to decode a machine word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The word is not a defined instruction; hardware raises a
    /// reserved-instruction exception.
    Reserved(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Reserved(w) => write!(f, "reserved instruction word {w:#010x}"),
        }
    }
}

impl Error for DecodeError {}

/// Decodes a 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError::Reserved`] if the word is not a defined encoding.
///
/// ```
/// use efex_mips::decode::decode;
/// use efex_mips::isa::{Instruction, Reg};
/// assert_eq!(
///     decode(0x03e0_0008)?,
///     Instruction::Jr { rs: Reg::RA },
/// );
/// # Ok::<(), efex_mips::decode::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let opcode = word >> 26;
    let rs = Reg::from_field(word >> 21);
    let rt = Reg::from_field(word >> 16);
    let rd = Reg::from_field(word >> 11);
    let shamt = ((word >> 6) & 0x1f) as u8;
    let imm = (word & 0xffff) as u16;
    let simm = imm as i16;

    use Instruction::*;
    let inst = match opcode {
        op::SPECIAL => match word & 0x3f {
            funct::SLL => Sll { rd, rt, shamt },
            funct::SRL => Srl { rd, rt, shamt },
            funct::SRA => Sra { rd, rt, shamt },
            funct::SLLV => Sllv { rd, rt, rs },
            funct::SRLV => Srlv { rd, rt, rs },
            funct::SRAV => Srav { rd, rt, rs },
            funct::JR => Jr { rs },
            funct::JALR => Jalr { rd, rs },
            funct::SYSCALL => Syscall {
                code: (word >> 6) & 0xf_ffff,
            },
            funct::BREAK => Break {
                code: (word >> 6) & 0xf_ffff,
            },
            funct::MFHI => Mfhi { rd },
            funct::MTHI => Mthi { rs },
            funct::MFLO => Mflo { rd },
            funct::MTLO => Mtlo { rs },
            funct::MULT => Mult { rs, rt },
            funct::MULTU => Multu { rs, rt },
            funct::DIV => Div { rs, rt },
            funct::DIVU => Divu { rs, rt },
            funct::ADD => Add { rd, rs, rt },
            funct::ADDU => Addu { rd, rs, rt },
            funct::SUB => Sub { rd, rs, rt },
            funct::SUBU => Subu { rd, rs, rt },
            funct::AND => And { rd, rs, rt },
            funct::OR => Or { rd, rs, rt },
            funct::XOR => Xor { rd, rs, rt },
            funct::NOR => Nor { rd, rs, rt },
            funct::SLT => Slt { rd, rs, rt },
            funct::SLTU => Sltu { rd, rs, rt },
            _ => return Err(DecodeError::Reserved(word)),
        },
        op::REGIMM => match (word >> 16) & 0x1f {
            regimm::BLTZ => Bltz { rs, imm: simm },
            regimm::BGEZ => Bgez { rs, imm: simm },
            regimm::BLTZAL => Bltzal { rs, imm: simm },
            regimm::BGEZAL => Bgezal { rs, imm: simm },
            _ => return Err(DecodeError::Reserved(word)),
        },
        op::J => J {
            target: word & 0x03ff_ffff,
        },
        op::JAL => Jal {
            target: word & 0x03ff_ffff,
        },
        op::BEQ => Beq { rs, rt, imm: simm },
        op::BNE => Bne { rs, rt, imm: simm },
        op::BLEZ => Blez { rs, imm: simm },
        op::BGTZ => Bgtz { rs, imm: simm },
        op::ADDI => Addi { rt, rs, imm: simm },
        op::ADDIU => Addiu { rt, rs, imm: simm },
        op::SLTI => Slti { rt, rs, imm: simm },
        op::SLTIU => Sltiu { rt, rs, imm: simm },
        op::ANDI => Andi { rt, rs, imm },
        op::ORI => Ori { rt, rs, imm },
        op::XORI => Xori { rt, rs, imm },
        op::LUI => Lui { rt, imm },
        op::COP0 => match (word >> 21) & 0x1f {
            cop0::MF => Mfc0 {
                rt,
                rd: rd.number(),
            },
            cop0::MT => Mtc0 {
                rt,
                rd: rd.number(),
            },
            f if f & cop0::CO != 0 => match word & 0x3f {
                cop0::TLBR => Tlbr,
                cop0::TLBWI => Tlbwi,
                cop0::TLBWR => Tlbwr,
                cop0::TLBP => Tlbp,
                cop0::RFE => Rfe,
                cop0::XPCU => Xpcu,
                cop0::UTLBP => Utlbp {
                    rs: rt,
                    op: TlbProtOp::from_field(word >> 6),
                },
                _ => return Err(DecodeError::Reserved(word)),
            },
            _ => return Err(DecodeError::Reserved(word)),
        },
        op::HCALL => Hcall {
            code: word & 0x03ff_ffff,
        },
        op::LB => Lb {
            rt,
            base: rs,
            imm: simm,
        },
        op::LH => Lh {
            rt,
            base: rs,
            imm: simm,
        },
        op::LW => Lw {
            rt,
            base: rs,
            imm: simm,
        },
        op::LBU => Lbu {
            rt,
            base: rs,
            imm: simm,
        },
        op::LHU => Lhu {
            rt,
            base: rs,
            imm: simm,
        },
        op::SB => Sb {
            rt,
            base: rs,
            imm: simm,
        },
        op::SH => Sh {
            rt,
            base: rs,
            imm: simm,
        },
        op::SW => Sw {
            rt,
            base: rs,
            imm: simm,
        },
        _ => return Err(DecodeError::Reserved(word)),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decodes_reference_words() {
        assert_eq!(
            decode(0x27bd_ffe0).unwrap(),
            Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: -32
            }
        );
        assert_eq!(decode(0x0000_0000).unwrap(), Instruction::NOP);
    }

    #[test]
    fn reserved_words_error() {
        // SPECIAL with an undefined funct.
        assert!(decode(0x0000_003f).is_err());
        // Primary opcode 0x3f is undefined.
        assert!(decode(0xfc00_0000).is_err());
        // COP0 with an undefined rs field.
        assert!(decode((0x10 << 26) | (0x08 << 21)).is_err());
    }

    #[test]
    fn round_trips_a_representative_sample() {
        let sample = vec![
            Instruction::Add {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Instruction::Beq {
                rs: Reg::A0,
                rt: Reg::ZERO,
                imm: -5,
            },
            Instruction::Jal { target: 0x123456 },
            Instruction::Lui {
                rt: Reg::GP,
                imm: 0xdead,
            },
            Instruction::Mfc0 {
                rt: Reg::K0,
                rd: 14,
            },
            Instruction::Rfe,
            Instruction::Xpcu,
            Instruction::Utlbp {
                rs: Reg::A1,
                op: TlbProtOp::ReadEnable,
            },
            Instruction::Hcall { code: 0x2abcde },
            Instruction::Syscall { code: 42 },
        ];
        for inst in sample {
            assert_eq!(decode(encode(inst)).unwrap(), inst, "{inst}");
        }
    }
}
