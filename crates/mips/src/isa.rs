//! The instruction set: registers, instructions, and disassembly.
//!
//! The simulator implements the MIPS-I integer subset that the paper's
//! mechanisms exercise, plus two extensions proposed in Section 2 of the
//! paper:
//!
//! - [`Instruction::Xpcu`] — exchange the program counter with the
//!   user-exception-target register (the Tera-style return-from-user-handler
//!   primitive).
//! - [`Instruction::Utlbp`] — user-mode modification of the protection bits
//!   of a TLB entry, permitted only when the kernel has set the entry's
//!   *user-modifiable* bit.
//! - [`Instruction::Hcall`] — a simulator-only "host call" escape used by the
//!   simulated kernel to hand control to host-level (Rust) kernel services.
//!   It occupies the unused COP3 opcode and is privileged: executing it in
//!   user mode raises a coprocessor-unusable exception.

use std::fmt;

/// A general-purpose register, `$0` through `$31`.
///
/// `Reg` is a validated newtype: values are always in `0..32`. Construct via
/// [`Reg::new`] or one of the named constants.
///
/// ```
/// use efex_mips::isa::Reg;
/// assert_eq!(Reg::new(8), Some(Reg::T0));
/// assert_eq!(Reg::SP.to_string(), "$sp");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// Function result registers.
    pub const V0: Reg = Reg(2);
    /// Second function result register.
    pub const V1: Reg = Reg(3);
    /// Argument registers.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary $t1.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary $t2.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary $t3.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary $t4.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary $t5.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary $t6.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary $t7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved registers.
    pub const S0: Reg = Reg(16);
    /// Callee-saved register $s1.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register $s2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register $s3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register $s4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register $s5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register $s6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register $s7.
    pub const S7: Reg = Reg(23);
    /// More caller-saved temporaries.
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary $t9.
    pub const T9: Reg = Reg(25);
    /// Reserved for the kernel; the fast exception path uses these as the
    /// scratch registers whose contents the kernel saves for the user
    /// (Section 3.2.1).
    pub const K0: Reg = Reg(26);
    /// Second kernel scratch register (see [`Reg::K0`]).
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its number, returning `None` if `n >= 32`.
    pub fn new(n: u8) -> Option<Reg> {
        (n < 32).then_some(Reg(n))
    }

    /// Creates a register from the low five bits of `n`, as hardware decode
    /// does.
    pub fn from_field(n: u32) -> Reg {
        Reg((n & 0x1f) as u8)
    }

    /// The register number, in `0..32`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// All 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The conventional assembler name, without the leading `$`.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses `"t0"`, `"$t0"`, `"8"`, or `"$8"`.
    pub fn parse(s: &str) -> Option<Reg> {
        let s = s.strip_prefix('$').unwrap_or(s);
        if let Ok(n) = s.parse::<u8>() {
            return Reg::new(n);
        }
        Reg::all().find(|r| r.name() == s)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// A protection operation requested by [`Instruction::Utlbp`], the paper's
/// user-level TLB protection-modification primitive (Section 2.2).
///
/// User code may only *amplify or restrict read and write permission*; it can
/// never change the translation itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TlbProtOp {
    /// Remove write permission (clear the dirty/writable bit).
    WriteProtect,
    /// Grant write permission (set the dirty/writable bit).
    WriteEnable,
    /// Remove all access (clear the valid bit).
    ProtectAll,
    /// Restore read access (set the valid bit).
    ReadEnable,
}

impl TlbProtOp {
    /// Encodes the operation into the 2-bit field used by the instruction.
    pub fn to_field(self) -> u32 {
        match self {
            TlbProtOp::WriteProtect => 0,
            TlbProtOp::WriteEnable => 1,
            TlbProtOp::ProtectAll => 2,
            TlbProtOp::ReadEnable => 3,
        }
    }

    /// Decodes the 2-bit instruction field.
    pub fn from_field(f: u32) -> TlbProtOp {
        match f & 3 {
            0 => TlbProtOp::WriteProtect,
            1 => TlbProtOp::WriteEnable,
            2 => TlbProtOp::ProtectAll,
            _ => TlbProtOp::ReadEnable,
        }
    }
}

impl fmt::Display for TlbProtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TlbProtOp::WriteProtect => "wp",
            TlbProtOp::WriteEnable => "we",
            TlbProtOp::ProtectAll => "pa",
            TlbProtOp::ReadEnable => "re",
        };
        f.write_str(s)
    }
}

/// A decoded machine instruction.
///
/// Field conventions follow the MIPS manuals: `rs`/`rt` are sources, `rd` is
/// the destination of R-type instructions, `imm` is the 16-bit immediate
/// (sign- or zero-extended according to the instruction), `target` is the
/// 26-bit jump field, and `shamt` the 5-bit shift amount.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
// Variant names are the MIPS mnemonics themselves and the field conventions
// are spelled out above; per-variant doc comments would only repeat them.
#[allow(missing_docs)]
pub enum Instruction {
    // --- ALU, R-type ---
    Sll {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Sllv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srlv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srav {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Jr {
        rs: Reg,
    },
    Jalr {
        rd: Reg,
        rs: Reg,
    },
    Syscall {
        code: u32,
    },
    Break {
        code: u32,
    },
    Mfhi {
        rd: Reg,
    },
    Mthi {
        rs: Reg,
    },
    Mflo {
        rd: Reg,
    },
    Mtlo {
        rs: Reg,
    },
    Mult {
        rs: Reg,
        rt: Reg,
    },
    Multu {
        rs: Reg,
        rt: Reg,
    },
    Div {
        rs: Reg,
        rt: Reg,
    },
    Divu {
        rs: Reg,
        rt: Reg,
    },
    Add {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Addu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sub {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Subu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },

    // --- branches ---
    Beq {
        rs: Reg,
        rt: Reg,
        imm: i16,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        imm: i16,
    },
    Blez {
        rs: Reg,
        imm: i16,
    },
    Bgtz {
        rs: Reg,
        imm: i16,
    },
    Bltz {
        rs: Reg,
        imm: i16,
    },
    Bgez {
        rs: Reg,
        imm: i16,
    },
    Bltzal {
        rs: Reg,
        imm: i16,
    },
    Bgezal {
        rs: Reg,
        imm: i16,
    },

    // --- ALU, I-type ---
    Addi {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Addiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Andi {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Lui {
        rt: Reg,
        imm: u16,
    },

    // --- loads and stores ---
    Lb {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Lh {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Lw {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Lbu {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Lhu {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Sb {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Sh {
        rt: Reg,
        base: Reg,
        imm: i16,
    },
    Sw {
        rt: Reg,
        base: Reg,
        imm: i16,
    },

    // --- jumps ---
    J {
        target: u32,
    },
    Jal {
        target: u32,
    },

    // --- system coprocessor ---
    Mfc0 {
        rt: Reg,
        rd: u8,
    },
    Mtc0 {
        rt: Reg,
        rd: u8,
    },
    Tlbr,
    Tlbwi,
    Tlbwr,
    Tlbp,
    Rfe,

    // --- efex architectural extensions (Section 2 of the paper) ---
    /// Exchange PC and the user exception target register, clearing the
    /// in-user-handler flag: the Tera-style return from a user-level handler.
    Xpcu,
    /// User-level TLB protection modification: apply `op` to the protection
    /// bits of the TLB entry translating the virtual address in `rs`.
    /// Requires the entry's user-modifiable bit; raises an address error
    /// otherwise.
    Utlbp {
        rs: Reg,
        op: TlbProtOp,
    },

    // --- simulator escape ---
    /// Privileged host call: stops the simulation loop and yields
    /// `StopReason::HostCall(code)` so host (Rust) kernel services can run.
    Hcall {
        code: u32,
    },
}

impl Instruction {
    /// A canonical no-op (`sll $zero, $zero, 0`).
    pub const NOP: Instruction = Instruction::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Whether the instruction is a branch or jump (and therefore has a
    /// delay slot).
    pub fn is_control_transfer(self) -> bool {
        use Instruction::*;
        matches!(
            self,
            Jr { .. }
                | Jalr { .. }
                | Beq { .. }
                | Bne { .. }
                | Blez { .. }
                | Bgtz { .. }
                | Bltz { .. }
                | Bgez { .. }
                | Bltzal { .. }
                | Bgezal { .. }
                | J { .. }
                | Jal { .. }
        )
    }

    /// Whether the instruction reads or writes memory.
    pub fn is_memory_access(self) -> bool {
        use Instruction::*;
        matches!(
            self,
            Lb { .. }
                | Lh { .. }
                | Lw { .. }
                | Lbu { .. }
                | Lhu { .. }
                | Sb { .. }
                | Sh { .. }
                | Sw { .. }
        )
    }

    /// Whether the instruction is a store.
    pub fn is_store(self) -> bool {
        use Instruction::*;
        matches!(self, Sb { .. } | Sh { .. } | Sw { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Sll { rd, rt, shamt } if rd == Reg::ZERO && rt == Reg::ZERO && shamt == 0 => {
                write!(f, "nop")
            }
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Sllv { rd, rt, rs } => write!(f, "sllv {rd}, {rt}, {rs}"),
            Srlv { rd, rt, rs } => write!(f, "srlv {rd}, {rt}, {rs}"),
            Srav { rd, rt, rs } => write!(f, "srav {rd}, {rt}, {rs}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Syscall { code } => write!(f, "syscall {code}"),
            Break { code } => write!(f, "break {code}"),
            Mfhi { rd } => write!(f, "mfhi {rd}"),
            Mthi { rs } => write!(f, "mthi {rs}"),
            Mflo { rd } => write!(f, "mflo {rd}"),
            Mtlo { rs } => write!(f, "mtlo {rs}"),
            Mult { rs, rt } => write!(f, "mult {rs}, {rt}"),
            Multu { rs, rt } => write!(f, "multu {rs}, {rt}"),
            Div { rs, rt } => write!(f, "div {rs}, {rt}"),
            Divu { rs, rt } => write!(f, "divu {rs}, {rt}"),
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Addu { rd, rs, rt } => write!(f, "addu {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            Subu { rd, rs, rt } => write!(f, "subu {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Beq { rs, rt, imm } => write!(f, "beq {rs}, {rt}, {imm}"),
            Bne { rs, rt, imm } => write!(f, "bne {rs}, {rt}, {imm}"),
            Blez { rs, imm } => write!(f, "blez {rs}, {imm}"),
            Bgtz { rs, imm } => write!(f, "bgtz {rs}, {imm}"),
            Bltz { rs, imm } => write!(f, "bltz {rs}, {imm}"),
            Bgez { rs, imm } => write!(f, "bgez {rs}, {imm}"),
            Bltzal { rs, imm } => write!(f, "bltzal {rs}, {imm}"),
            Bgezal { rs, imm } => write!(f, "bgezal {rs}, {imm}"),
            Addi { rt, rs, imm } => write!(f, "addi {rt}, {rs}, {imm}"),
            Addiu { rt, rs, imm } => write!(f, "addiu {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Sltiu { rt, rs, imm } => write!(f, "sltiu {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm:#x}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Lb { rt, base, imm } => write!(f, "lb {rt}, {imm}({base})"),
            Lh { rt, base, imm } => write!(f, "lh {rt}, {imm}({base})"),
            Lw { rt, base, imm } => write!(f, "lw {rt}, {imm}({base})"),
            Lbu { rt, base, imm } => write!(f, "lbu {rt}, {imm}({base})"),
            Lhu { rt, base, imm } => write!(f, "lhu {rt}, {imm}({base})"),
            Sb { rt, base, imm } => write!(f, "sb {rt}, {imm}({base})"),
            Sh { rt, base, imm } => write!(f, "sh {rt}, {imm}({base})"),
            Sw { rt, base, imm } => write!(f, "sw {rt}, {imm}({base})"),
            J { target } => write!(f, "j {:#x}", target << 2),
            Jal { target } => write!(f, "jal {:#x}", target << 2),
            Mfc0 { rt, rd } => write!(f, "mfc0 {rt}, ${rd}"),
            Mtc0 { rt, rd } => write!(f, "mtc0 {rt}, ${rd}"),
            Tlbr => write!(f, "tlbr"),
            Tlbwi => write!(f, "tlbwi"),
            Tlbwr => write!(f, "tlbwr"),
            Tlbp => write!(f, "tlbp"),
            Rfe => write!(f, "rfe"),
            Xpcu => write!(f, "xpcu"),
            Utlbp { rs, op } => write!(f, "utlbp {rs}, {op}"),
            Hcall { code } => write!(f, "hcall {code}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_new_rejects_out_of_range() {
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(31), Some(Reg::RA));
    }

    #[test]
    fn reg_from_field_masks() {
        assert_eq!(Reg::from_field(0x3f), Reg::RA);
        assert_eq!(Reg::from_field(8), Reg::T0);
    }

    #[test]
    fn reg_parse_accepts_all_forms() {
        assert_eq!(Reg::parse("$t0"), Some(Reg::T0));
        assert_eq!(Reg::parse("t0"), Some(Reg::T0));
        assert_eq!(Reg::parse("$8"), Some(Reg::T0));
        assert_eq!(Reg::parse("8"), Some(Reg::T0));
        assert_eq!(Reg::parse("$nope"), None);
        assert_eq!(Reg::parse("$32"), None);
    }

    #[test]
    fn reg_names_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::parse(r.name()), Some(r), "{r}");
        }
    }

    #[test]
    fn nop_displays_as_nop() {
        assert_eq!(Instruction::NOP.to_string(), "nop");
    }

    #[test]
    fn display_formats_loads_with_offset_syntax() {
        let i = Instruction::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            imm: -4,
        };
        assert_eq!(i.to_string(), "lw $t0, -4($sp)");
    }

    #[test]
    fn control_transfer_classification() {
        assert!(Instruction::J { target: 0 }.is_control_transfer());
        assert!(Instruction::Jr { rs: Reg::RA }.is_control_transfer());
        assert!(!Instruction::NOP.is_control_transfer());
        assert!(!Instruction::Syscall { code: 0 }.is_control_transfer());
    }

    #[test]
    fn memory_access_classification() {
        let lw = Instruction::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            imm: 0,
        };
        let sw = Instruction::Sw {
            rt: Reg::T0,
            base: Reg::SP,
            imm: 0,
        };
        assert!(lw.is_memory_access() && !lw.is_store());
        assert!(sw.is_memory_access() && sw.is_store());
        assert!(!Instruction::NOP.is_memory_access());
    }

    #[test]
    fn tlb_prot_op_field_round_trip() {
        for op in [
            TlbProtOp::WriteProtect,
            TlbProtOp::WriteEnable,
            TlbProtOp::ProtectAll,
            TlbProtOp::ReadEnable,
        ] {
            assert_eq!(TlbProtOp::from_field(op.to_field()), op);
        }
    }
}
