//! System coprocessor (CP0) state.
//!
//! Implements the R3000 registers the simulated kernel needs — Status,
//! Cause, EPC, BadVaddr, EntryHi/EntryLo, Index/Random, Context — plus the
//! paper's proposed user-exception extension (Section 2):
//!
//! - **UXT** (user exception target): loaded by user software with its
//!   handler address; the hardware *exchanges* PC and UXT on a user-vectored
//!   exception, exactly as in the Tera machine (Section 2.1).
//! - **UXC** (user exception condition): loaded by hardware with the cause
//!   and bad address of a user-vectored exception.
//! - **UXM** (user exception mask): which synchronous exceptions are
//!   delivered directly to user mode.
//! - A *user-exception-active* flag in the status word, so that recursive
//!   exceptions fall back to the kernel (Section 2.2).

use crate::exception::ExcCode;

/// CP0 register numbers (the `rd` field of `mfc0`/`mtc0`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Cp0Reg {
    /// TLB index for `tlbwi`/`tlbr`.
    Index = 0,
    /// Pseudo-random TLB index for `tlbwr`.
    Random = 1,
    /// TLB entry low half (PFN + protection bits).
    EntryLo = 2,
    /// Page-table context helper (kernel convention).
    Context = 4,
    /// Faulting virtual address.
    BadVaddr = 8,
    /// TLB entry high half (VPN + ASID).
    EntryHi = 10,
    /// Processor status word.
    Status = 12,
    /// Exception cause.
    Cause = 13,
    /// Exception program counter.
    Epc = 14,
    /// Processor identity.
    Prid = 15,
    /// efex extension: user exception target.
    Uxt = 24,
    /// efex extension: user exception condition.
    Uxc = 25,
    /// efex extension: user exception mask.
    Uxm = 26,
}

impl Cp0Reg {
    /// Decodes an `mfc0`/`mtc0` register field.
    pub fn from_number(n: u8) -> Option<Cp0Reg> {
        use Cp0Reg::*;
        Some(match n {
            0 => Index,
            1 => Random,
            2 => EntryLo,
            4 => Context,
            8 => BadVaddr,
            10 => EntryHi,
            12 => Status,
            13 => Cause,
            14 => Epc,
            15 => Prid,
            24 => Uxt,
            25 => Uxc,
            26 => Uxm,
            _ => return None,
        })
    }
}

/// Status register bit positions (R3000 layout).
pub mod status {
    /// Current interrupt enable.
    pub const IEC: u32 = 1 << 0;
    /// Current mode: 1 = user, 0 = kernel.
    pub const KUC: u32 = 1 << 1;
    /// Previous interrupt enable.
    pub const IEP: u32 = 1 << 2;
    /// Previous mode.
    pub const KUP: u32 = 1 << 3;
    /// Old interrupt enable.
    pub const IEO: u32 = 1 << 4;
    /// Old mode.
    pub const KUO: u32 = 1 << 5;
    /// efex extension: user-level exception vectoring enabled.
    pub const UXE: u32 = 1 << 16;
    /// efex extension: a user-level handler is currently active
    /// (set by hardware on user vectoring, cleared by `xpcu`).
    pub const UXA: u32 = 1 << 17;
    /// Mask of the six-bit mode/interrupt stack.
    pub const KU_IE_STACK: u32 = 0x3f;
}

/// Cause register fields.
pub mod cause {
    /// Exception code field shift.
    pub const EXC_SHIFT: u32 = 2;
    /// Exception code field mask (applied after shifting).
    pub const EXC_MASK: u32 = 0x1f;
    /// Branch-delay bit: the exception occurred in a delay slot and EPC
    /// points at the branch.
    pub const BD: u32 = 1 << 31;
}

/// The system coprocessor.
#[derive(Clone, Debug, Default)]
pub struct Cp0 {
    /// TLB index register (`tlbwi`/`tlbp` target slot).
    pub index: u32,
    /// TLB random-replacement register.
    pub random: u32,
    /// Low half of a TLB entry (PFN and protection bits).
    pub entry_lo: u32,
    /// Context register: kernel PTE-base plus faulting VPN.
    pub context: u32,
    /// The virtual address of the last addressing fault.
    pub bad_vaddr: u32,
    /// High half of a TLB entry (VPN and ASID).
    pub entry_hi: u32,
    /// Processor status: mode/interrupt stack and the efex extension bits
    /// (see [`status`]).
    pub status: u32,
    /// Exception cause (see [`cause`]).
    pub cause: u32,
    /// Exception program counter: where to resume.
    pub epc: u32,
    /// User exception target (paper extension).
    pub uxt: u32,
    /// User exception condition (paper extension).
    pub uxc: u32,
    /// User exception mask (paper extension): bit *n* set means `ExcCode`
    /// *n* is delivered directly to user level.
    pub uxm: u32,
}

impl Cp0 {
    /// A freshly reset coprocessor: kernel mode, interrupts disabled.
    pub fn new() -> Cp0 {
        Cp0::default()
    }

    /// Reads a register by number; unknown registers read as zero, matching
    /// the forgiving behaviour real kernels rely on.
    pub fn read(&self, reg: u8) -> u32 {
        match Cp0Reg::from_number(reg) {
            Some(Cp0Reg::Index) => self.index,
            Some(Cp0Reg::Random) => self.random,
            Some(Cp0Reg::EntryLo) => self.entry_lo,
            Some(Cp0Reg::Context) => self.context,
            Some(Cp0Reg::BadVaddr) => self.bad_vaddr,
            Some(Cp0Reg::EntryHi) => self.entry_hi,
            Some(Cp0Reg::Status) => self.status,
            Some(Cp0Reg::Cause) => self.cause,
            Some(Cp0Reg::Epc) => self.epc,
            Some(Cp0Reg::Prid) => 0x0000_0230, // R3000A-ish
            Some(Cp0Reg::Uxt) => self.uxt,
            Some(Cp0Reg::Uxc) => self.uxc,
            Some(Cp0Reg::Uxm) => self.uxm,
            None => 0,
        }
    }

    /// Writes a register by number. Read-only registers (BadVaddr, Random,
    /// PRId) and unknown numbers are ignored.
    pub fn write(&mut self, reg: u8, value: u32) {
        match Cp0Reg::from_number(reg) {
            Some(Cp0Reg::Index) => self.index = value & 0x3f00, // index in bits 13..8
            Some(Cp0Reg::EntryLo) => self.entry_lo = value,
            Some(Cp0Reg::Context) => self.context = value,
            Some(Cp0Reg::EntryHi) => self.entry_hi = value,
            Some(Cp0Reg::Status) => self.status = value,
            Some(Cp0Reg::Cause) => {
                // Only the software interrupt bits are writable on a real
                // R3000; we allow none, and so ignore the write.
            }
            Some(Cp0Reg::Epc) => self.epc = value,
            Some(Cp0Reg::Uxt) => self.uxt = value,
            Some(Cp0Reg::Uxc) => self.uxc = value,
            Some(Cp0Reg::Uxm) => self.uxm = value,
            _ => {}
        }
    }

    /// Whether the processor is currently in user mode.
    pub fn user_mode(&self) -> bool {
        self.status & status::KUC != 0
    }

    /// Whether hardware user-level exception vectoring is enabled and not
    /// already active.
    pub fn user_vectoring_available(&self) -> bool {
        self.status & status::UXE != 0 && self.status & status::UXA == 0
    }

    /// Whether the user exception mask enables direct delivery of `code`.
    pub fn user_mask_allows(&self, code: ExcCode) -> bool {
        self.uxm & (1 << code.code()) != 0
    }

    /// Hardware exception entry: pushes the mode/interrupt stack (entering
    /// kernel mode with interrupts disabled), records the cause, EPC and
    /// bad address.
    pub fn enter_exception(&mut self, code: ExcCode, epc: u32, bad_vaddr: Option<u32>, bd: bool) {
        let stack = self.status & status::KU_IE_STACK;
        self.status = (self.status & !status::KU_IE_STACK) | ((stack << 2) & status::KU_IE_STACK);
        self.cause = (code.code() & cause::EXC_MASK) << cause::EXC_SHIFT;
        if bd {
            self.cause |= cause::BD;
        }
        self.epc = epc;
        if let Some(v) = bad_vaddr {
            self.bad_vaddr = v;
            // EntryHi.VPN latches the faulting page on TLB exceptions; doing
            // it unconditionally is harmless and simplifies the kernel.
            self.entry_hi = (v & 0xffff_f000) | (self.entry_hi & 0xfff);
            self.context = (self.context & 0xffe0_0000) | ((v >> 10) & 0x001f_fffc);
        }
        self.random = self.random.wrapping_add(7) % 56;
    }

    /// `rfe`: pops the mode/interrupt stack.
    pub fn rfe(&mut self) {
        let stack = self.status & status::KU_IE_STACK;
        self.status = (self.status & !0x0f) | ((stack >> 2) & 0x0f);
    }

    /// The exception code currently latched in `Cause`.
    pub fn exc_code(&self) -> Option<ExcCode> {
        ExcCode::from_code((self.cause >> cause::EXC_SHIFT) & cause::EXC_MASK)
    }

    /// Whether `Cause.BD` is set (faulting instruction was in a delay slot).
    pub fn cause_bd(&self) -> bool {
        self.cause & cause::BD != 0
    }

    /// Builds the UXC (user exception condition) value delivered on
    /// hardware user-level vectoring: cause code in the low bits, delay-slot
    /// flag in bit 31 — mirroring `Cause` so user handlers can share decode
    /// logic with the kernel.
    pub fn make_uxc(code: ExcCode, bd: bool) -> u32 {
        let mut v = (code.code() & cause::EXC_MASK) << cause::EXC_SHIFT;
        if bd {
            v |= cause::BD;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_entry_pushes_mode_stack() {
        let mut cp0 = Cp0::new();
        cp0.status = status::KUC | status::IEC; // user mode, interrupts on
        cp0.enter_exception(ExcCode::Breakpoint, 0x1000, None, false);
        assert!(!cp0.user_mode(), "exception entry must enter kernel mode");
        assert_eq!(cp0.status & status::KUP, status::KUP);
        assert_eq!(cp0.status & status::IEP, status::IEP);
        assert_eq!(cp0.epc, 0x1000);
        assert_eq!(cp0.exc_code(), Some(ExcCode::Breakpoint));
    }

    #[test]
    fn rfe_pops_mode_stack() {
        let mut cp0 = Cp0::new();
        cp0.status = status::KUC | status::IEC;
        cp0.enter_exception(ExcCode::Syscall, 0x2000, None, false);
        cp0.rfe();
        assert!(cp0.user_mode());
        assert_eq!(cp0.status & status::IEC, status::IEC);
    }

    #[test]
    fn double_exception_preserves_old_mode() {
        let mut cp0 = Cp0::new();
        cp0.status = status::KUC | status::IEC;
        cp0.enter_exception(ExcCode::Syscall, 0x2000, None, false);
        cp0.enter_exception(ExcCode::TlbLoad, 0x3000, Some(0x4000), false);
        // Two pops restore the original user mode.
        cp0.rfe();
        cp0.rfe();
        assert!(cp0.user_mode());
    }

    #[test]
    fn bad_vaddr_latches_entry_hi_vpn() {
        let mut cp0 = Cp0::new();
        cp0.entry_hi = 0x0000_00c0; // some ASID
        cp0.enter_exception(ExcCode::TlbStore, 0x1000, Some(0x1234_5678), false);
        assert_eq!(cp0.bad_vaddr, 0x1234_5678);
        assert_eq!(cp0.entry_hi & 0xffff_f000, 0x1234_5000);
        assert_eq!(cp0.entry_hi & 0xfff, 0x0c0, "ASID must be preserved");
    }

    #[test]
    fn bd_flag_recorded_in_cause() {
        let mut cp0 = Cp0::new();
        cp0.enter_exception(ExcCode::AddrErrLoad, 0x1000, Some(2), true);
        assert!(cp0.cause_bd());
    }

    #[test]
    fn user_mask_gating() {
        let mut cp0 = Cp0::new();
        cp0.uxm = 1 << ExcCode::Breakpoint.code();
        assert!(cp0.user_mask_allows(ExcCode::Breakpoint));
        assert!(!cp0.user_mask_allows(ExcCode::Overflow));
    }

    #[test]
    fn user_vectoring_needs_uxe_and_not_uxa() {
        let mut cp0 = Cp0::new();
        assert!(!cp0.user_vectoring_available());
        cp0.status |= status::UXE;
        assert!(cp0.user_vectoring_available());
        cp0.status |= status::UXA;
        assert!(!cp0.user_vectoring_available());
    }

    #[test]
    fn read_write_round_trip() {
        let mut cp0 = Cp0::new();
        cp0.write(Cp0Reg::Uxt as u8, 0xdead_beec);
        assert_eq!(cp0.read(Cp0Reg::Uxt as u8), 0xdead_beec);
        cp0.write(Cp0Reg::Epc as u8, 0x42);
        assert_eq!(cp0.read(Cp0Reg::Epc as u8), 0x42);
        // BadVaddr is read-only.
        cp0.bad_vaddr = 7;
        cp0.write(Cp0Reg::BadVaddr as u8, 0);
        assert_eq!(cp0.read(Cp0Reg::BadVaddr as u8), 7);
    }
}
