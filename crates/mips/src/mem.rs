//! Flat physical memory.
//!
//! Accesses are by physical address; translation happens in
//! [`crate::machine`]. Out-of-range accesses return [`BusError`], which the
//! machine turns into a bus-error exception.

use std::error::Error;
use std::fmt;

/// Access past the end of physical memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusError {
    /// The offending physical address.
    pub paddr: u32,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus error at physical address {:#010x}", self.paddr)
    }
}

impl Error for BusError {}

/// Byte-addressable physical memory, little-endian like the DECstation's
/// R3000 configuration.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed physical memory.
    pub fn new(size: usize) -> Memory {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, paddr: u32, len: u32) -> Result<usize, BusError> {
        let end = paddr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            return Err(BusError { paddr });
        }
        Ok(paddr as usize)
    }

    /// Reads one byte.
    pub fn read_u8(&self, paddr: u32) -> Result<u8, BusError> {
        let i = self.check(paddr, 1)?;
        Ok(self.bytes[i])
    }

    /// Reads a halfword. The address must already be aligned (the machine
    /// checks alignment before translation).
    pub fn read_u16(&self, paddr: u32) -> Result<u16, BusError> {
        let i = self.check(paddr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a word.
    pub fn read_u32(&self, paddr: u32) -> Result<u32, BusError> {
        let i = self.check(paddr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, paddr: u32, v: u8) -> Result<(), BusError> {
        let i = self.check(paddr, 1)?;
        self.bytes[i] = v;
        Ok(())
    }

    /// Writes a halfword.
    pub fn write_u16(&mut self, paddr: u32, v: u16) -> Result<(), BusError> {
        let i = self.check(paddr, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a word.
    pub fn write_u32(&mut self, paddr: u32, v: u32) -> Result<(), BusError> {
        let i = self.check(paddr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies a slice into memory.
    pub fn write_bytes(&mut self, paddr: u32, data: &[u8]) -> Result<(), BusError> {
        let i = self.check(paddr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes.
    pub fn read_bytes(&self, paddr: u32, len: usize) -> Result<&[u8], BusError> {
        let i = self.check(paddr, len as u32)?;
        Ok(&self.bytes[i..i + len])
    }

    /// Zero-fills a range.
    pub fn zero(&mut self, paddr: u32, len: usize) -> Result<(), BusError> {
        let i = self.check(paddr, len as u32)?;
        self.bytes[i..i + len].fill(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip_little_endian() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0x1234_5678).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u8(0).unwrap(), 0x78);
        assert_eq!(m.read_u8(3).unwrap(), 0x12);
        assert_eq!(m.read_u16(2).unwrap(), 0x1234);
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let mut m = Memory::new(8);
        assert_eq!(m.read_u32(8).unwrap_err(), BusError { paddr: 8 });
        assert_eq!(m.read_u32(6).unwrap_err(), BusError { paddr: 6 });
        assert!(m.write_u8(7, 1).is_ok());
        assert!(m.write_u16(7, 1).is_err());
    }

    #[test]
    fn bulk_copy_and_zero() {
        let mut m = Memory::new(16);
        m.write_bytes(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), &[1, 2, 3, 4]);
        m.zero(5, 2).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), &[1, 0, 0, 4]);
    }
}
