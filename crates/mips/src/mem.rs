//! Flat physical memory.
//!
//! Accesses are by physical address; translation happens in
//! [`crate::machine`]. Out-of-range accesses return [`BusError`], which the
//! machine turns into a bus-error exception.

use std::error::Error;
use std::fmt;

/// Access past the end of physical memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusError {
    /// The offending physical address.
    pub paddr: u32,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus error at physical address {:#010x}", self.paddr)
    }
}

impl Error for BusError {}

/// Page shift for the per-page write version counters (4 KB, matching
/// [`crate::tlb::PAGE_SIZE`]).
const PAGE_SHIFT: u32 = 12;

/// Byte-addressable physical memory, little-endian like the DECstation's
/// R3000 configuration.
///
/// Every write bumps a per-page **version counter** ([`Memory::page_version`]).
/// The decode cache in [`crate::machine::Machine`] tags cached instructions
/// with the version of the page they were fetched from, so any store to
/// mapped text — guest stores, host `mem_mut()` writes, image loads —
/// invalidates the affected cache lines without explicit hooks.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    page_versions: Vec<u32>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed physical memory.
    pub fn new(size: usize) -> Memory {
        let pages = size.div_ceil(1 << PAGE_SHIFT);
        Memory {
            bytes: vec![0; size],
            page_versions: vec![0; pages],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// The write-version of the page containing `paddr`. Out-of-range
    /// addresses report version 0 (they hold no cacheable text).
    pub fn page_version(&self, paddr: u32) -> u32 {
        self.page_versions
            .get((paddr >> PAGE_SHIFT) as usize)
            .copied()
            .unwrap_or(0)
    }

    fn bump_page(&mut self, paddr: u32) {
        let page = (paddr >> PAGE_SHIFT) as usize;
        if let Some(v) = self.page_versions.get_mut(page) {
            *v = v.wrapping_add(1);
        }
    }

    fn bump_range(&mut self, paddr: u32, len: usize) {
        if len == 0 {
            return;
        }
        let first = (paddr >> PAGE_SHIFT) as usize;
        let last = (((paddr as usize + len - 1) >> PAGE_SHIFT) + 1).min(self.page_versions.len());
        for v in &mut self.page_versions[first..last] {
            *v = v.wrapping_add(1);
        }
    }

    fn check(&self, paddr: u32, len: u32) -> Result<usize, BusError> {
        let end = paddr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            return Err(BusError { paddr });
        }
        Ok(paddr as usize)
    }

    /// Reads one byte.
    pub fn read_u8(&self, paddr: u32) -> Result<u8, BusError> {
        let i = self.check(paddr, 1)?;
        Ok(self.bytes[i])
    }

    /// Reads a halfword. The address must already be aligned (the machine
    /// checks alignment before translation).
    pub fn read_u16(&self, paddr: u32) -> Result<u16, BusError> {
        let i = self.check(paddr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a word.
    pub fn read_u32(&self, paddr: u32) -> Result<u32, BusError> {
        let i = self.check(paddr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, paddr: u32, v: u8) -> Result<(), BusError> {
        let i = self.check(paddr, 1)?;
        self.bytes[i] = v;
        self.bump_page(paddr);
        Ok(())
    }

    /// Writes a halfword.
    pub fn write_u16(&mut self, paddr: u32, v: u16) -> Result<(), BusError> {
        let i = self.check(paddr, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        self.bump_page(paddr);
        Ok(())
    }

    /// Writes a word.
    pub fn write_u32(&mut self, paddr: u32, v: u32) -> Result<(), BusError> {
        let i = self.check(paddr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        self.bump_page(paddr);
        Ok(())
    }

    /// Copies a slice into memory.
    pub fn write_bytes(&mut self, paddr: u32, data: &[u8]) -> Result<(), BusError> {
        let i = self.check(paddr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        self.bump_range(paddr, data.len());
        Ok(())
    }

    /// Reads `len` bytes.
    pub fn read_bytes(&self, paddr: u32, len: usize) -> Result<&[u8], BusError> {
        let i = self.check(paddr, len as u32)?;
        Ok(&self.bytes[i..i + len])
    }

    /// Zero-fills a range.
    pub fn zero(&mut self, paddr: u32, len: usize) -> Result<(), BusError> {
        let i = self.check(paddr, len as u32)?;
        self.bytes[i..i + len].fill(0);
        self.bump_range(paddr, len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip_little_endian() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0x1234_5678).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u8(0).unwrap(), 0x78);
        assert_eq!(m.read_u8(3).unwrap(), 0x12);
        assert_eq!(m.read_u16(2).unwrap(), 0x1234);
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let mut m = Memory::new(8);
        assert_eq!(m.read_u32(8).unwrap_err(), BusError { paddr: 8 });
        assert_eq!(m.read_u32(6).unwrap_err(), BusError { paddr: 6 });
        assert!(m.write_u8(7, 1).is_ok());
        assert!(m.write_u16(7, 1).is_err());
    }

    #[test]
    fn page_versions_track_every_write_path() {
        let mut m = Memory::new(3 << 12);
        assert_eq!(m.page_version(0), 0);
        m.write_u8(0x10, 1).unwrap();
        m.write_u16(0x20, 2).unwrap();
        m.write_u32(0x30, 3).unwrap();
        assert_eq!(m.page_version(0xfff), 3, "same page, three writes");
        assert_eq!(m.page_version(0x1000), 0, "neighbour untouched");
        // A spanning copy bumps every page it touches.
        m.write_bytes(0x0ffe, &[0; 4]).unwrap();
        assert_eq!(m.page_version(0), 4);
        assert_eq!(m.page_version(0x1000), 1);
        m.zero(0x1000, 2 << 12).unwrap();
        assert_eq!(m.page_version(0x1000), 2);
        assert_eq!(m.page_version(0x2000), 1);
        // Reads never bump; out-of-range queries report 0.
        m.read_u32(0).unwrap();
        assert_eq!(m.page_version(0), 4);
        assert_eq!(m.page_version(0x4000_0000), 0);
    }

    #[test]
    fn bulk_copy_and_zero() {
        let mut m = Memory::new(16);
        m.write_bytes(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), &[1, 2, 3, 4]);
        m.zero(5, 2).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), &[1, 0, 0, 4]);
    }
}
