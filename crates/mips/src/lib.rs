//! # efex-mips — a MIPS-I-subset machine simulator
//!
//! This crate implements the hardware substrate for the efex reproduction of
//! Thekkath & Levy, *Hardware and Software Support for Efficient Exception
//! Handling* (ASPLOS 1994): an instruction-level simulator of a MIPS
//! R3000-class processor, the machine on which the paper's mechanisms were
//! built.
//!
//! The crate provides:
//!
//! - [`isa`] — the instruction set: a typed [`isa::Instruction`] enum,
//!   register names, and disassembly via `Display`.
//! - [`encode`] / [`decode`] — binary instruction encoding and decoding.
//! - [`asm`] — a two-pass assembler with labels, directives, and the usual
//!   MIPS pseudo-instructions (`li`, `la`, `move`, `b`, …).
//! - [`cp0`] — system coprocessor state (Status, Cause, EPC, BadVaddr, …)
//!   plus the paper's proposed user-exception extension registers.
//! - [`tlb`] — a 64-entry tagged TLB whose entries carry the paper's extra
//!   *user-modifiable* protection bit (Section 2.2).
//! - [`mem`] — flat physical memory.
//! - [`machine`] — the interpreter: fetch/decode/execute with branch delay
//!   slots, precise exceptions, address translation, cycle accounting, and
//!   an optional hardware user-level exception vectoring mode (the Tera-style
//!   PC/exception-target exchange of Section 2.1).
//! - [`cycles`] — the cycle cost model and its calibration anchors.
//! - [`sem`] — pure instruction semantics (ALU folding, branch conditions)
//!   shared between the interpreter and the static analyzers in
//!   `efex-verify`.
//! - [`profile`] — per-region instruction attribution used to regenerate the
//!   paper's Table 3 (kernel handler instruction breakdown).
//!
//! # Example
//!
//! Assemble and run a tiny program:
//!
//! ```
//! use efex_mips::asm::assemble;
//! use efex_mips::machine::{Machine, StopReason};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble(
//!     r#"
//!     .org 0x80001000
//!     start:
//!         li   $t0, 21
//!         add  $t1, $t0, $t0
//!         hcall 0            # return control to the host
//!     "#,
//! )?;
//! let mut m = Machine::new(4 * 1024 * 1024);
//! m.load_image(&prog)?;
//! m.set_pc(prog.entry());
//! assert_eq!(m.run(1000)?, StopReason::HostCall(0));
//! assert_eq!(m.cpu().reg(efex_mips::isa::Reg::T1), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cp0;
pub mod cycles;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exception;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod profile;
pub mod sem;
pub mod snapshot;
pub mod tlb;
pub mod trace;

pub use exception::ExcCode;
pub use isa::{Instruction, Reg};
pub use machine::{with_machine_config, ExecEngine, Machine, MachineConfig, StopReason};
pub use profile::{Profiler, Region, RegionCounts, RegionSpan};
