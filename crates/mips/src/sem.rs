//! Pure instruction semantics, factored out of the interpreter for reuse by
//! static analyzers.
//!
//! The symbolic delivery-path explorer in `efex-verify` folds an instruction
//! to a concrete result whenever all of its operands are known. Rather than
//! re-implementing (and inevitably skewing from) the interpreter's
//! arithmetic, the foldable fragment lives here as pure functions over `u32`
//! operand values:
//!
//! - [`alu_result`] — the result an ALU instruction writes, or `None` when
//!   the instruction is not a foldable ALU operation (loads, stores,
//!   control transfers, CP0 moves, `mult`/`div` pairs).
//! - [`branch_taken`] — whether a conditional branch is taken.
//! - [`alu_overflows`] — whether a trapping add/sub raises `Overflow`.
//!
//! The functions are *total* over their domain: they never panic, matching
//! the hardware they model.

use crate::isa::Instruction;

/// The concrete result written by a foldable ALU instruction, given the
/// values of its source registers.
///
/// `rs` and `rt` are the values of the instruction's `rs`/`rt` (or
/// `base`/`rt`) register fields; unused operands are ignored. Returns `None`
/// for instructions that are not simple register-writing ALU operations
/// (memory accesses, branches, `mult`/`div` — which write HI/LO — CP0 moves,
/// and system instructions), and for trapping `add`/`addi`/`sub` *when the
/// operation would overflow* (the instruction then writes nothing and raises
/// [`crate::exception::ExcCode::Overflow`]).
///
/// ```
/// use efex_mips::isa::{Instruction, Reg};
/// use efex_mips::sem::alu_result;
/// let i = Instruction::Addiu { rt: Reg::T0, rs: Reg::T1, imm: -4 };
/// assert_eq!(alu_result(i, 100, 0), Some(96));
/// ```
pub fn alu_result(inst: Instruction, rs: u32, rt: u32) -> Option<u32> {
    use Instruction::*;
    Some(match inst {
        Sll { shamt, .. } => rt << shamt,
        Srl { shamt, .. } => rt >> shamt,
        Sra { shamt, .. } => ((rt as i32) >> shamt) as u32,
        Sllv { .. } => rt << (rs & 31),
        Srlv { .. } => rt >> (rs & 31),
        Srav { .. } => ((rt as i32) >> (rs & 31)) as u32,
        Add { .. } => (rs as i32).checked_add(rt as i32)? as u32,
        Addu { .. } => rs.wrapping_add(rt),
        Sub { .. } => (rs as i32).checked_sub(rt as i32)? as u32,
        Subu { .. } => rs.wrapping_sub(rt),
        And { .. } => rs & rt,
        Or { .. } => rs | rt,
        Xor { .. } => rs ^ rt,
        Nor { .. } => !(rs | rt),
        Slt { .. } => ((rs as i32) < (rt as i32)) as u32,
        Sltu { .. } => (rs < rt) as u32,
        Addi { imm, .. } => (rs as i32).checked_add(imm as i32)? as u32,
        Addiu { imm, .. } => rs.wrapping_add(imm as i32 as u32),
        Slti { imm, .. } => ((rs as i32) < (imm as i32)) as u32,
        Sltiu { imm, .. } => (rs < (imm as i32 as u32)) as u32,
        Andi { imm, .. } => rs & (imm as u32),
        Ori { imm, .. } => rs | (imm as u32),
        Xori { imm, .. } => rs ^ (imm as u32),
        Lui { imm, .. } => (imm as u32) << 16,
        _ => return None,
    })
}

/// Whether a trapping `add`/`addi`/`sub` overflows (and therefore raises an
/// exception instead of writing its destination) for the given operand
/// values. Always `false` for non-trapping instructions.
pub fn alu_overflows(inst: Instruction, rs: u32, rt: u32) -> bool {
    use Instruction::*;
    match inst {
        Add { .. } => (rs as i32).checked_add(rt as i32).is_none(),
        Sub { .. } => (rs as i32).checked_sub(rt as i32).is_none(),
        Addi { imm, .. } => (rs as i32).checked_add(imm as i32).is_none(),
        _ => false,
    }
}

/// Whether a conditional branch is taken, given its source register values.
///
/// Returns `None` for instructions that are not conditional branches
/// (unconditional jumps transfer control regardless; everything else falls
/// through).
pub fn branch_taken(inst: Instruction, rs: u32, rt: u32) -> Option<bool> {
    use Instruction::*;
    Some(match inst {
        Beq { .. } => rs == rt,
        Bne { .. } => rs != rt,
        Blez { .. } => (rs as i32) <= 0,
        Bgtz { .. } => (rs as i32) > 0,
        Bltz { .. } | Bltzal { .. } => (rs as i32) < 0,
        Bgez { .. } | Bgezal { .. } => (rs as i32) >= 0,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn r3(_: ()) -> (Reg, Reg, Reg) {
        (Reg::T0, Reg::T1, Reg::T2)
    }

    #[test]
    fn alu_matches_two_complement_semantics() {
        let (rd, rs, rt) = r3(());
        assert_eq!(
            alu_result(Instruction::Addu { rd, rs, rt }, u32::MAX, 1),
            Some(0)
        );
        assert_eq!(
            alu_result(Instruction::Sub { rd, rs, rt }, 5, 7),
            Some((-2i32) as u32)
        );
        assert_eq!(
            alu_result(Instruction::Sra { rd, rt, shamt: 4 }, 0, 0x8000_0000),
            Some(0xf800_0000)
        );
        assert_eq!(alu_result(Instruction::Sltu { rd, rs, rt }, 1, 2), Some(1));
        assert_eq!(
            alu_result(
                Instruction::Slti {
                    rt: rd,
                    rs,
                    imm: -1
                },
                u32::MAX,
                0
            ),
            Some(0)
        );
        assert_eq!(
            alu_result(
                Instruction::Lui {
                    rt: rd,
                    imm: 0x8000
                },
                0,
                0
            ),
            Some(0x8000_0000)
        );
    }

    #[test]
    fn trapping_forms_refuse_to_fold_on_overflow() {
        let (rd, rs, rt) = r3(());
        assert_eq!(
            alu_result(Instruction::Add { rd, rs, rt }, 0x7fff_ffff, 1),
            None
        );
        assert!(alu_overflows(
            Instruction::Add { rd, rs, rt },
            0x7fff_ffff,
            1
        ));
        assert!(!alu_overflows(
            Instruction::Addu { rd, rs, rt },
            0x7fff_ffff,
            1
        ));
        assert!(alu_overflows(
            Instruction::Addi { rt, rs, imm: -1 },
            0x8000_0000,
            0
        ));
    }

    #[test]
    fn branch_conditions() {
        let (_, rs, rt) = r3(());
        assert_eq!(
            branch_taken(Instruction::Beq { rs, rt, imm: 1 }, 3, 3),
            Some(true)
        );
        assert_eq!(
            branch_taken(Instruction::Bne { rs, rt, imm: 1 }, 3, 3),
            Some(false)
        );
        assert_eq!(
            branch_taken(Instruction::Bltz { rs, imm: 1 }, 0x8000_0000, 0),
            Some(true)
        );
        assert_eq!(
            branch_taken(Instruction::Bgez { rs, imm: 1 }, 0, 0),
            Some(true)
        );
        assert_eq!(branch_taken(Instruction::J { target: 0 }, 0, 0), None);
    }

    #[test]
    fn non_alu_instructions_do_not_fold() {
        assert_eq!(
            alu_result(
                Instruction::Lw {
                    rt: Reg::T0,
                    base: Reg::SP,
                    imm: 0
                },
                0,
                0
            ),
            None
        );
        assert_eq!(alu_result(Instruction::Rfe, 0, 0), None);
        assert_eq!(
            alu_result(
                Instruction::Mult {
                    rs: Reg::T0,
                    rt: Reg::T1
                },
                2,
                3
            ),
            None
        );
    }
}
