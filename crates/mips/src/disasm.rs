//! Address-aware disassembly.
//!
//! [`Instruction`]'s `Display` prints raw operands (branch offsets as
//! word-deltas, jumps as absolute encodings). This module renders
//! instructions *at an address*, resolving branch and jump targets to
//! absolute addresses and, when a symbol table is supplied, to labels —
//! the form a debugger or trace listing wants.

use std::collections::BTreeMap;

use crate::decode::decode;
use crate::isa::Instruction;
use crate::machine::Machine;

/// Renders one instruction located at `addr`, resolving control-transfer
/// targets through `symbols` when possible.
pub fn disassemble_at(
    inst: Instruction,
    addr: u32,
    symbols: Option<&BTreeMap<String, u32>>,
) -> String {
    use Instruction::*;
    let rel = |imm: i16| {
        addr.wrapping_add(4)
            .wrapping_add((i32::from(imm) << 2) as u32)
    };
    let abs = |target: u32| (addr.wrapping_add(4) & 0xf000_0000) | (target << 2);
    let name = |t: u32| -> String {
        if let Some(syms) = symbols {
            if let Some((n, _)) = syms.iter().find(|(_, a)| **a == t) {
                return format!("{t:#x} <{n}>");
            }
        }
        format!("{t:#x}")
    };
    match inst {
        Beq { rs, rt, imm } => format!("beq {rs}, {rt}, {}", name(rel(imm))),
        Bne { rs, rt, imm } => format!("bne {rs}, {rt}, {}", name(rel(imm))),
        Blez { rs, imm } => format!("blez {rs}, {}", name(rel(imm))),
        Bgtz { rs, imm } => format!("bgtz {rs}, {}", name(rel(imm))),
        Bltz { rs, imm } => format!("bltz {rs}, {}", name(rel(imm))),
        Bgez { rs, imm } => format!("bgez {rs}, {}", name(rel(imm))),
        Bltzal { rs, imm } => format!("bltzal {rs}, {}", name(rel(imm))),
        Bgezal { rs, imm } => format!("bgezal {rs}, {}", name(rel(imm))),
        J { target } => format!("j {}", name(abs(target))),
        Jal { target } => format!("jal {}", name(abs(target))),
        other => other.to_string(),
    }
}

/// Disassembles a range of guest memory (KSEG0/KSEG1 or TLB-mapped),
/// returning `(address, word, text)` rows. Undecodable words are rendered
/// as `.word`.
pub fn disassemble_range(
    machine: &Machine,
    start: u32,
    words: u32,
    symbols: Option<&BTreeMap<String, u32>>,
) -> Vec<(u32, u32, String)> {
    let mut out = Vec::with_capacity(words as usize);
    for i in 0..words {
        let addr = start.wrapping_add(4 * i);
        let word = machine.peek_u32(addr, false).unwrap_or(0);
        let text = match decode(word) {
            Ok(inst) => disassemble_at(inst, addr, symbols),
            Err(_) => format!(".word {word:#010x}"),
        };
        out.push((addr, word, text));
    }
    out
}

/// Formats [`disassemble_range`] rows as a listing with optional label
/// lines.
pub fn listing(rows: &[(u32, u32, String)], symbols: Option<&BTreeMap<String, u32>>) -> String {
    let mut out = String::new();
    for (addr, word, text) in rows {
        if let Some(syms) = symbols {
            for (name, a) in syms {
                if a == addr {
                    out.push_str(&format!("{name}:\n"));
                }
            }
        }
        out.push_str(&format!("  {addr:#010x}:  {word:08x}  {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::Machine;

    fn machine_with(src: &str) -> (Machine, crate::asm::Program) {
        let prog = assemble(src).unwrap();
        let mut m = Machine::new(1 << 20);
        m.load_image(&prog).unwrap();
        (m, prog)
    }

    #[test]
    fn branch_targets_resolve_to_labels() {
        let (m, prog) = machine_with(
            r#"
            .org 0x80001000
            top:
                bne $t0, $t1, top
                nop
                j   done
                nop
            done:
                jr $ra
                nop
        "#,
        );
        let rows = disassemble_range(&m, 0x8000_1000, 6, Some(prog.symbols()));
        assert!(rows[0].2.contains("<top>"), "{}", rows[0].2);
        assert!(rows[2].2.contains("<done>"), "{}", rows[2].2);
        assert_eq!(rows[4].2, "jr $ra");
    }

    #[test]
    fn without_symbols_targets_are_hex() {
        let (m, _) = machine_with(
            r#"
            .org 0x80001000
            b next
            nop
            next: nop
        "#,
        );
        let rows = disassemble_range(&m, 0x8000_1000, 1, None);
        assert!(rows[0].2.contains("0x80001008"), "{}", rows[0].2);
    }

    #[test]
    fn undecodable_words_render_as_data() {
        let mut m = Machine::new(1 << 20);
        m.mem_mut().write_u32(0x1000, 0xffff_ffff).unwrap();
        let rows = disassemble_range(&m, 0x8000_1000, 1, None);
        assert!(rows[0].2.starts_with(".word"), "{}", rows[0].2);
    }

    #[test]
    fn listing_includes_label_lines() {
        let (m, prog) = machine_with(
            r#"
            .org 0x80001000
            main:
                nop
                jr $ra
                nop
        "#,
        );
        let rows = disassemble_range(&m, 0x8000_1000, 3, Some(prog.symbols()));
        let text = listing(&rows, Some(prog.symbols()));
        assert!(text.contains("main:\n"), "{text}");
        assert!(text.contains("nop"));
    }

    #[test]
    fn round_trip_through_assembler_is_reparseable() {
        // Disassembled plain instructions re-assemble to the same words
        // (branches/jumps excepted: they print absolute targets).
        let src = r#"
            .org 0x80001000
            addu $t0, $t1, $t2
            sll  $s0, $s1, 7
            lw   $a0, -8($sp)
            sw   $a0, 12($gp)
            ori  $v0, $zero, 0x1234
            mfhi $t9
            tlbwi
            rfe
        "#;
        let (m, _) = machine_with(src);
        let rows = disassemble_range(&m, 0x8000_1000, 8, None);
        let rebuilt: String = rows.iter().map(|(_, _, t)| format!("{t}\n")).collect();
        let prog2 = assemble(&format!(".org 0x80001000\n{rebuilt}")).unwrap();
        let orig = assemble(src).unwrap();
        assert_eq!(prog2.segments()[0].bytes, orig.segments()[0].bytes);
    }
}
