//! Per-instruction semantic tests: each case assembles a small program,
//! runs it to an `hcall`, and checks the architectural result against the
//! MIPS-I definition.

use efex_mips::asm::assemble;
use efex_mips::isa::Reg;
use efex_mips::machine::{Machine, StopReason};
use efex_mips::ExcCode;

/// Runs a program body (with `$t0`/`$t1` preloaded) and returns the machine.
fn run(setup: &str, body: &str) -> Machine {
    let src = format!(".org 0x80002000\nmain:\n{setup}\n{body}\n    hcall 0\n");
    let prog = assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut m = Machine::new(1 << 20);
    m.load_image(&prog).unwrap();
    m.set_pc(prog.entry());
    match m.run(10_000).unwrap() {
        StopReason::HostCall(_) => m,
        other => panic!("did not reach hcall: {other:?}"),
    }
}

/// Runs with `$t0 = a`, `$t1 = b` and one result instruction into `$t2`.
fn alu(a: u32, b: u32, op: &str) -> u32 {
    let m = run(
        &format!("    li $t0, {}\n    li $t1, {}", a as i32, b as i32),
        &format!("    {op} $t2, $t0, $t1"),
    );
    m.cpu().reg(Reg::T2)
}

#[test]
fn addu_subu_wrap() {
    assert_eq!(alu(3, 4, "addu"), 7);
    assert_eq!(alu(u32::MAX, 1, "addu"), 0);
    assert_eq!(alu(0, 1, "subu"), u32::MAX);
    assert_eq!(alu(10, 3, "subu"), 7);
}

#[test]
fn bitwise_ops() {
    assert_eq!(alu(0b1100, 0b1010, "and"), 0b1000);
    assert_eq!(alu(0b1100, 0b1010, "or"), 0b1110);
    assert_eq!(alu(0b1100, 0b1010, "xor"), 0b0110);
    assert_eq!(alu(0, 0, "nor"), u32::MAX);
    assert_eq!(alu(0xffff_0000, 0x0000_ffff, "nor"), 0);
}

#[test]
fn set_less_than_signed_vs_unsigned() {
    assert_eq!(alu(1, 2, "slt"), 1);
    assert_eq!(alu(2, 1, "slt"), 0);
    // -1 < 1 signed, but 0xffffffff > 1 unsigned.
    assert_eq!(alu(u32::MAX, 1, "slt"), 1);
    assert_eq!(alu(u32::MAX, 1, "sltu"), 0);
    assert_eq!(alu(1, u32::MAX, "sltu"), 1);
}

#[test]
fn shifts_immediate_and_variable() {
    let m = run(
        "    li $t0, 0x80000001\n    li $t1, 4",
        "    sll $t2, $t0, 1\n    srl $t3, $t0, 1\n    sra $t4, $t0, 1\n    sllv $t5, $t0, $t1\n    srlv $t6, $t0, $t1\n    srav $t7, $t0, $t1",
    );
    assert_eq!(m.cpu().reg(Reg::T2), 0x0000_0002);
    assert_eq!(m.cpu().reg(Reg::T3), 0x4000_0000);
    assert_eq!(m.cpu().reg(Reg::T4), 0xc000_0000);
    assert_eq!(m.cpu().reg(Reg::T5), 0x0000_0010);
    assert_eq!(m.cpu().reg(Reg::T6), 0x0800_0000);
    assert_eq!(m.cpu().reg(Reg::T7), 0xf800_0000);
}

#[test]
fn variable_shift_uses_low_five_bits() {
    let m = run(
        "    li $t0, 1\n    li $t1, 33", // 33 & 31 = 1
        "    sllv $t2, $t0, $t1",
    );
    assert_eq!(m.cpu().reg(Reg::T2), 2);
}

#[test]
fn mult_and_div_hi_lo() {
    let m = run(
        "    li $t0, -3\n    li $t1, 7",
        "    mult $t0, $t1\n    mflo $t2\n    mfhi $t3",
    );
    assert_eq!(m.cpu().reg(Reg::T2) as i32, -21);
    assert_eq!(m.cpu().reg(Reg::T3), u32::MAX, "sign extension in HI");

    let m = run(
        "    li $t0, 0x10000\n    li $t1, 0x10000",
        "    multu $t0, $t1\n    mflo $t2\n    mfhi $t3",
    );
    assert_eq!(m.cpu().reg(Reg::T2), 0);
    assert_eq!(m.cpu().reg(Reg::T3), 1, "2^32 in HI:LO");

    let m = run(
        "    li $t0, -22\n    li $t1, 7",
        "    div $t0, $t1\n    mflo $t2\n    mfhi $t3",
    );
    assert_eq!(m.cpu().reg(Reg::T2) as i32, -3, "trunc toward zero");
    assert_eq!(
        m.cpu().reg(Reg::T3) as i32,
        -1,
        "remainder sign follows dividend"
    );

    let m = run(
        "    li $t0, 22\n    li $t1, 7",
        "    divu $t0, $t1\n    mflo $t2\n    mfhi $t3",
    );
    assert_eq!(m.cpu().reg(Reg::T2), 3);
    assert_eq!(m.cpu().reg(Reg::T3), 1);
}

#[test]
fn mthi_mtlo_round_trip() {
    let m = run(
        "    li $t0, 123\n    li $t1, 456",
        "    mthi $t0\n    mtlo $t1\n    mfhi $t2\n    mflo $t3",
    );
    assert_eq!(m.cpu().reg(Reg::T2), 123);
    assert_eq!(m.cpu().reg(Reg::T3), 456);
}

#[test]
fn immediate_alu_sign_and_zero_extension() {
    let m = run(
        "    li $t0, 0x100",
        "    addiu $t2, $t0, -1\n    andi $t3, $t0, 0xff00\n    ori $t4, $t0, 0x00ff\n    xori $t5, $t0, 0x0101\n    slti $t6, $t0, -1\n    sltiu $t7, $t0, 0xffff", // sltiu sign-extends then compares unsigned: 0xffffffff
    );
    assert_eq!(m.cpu().reg(Reg::T2), 0xff);
    assert_eq!(m.cpu().reg(Reg::T3), 0x100);
    assert_eq!(m.cpu().reg(Reg::T4), 0x1ff);
    assert_eq!(m.cpu().reg(Reg::T5), 0x001);
    assert_eq!(m.cpu().reg(Reg::T6), 0, "0x100 >= -1 signed");
    assert_eq!(m.cpu().reg(Reg::T7), 1, "0x100 < 0xffffffff unsigned");
}

#[test]
fn load_store_widths_and_sign_extension() {
    let m = run(
        "    la $t0, data",
        r#"
    lb   $t2, 0($t0)
    lbu  $t3, 0($t0)
    lh   $t4, 0($t0)
    lhu  $t5, 0($t0)
    lw   $t6, 0($t0)
    sb   $t6, 8($t0)
    sh   $t6, 10($t0)
    lw   $t7, 8($t0)
    b    end
    nop
data:
    .word 0x8081fefd, 0, 0
end:
"#,
    );
    // Little-endian: byte 0 = 0xfd, half 0 = 0xfefd.
    assert_eq!(m.cpu().reg(Reg::T2), 0xffff_fffd, "lb sign-extends");
    assert_eq!(m.cpu().reg(Reg::T3), 0x0000_00fd);
    assert_eq!(m.cpu().reg(Reg::T4), 0xffff_fefd, "lh sign-extends");
    assert_eq!(m.cpu().reg(Reg::T5), 0x0000_fefd);
    assert_eq!(m.cpu().reg(Reg::T6), 0x8081_fefd);
    // sb wrote 0xfd at +8; sh wrote 0xfefd at +10.
    assert_eq!(m.cpu().reg(Reg::T7), 0xfefd_00fd);
}

#[test]
fn all_branch_conditions() {
    // Each branch computes t2 += 1 when taken.
    let m = run(
        "    li $t0, -5\n    li $t1, 5\n    li $t2, 0",
        r#"
    beq  $t0, $t0, l1     # equal: taken
    nop
    j fail
    nop
l1: addiu $t2, $t2, 1
    bne  $t0, $t1, l2     # not equal: taken
    nop
    j fail
    nop
l2: addiu $t2, $t2, 1
    blez $t0, l3          # -5 <= 0: taken
    nop
    j fail
    nop
l3: addiu $t2, $t2, 1
    bgtz $t1, l4          # 5 > 0: taken
    nop
    j fail
    nop
l4: addiu $t2, $t2, 1
    bltz $t0, l5          # -5 < 0: taken
    nop
    j fail
    nop
l5: addiu $t2, $t2, 1
    bgez $t1, l6          # 5 >= 0: taken
    nop
    j fail
    nop
l6: addiu $t2, $t2, 1
    blez $t1, fail        # 5 <= 0: NOT taken
    nop
    bgtz $t0, fail        # -5 > 0: NOT taken
    nop
    b done
    nop
fail:
    li $t2, 0
done:
"#,
    );
    assert_eq!(m.cpu().reg(Reg::T2), 6);
}

#[test]
fn bltzal_bgezal_link_even_when_not_taken() {
    let m = run(
        "    li $t0, 1",
        r#"
    bltzal $t0, never     # not taken, but still links
    nop
    move $t3, $ra         # ra = addr of (bltzal + 8)
    b done
    nop
never:
    li $t2, 99
done:
"#,
    );
    assert_ne!(m.cpu().reg(Reg::T3), 0, "RA written even when untaken");
    assert_eq!(m.cpu().reg(Reg::T2), 0);
}

#[test]
fn jalr_uses_custom_link_register() {
    let m = run(
        "    la $t0, target",
        r#"
    jalr $t3, $t0
    nop
after:
    b done
    nop
target:
    jr $t3
    nop
done:
"#,
    );
    // The program returned through $t3 and finished.
    assert_ne!(m.cpu().reg(Reg::T3), 0);
}

#[test]
fn lui_clears_low_bits() {
    let m = run("    li $t0, 0xffff", "    lui $t2, 0x1234");
    assert_eq!(m.cpu().reg(Reg::T2), 0x1234_0000);
}

#[test]
fn overflow_exceptions_for_add_addi_sub() {
    for body in [
        "    li $t0, 0x7fffffff\n    li $t1, 1\n    add $t2, $t0, $t1",
        "    li $t0, 0x7fffffff\n    addi $t2, $t0, 1",
        "    li $t0, 0x80000000\n    li $t1, 1\n    sub $t2, $t0, $t1",
    ] {
        let src = format!(".org 0x80002000\nmain:\n{body}\n    hcall 0\n");
        let prog = assemble(&src).unwrap();
        let mut m = Machine::new(1 << 20);
        m.load_image(&prog).unwrap();
        m.set_pc(prog.entry());
        m.run(10).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::Overflow), "{body}");
        assert_eq!(m.cpu().reg(Reg::T2), 0, "no partial result");
    }
}

#[test]
fn no_overflow_on_unsigned_variants() {
    assert_eq!(alu(0x7fff_ffff, 1, "addu"), 0x8000_0000);
    assert_eq!(alu(0x8000_0000, 1, "subu"), 0x7fff_ffff);
}

#[test]
fn division_by_zero_does_not_trap() {
    // MIPS-I leaves HI/LO undefined but must not raise.
    let m = run(
        "    li $t0, 5\n    li $t1, 0",
        "    div $t0, $t1\n    li $t2, 7",
    );
    assert_eq!(m.cpu().reg(Reg::T2), 7, "execution continued");
}

#[test]
fn consecutive_branches_resolve_in_order() {
    // A branch in another branch's target executes its own delay slot.
    let m = run(
        "    li $t2, 0",
        r#"
    b a
    addiu $t2, $t2, 1     # slot 1: executes
a:  b b
    addiu $t2, $t2, 10    # slot 2: executes
b:  addiu $t2, $t2, 100
"#,
    );
    assert_eq!(m.cpu().reg(Reg::T2), 111);
}

#[test]
fn comparison_branch_pseudo_instructions() {
    let m = run(
        "    li $t0, -5\n    li $t1, 5\n    li $t2, 0",
        r#"
    blt  $t0, $t1, c1     # -5 < 5 signed: taken
    nop
    j fail
    nop
c1: addiu $t2, $t2, 1
    bge  $t1, $t0, c2     # 5 >= -5: taken
    nop
    j fail
    nop
c2: addiu $t2, $t2, 1
    bgtu $t0, $t1, c3     # 0xfffffffb > 5 unsigned: taken
    nop
    j fail
    nop
c3: addiu $t2, $t2, 1
    bleu $t1, $t0, c4     # 5 <= 0xfffffffb unsigned: taken
    nop
    j fail
    nop
c4: addiu $t2, $t2, 1
    bgt  $t0, $t1, fail   # -5 > 5 signed: NOT taken
    nop
    ble  $t1, $t0, fail   # 5 <= -5 signed: NOT taken
    nop
    bltu $t0, $t1, fail   # unsigned: NOT taken
    nop
    b done
    nop
fail:
    li $t2, 0
done:
"#,
    );
    assert_eq!(m.cpu().reg(Reg::T2), 4);
}

#[test]
fn comparison_branches_do_not_clobber_sources() {
    let m = run(
        "    li $t0, 3\n    li $t1, 9",
        "    blt $t0, $t1, ok\n    nop\nok:\n",
    );
    assert_eq!(m.cpu().reg(Reg::T0), 3);
    assert_eq!(m.cpu().reg(Reg::T1), 9);
    // $at is the designated scratch.
    assert_eq!(m.cpu().reg(Reg::AT), 1);
}
