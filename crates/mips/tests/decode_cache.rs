//! Decode-cache invalidation tests.
//!
//! The decoded-instruction cache must be architecturally invisible: every
//! test runs the same program on a cached and an uncached machine in
//! lockstep and requires bit-identical registers, cycle counts, retired
//! instructions, and exception behaviour — through self-modifying stores,
//! host writes to text, TLB eviction, and protection changes.

use efex_mips::cp0::status;
use efex_mips::encode::encode;
use efex_mips::exception::ExcCode;
use efex_mips::isa::{Instruction, Reg, TlbProtOp};
use efex_mips::machine::{kseg_to_phys, Machine, StopReason};
use efex_mips::tlb::TlbEntry;
use proptest::prelude::*;

/// A cached machine and its uncached reference, built identically.
fn pair() -> (Machine, Machine) {
    let cached = Machine::new(1 << 20);
    let mut reference = Machine::new(1 << 20);
    reference.set_decode_cache_enabled(false);
    assert!(cached.decode_cache_enabled());
    assert!(!reference.decode_cache_enabled());
    (cached, reference)
}

fn assert_same_state(a: &Machine, b: &Machine, what: &str) {
    assert_eq!(a.cpu().pc, b.cpu().pc, "pc diverged: {what}");
    assert_eq!(a.cpu().regs(), b.cpu().regs(), "registers diverged: {what}");
    assert_eq!(a.cycles(), b.cycles(), "cycle counts diverged: {what}");
    assert_eq!(
        a.instructions_retired(),
        b.instructions_retired(),
        "instret diverged: {what}"
    );
    assert_eq!(
        a.exceptions_taken(),
        b.exceptions_taken(),
        "exception counts diverged: {what}"
    );
    assert_eq!(a.cp0().status, b.cp0().status, "status diverged: {what}");
    assert_eq!(a.cp0().epc, b.cp0().epc, "epc diverged: {what}");
    assert_eq!(
        a.cp0().bad_vaddr,
        b.cp0().bad_vaddr,
        "bad_vaddr diverged: {what}"
    );
}

fn write_words(m: &mut Machine, paddr: u32, words: &[u32]) {
    for (i, w) in words.iter().enumerate() {
        m.mem_mut().write_u32(paddr + 4 * i as u32, *w).unwrap();
    }
}

fn both(machines: &mut (Machine, Machine), f: impl Fn(&mut Machine)) {
    f(&mut machines.0);
    f(&mut machines.1);
}

fn map(vpn: u32, pfn: u32, user_modifiable: bool) -> TlbEntry {
    TlbEntry {
        vpn,
        asid: 0,
        pfn,
        valid: true,
        dirty: true,
        global: false,
        user_modifiable,
    }
}

/// A guest store overwriting already-executed (and therefore cached) text
/// must be visible to the next execution of that address.
#[test]
fn self_modifying_store_invalidates_cached_text() {
    use Instruction::*;
    let target = 0x8000_1040u32;
    let new_word = encode(Addiu {
        rt: Reg::T3,
        rs: Reg::ZERO,
        imm: 42,
    });
    let prog = [
        encode(Lui {
            rt: Reg::T0,
            imm: (target >> 16) as u16,
        }),
        encode(Ori {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: (target & 0xffff) as u16,
        }),
        encode(Lui {
            rt: Reg::T2,
            imm: (new_word >> 16) as u16,
        }),
        encode(Ori {
            rt: Reg::T2,
            rs: Reg::T2,
            imm: (new_word & 0xffff) as u16,
        }),
        encode(Jal {
            target: target >> 2,
        }),
        Instruction::NOP.into_word(),
        encode(Jal {
            target: target >> 2,
        }),
        Instruction::NOP.into_word(), // second call re-executes cached text
        encode(Addu {
            rd: Reg::T6,
            rs: Reg::T3,
            rt: Reg::ZERO,
        }), // pre-modification result
        encode(Sw {
            rt: Reg::T2,
            base: Reg::T0,
            imm: 0,
        }), // overwrite the subroutine's first instruction
        encode(Jal {
            target: target >> 2,
        }),
        Instruction::NOP.into_word(),
        encode(Addu {
            rd: Reg::T7,
            rs: Reg::T3,
            rt: Reg::ZERO,
        }), // second call's result
        encode(Hcall { code: 1 }),
    ];
    let sub = [
        encode(Addiu {
            rt: Reg::T3,
            rs: Reg::ZERO,
            imm: 7,
        }),
        encode(Jr { rs: Reg::RA }),
        Instruction::NOP.into_word(),
    ];
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, kseg_to_phys(0x8000_1000).unwrap(), &prog);
        write_words(m, kseg_to_phys(target).unwrap(), &sub);
        m.set_pc(0x8000_1000);
        assert_eq!(m.run(1000).unwrap(), StopReason::HostCall(1));
        assert_eq!(m.cpu().reg(Reg::T6), 7, "first call sees the old text");
        assert_eq!(m.cpu().reg(Reg::T7), 42, "second call sees the new text");
    });
    assert_same_state(&ms.0, &ms.1, "self-modifying store");
    let (hits, _) = ms.0.decode_cache_stats();
    assert!(hits > 0, "the cache must actually have been exercised");
}

/// Host-side writes through `mem_mut()` (how kernels patch guest text) must
/// invalidate, exactly like guest stores.
#[test]
fn host_write_to_text_invalidates_cached_text() {
    use Instruction::*;
    let word = |imm| {
        encode(Addiu {
            rt: Reg::T3,
            rs: Reg::ZERO,
            imm,
        })
    };
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, 0x1000, &[word(7), encode(Hcall { code: 1 })]);
        m.set_pc(0x8000_1000);
        assert_eq!(m.run(10).unwrap(), StopReason::HostCall(1));
        assert_eq!(m.cpu().reg(Reg::T3), 7);
        // Patch the instruction from the host and rerun it.
        m.mem_mut().write_u32(0x1000, word(9)).unwrap();
        m.set_pc(0x8000_1000);
        assert_eq!(m.run(10).unwrap(), StopReason::HostCall(1));
        assert_eq!(m.cpu().reg(Reg::T3), 9, "host patch must be fetched");
    });
    assert_same_state(&ms.0, &ms.1, "host text patch");
}

/// Evicting/rewriting the TLB entry of a cached page (the kernel shootdown
/// path uses `tlb_mut()` directly) must drop the cached translation.
#[test]
fn tlb_eviction_of_cached_page_invalidates() {
    use Instruction::*;
    let page_a = [
        encode(Addiu {
            rt: Reg::T3,
            rs: Reg::ZERO,
            imm: 7,
        }),
        encode(Hcall { code: 1 }),
    ];
    let page_b = [
        encode(Addiu {
            rt: Reg::T3,
            rs: Reg::ZERO,
            imm: 42,
        }),
        encode(Hcall { code: 1 }),
    ];
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, 0x2000, &page_a);
        write_words(m, 0x3000, &page_b);
        m.tlb_mut().write(0, map(0x400, 2, false));
        m.set_pc(0x0040_0000);
        assert_eq!(m.run(10).unwrap(), StopReason::HostCall(1));
        assert_eq!(m.cpu().reg(Reg::T3), 7);
        // Remap the same virtual page to different text, as a page-out /
        // page-in cycle would.
        m.tlb_mut().write(0, map(0x400, 3, false));
        m.set_pc(0x0040_0000);
        assert_eq!(m.run(10).unwrap(), StopReason::HostCall(1));
        assert_eq!(m.cpu().reg(Reg::T3), 42, "remapped text must be fetched");
    });
    assert_same_state(&ms.0, &ms.1, "TLB remap");
}

/// A user-level `utlbp` protect-all on the page being executed must fault
/// the *next* fetch instead of serving stale cached lines.
#[test]
fn subpage_reprotection_faults_next_fetch() {
    use Instruction::*;
    let prog = [
        encode(Lui {
            rt: Reg::A0,
            imm: 0x0040,
        }),
        encode(Utlbp {
            rs: Reg::A0,
            op: TlbProtOp::ProtectAll,
        }),
        encode(Addiu {
            rt: Reg::T3,
            rs: Reg::ZERO,
            imm: 9,
        }), // must never execute: the fetch faults
    ];
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, 0x2000, &prog);
        m.tlb_mut().write(0, map(0x400, 2, true));
        m.cp0_mut().status = status::KUC;
        m.set_pc(0x0040_0000);
        // Warm the cache on this page, then re-run the protect sequence.
        m.run(3).unwrap();
        assert_eq!(m.cp0().exc_code(), Some(ExcCode::TlbLoad));
        assert_eq!(
            m.cpu().reg(Reg::T3),
            0,
            "fetch after protect-all must fault, not hit the cache"
        );
    });
    assert_same_state(&ms.0, &ms.1, "utlbp protect-all");
}

proptest! {
    /// Arbitrary word soups (valid and reserved encodings, branches into
    /// zeroed memory, stores over their own text, CP0 writes) execute
    /// bit-identically with and without the decode cache.
    #[test]
    fn cached_and_uncached_machines_stay_in_lockstep(
        words in proptest::collection::vec(any::<u32>(), 1..128),
        steps in 1usize..400,
    ) {
        let mut cached = Machine::new(1 << 20);
        let mut reference = Machine::new(1 << 20);
        reference.set_decode_cache_enabled(false);
        for m in [&mut cached, &mut reference] {
            write_words(m, 0x1000, &words);
            m.set_pc(0x8000_1000);
        }
        for i in 0..steps {
            let a = cached.step().unwrap();
            let b = reference.step().unwrap();
            prop_assert_eq!(a, b, "stop reasons diverged at step {}", i);
            prop_assert_eq!(cached.cpu().pc, reference.cpu().pc);
            prop_assert_eq!(cached.cycles(), reference.cycles());
            prop_assert_eq!(cached.instructions_retired(), reference.instructions_retired());
            prop_assert_eq!(cached.exceptions_taken(), reference.exceptions_taken());
            prop_assert_eq!(cached.cpu().regs(), reference.cpu().regs());
        }
    }
}
