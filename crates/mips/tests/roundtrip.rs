//! Disassemble → reassemble round trips.
//!
//! `disassemble_at` (without a symbol table) must produce text the
//! assembler accepts back to the *same instruction* at the same address —
//! this is what makes lint diagnostics and trace listings trustworthy: the
//! text shown is exactly the code analyzed.

use efex_mips::asm::assemble;
use efex_mips::decode::decode;
use efex_mips::disasm::disassemble_at;
use efex_mips::encode::encode;
use efex_mips::isa::{Instruction, Reg, TlbProtOp};
use proptest::prelude::*;

/// Address the round trip reassembles at: any word-aligned KSEG0 address
/// works; branch targets become absolute numbers relative to it.
const ADDR: u32 = 0x8000_4000;

fn arb_reg() -> BoxedStrategy<Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap()).boxed()
}

fn arb_prot_op() -> impl Strategy<Value = TlbProtOp> {
    prop_oneof![
        Just(TlbProtOp::WriteProtect),
        Just(TlbProtOp::WriteEnable),
        Just(TlbProtOp::ProtectAll),
        Just(TlbProtOp::ReadEnable),
    ]
}

/// Every canonically-constructed instruction (mirrors `prop.rs`).
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    let r3 = (arb_reg(), arb_reg(), arb_reg());
    prop_oneof![
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sll { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Srl { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sra { rd, rt, shamt }),
        r3.clone().prop_map(|(rd, rs, rt)| Sllv { rd, rt, rs }),
        r3.clone().prop_map(|(rd, rs, rt)| Srlv { rd, rt, rs }),
        r3.clone().prop_map(|(rd, rs, rt)| Srav { rd, rt, rs }),
        r3.clone().prop_map(|(rd, rs, rt)| Add { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Addu { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Sub { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Subu { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| And { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Or { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Xor { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Nor { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Slt { rd, rs, rt }),
        r3.prop_map(|(rd, rs, rt)| Sltu { rd, rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Mult { rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Multu { rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Div { rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Divu { rs, rt }),
        arb_reg().prop_map(|rd| Mfhi { rd }),
        arb_reg().prop_map(|rd| Mflo { rd }),
        arb_reg().prop_map(|rs| Mthi { rs }),
        arb_reg().prop_map(|rs| Mtlo { rs }),
        arb_reg().prop_map(|rs| Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Jalr { rd, rs }),
        (0u32..0xf_ffff).prop_map(|code| Syscall { code }),
        (0u32..0xf_ffff).prop_map(|code| Break { code }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Beq { rs, rt, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Bne { rs, rt, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Blez { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgtz { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bltz { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgez { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bltzal { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgezal { rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addi { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Slti { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Sltiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Andi { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Ori { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Xori { rt, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Lui { rt, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lb { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lbu { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lh { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lhu { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lw { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sb { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sh { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sw { rt, base, imm }),
        (0u32..0x03ff_ffff).prop_map(|target| J { target }),
        (0u32..0x03ff_ffff).prop_map(|target| Jal { target }),
        (arb_reg(), 0u8..32).prop_map(|(rt, rd)| Mfc0 { rt, rd }),
        (arb_reg(), 0u8..32).prop_map(|(rt, rd)| Mtc0 { rt, rd }),
        Just(Tlbr),
        Just(Tlbwi),
        Just(Tlbwr),
        Just(Tlbp),
        Just(Rfe),
        Just(Xpcu),
        (arb_reg(), arb_prot_op()).prop_map(|(rs, op)| Utlbp { rs, op }),
        (0u32..0x03ff_ffff).prop_map(|code| Hcall { code }),
    ]
}

/// Reassembles `text` at `ADDR` and returns the single resulting word.
fn reassemble(text: &str) -> Result<u32, String> {
    let src = format!(".org {ADDR:#x}\n{text}\n");
    let prog = assemble(&src).map_err(|e| e.to_string())?;
    prog.word_at(ADDR)
        .ok_or_else(|| "no word assembled".to_string())
}

proptest! {
    /// For every canonical instruction: the address-resolved disassembly
    /// reassembles (at the same address) to the identical instruction.
    #[test]
    fn disasm_reassembles_to_same_instruction(inst in arb_instruction()) {
        let text = disassemble_at(inst, ADDR, None);
        let word = reassemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` does not reassemble: {e}"));
        prop_assert_eq!(
            decode(word).unwrap(),
            inst,
            "`{}` round-tripped to a different instruction",
            text
        );
    }

    /// The stronger, byte-exact form for canonical encodings: any decodable
    /// canonical word survives disassemble → reassemble bit-for-bit.
    #[test]
    fn disasm_reassembles_to_same_word(inst in arb_instruction()) {
        let word = encode(inst);
        let text = disassemble_at(decode(word).unwrap(), ADDR, None);
        prop_assert_eq!(
            reassemble(&text),
            Ok(word),
            "`{}` did not round-trip bit-exactly",
            text
        );
    }
}
