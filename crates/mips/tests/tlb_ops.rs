//! Guest-level tests of the TLB management instructions: a kernel-mode
//! program builds a mapping with `tlbwi`, probes it with `tlbp`, reads it
//! back with `tlbr`, and then runs user-mode code through it.

use efex_mips::asm::assemble;
use efex_mips::isa::Reg;
use efex_mips::machine::{Machine, StopReason};

fn run(src: &str, steps: u64) -> Machine {
    let prog = assemble(src).unwrap();
    let mut m = Machine::new(1 << 20);
    m.load_image(&prog).unwrap();
    m.set_pc(prog.entry());
    match m.run(steps).unwrap() {
        StopReason::HostCall(_) => m,
        other => panic!("no hcall: {other:?}"),
    }
}

#[test]
fn tlbwi_installs_a_usable_mapping() {
    // Map user page 0x0040_0000 -> frame 4 (paddr 0x4000), write through
    // the *virtual* address from kernel mode, read back via physical KSEG0.
    let m = run(
        r#"
        .equ ENTRYHI, 0x00400000    # vpn 0x400, asid 0
        .equ ENTRYLO_FLAGS, 0x600   # D|V
        .org 0x80002000
        main:
            li   $t0, ENTRYHI
            mtc0 $t0, $entryhi
            li   $t1, 0x4000        # pfn 4 << 12
            ori  $t1, $t1, ENTRYLO_FLAGS
            mtc0 $t1, $entrylo
            li   $t2, 0x0300        # index slot 3 (bits 13..8)
            mtc0 $t2, $index
            tlbwi
            # Store through the mapped virtual address.
            li   $t3, 0xbeef
            li   $t4, 0x00400010
            sw   $t3, 0($t4)
            # Read back through KSEG0 at the physical location.
            li   $t5, 0x80004010
            lw   $t6, 0($t5)
            hcall 0
    "#,
        100,
    );
    assert_eq!(m.cpu().reg(Reg::T6), 0xbeef);
}

#[test]
fn tlbp_finds_and_misses() {
    let m = run(
        r#"
        .org 0x80002000
        main:
            # Install vpn 0x500 at slot 9.
            li   $t0, 0x00500000
            mtc0 $t0, $entryhi
            li   $t1, 0x5600        # pfn 5, D|V
            mtc0 $t1, $entrylo
            li   $t2, 0x0900
            mtc0 $t2, $index
            tlbwi
            # Probe for it: index must report slot 9.
            li   $t0, 0x00500000
            mtc0 $t0, $entryhi
            tlbp
            mfc0 $t3, $index
            # Probe for an unmapped page: P bit (31) must be set.
            li   $t0, 0x00700000
            mtc0 $t0, $entryhi
            tlbp
            mfc0 $t4, $index
            hcall 0
    "#,
        100,
    );
    assert_eq!((m.cpu().reg(Reg::T3) >> 8) & 0x3f, 9, "probe hit slot 9");
    assert_ne!(m.cpu().reg(Reg::T4) & 0x8000_0000, 0, "probe miss sets P");
}

#[test]
fn tlbr_reads_back_what_tlbwi_wrote() {
    let m = run(
        r#"
        .org 0x80002000
        main:
            li   $t0, 0x00600040    # vpn 0x600, asid 1
            mtc0 $t0, $entryhi
            li   $t1, 0x7700        # pfn 7, N|D|V... (0x7700 = pfn 7 | 0x700)
            mtc0 $t1, $entrylo
            li   $t2, 0x0c00        # slot 12
            mtc0 $t2, $index
            tlbwi
            # Clobber the registers, then read the entry back.
            mtc0 $zero, $entryhi
            mtc0 $zero, $entrylo
            tlbr
            mfc0 $t5, $entryhi
            mfc0 $t6, $entrylo
            hcall 0
    "#,
        100,
    );
    assert_eq!(m.cpu().reg(Reg::T5), 0x0060_0040);
    assert_eq!(
        m.cpu().reg(Reg::T6) & 0xffff_ff00,
        0x0000_7700 & 0xffff_ff00
    );
}

#[test]
fn rfe_drops_to_user_mode_through_mapped_code() {
    // Kernel maps a code page, points EPC-style state at it, and drops to
    // user mode with jr+rfe; the user code runs and traps back via break.
    let m = run(
        r#"
        .org 0x80002000
        main:
            # Map user code page 0x0040_0000 -> frame 6.
            li   $t0, 0x00400000
            mtc0 $t0, $entryhi
            li   $t1, 0x6600        # pfn 6, D|V
            mtc0 $t1, $entrylo
            li   $t2, 0x0200
            mtc0 $t2, $index
            tlbwi
            # Write user code: addiu $s0, $zero, 7 ; break 0
            li   $t3, 0x24100007
            li   $t4, 0x80006000
            sw   $t3, 0($t4)
            li   $t3, 0x0000000d
            sw   $t3, 4($t4)
            # Arrange previous-mode = user, then jr+rfe.
            mfc0 $t5, $status
            ori  $t5, $t5, 0x8      # KUp = user
            mtc0 $t5, $status
            li   $k0, 0x00400000
            jr   $k0
            rfe
        .org 0x80000080             # general vector: catch the break
        vec:
            hcall 7
    "#,
        100,
    );
    assert_eq!(m.cpu().reg(Reg::S0), 7, "user code executed");
    assert!(!m.cp0().user_mode(), "break re-entered kernel");
}
