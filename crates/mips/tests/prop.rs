//! Property-based tests for the ISA, TLB, and machine.

use efex_mips::decode::decode;
use efex_mips::encode::encode;
use efex_mips::isa::{Instruction, Reg, TlbProtOp};
use efex_mips::machine::{kseg_to_phys, Machine, StopReason};
use efex_mips::tlb::{Tlb, TlbEntry, TlbFault, PAGE_SIZE};
use proptest::prelude::*;

fn arb_reg() -> BoxedStrategy<Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap()).boxed()
}

fn arb_prot_op() -> impl Strategy<Value = TlbProtOp> {
    prop_oneof![
        Just(TlbProtOp::WriteProtect),
        Just(TlbProtOp::WriteEnable),
        Just(TlbProtOp::ProtectAll),
        Just(TlbProtOp::ReadEnable),
    ]
}

/// Every canonically-constructed instruction.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    let r3 = (arb_reg(), arb_reg(), arb_reg());
    prop_oneof![
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sll { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Srl { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sra { rd, rt, shamt }),
        r3.clone().prop_map(|(rd, rs, rt)| Add { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Addu { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Subu { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| And { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Or { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Xor { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Nor { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Slt { rd, rs, rt }),
        r3.prop_map(|(rd, rs, rt)| Sltu { rd, rs, rt }),
        arb_reg().prop_map(|rs| Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Jalr { rd, rs }),
        (0u32..0xf_ffff).prop_map(|code| Syscall { code }),
        (0u32..0xf_ffff).prop_map(|code| Break { code }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Beq { rs, rt, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Bne { rs, rt, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Blez { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgtz { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bltz { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgez { rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Andi { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Ori { rt, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Lui { rt, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lw { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lb { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sw { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sb { rt, base, imm }),
        (0u32..0x03ff_ffff).prop_map(|target| J { target }),
        (0u32..0x03ff_ffff).prop_map(|target| Jal { target }),
        (arb_reg(), 0u8..32).prop_map(|(rt, rd)| Mfc0 { rt, rd }),
        (arb_reg(), 0u8..32).prop_map(|(rt, rd)| Mtc0 { rt, rd }),
        Just(Tlbr),
        Just(Tlbwi),
        Just(Tlbwr),
        Just(Tlbp),
        Just(Rfe),
        Just(Xpcu),
        (arb_reg(), arb_prot_op()).prop_map(|(rs, op)| Utlbp { rs, op }),
        (0u32..0x03ff_ffff).prop_map(|code| Hcall { code }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every canonical instruction.
    #[test]
    fn encode_decode_round_trip(inst in arb_instruction()) {
        prop_assert_eq!(decode(encode(inst)).unwrap(), inst);
    }

    /// Decoding never panics on arbitrary words, and when it succeeds the
    /// re-encoded canonical form decodes to the same instruction.
    #[test]
    fn decode_total_and_stable(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            prop_assert_eq!(decode(encode(inst)).unwrap(), inst);
        }
    }

    /// TLB translation preserves the page offset and maps to the entry's
    /// frame.
    #[test]
    fn tlb_translation_preserves_offset(
        vpn in 0u32..0x7ffff,
        pfn in 0u32..0xfffff,
        asid in 0u8..64,
        offset in 0u32..PAGE_SIZE,
    ) {
        let mut tlb = Tlb::new();
        tlb.write(0, TlbEntry { vpn, asid, pfn, valid: true, dirty: true, global: false, user_modifiable: false });
        let vaddr = (vpn << 12) | offset;
        prop_assert_eq!(tlb.translate(vaddr, asid, false), Ok((pfn << 12) | offset));
    }

    /// A miss is reported for any address whose VPN differs from every
    /// resident entry.
    #[test]
    fn tlb_miss_for_unmapped(vpn in 0u32..0x7ffff, other in 0u32..0x7ffff) {
        prop_assume!(vpn != other);
        let mut tlb = Tlb::new();
        tlb.write(3, TlbEntry { vpn, asid: 0, pfn: 1, valid: true, dirty: true, global: false, user_modifiable: false });
        prop_assert_eq!(tlb.translate(other << 12, 0, false), Err(TlbFault::Miss));
    }

    /// Entry raw-image round trip for arbitrary field values.
    #[test]
    fn tlb_entry_raw_round_trip(
        vpn in 0u32..0xfffff,
        pfn in 0u32..0xfffff,
        asid in 0u8..64,
        valid: bool, dirty: bool, global: bool, um: bool,
    ) {
        let e = TlbEntry { vpn, asid, pfn, valid, dirty, global, user_modifiable: um };
        prop_assert_eq!(TlbEntry::from_raw(e.entry_hi(), e.entry_lo()), e);
    }

    /// Straight-line ALU programs retire exactly their instruction count and
    /// stop at the trailing hcall.
    #[test]
    fn straight_line_programs_retire(ops in prop::collection::vec(
        (arb_reg(), arb_reg(), any::<i16>()), 1..40)
    ) {
        let mut m = Machine::new(1 << 20);
        let base = 0x8000_4000u32;
        let paddr = kseg_to_phys(base).unwrap();
        for (i, (rt, rs, imm)) in ops.iter().enumerate() {
            let w = encode(Instruction::Addiu { rt: *rt, rs: *rs, imm: *imm });
            m.mem_mut().write_u32(paddr + 4 * i as u32, w).unwrap();
        }
        m.mem_mut()
            .write_u32(paddr + 4 * ops.len() as u32, encode(Instruction::Hcall { code: 1 }))
            .unwrap();
        m.set_pc(base);
        let stop = m.run(10 + ops.len() as u64).unwrap();
        prop_assert_eq!(stop, StopReason::HostCall(1));
        prop_assert_eq!(m.instructions_retired(), ops.len() as u64 + 1);
        prop_assert_eq!(m.cpu().reg(Reg::ZERO), 0);
    }

    /// The assembler and the machine agree: `li` then `hcall` leaves the
    /// 32-bit value in the register for any i32.
    #[test]
    fn li_materializes_any_value(v in any::<i32>()) {
        let src = format!(".org 0x80004000\nli $t0, {v}\nhcall 0\n");
        let prog = efex_mips::asm::assemble(&src).unwrap();
        let mut m = Machine::new(1 << 20);
        m.load_image(&prog).unwrap();
        m.set_pc(prog.entry());
        m.run(10).unwrap();
        prop_assert_eq!(m.cpu().reg(Reg::T0), v as u32);
    }
}
