//! Superblock-engine bit-exactness tests.
//!
//! The superblock engine must be architecturally invisible: every test runs
//! the same program under the interpreter and the superblock engine and
//! requires bit-identical registers, cycle counts, retired instructions,
//! and exception behaviour — with particular attention to self-modifying
//! code, where pre-decoded block contents could go stale: a patch in
//! straight-line code (including mid-block, by the block's own store), a
//! patch in a branch delay slot, and a patch of the instruction an
//! exception handler returns to.

use efex_mips::encode::encode;
use efex_mips::isa::{Instruction, Reg};
use efex_mips::machine::{
    kseg_to_phys, ExecEngine, Machine, MachineConfig, StopReason, GENERAL_VECTOR,
};
use proptest::prelude::*;

/// A superblock machine and its interpreter reference, built identically.
fn pair() -> (Machine, Machine) {
    let sb = Machine::with_config(
        1 << 20,
        MachineConfig::default().engine(ExecEngine::Superblock),
    );
    let interp = Machine::with_config(1 << 20, MachineConfig::default());
    assert_eq!(sb.engine(), ExecEngine::Superblock);
    assert_eq!(interp.engine(), ExecEngine::Interpreter);
    (sb, interp)
}

fn assert_same_state(a: &Machine, b: &Machine, what: &str) {
    assert_eq!(a.cpu().pc, b.cpu().pc, "pc diverged: {what}");
    assert_eq!(a.cpu().regs(), b.cpu().regs(), "registers diverged: {what}");
    assert_eq!(a.cycles(), b.cycles(), "cycle counts diverged: {what}");
    assert_eq!(
        a.instructions_retired(),
        b.instructions_retired(),
        "instret diverged: {what}"
    );
    assert_eq!(
        a.exceptions_taken(),
        b.exceptions_taken(),
        "exception counts diverged: {what}"
    );
    assert_eq!(a.cp0().status, b.cp0().status, "status diverged: {what}");
    assert_eq!(a.cp0().cause, b.cp0().cause, "cause diverged: {what}");
    assert_eq!(a.cp0().epc, b.cp0().epc, "epc diverged: {what}");
    assert_eq!(
        a.cp0().bad_vaddr,
        b.cp0().bad_vaddr,
        "bad_vaddr diverged: {what}"
    );
}

fn write_words(m: &mut Machine, paddr: u32, words: &[u32]) {
    for (i, w) in words.iter().enumerate() {
        m.mem_mut().write_u32(paddr + 4 * i as u32, *w).unwrap();
    }
}

fn both(machines: &mut (Machine, Machine), f: impl Fn(&mut Machine)) {
    f(&mut machines.0);
    f(&mut machines.1);
}

fn addiu(rt: Reg, rs: Reg, imm: i16) -> u32 {
    encode(Instruction::Addiu { rt, rs, imm })
}

fn li(rt: Reg, imm: i16) -> u32 {
    addiu(rt, Reg::ZERO, imm)
}

/// Load a full 32-bit constant into `rt` (two words: lui + ori).
fn li32(rt: Reg, value: u32) -> [u32; 2] {
    [
        encode(Instruction::Lui {
            rt,
            imm: (value >> 16) as u16,
        }),
        encode(Instruction::Ori {
            rt,
            rs: rt,
            imm: (value & 0xffff) as u16,
        }),
    ]
}

/// A store *inside* a straight-line run patching a *later* instruction of
/// the same run: the superblock has already pre-decoded the whole block, so
/// this is the mid-block staleness hazard. The patched word must take
/// effect on the very next fetch — the first execution must already see it.
#[test]
fn mid_block_store_patches_downstream_instruction() {
    let base = 0x8000_1000u32;
    // prog[5] is the patch target: the store at prog[4] overwrites it
    // before it is ever reached, all within one straight-line run.
    let target = base + 5 * 4;
    let [lui_t0, ori_t0] = li32(Reg::T0, target);
    let [lui_t2, ori_t2] = li32(Reg::T2, li(Reg::T3, 42));
    let prog = [
        lui_t0,
        ori_t0,
        lui_t2,
        ori_t2,
        encode(Instruction::Sw {
            rt: Reg::T2,
            base: Reg::T0,
            imm: 0,
        }),
        li(Reg::T3, 7), // patched to `li $t3, 42` by the store above
        encode(Instruction::Hcall { code: 1 }),
    ];
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, kseg_to_phys(base).unwrap(), &prog);
        m.set_pc(base);
        assert_eq!(m.run(100).unwrap(), StopReason::HostCall(1));
        assert_eq!(
            m.cpu().reg(Reg::T3),
            42,
            "the patch must be visible on the very next fetch"
        );
    });
    assert_same_state(&ms.0, &ms.1, "mid-block self-patch");
    let (_, _, invalidations) = ms.0.superblock_stats();
    assert!(
        invalidations > 0,
        "the superblock engine must have dropped the stale block"
    );
}

/// A patch landing in a branch delay slot: the delay slot op is pre-decoded
/// *into* the branch's block, so a stale block would replay the old slot.
#[test]
fn patch_in_delay_slot_is_seen_by_next_iteration() {
    let base = 0x8000_1000u32;
    let loop_top = base + 4 * 4;
    let delay_slot = loop_top + 2 * 4;
    let [lui_t0, ori_t0] = li32(Reg::T0, delay_slot);
    let [lui_t2, ori_t2] = li32(Reg::T2, li(Reg::T5, 40));
    let prog = [
        lui_t0,
        ori_t0,
        lui_t2,
        ori_t2,
        // loop_top: two iterations; $t4 counts down 1..0.
        addiu(Reg::T4, Reg::T4, 1),
        encode(Instruction::Beq {
            rs: Reg::T4,
            rt: Reg::T6,
            imm: 4, // to `hcall` when $t4 == $t6 (== 2)
        }),
        li(Reg::T5, 4), // delay slot — patched to `li $t5, 40` below
        encode(Instruction::Sw {
            rt: Reg::T2,
            base: Reg::T0,
            imm: 0,
        }),
        encode(Instruction::Beq {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: -5, // back to loop_top
        }),
        Instruction::NOP.into_word(),
        encode(Instruction::Hcall { code: 1 }),
    ];
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, kseg_to_phys(base).unwrap(), &prog);
        m.cpu_mut().set_reg(Reg::T6, 2);
        m.set_pc(base);
        assert_eq!(m.run(100).unwrap(), StopReason::HostCall(1));
        assert_eq!(
            m.cpu().reg(Reg::T5),
            40,
            "the second iteration must execute the patched delay slot"
        );
    });
    assert_same_state(&ms.0, &ms.1, "delay-slot patch");
}

/// An exception handler patching the instruction it returns to (the classic
/// breakpoint-replacement idiom): the faulting block cached the old word,
/// and the `rfe`-return must fetch the new one.
#[test]
fn handler_patches_its_return_target() {
    let base = 0x8000_1000u32;
    let patch_target = base + 5 * 4; // the word right after `break`
    let [lui_k0, ori_k0] = li32(Reg::K0, patch_target);
    let [lui_k1, ori_k1] = li32(Reg::K1, li(Reg::T3, 42));
    // Handler: patch the return target, jump to it via EPC+4 (skipping the
    // `break`), using only $k0/$k1 per kernel convention.
    let handler = [
        lui_k0,
        ori_k0,
        lui_k1,
        ori_k1,
        encode(Instruction::Sw {
            rt: Reg::K1,
            base: Reg::K0,
            imm: 0,
        }),
        encode(Instruction::Mfc0 {
            rt: Reg::K0,
            rd: efex_mips::cp0::Cp0Reg::Epc as u8,
        }),
        addiu(Reg::K0, Reg::K0, 8), // skip break + run the patched word
        encode(Instruction::Jr { rs: Reg::K0 }),
        encode(Instruction::Rfe), // delay slot: restore pre-exception mode
    ];
    let prog = [
        li(Reg::T3, 1),
        addiu(Reg::T3, Reg::T3, 1), // warm the block containing the target
        encode(Instruction::Break { code: 0 }),
        Instruction::NOP.into_word(),
        li(Reg::T7, 5), // executed after the handler returns
        li(Reg::T3, 7), // patch target: becomes `li $t3, 42`
        encode(Instruction::Hcall { code: 1 }),
    ];
    let mut ms = pair();
    both(&mut ms, |m| {
        write_words(m, kseg_to_phys(GENERAL_VECTOR).unwrap(), &handler);
        write_words(m, kseg_to_phys(base).unwrap(), &prog);
        m.set_pc(base);
        assert_eq!(m.run(100).unwrap(), StopReason::HostCall(1));
        assert_eq!(m.cpu().reg(Reg::T7), 5, "post-return path executed");
        assert_eq!(
            m.cpu().reg(Reg::T3),
            42,
            "the handler's patch must be fetched after return"
        );
        assert_eq!(m.exceptions_taken(), 1);
    });
    assert_same_state(&ms.0, &ms.1, "handler return-target patch");
}

/// The superblock cache must actually engage on a hot loop (otherwise the
/// bit-exactness tests above prove nothing about the block path).
#[test]
fn hot_loop_hits_the_block_cache() {
    let base = 0x8000_1000u32;
    let prog = [
        addiu(Reg::T0, Reg::T0, 1),
        addiu(Reg::T1, Reg::T1, 2),
        encode(Instruction::Bne {
            rs: Reg::T0,
            rt: Reg::T2,
            imm: -3,
        }),
        Instruction::NOP.into_word(),
        encode(Instruction::Hcall { code: 1 }),
    ];
    let mut m = Machine::with_config(
        1 << 20,
        MachineConfig::default().engine(ExecEngine::Superblock),
    );
    write_words(&mut m, kseg_to_phys(base).unwrap(), &prog);
    m.cpu_mut().set_reg(Reg::T2, 100);
    m.set_pc(base);
    assert_eq!(m.run(10_000).unwrap(), StopReason::HostCall(1));
    assert_eq!(m.cpu().reg(Reg::T0), 100);
    let (hits, misses, _) = m.superblock_stats();
    assert!(hits > 90, "hot loop must re-enter cached blocks: {hits}");
    assert!(misses < 10, "steady state must not rebuild: {misses}");
}

proptest! {
    /// Arbitrary word soups (valid and reserved encodings, branches into
    /// zeroed memory, stores over their own text, CP0 writes) execute
    /// bit-identically under both engines — resuming across arbitrary
    /// step-budget boundaries, so blocks get interrupted mid-run and
    /// re-entered.
    #[test]
    fn engines_stay_in_lockstep_across_budget_boundaries(
        words in proptest::collection::vec(any::<u32>(), 1..128),
        chunks in proptest::collection::vec(1u64..9, 1..64),
    ) {
        let mut ms = pair();
        both(&mut ms, |m| {
            write_words(m, 0x1000, &words);
            m.set_pc(0x8000_1000);
        });
        for (i, chunk) in chunks.iter().enumerate() {
            let a = ms.0.run(*chunk).unwrap();
            let b = ms.1.run(*chunk).unwrap();
            prop_assert_eq!(a, b, "stop reasons diverged at chunk {}", i);
            prop_assert_eq!(ms.0.cpu().pc, ms.1.cpu().pc);
            prop_assert_eq!(ms.0.cycles(), ms.1.cycles());
            prop_assert_eq!(ms.0.instructions_retired(), ms.1.instructions_retired());
            prop_assert_eq!(ms.0.exceptions_taken(), ms.1.exceptions_taken());
            prop_assert_eq!(ms.0.cpu().regs(), ms.1.cpu().regs());
        }
        assert_same_state(&ms.0, &ms.1, "word-soup final state");
    }
}
