//! Byte-exact assemble → disassemble → reassemble round trips over the two
//! embedded boot images.
//!
//! The verifier's diagnostics cite disassembly; this proves that the text it
//! prints for the kernel handler and the signal trampoline is faithful —
//! reassembling every disassembled word reproduces the original image
//! bit-for-bit.

use efex_mips::asm::{assemble, Program};
use efex_mips::decode::decode;
use efex_mips::disasm::disassemble_at;
use efex_simos::fastexc::KERNEL_ASM;
use efex_simos::kernel::TRAMPOLINE_ASM;

/// Regenerates assembly source for every segment of `prog` from its own
/// disassembly (no symbol table: targets come out as absolute numbers).
/// Words that do not decode are preserved as `.word`; trailing partial
/// words (data padding) as `.byte`.
fn disassembled_source(prog: &Program) -> String {
    let mut src = String::new();
    for seg in prog.segments() {
        src.push_str(&format!(".org {:#x}\n", seg.addr));
        let mut chunks = seg.bytes.chunks_exact(4);
        for (i, chunk) in chunks.by_ref().enumerate() {
            let addr = seg.addr + 4 * i as u32;
            let word = u32::from_le_bytes(chunk.try_into().unwrap());
            match decode(word) {
                Ok(inst) => {
                    src.push_str(&disassemble_at(inst, addr, None));
                    src.push('\n');
                }
                Err(_) => src.push_str(&format!(".word {word:#010x}\n")),
            }
        }
        for byte in chunks.remainder() {
            src.push_str(&format!(".byte {byte:#04x}\n"));
        }
    }
    src
}

fn assert_round_trips(name: &str, source: &str) {
    let original = assemble(source).unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
    let regenerated = disassembled_source(&original);
    let reassembled = assemble(&regenerated).unwrap_or_else(|e| {
        panic!("{name}: disassembled source does not reassemble: {e}\n{regenerated}")
    });
    let a = original.segments();
    let b = reassembled.segments();
    assert_eq!(a.len(), b.len(), "{name}: segment count changed");
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.addr, sb.addr, "{name}: segment address changed");
        assert_eq!(
            sa.bytes, sb.bytes,
            "{name}: segment at {:#010x} is not byte-identical after the round trip",
            sa.addr
        );
    }
}

#[test]
fn kernel_image_round_trips() {
    assert_round_trips("KERNEL_ASM", KERNEL_ASM);
}

#[test]
fn trampoline_round_trips() {
    assert_round_trips("TRAMPOLINE_ASM", TRAMPOLINE_ASM);
}
