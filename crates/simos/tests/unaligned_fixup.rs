//! Tests for the Ultrix-compatible unaligned-access fixup
//! (`KernelConfig::fixup_unaligned`).

use efex_simos::kernel::{Kernel, KernelConfig, RunOutcome};
use efex_simos::signals::Signal;

fn boot(fixup: bool) -> Kernel {
    Kernel::boot(KernelConfig {
        fixup_unaligned: fixup,
        ..KernelConfig::default()
    })
    .unwrap()
}

fn run(k: &mut Kernel, program: &str) -> RunOutcome {
    let prog = k.load_user_program(program).unwrap();
    let sp = k.setup_stack(8).unwrap();
    k.exec(prog.entry(), sp);
    k.run_user(1_000_000).unwrap()
}

/// An unaligned word load straddling an alignment boundary.
const UNALIGNED_LW: &str = r#"
.org 0x00400000
main:
    li  $a0, 4096
    li  $v0, 13          # sbrk
    syscall
    move $s1, $v0
    li  $t0, 0x44332211
    sw  $t0, 0($s1)
    li  $t0, 0x88776655
    sw  $t0, 4($s1)
    lw  $a0, 2($s1)      # unaligned: bytes 2..6 = 0x66554433
    li  $v0, 2
    syscall
    nop
"#;

#[test]
fn without_fixup_unaligned_load_is_sigbus() {
    let mut k = boot(false);
    let out = run(&mut k, UNALIGNED_LW);
    assert_eq!(out, RunOutcome::Terminated(Signal::Bus));
}

#[test]
fn with_fixup_unaligned_load_is_emulated() {
    let mut k = boot(true);
    let out = run(&mut k, UNALIGNED_LW);
    assert_eq!(out, RunOutcome::Exited(0x6655_4433u32 as i32));
    assert_eq!(k.process().stats.signals_delivered, 0);
}

#[test]
fn with_fixup_unaligned_store_round_trips() {
    let mut k = boot(true);
    let out = run(
        &mut k,
        r#"
        .org 0x00400000
        main:
            li  $a0, 4096
            li  $v0, 13
            syscall
            move $s1, $v0
            li  $t0, 0xAABBCCDD
            sw  $t0, 2($s1)      # unaligned store, fixed up
            lw  $t1, 0($s1)      # aligned reads see the bytes in place
            lw  $t2, 4($s1)
            srl $t1, $t1, 16     # low halfword of the stored value
            andi $t2, $t2, 0xffff
            sll $t2, $t2, 16
            or  $a0, $t1, $t2    # reassemble: 0xAABBCCDD
            li  $v0, 2
            syscall
            nop
    "#,
    );
    assert_eq!(out, RunOutcome::Exited(0xAABB_CCDDu32 as i32));
}

#[test]
fn fast_path_takes_precedence_over_fixup() {
    // An application that *wants* unaligned faults (swizzling) still gets
    // them even when the kernel fixup is configured, because the fast-path
    // check runs first.
    let mut k = boot(true);
    let out = run(
        &mut k,
        r#"
        .org 0x00400000
        main:
            li  $a0, 0x10        # AddrErrLoad
            la  $a1, handler
            li  $a2, 0x7ffe0000
            li  $v0, 7           # uexc_enable
            syscall
            li  $a0, 4096
            li  $v0, 13
            syscall
            move $s1, $v0
            lw  $t0, 2($s1)      # unaligned -> delivered, NOT fixed up
            move $a0, $s2        # handler sets s2 = 1
            li  $v0, 2
            syscall
            nop
        handler:
            li  $s2, 1
            lui $k0, 0x7ffe
            lw  $k1, 0x80($k0)   # AddrErrLoad frame EPC (4*32)
            addiu $k1, $k1, 4
            jr  $k1
            nop
    "#,
    );
    assert_eq!(out, RunOutcome::Exited(1), "user handler ran");
}

#[test]
fn fixup_in_branch_delay_slot_follows_the_branch() {
    let mut k = boot(true);
    let out = run(
        &mut k,
        r#"
        .org 0x00400000
        main:
            li  $a0, 4096
            li  $v0, 13
            syscall
            move $s1, $v0
            li  $t0, 0x01020304
            sw  $t0, 0($s1)
            li  $t1, 1
            bnez $t1, taken
            lw  $a0, 1($s1)      # delay slot, unaligned: 0x__010203? bytes 1..5
            li  $a0, 0           # skipped
        taken:
            andi $a0, $a0, 0xff  # low byte of the fixed-up load = 0x03
            li  $v0, 2
            syscall
            nop
    "#,
    );
    assert_eq!(out, RunOutcome::Exited(0x03));
}
