//! Guest-level tests of the subpage protection engine (Section 3.2.4),
//! including the branch-delay-slot case the paper calls out: "If the
//! memory instruction is in a branch delay slot, then the MIPS
//! architecture causes an exception before the branch is taken. In such
//! cases, the kernel must emulate the branch in addition to the
//! load/store."

use efex_simos::kernel::{Kernel, KernelConfig, RunOutcome};

fn boot_with(program: &str) -> (Kernel, efex_mips::asm::Program) {
    let mut k = Kernel::boot(KernelConfig::default()).unwrap();
    let prog = k.load_user_program(program).unwrap();
    let sp = k.setup_stack(8).unwrap();
    k.exec(prog.entry(), sp);
    (k, prog)
}

/// Common prologue: enable fast TLB exceptions with a handler that just
/// retries (pages get amplified by the subpage engine on delivery), sbrk a
/// page, touch it, and subpage-protect its first kilobyte.
const SETUP: &str = r#"
.org 0x00400000
main:
    li  $a0, 0x0e            # TlbMod | TlbLoad | TlbStore
    la  $a1, handler
    li  $a2, 0x7ffe0000
    li  $v0, 7                # uexc_enable
    syscall
    li  $a0, 4096
    li  $v0, 13               # sbrk
    syscall
    move $s1, $v0             # the page
    sw  $zero, 0($s1)         # resident
    move $a0, $s1
    li  $a1, 1024             # protect the first logical subpage only
    li  $a2, 1
    li  $v0, 11               # subpage_protect
    syscall
"#;

const HANDLER: &str = r#"
handler:
    lui  $k0, 0x7ffe
    lw   $k1, 0x20($k0)       # TlbMod frame EPC
    jr   $k1                  # page was amplified: retry succeeds
    nop
"#;

#[test]
fn store_in_taken_branch_delay_slot_is_emulated() {
    // The store sits in the delay slot of a TAKEN branch into an
    // UNPROTECTED subpage: the kernel must emulate both the store and the
    // branch, resuming at the branch target.
    let program = format!(
        r#"{SETUP}
    li   $t0, 77
    li   $t1, 1
    bnez $t1, taken           # taken branch
    sw   $t0, 2048($s1)       # delay slot: store to unprotected subpage
    li   $t0, 0               # (skipped: branch was taken)
taken:
    lw   $a0, 2048($s1)       # read back what the emulation wrote
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(77), "store emulated, branch taken");
    assert!(k.process().stats.subpage_emulations >= 1);
}

#[test]
fn store_in_untaken_branch_delay_slot_is_emulated() {
    // Delay slot of an UNTAKEN branch: execution must fall through.
    let program = format!(
        r#"{SETUP}
    li   $t0, 33
    beqz $s1, elsewhere        # never taken ($s1 is the heap page)
    sw   $t0, 2048($s1)        # delay slot store, unprotected subpage
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
elsewhere:
    li   $a0, 99
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(33), "fell through after emulation");
}

#[test]
fn store_in_jal_delay_slot_preserves_linkage() {
    // `jal` links and jumps; the delay-slot store is emulated and the call
    // proceeds to the subroutine, which returns normally.
    let program = format!(
        r#"{SETUP}
    li   $t0, 55
    jal  sub
    sw   $t0, 3072($s1)        # delay slot store, unprotected subpage
    lw   $a0, 3072($s1)
    li   $v0, 2
    syscall
    nop
sub:
    jr   $ra
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(55));
}

#[test]
fn protected_subpage_store_is_delivered_not_emulated() {
    let program = format!(
        r#"{SETUP}
    li   $t0, 11
    sw   $t0, 16($s1)          # protected subpage -> delivered to handler
    lw   $a0, 16($s1)
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(11));
    assert_eq!(k.process().stats.fast_delivered, 1, "one delivery");
}

#[test]
fn unprotected_subpage_load_is_invisible() {
    // Loads never fault under write-granularity subpage protection; a
    // plain read of the protected page proceeds at full speed.
    let program = format!(
        r#"{SETUP}
    lw   $a0, 512($s1)         # read inside the PROTECTED subpage: fine
    addiu $a0, $a0, 5
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(5));
    assert_eq!(k.process().stats.fast_delivered, 0);
    assert_eq!(k.process().stats.subpage_emulations, 0);
}

#[test]
fn store_in_jr_delay_slot_jumps_through_register() {
    // `jr` through an unrelated register with the emulated store in its
    // delay slot: the kernel must resume at the register's value.
    let program = format!(
        r#"{SETUP}
    li   $t0, 88
    la   $t2, landing
    jr   $t2
    sw   $t0, 2048($s1)        # delay slot store, unprotected subpage
    li   $t0, 0                # (skipped)
landing:
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(88));
    assert!(k.process().stats.subpage_emulations >= 1);
}

#[test]
fn store_in_taken_branch_to_cross_page_target() {
    // The emulated branch lands on a different text page whose TLB entry
    // may be absent: the resume must come back through the refill path,
    // not wedge.
    let program = format!(
        r#"{SETUP}
    li   $t0, 61
    li   $t1, 1
    bnez $t1, far
    sw   $t0, 2048($s1)        # delay slot store, unprotected subpage
    li   $t0, 0                # (skipped)
{HANDLER}
.org 0x00402000
far:
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(61));
    assert!(k.process().stats.subpage_emulations >= 1);
}

#[test]
fn jalr_linking_to_its_own_source_degrades_with_diagnostic() {
    // `jalr $t1, $t1` already clobbered its jump target with the link
    // write before the delay slot faulted: architecturally unpredictable.
    // The kernel must refuse to guess — specified degradation: the fault
    // falls back to the Unix path (no handler here, so the process dies)
    // and the delivery is counted as degraded with a diagnostic.
    let program = format!(
        r#"{SETUP}
    li   $t0, 7
    la   $t1, after
    jalr $t1, $t1              # link write clobbers the jump register
    sw   $t0, 2048($s1)        # delay slot store, unprotected subpage
after:
    li   $a0, 1
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    // No SIGSEGV handler is registered, so the Unix fallback terminates
    // the process: kill-with-diagnostic, never a host panic.
    assert_eq!(
        out,
        RunOutcome::Terminated(efex_simos::signals::Signal::Segv)
    );
    assert_eq!(k.process().stats.degraded_deliveries, 1);
    let diag = k.last_diagnostic().expect("diagnostic recorded");
    assert!(diag.contains("unpredictable"), "diag: {diag}");
}

#[test]
fn byte_and_halfword_stores_are_emulated() {
    let program = format!(
        r#"{SETUP}
    li   $t0, 0xAB
    sb   $t0, 2048($s1)        # byte store, unprotected subpage
    li   $t0, 0x1234
    sh   $t0, 2050($s1)        # halfword store
    lbu  $a0, 2048($s1)
    lhu  $t1, 2050($s1)
    addu $a0, $a0, $t1         # 0xAB + 0x1234 = 0x12DF = 4831
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(0xAB + 0x1234));
    assert!(k.process().stats.subpage_emulations >= 2);
}

#[test]
fn unaligned_load_in_jr_delay_slot_uses_pre_load_jump_target() {
    // The mis-resumed-EPC bug this pins: an unaligned LOAD in the delay
    // slot of `jr $t1` writes the very register the jump reads. The branch
    // architecturally consumed the OLD value of $t1 when it executed, so
    // the fixup must resolve the target BEFORE emulating the load. (Before
    // the fix, the emulated load ran first and execution resumed at the
    // freshly-loaded value — a wild jump.)
    let mut k = Kernel::boot(KernelConfig {
        fixup_unaligned: true,
        ..KernelConfig::default()
    })
    .unwrap();
    let prog = k
        .load_user_program(
            r#"
            .org 0x00400000
            main:
                li   $a0, 8192
                li   $v0, 13         # sbrk
                syscall
                move $s1, $v0
                li   $t0, 0x00411223
                sw   $t0, 0($s1)     # bytes for the unaligned read
                sw   $t0, 4($s1)
                la   $t1, good
                jr   $t1
                lw   $t1, 2($s1)     # delay slot: unaligned load INTO $t1
                li   $a0, 1          # (skipped — branch was taken)
                li   $v0, 2
                syscall
                nop
            good:
                srl  $a0, $t1, 24    # top byte of the loaded value
                li   $v0, 2
                syscall
                nop
        "#,
        )
        .unwrap();
    let sp = k.setup_stack(4).unwrap();
    k.exec(prog.entry(), sp);
    let out = k.run_user(1_000_000).unwrap();
    // Jump went to `good` (old $t1), and $t1 holds the loaded word:
    // bytes 2..6 of [23 12 41 00 | 23 12 41 00] = 0x12234100 -> top byte 0x12.
    assert_eq!(out, RunOutcome::Exited(0x12));
}

#[test]
fn unaligned_store_in_taken_branch_delay_slot_is_fixed_up() {
    // Taken-branch shape through the Ultrix unaligned-fixup path: the
    // store is emulated byte-wise and execution resumes at the target.
    let mut k = Kernel::boot(KernelConfig {
        fixup_unaligned: true,
        ..KernelConfig::default()
    })
    .unwrap();
    let prog = k
        .load_user_program(
            r#"
            .org 0x00400000
            main:
                li   $a0, 8192
                li   $v0, 13         # sbrk
                syscall
                move $s1, $v0
                li   $t0, 0x5544
                li   $t2, 1
                bnez $t2, onward
                sh   $t0, 1($s1)     # delay slot: unaligned halfword store
                li   $t0, 0          # (skipped)
            onward:
                lbu  $a0, 1($s1)     # low byte of the stored halfword
                li   $v0, 2
                syscall
                nop
        "#,
        )
        .unwrap();
    let sp = k.setup_stack(4).unwrap();
    k.exec(prog.entry(), sp);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(0x44));
}
