//! Guest-level tests of the subpage protection engine (Section 3.2.4),
//! including the branch-delay-slot case the paper calls out: "If the
//! memory instruction is in a branch delay slot, then the MIPS
//! architecture causes an exception before the branch is taken. In such
//! cases, the kernel must emulate the branch in addition to the
//! load/store."

use efex_simos::kernel::{Kernel, KernelConfig, RunOutcome};

fn boot_with(program: &str) -> (Kernel, efex_mips::asm::Program) {
    let mut k = Kernel::boot(KernelConfig::default()).unwrap();
    let prog = k.load_user_program(program).unwrap();
    let sp = k.setup_stack(8).unwrap();
    k.exec(prog.entry(), sp);
    (k, prog)
}

/// Common prologue: enable fast TLB exceptions with a handler that just
/// retries (pages get amplified by the subpage engine on delivery), sbrk a
/// page, touch it, and subpage-protect its first kilobyte.
const SETUP: &str = r#"
.org 0x00400000
main:
    li  $a0, 0x0e            # TlbMod | TlbLoad | TlbStore
    la  $a1, handler
    li  $a2, 0x7ffe0000
    li  $v0, 7                # uexc_enable
    syscall
    li  $a0, 4096
    li  $v0, 13               # sbrk
    syscall
    move $s1, $v0             # the page
    sw  $zero, 0($s1)         # resident
    move $a0, $s1
    li  $a1, 1024             # protect the first logical subpage only
    li  $a2, 1
    li  $v0, 11               # subpage_protect
    syscall
"#;

const HANDLER: &str = r#"
handler:
    lui  $k0, 0x7ffe
    lw   $k1, 0x20($k0)       # TlbMod frame EPC
    jr   $k1                  # page was amplified: retry succeeds
    nop
"#;

#[test]
fn store_in_taken_branch_delay_slot_is_emulated() {
    // The store sits in the delay slot of a TAKEN branch into an
    // UNPROTECTED subpage: the kernel must emulate both the store and the
    // branch, resuming at the branch target.
    let program = format!(
        r#"{SETUP}
    li   $t0, 77
    li   $t1, 1
    bnez $t1, taken           # taken branch
    sw   $t0, 2048($s1)       # delay slot: store to unprotected subpage
    li   $t0, 0               # (skipped: branch was taken)
taken:
    lw   $a0, 2048($s1)       # read back what the emulation wrote
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(77), "store emulated, branch taken");
    assert!(k.process().stats.subpage_emulations >= 1);
}

#[test]
fn store_in_untaken_branch_delay_slot_is_emulated() {
    // Delay slot of an UNTAKEN branch: execution must fall through.
    let program = format!(
        r#"{SETUP}
    li   $t0, 33
    beqz $s1, elsewhere        # never taken ($s1 is the heap page)
    sw   $t0, 2048($s1)        # delay slot store, unprotected subpage
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
elsewhere:
    li   $a0, 99
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(33), "fell through after emulation");
}

#[test]
fn store_in_jal_delay_slot_preserves_linkage() {
    // `jal` links and jumps; the delay-slot store is emulated and the call
    // proceeds to the subroutine, which returns normally.
    let program = format!(
        r#"{SETUP}
    li   $t0, 55
    jal  sub
    sw   $t0, 3072($s1)        # delay slot store, unprotected subpage
    lw   $a0, 3072($s1)
    li   $v0, 2
    syscall
    nop
sub:
    jr   $ra
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(55));
}

#[test]
fn protected_subpage_store_is_delivered_not_emulated() {
    let program = format!(
        r#"{SETUP}
    li   $t0, 11
    sw   $t0, 16($s1)          # protected subpage -> delivered to handler
    lw   $a0, 16($s1)
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(11));
    assert_eq!(k.process().stats.fast_delivered, 1, "one delivery");
}

#[test]
fn unprotected_subpage_load_is_invisible() {
    // Loads never fault under write-granularity subpage protection; a
    // plain read of the protected page proceeds at full speed.
    let program = format!(
        r#"{SETUP}
    lw   $a0, 512($s1)         # read inside the PROTECTED subpage: fine
    addiu $a0, $a0, 5
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(5));
    assert_eq!(k.process().stats.fast_delivered, 0);
    assert_eq!(k.process().stats.subpage_emulations, 0);
}

#[test]
fn byte_and_halfword_stores_are_emulated() {
    let program = format!(
        r#"{SETUP}
    li   $t0, 0xAB
    sb   $t0, 2048($s1)        # byte store, unprotected subpage
    li   $t0, 0x1234
    sh   $t0, 2050($s1)        # halfword store
    lbu  $a0, 2048($s1)
    lhu  $t1, 2050($s1)
    addu $a0, $a0, $t1         # 0xAB + 0x1234 = 0x12DF = 4831
    li   $v0, 2
    syscall
    nop
{HANDLER}"#
    );
    let (mut k, _) = boot_with(&program);
    let out = k.run_user(1_000_000).unwrap();
    assert_eq!(out, RunOutcome::Exited(0xAB + 0x1234));
    assert!(k.process().stats.subpage_emulations >= 2);
}
