//! Guest-level tests of signal dispositions (SIG_DFL / SIG_IGN / handler).

use efex_simos::kernel::{Kernel, KernelConfig, RunOutcome};
use efex_simos::signals::Signal;

fn run(program: &str, max: u64) -> (Kernel, RunOutcome) {
    let mut k = Kernel::boot(KernelConfig::default()).unwrap();
    let prog = k.load_user_program(program).unwrap();
    let sp = k.setup_stack(8).unwrap();
    k.exec(prog.entry(), sp);
    let out = k.run_user(max).unwrap();
    (k, out)
}

#[test]
fn sig_ign_on_breakpoint_loops_forever() {
    // Ignoring a synchronous fault resumes the faulting instruction, which
    // refaults: the paper's "bouncing between the kernel and user-level"
    // looping case, bounded only by the step budget.
    let (k, out) = run(
        r#"
        .org 0x00400000
        main:
            li $a0, 5        # SIGTRAP
            li $a1, 1        # SIG_IGN
            li $v0, 4
            syscall
            break 0          # ignored -> retaken forever
            li $v0, 2
            li $a0, 0
            syscall
            nop
    "#,
        5_000,
    );
    assert_eq!(out, RunOutcome::StepLimit, "must spin, not terminate");
    assert!(k.machine().exceptions_taken() > 100);
}

#[test]
fn resetting_to_default_restores_termination() {
    let (_, out) = run(
        r#"
        .org 0x00400000
        main:
            la $a1, h
            li $a0, 5
            li $v0, 4        # install a handler...
            syscall
            li $a1, 0        # ...then reset to SIG_DFL
            li $a0, 5
            li $v0, 4
            syscall
            break 0
            li $v0, 2
            syscall
            nop
        h:
            jr $ra
            nop
    "#,
        100_000,
    );
    assert_eq!(out, RunOutcome::Terminated(Signal::Trap));
}

#[test]
fn handler_reinstalls_are_independent_per_signal() {
    let (k, out) = run(
        r#"
        .org 0x00400000
        main:
            la $a1, h
            li $a0, 5        # SIGTRAP handled
            li $v0, 4
            syscall
            break 0          # handled: s2 += 1 via sigcontext
            lw $t0, 2($zero) # SIGBUS unhandled -> terminate
            li $v0, 2
            syscall
            nop
        h:
            lw  $t1, 72($a2)   # saved $s2
            addiu $t1, $t1, 1
            sw  $t1, 72($a2)
            lw  $t1, 136($a2)  # saved pc
            addiu $t1, $t1, 4
            sw  $t1, 136($a2)
            jr  $ra
            nop
    "#,
        100_000,
    );
    assert_eq!(out, RunOutcome::Terminated(Signal::Bus));
    assert_eq!(k.process().stats.signals_delivered, 1);
}
