//! Per-process virtual memory: page tables, protection, demand paging.
//!
//! An [`AddressSpace`] is the kernel's authoritative map from virtual page
//! numbers to [`Pte`]s; the hardware TLB is a cache of it. Protection
//! changes therefore come with a TLB shootdown, which the kernel performs
//! (see [`crate::kernel`]).

use std::collections::BTreeMap;
use std::fmt;

use crate::frames::{FrameAllocator, OutOfFrames, Pfn};
use crate::layout::PAGE_SIZE;
use efex_mips::tlb::TlbEntry;

/// Page protection.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Prot {
    /// No access: any reference faults (the "protect-all" mode used for
    /// access detection).
    None,
    /// Read-only: stores fault (the write-barrier mode).
    Read,
    /// Full access.
    ReadWrite,
}

impl Prot {
    /// Whether a read access is permitted.
    pub fn allows_read(self) -> bool {
        self != Prot::None
    }

    /// Whether a write access is permitted.
    pub fn allows_write(self) -> bool {
        self == Prot::ReadWrite
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Prot::None => "---",
            Prot::Read => "r--",
            Prot::ReadWrite => "rw-",
        })
    }
}

/// A page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pte {
    /// The physical frame, when resident.
    pub pfn: Option<Pfn>,
    /// Current protection.
    pub prot: Prot,
    /// The paper's user-modifiable TLB protection bit is granted per page.
    pub user_modifiable: bool,
    /// Pinned pages are never evicted (exception handlers, comm page).
    pub pinned: bool,
    /// Page has been written since mapping (for paging policy/statistics).
    pub dirty: bool,
}

impl Pte {
    fn new(prot: Prot) -> Pte {
        Pte {
            pfn: None,
            prot,
            user_modifiable: false,
            pinned: false,
            dirty: false,
        }
    }

    /// Whether the page is resident in a physical frame.
    pub fn resident(&self) -> bool {
        self.pfn.is_some()
    }
}

/// Why a reference to a mapped-or-not address cannot proceed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The address is not part of the address space (true SIGSEGV).
    NotMapped,
    /// The page is mapped but the access violates its protection — the
    /// access-detection fault the paper's applications rely on.
    Protection,
    /// The page is mapped and accessible but not resident: a page fault,
    /// always handled by the kernel (Section 3.2.2).
    NotResident,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::NotMapped => "not mapped",
            FaultKind::Protection => "protection violation",
            FaultKind::NotResident => "page not resident",
        })
    }
}

/// A region passed to [`AddressSpace::map_region`] does not page-align or
/// overlaps an existing mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapError {
    /// Address or length not page-aligned.
    Unaligned,
    /// A page in the range is already mapped.
    Overlap(u32),
    /// A page in the range is not mapped (for protect/unmap).
    NotMapped(u32),
    /// Out of physical frames.
    OutOfFrames,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unaligned => f.write_str("address or length not page-aligned"),
            MapError::Overlap(v) => write!(f, "page {v:#x} already mapped"),
            MapError::NotMapped(v) => write!(f, "page {v:#x} not mapped"),
            MapError::OutOfFrames => f.write_str("out of physical frames"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<OutOfFrames> for MapError {
    fn from(_: OutOfFrames) -> MapError {
        MapError::OutOfFrames
    }
}

/// One process's page table.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    asid: u8,
    pages: BTreeMap<u32, Pte>,
}

impl AddressSpace {
    /// An empty address space tagged with `asid`.
    pub fn new(asid: u8) -> AddressSpace {
        AddressSpace {
            asid,
            pages: BTreeMap::new(),
        }
    }

    /// The ASID that tags this space's TLB entries.
    pub fn asid(&self) -> u8 {
        self.asid
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// The PTE for a virtual address, if mapped.
    pub fn pte(&self, vaddr: u32) -> Option<&Pte> {
        self.pages.get(&(vaddr / PAGE_SIZE))
    }

    /// Mutable PTE for a virtual address.
    pub fn pte_mut(&mut self, vaddr: u32) -> Option<&mut Pte> {
        self.pages.get_mut(&(vaddr / PAGE_SIZE))
    }

    /// Installs a checkpointed PTE for virtual page `vpn`, bypassing the
    /// mapping API's overlap/alignment policy (the snapshot came from a
    /// space that already enforced it). Restore-time only: no frame is
    /// allocated and no TLB entry is touched.
    pub fn restore_page(&mut self, vpn: u32, pte: Pte) {
        self.pages.insert(vpn, pte);
    }

    /// Maps `[vaddr, vaddr+len)` with `prot`, demand-zero (frames are
    /// allocated on first touch).
    ///
    /// # Errors
    ///
    /// Fails on misalignment or overlap with an existing mapping.
    pub fn map_region(&mut self, vaddr: u32, len: u32, prot: Prot) -> Result<(), MapError> {
        if !vaddr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(MapError::Unaligned);
        }
        let first = vaddr / PAGE_SIZE;
        let count = len / PAGE_SIZE;
        for vpn in first..first + count {
            if self.pages.contains_key(&vpn) {
                return Err(MapError::Overlap(vpn));
            }
        }
        for vpn in first..first + count {
            self.pages.insert(vpn, Pte::new(prot));
        }
        Ok(())
    }

    /// Unmaps `[vaddr, vaddr+len)`, returning the freed frames.
    ///
    /// # Errors
    ///
    /// Fails on misalignment or if any page is unmapped.
    pub fn unmap_region(&mut self, vaddr: u32, len: u32) -> Result<Vec<Pfn>, MapError> {
        if !vaddr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(MapError::Unaligned);
        }
        let first = vaddr / PAGE_SIZE;
        let count = len / PAGE_SIZE;
        for vpn in first..first + count {
            if !self.pages.contains_key(&vpn) {
                return Err(MapError::NotMapped(vpn));
            }
        }
        let mut freed = Vec::new();
        for vpn in first..first + count {
            if let Some(pte) = self.pages.remove(&vpn) {
                if let Some(pfn) = pte.pfn {
                    freed.push(pfn);
                }
            }
        }
        Ok(freed)
    }

    /// Changes protection on `[vaddr, vaddr+len)` (the kernel half of
    /// `mprotect`), returning the affected virtual page base addresses so
    /// the caller can shoot down stale TLB entries.
    ///
    /// # Errors
    ///
    /// Fails on misalignment or if any page is unmapped.
    pub fn protect_region(
        &mut self,
        vaddr: u32,
        len: u32,
        prot: Prot,
    ) -> Result<Vec<u32>, MapError> {
        if !vaddr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(MapError::Unaligned);
        }
        let first = vaddr / PAGE_SIZE;
        let count = len / PAGE_SIZE;
        for vpn in first..first + count {
            if !self.pages.contains_key(&vpn) {
                return Err(MapError::NotMapped(vpn));
            }
        }
        let mut touched = Vec::with_capacity(count as usize);
        for vpn in first..first + count {
            let pte = self.pages.get_mut(&vpn).expect("checked above");
            pte.prot = prot;
            touched.push(vpn * PAGE_SIZE);
        }
        Ok(touched)
    }

    /// Grants or revokes the user-modifiable TLB bit on a range.
    ///
    /// # Errors
    ///
    /// Fails on misalignment or if any page is unmapped.
    pub fn set_user_modifiable(
        &mut self,
        vaddr: u32,
        len: u32,
        allowed: bool,
    ) -> Result<Vec<u32>, MapError> {
        if !vaddr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(MapError::Unaligned);
        }
        let first = vaddr / PAGE_SIZE;
        let count = len / PAGE_SIZE;
        let mut touched = Vec::with_capacity(count as usize);
        for vpn in first..first + count {
            let pte = self.pages.get_mut(&vpn).ok_or(MapError::NotMapped(vpn))?;
            pte.user_modifiable = allowed;
            touched.push(vpn * PAGE_SIZE);
        }
        Ok(touched)
    }

    /// Pins (or unpins) a mapped range.
    ///
    /// # Errors
    ///
    /// Fails if any page is unmapped.
    pub fn set_pinned(&mut self, vaddr: u32, len: u32, pinned: bool) -> Result<(), MapError> {
        let first = vaddr / PAGE_SIZE;
        let last = (vaddr + len - 1) / PAGE_SIZE;
        for vpn in first..=last {
            let pte = self.pages.get_mut(&vpn).ok_or(MapError::NotMapped(vpn))?;
            pte.pinned = pinned;
        }
        Ok(())
    }

    /// Classifies an access: `Ok(pfn)` when it can proceed against a
    /// resident frame, or the fault the hardware/kernel must handle.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultKind`] preventing the access.
    pub fn classify(&self, vaddr: u32, write: bool) -> Result<Pfn, FaultKind> {
        let pte = self.pte(vaddr).ok_or(FaultKind::NotMapped)?;
        let allowed = if write {
            pte.prot.allows_write()
        } else {
            pte.prot.allows_read()
        };
        if !allowed {
            return Err(FaultKind::Protection);
        }
        pte.pfn.ok_or(FaultKind::NotResident)
    }

    /// Ensures the page holding `vaddr` is resident, allocating a zeroed
    /// frame on first touch. Returns `(pfn, newly_resident)`.
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped or memory is exhausted.
    pub fn ensure_resident(
        &mut self,
        vaddr: u32,
        frames: &mut FrameAllocator,
    ) -> Result<(Pfn, bool), MapError> {
        let vpn = vaddr / PAGE_SIZE;
        let pte = self.pages.get_mut(&vpn).ok_or(MapError::NotMapped(vpn))?;
        if let Some(pfn) = pte.pfn {
            return Ok((pfn, false));
        }
        let pfn = frames.alloc()?;
        pte.pfn = Some(pfn);
        Ok((pfn, true))
    }

    /// Builds the TLB entry the refill handler would write for `vaddr`,
    /// if the page is resident and at least readable.
    pub fn tlb_entry_for(&self, vaddr: u32) -> Option<TlbEntry> {
        let vpn = vaddr / PAGE_SIZE;
        let pte = self.pages.get(&vpn)?;
        let pfn = pte.pfn?;
        if !pte.prot.allows_read() {
            return None;
        }
        Some(TlbEntry {
            vpn,
            asid: self.asid,
            pfn,
            valid: true,
            dirty: pte.prot.allows_write(),
            global: false,
            user_modifiable: pte.user_modifiable,
        })
    }

    /// Iterates over `(vpn, pte)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &Pte)> {
        self.pages.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(1)
    }

    #[test]
    fn map_and_classify() {
        let mut a = space();
        a.map_region(0x1000_0000, 2 * PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        // Mapped but not resident yet.
        assert_eq!(a.classify(0x1000_0004, false), Err(FaultKind::NotResident));
        let mut frames = FrameAllocator::new(100, 200);
        let (pfn, new) = a.ensure_resident(0x1000_0004, &mut frames).unwrap();
        assert!(new);
        assert_eq!(a.classify(0x1000_0004, true), Ok(pfn));
        // Unmapped address.
        assert_eq!(a.classify(0x2000_0000, false), Err(FaultKind::NotMapped));
    }

    #[test]
    fn mapping_rejects_overlap_and_misalignment() {
        let mut a = space();
        a.map_region(0x1000, PAGE_SIZE, Prot::Read).unwrap();
        assert_eq!(
            a.map_region(0x1000, PAGE_SIZE, Prot::Read),
            Err(MapError::Overlap(1))
        );
        assert_eq!(
            a.map_region(0x1004, PAGE_SIZE, Prot::Read),
            Err(MapError::Unaligned)
        );
        assert_eq!(
            a.map_region(0x2000, 12, Prot::Read),
            Err(MapError::Unaligned)
        );
    }

    #[test]
    fn protection_changes_classify_correctly() {
        let mut a = space();
        let mut frames = FrameAllocator::new(0, 10);
        a.map_region(0x4000, PAGE_SIZE, Prot::ReadWrite).unwrap();
        a.ensure_resident(0x4000, &mut frames).unwrap();
        assert!(a.classify(0x4000, true).is_ok());
        let touched = a.protect_region(0x4000, PAGE_SIZE, Prot::Read).unwrap();
        assert_eq!(touched, vec![0x4000]);
        assert!(a.classify(0x4000, false).is_ok());
        assert_eq!(a.classify(0x4000, true), Err(FaultKind::Protection));
        a.protect_region(0x4000, PAGE_SIZE, Prot::None).unwrap();
        assert_eq!(a.classify(0x4000, false), Err(FaultKind::Protection));
    }

    #[test]
    fn protect_unmapped_is_an_error_and_atomic() {
        let mut a = space();
        a.map_region(0x4000, PAGE_SIZE, Prot::ReadWrite).unwrap();
        let e = a.protect_region(0x4000, 2 * PAGE_SIZE, Prot::Read);
        assert_eq!(e, Err(MapError::NotMapped(5)));
        // First page untouched by the failed call: still writable.
        assert_eq!(a.pte(0x4000).unwrap().prot, Prot::ReadWrite);
    }

    #[test]
    fn unmap_returns_frames() {
        let mut a = space();
        let mut frames = FrameAllocator::new(7, 20);
        a.map_region(0x4000, 2 * PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        a.ensure_resident(0x4000, &mut frames).unwrap();
        let freed = a.unmap_region(0x4000, 2 * PAGE_SIZE).unwrap();
        assert_eq!(freed, vec![7]);
        assert_eq!(a.mapped_pages(), 0);
    }

    #[test]
    fn tlb_entry_reflects_protection() {
        let mut a = space();
        let mut frames = FrameAllocator::new(3, 10);
        a.map_region(0x4000, PAGE_SIZE, Prot::Read).unwrap();
        assert!(a.tlb_entry_for(0x4000).is_none(), "not resident yet");
        a.ensure_resident(0x4000, &mut frames).unwrap();
        let e = a.tlb_entry_for(0x4000).unwrap();
        assert_eq!(e.pfn, 3);
        assert!(e.valid && !e.dirty);
        a.protect_region(0x4000, PAGE_SIZE, Prot::None).unwrap();
        assert!(
            a.tlb_entry_for(0x4000).is_none(),
            "no entry for protect-all"
        );
        a.protect_region(0x4000, PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        let e = a.tlb_entry_for(0x4000).unwrap();
        assert!(e.dirty);
    }

    #[test]
    fn user_modifiable_bit_propagates_to_tlb_entry() {
        let mut a = space();
        let mut frames = FrameAllocator::new(0, 10);
        a.map_region(0x4000, PAGE_SIZE, Prot::ReadWrite).unwrap();
        a.ensure_resident(0x4000, &mut frames).unwrap();
        a.set_user_modifiable(0x4000, PAGE_SIZE, true).unwrap();
        assert!(a.tlb_entry_for(0x4000).unwrap().user_modifiable);
    }

    #[test]
    fn pinning_requires_mapping() {
        let mut a = space();
        assert!(a.set_pinned(0x4000, PAGE_SIZE, true).is_err());
        a.map_region(0x4000, PAGE_SIZE, Prot::ReadWrite).unwrap();
        a.set_pinned(0x4000, PAGE_SIZE, true).unwrap();
        assert!(a.pte(0x4000).unwrap().pinned);
    }
}
