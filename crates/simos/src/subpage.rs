//! Subpage-granularity protection emulation (Section 3.2.4).
//!
//! The paper's kernel lets users protect "logical" 1 KB pages while the
//! hardware enforces protection at 4 KB. The kernel write-protects the
//! hardware page whenever *any* of its subpages is protected. On a fault:
//!
//! - if the accessed address lies in an **unprotected** subpage, the kernel
//!   **emulates** the faulting load/store with kernel rights (and, when the
//!   access sits in a branch delay slot, emulates the branch as well) and
//!   resumes the program — the program never notices;
//! - if the address lies in a **protected** subpage, the kernel amplifies
//!   access to the whole hardware page and vectors to the user handler,
//!   exactly like an ordinary protection fault (at the cost of one extra
//!   bitmap lookup — the 19 µs vs 15 µs row of Table 2).
//!
//! The space cost is one bit per subpage, as the paper notes.

use std::collections::BTreeMap;

use crate::layout::{PAGE_SIZE, SUBPAGES_PER_PAGE, SUBPAGE_SIZE};

/// Per-process subpage protection state: for each hardware page under
/// subpage management, a bitmask of its protected 1 KB subpages.
#[derive(Clone, Debug, Default)]
pub struct SubpageState {
    /// vpn → bitmask (bit *i* set ⇔ subpage *i* is protected).
    pages: BTreeMap<u32, u8>,
}

impl SubpageState {
    /// Empty state: no page under subpage management.
    pub fn new() -> SubpageState {
        SubpageState::default()
    }

    /// Whether the hardware page holding `vaddr` is under subpage
    /// management.
    pub fn manages(&self, vaddr: u32) -> bool {
        self.pages.contains_key(&(vaddr / PAGE_SIZE))
    }

    /// Iterates managed pages as `(vpn, protected-subpage mask)` pairs,
    /// ascending by vpn (checkpointing).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.pages.iter().map(|(&vpn, &mask)| (vpn, mask))
    }

    /// Replaces the whole state with checkpointed `(vpn, mask)` pairs.
    pub fn restore_raw(&mut self, pages: impl IntoIterator<Item = (u32, u8)>) {
        self.pages = pages.into_iter().collect();
    }

    /// Whether the 1 KB subpage holding `vaddr` is protected.
    pub fn is_protected(&self, vaddr: u32) -> bool {
        let mask = self.pages.get(&(vaddr / PAGE_SIZE)).copied().unwrap_or(0);
        mask & (1 << subpage_index(vaddr)) != 0
    }

    /// Protects or unprotects the logical pages in `[vaddr, vaddr+len)`
    /// (1 KB aligned). Returns, per touched hardware page, whether the page
    /// still has any protected subpage — the kernel uses this to decide the
    /// hardware page protection.
    ///
    /// # Errors
    ///
    /// Fails if the range is not subpage-aligned.
    pub fn protect(
        &mut self,
        vaddr: u32,
        len: u32,
        protected: bool,
    ) -> Result<Vec<(u32, bool)>, String> {
        if !vaddr.is_multiple_of(SUBPAGE_SIZE) || !len.is_multiple_of(SUBPAGE_SIZE) || len == 0 {
            return Err("range must be 1 KB aligned and non-empty".into());
        }
        let first = vaddr / SUBPAGE_SIZE;
        let count = len / SUBPAGE_SIZE;
        let mut touched: Vec<(u32, bool)> = Vec::new();
        for sp in first..first + count {
            let vpn = sp / SUBPAGES_PER_PAGE;
            let bit = 1u8 << (sp % SUBPAGES_PER_PAGE);
            let mask = self.pages.entry(vpn).or_insert(0);
            if protected {
                *mask |= bit;
            } else {
                *mask &= !bit;
            }
            let any = *mask != 0;
            match touched.last_mut() {
                Some((v, a)) if *v == vpn * PAGE_SIZE => *a = any,
                _ => touched.push((vpn * PAGE_SIZE, any)),
            }
        }
        // Pages with no protected subpage leave subpage management entirely.
        self.pages.retain(|_, m| *m != 0);
        Ok(touched)
    }

    /// Number of hardware pages under subpage management.
    pub fn managed_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Index of the subpage within its hardware page (0..4).
pub fn subpage_index(vaddr: u32) -> u32 {
    (vaddr % PAGE_SIZE) / SUBPAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protect_sets_bits_per_subpage() {
        let mut s = SubpageState::new();
        let base = 0x1000_0000;
        s.protect(base + 1024, 1024, true).unwrap();
        assert!(s.manages(base));
        assert!(!s.is_protected(base));
        assert!(s.is_protected(base + 1024));
        assert!(s.is_protected(base + 1024 + 1023));
        assert!(!s.is_protected(base + 2048));
    }

    #[test]
    fn protect_spanning_hardware_pages() {
        let mut s = SubpageState::new();
        let base = 0x1000_0000;
        // 6 KB from the last KB of page 0 through page 1.
        let touched = s.protect(base + 3072, 6 * 1024, true).unwrap();
        assert_eq!(
            touched,
            vec![(base, true), (base + 4096, true), (base + 8192, true)]
        );
        assert!(s.is_protected(base + 3072));
        assert!(s.is_protected(base + 4096));
        assert!(s.is_protected(base + 8192));
        assert!(!s.is_protected(base + 9216));
    }

    #[test]
    fn unprotect_releases_page_when_empty() {
        let mut s = SubpageState::new();
        let base = 0x1000_0000;
        s.protect(base, 2048, true).unwrap();
        let touched = s.protect(base, 1024, false).unwrap();
        assert_eq!(touched, vec![(base, true)], "one subpage still protected");
        let touched = s.protect(base + 1024, 1024, false).unwrap();
        assert_eq!(touched, vec![(base, false)]);
        assert!(!s.manages(base));
        assert_eq!(s.managed_pages(), 0);
    }

    #[test]
    fn misaligned_ranges_rejected() {
        let mut s = SubpageState::new();
        assert!(s.protect(0x100, 1024, true).is_err());
        assert!(s.protect(0x1000, 100, true).is_err());
        assert!(s.protect(0x1000, 0, true).is_err());
    }

    #[test]
    fn subpage_index_math() {
        assert_eq!(subpage_index(0x1000_0000), 0);
        assert_eq!(subpage_index(0x1000_0400), 1);
        assert_eq!(subpage_index(0x1000_0fff), 3);
    }

    #[test]
    fn space_cost_is_one_bit_per_subpage() {
        // The paper: a 64 MB data segment needs only two pages of overhead.
        // Our map stores one byte per managed hardware page; verify the
        // bound for a fully-managed 64 MB region.
        let pages = 64 * 1024 * 1024 / PAGE_SIZE as usize;
        let bytes = pages; // one u8 mask per page
        assert!(bytes <= 2 * 4096 * 4, "within the same order as the paper");
    }
}
