//! # efex-simos — a simulated operating system kernel
//!
//! The software substrate for the efex reproduction of Thekkath & Levy
//! (ASPLOS 1994). This crate implements, over the [`efex_mips`] machine:
//!
//! - a **conventional Unix-style signal path** ([`signals`]) with the three
//!   kernel phases the paper describes — post, recognize, deliver — a
//!   sigcontext copied to the user stack, trampoline code, and a `sigreturn`
//!   system call. Its costs are calibrated to the paper's Ultrix
//!   measurements (Section 3.1, Table 1).
//! - the paper's **fast user-level exception path** ([`fastexc`]): a guest
//!   assembly first-level kernel handler that decodes the exception, checks
//!   per-process enablement, saves minimal state into a pinned user
//!   communication page, and returns from the exception directly into the
//!   user's handler. The handler's phases are labeled so its instruction
//!   counts regenerate Table 3.
//! - **virtual memory** ([`vm`]): per-process page tables, a physical frame
//!   allocator ([`frames`]), demand paging with a simulated disk, `mprotect`
//!   with TLB shootdown, page pinning, and the user-modifiable TLB bit.
//! - **eager amplification** and **subpage protection emulation**
//!   ([`subpage`]) as described in Sections 3.2.3–3.2.4, including
//!   branch-delay-slot instruction emulation.
//! - a **system call layer** ([`syscall`]) and the [`kernel::Kernel`] that
//!   ties the machine, the current process, and both delivery paths
//!   together.
//! - **static verification** ([`verify`]): the [`efex_verify`] analyzer
//!   instantiated with this kernel's layout contracts; debug builds check
//!   both embedded images at boot.

#![warn(missing_docs)]

pub mod compose;
pub mod costs;
pub mod fastexc;
pub mod frames;
pub mod kernel;
pub mod layout;
pub mod process;
pub mod signals;
pub mod snapshot;
pub mod subpage;
pub mod syscall;
pub mod verify;
pub mod vm;

pub use kernel::{EfexError, InjectAction, Kernel, KernelError, RunOutcome};
pub use process::Process;
pub use vm::Prot;
