//! System call numbers and conventions.
//!
//! The guest ABI is Ultrix-like: the number goes in `$v0`, arguments in
//! `$a0..$a3`, the result comes back in `$v0` (negative values are
//! `-errno`). The table mixes classic calls with the paper's additions
//! (`uexc_*`, `subpage_protect`, `tlb_grant`).

/// System call numbers.
pub mod nr {
    /// Null syscall used for calibration (the paper's 12 µs anchor).
    pub const GETPID: u32 = 1;
    /// Terminate the process; `a0` = exit code.
    pub const EXIT: u32 = 2;
    /// Write bytes to the console; `a0` = buffer, `a1` = length.
    pub const WRITE: u32 = 3;
    /// Install a Unix signal handler; `a0` = signal, `a1` = handler (0 to
    /// clear).
    pub const SIGACTION: u32 = 4;
    /// Return from a signal handler; `a0` = sigcontext address.
    pub const SIGRETURN: u32 = 5;
    /// Change page protection; `a0` = addr, `a1` = len, `a2` = prot
    /// (0 none, 1 read, 2 read/write). Full Ultrix-weight call.
    pub const MPROTECT: u32 = 6;
    /// Enable fast user-level exceptions; `a0` = exception mask,
    /// `a1` = handler address, `a2` = communication page address
    /// (one page, kernel maps and pins it).
    pub const UEXC_ENABLE: u32 = 7;
    /// Disable fast user-level exceptions.
    pub const UEXC_DISABLE: u32 = 8;
    /// Lean protection-change call used with eager amplification
    /// (the paper's 3 µs re-enable); args as `MPROTECT`.
    pub const UEXC_PROTECT: u32 = 9;
    /// Toggle eager amplification; `a0` = 0/1.
    pub const UEXC_SETEAGER: u32 = 10;
    /// Subpage protection; `a0` = addr (1 KB aligned), `a1` = len,
    /// `a2` = 1 protect / 0 unprotect.
    pub const SUBPAGE_PROTECT: u32 = 11;
    /// Grant (`a2`=1) or revoke (`a2`=0) the user-modifiable TLB bit on
    /// `[a0, a0+a1)`.
    pub const TLB_GRANT: u32 = 12;
    /// Grow the heap by `a0` bytes (page rounded); returns the old break.
    pub const SBRK: u32 = 13;
}

/// Errno values returned as `-errno` in `$v0`.
pub mod errno {
    /// Invalid argument.
    pub const EINVAL: i32 = 22;
    /// Out of memory.
    pub const ENOMEM: i32 = 12;
    /// Bad address.
    pub const EFAULT: i32 = 14;
    /// Unknown system call.
    pub const ENOSYS: i32 = 38;
}

/// Encodes a protection argument (`a2` of `MPROTECT`/`UEXC_PROTECT`).
pub fn prot_from_arg(arg: u32) -> Option<crate::vm::Prot> {
    Some(match arg {
        0 => crate::vm::Prot::None,
        1 => crate::vm::Prot::Read,
        2 => crate::vm::Prot::ReadWrite,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Prot;

    #[test]
    fn prot_arg_mapping() {
        assert_eq!(prot_from_arg(0), Some(Prot::None));
        assert_eq!(prot_from_arg(1), Some(Prot::Read));
        assert_eq!(prot_from_arg(2), Some(Prot::ReadWrite));
        assert_eq!(prot_from_arg(3), None);
    }

    #[test]
    fn numbers_are_distinct() {
        let all = [
            nr::GETPID,
            nr::EXIT,
            nr::WRITE,
            nr::SIGACTION,
            nr::SIGRETURN,
            nr::MPROTECT,
            nr::UEXC_ENABLE,
            nr::UEXC_DISABLE,
            nr::UEXC_PROTECT,
            nr::UEXC_SETEAGER,
            nr::SUBPAGE_PROTECT,
            nr::TLB_GRANT,
            nr::SBRK,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
