//! Per-process kernel state.

use crate::fastexc::FastExcState;
use crate::signals::SignalState;
use crate::subpage::SubpageState;
use crate::vm::AddressSpace;

/// Counters the kernel keeps per process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Exceptions delivered through the Unix signal path.
    pub signals_delivered: u64,
    /// Exceptions delivered through the fast user-level path.
    pub fast_delivered: u64,
    /// Page faults serviced silently by the kernel.
    pub page_faults: u64,
    /// TLB refills serviced from the page table.
    pub tlb_refills: u64,
    /// System calls executed.
    pub syscalls: u64,
    /// Subpage instruction emulations performed (Section 3.2.4).
    pub subpage_emulations: u64,
    /// Pages eagerly amplified before vectoring (Section 3.2.3).
    pub eager_amplifications: u64,
    /// Deliveries that could not complete on the fast path and fell back to
    /// a specified degradation (Unix signals or kill-with-diagnostic).
    pub degraded_deliveries: u64,
    /// UTLB misses on a pinned comm page that had to be repaired through the
    /// slow refill path (the pin was lost; Section 3.2 requires it resident).
    pub utlb_repairs: u64,
    /// Comm pages re-pinned and republished after their frame went missing,
    /// whether detected at UTLB-miss time or just before a delivery.
    pub comm_page_repairs: u64,
}

impl efex_trace::Snapshot for ProcStats {
    fn snapshot(&self) -> efex_trace::StatsSnapshot {
        efex_trace::StatsSnapshot::new("kernel-process")
            .counter("signals_delivered", self.signals_delivered)
            .counter("fast_delivered", self.fast_delivered)
            .counter("page_faults", self.page_faults)
            .counter("tlb_refills", self.tlb_refills)
            .counter("syscalls", self.syscalls)
            .counter("subpage_emulations", self.subpage_emulations)
            .counter("eager_amplifications", self.eager_amplifications)
            .counter("degraded_deliveries", self.degraded_deliveries)
            .counter("utlb_repairs", self.utlb_repairs)
            .counter("comm_page_repairs", self.comm_page_repairs)
    }
}

/// A simulated user process.
#[derive(Clone, Debug)]
pub struct Process {
    pid: u32,
    space: AddressSpace,
    /// Unix-style signal machinery state.
    pub signals: SignalState,
    /// Fast user-level exception state (Section 3.2).
    pub fast: FastExcState,
    /// Subpage protection state (Section 3.2.4).
    pub subpage: SubpageState,
    /// Kernel counters.
    pub stats: ProcStats,
    /// Current heap break (for `sbrk`).
    pub brk: u32,
    exited: Option<i32>,
}

impl Process {
    /// Creates a process with an empty address space tagged `asid`.
    pub fn new(pid: u32, asid: u8) -> Process {
        Process {
            pid,
            space: AddressSpace::new(asid),
            signals: SignalState::new(),
            fast: FastExcState::new(),
            subpage: SubpageState::new(),
            stats: ProcStats::default(),
            brk: crate::layout::USER_DATA_VADDR,
            exited: None,
        }
    }

    /// The process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable address space.
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Marks the process exited with `code`.
    pub fn exit(&mut self, code: i32) {
        self.exited = Some(code);
    }

    /// The exit code, if the process has exited.
    pub fn exit_code(&self) -> Option<i32> {
        self.exited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_running() {
        let p = Process::new(1, 5);
        assert_eq!(p.pid(), 1);
        assert_eq!(p.space().asid(), 5);
        assert_eq!(p.exit_code(), None);
        assert_eq!(p.stats, ProcStats::default());
    }

    #[test]
    fn exit_records_code() {
        let mut p = Process::new(1, 5);
        p.exit(42);
        assert_eq!(p.exit_code(), Some(42));
    }
}
