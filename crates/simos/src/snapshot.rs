//! Kernel-level checkpoint state and its wire encoding.
//!
//! [`KernelState`] extends the machine image
//! ([`efex_mips::snapshot::MachineState`]) with everything the simulated
//! kernel adds on top: the process (page table, signal state, fast-path
//! registration, subpage masks, stats, brk, exit status), the frame
//! allocator (free-list order included — frees are reused LIFO), console
//! output, kernel configuration knobs, and the in-flight Unix-signal
//! delivery stack. [`Kernel::snapshot`]/[`Kernel::restore`] convert
//! between a live kernel and this struct; the functions here convert
//! between the struct and [`efex_snap::Flavor::Kernel`] artifacts.
//!
//! Host-side observability — trace sinks, metrics, pending fault
//! injections, the last degrade diagnostic — is *not* part of a snapshot:
//! it belongs to the observer, not the observed guest, and a restored
//! kernel keeps the receiver's.
//!
//! [`Kernel::snapshot`]: crate::kernel::Kernel::snapshot
//! [`Kernel::restore`]: crate::kernel::Kernel::restore

use efex_mips::exception::ExcCode;
use efex_mips::snapshot::MachineState;
use efex_snap::{Flavor, Reader, SnapError, Writer};
use efex_trace::FaultClass;

use crate::fastexc::FastExcState;
use crate::process::ProcStats;
use crate::signals::Disposition;
use crate::vm::{Prot, Pte};

/// One checkpointed page-table entry: `(virtual page number, PTE image)`.
#[derive(Clone, Copy, Debug)]
pub struct PteState {
    /// Virtual page number (`vaddr >> 12`).
    pub vpn: u32,
    /// Backing physical frame, if resident.
    pub pfn: Option<u32>,
    /// Page protection.
    pub prot: Prot,
    /// User code may adjust this page's protection via `utlbp`.
    pub user_modifiable: bool,
    /// Pinned (the communication page).
    pub pinned: bool,
    /// Written since mapping.
    pub dirty: bool,
}

/// The complete state of one simulated kernel and its process.
#[derive(Clone, Debug)]
pub struct KernelState {
    /// The underlying machine (registers, CP0, TLB, memory).
    pub machine: MachineState,
    /// [`Machine::step_digest`] at capture time — restore recomputes it
    /// and refuses to hand back a kernel whose registers diverged.
    ///
    /// [`Machine::step_digest`]: efex_mips::machine::Machine::step_digest
    pub machine_digest: u64,
    /// Process id.
    pub pid: u32,
    /// Address-space identifier.
    pub asid: u8,
    /// Every mapped page, ascending by vpn.
    pub pages: Vec<PteState>,
    /// Per-signal dispositions, indexed like [`crate::signals::Signal::ALL`].
    pub signal_dispositions: [Disposition; 6],
    /// Pending-signal bitmask.
    pub signals_pending: u8,
    /// Fast-path registration (mask, handler, comm page).
    pub fast: FastExcState,
    /// Subpage protection masks as `(vpn, mask)`, ascending.
    pub subpage: Vec<(u32, u8)>,
    /// Per-process delivery counters.
    pub stats: ProcStats,
    /// Program break.
    pub brk: u32,
    /// Exit status, if the process already exited.
    pub exited: Option<i32>,
    /// Frame allocator: next never-allocated frame.
    pub frames_next: u32,
    /// Frame allocator: first frame past the allocatable range.
    pub frames_limit: u32,
    /// Frame allocator free list, in LIFO order.
    pub frames_free: Vec<u32>,
    /// Total frames ever handed out.
    pub frames_allocated: u64,
    /// Bytes the guest wrote to the console so far.
    pub console: Vec<u8>,
    /// Cycles charged per simulated page-in.
    pub page_in_cost: u64,
    /// Simulated clock in MHz.
    pub clock_mhz: f64,
    /// Ultrix-style unaligned-access fixup enabled.
    pub fixup_unaligned: bool,
    /// Round-robin cursor of the kernel TLB-refill path.
    pub refill_rr: u64,
    /// Unix-signal deliveries in flight, innermost last:
    /// `(class, code, handler-entry cycles)`.
    pub unix_pending: Vec<(FaultClass, ExcCode, u64)>,
}

fn prot_tag(p: Prot) -> u8 {
    match p {
        Prot::None => 0,
        Prot::Read => 1,
        Prot::ReadWrite => 2,
    }
}

fn prot_from_tag(tag: u8) -> Result<Prot, SnapError> {
    match tag {
        0 => Ok(Prot::None),
        1 => Ok(Prot::Read),
        2 => Ok(Prot::ReadWrite),
        t => Err(SnapError::Corrupt(format!("protection tag {t}"))),
    }
}

fn disposition_encode(w: &mut Writer, d: Disposition) {
    match d {
        Disposition::Default => w.u8(0),
        Disposition::Ignore => w.u8(1),
        Disposition::Handler(addr) => {
            w.u8(2);
            w.u32(addr);
        }
    }
}

fn disposition_decode(r: &mut Reader<'_>) -> Result<Disposition, SnapError> {
    match r.u8()? {
        0 => Ok(Disposition::Default),
        1 => Ok(Disposition::Ignore),
        2 => Ok(Disposition::Handler(r.u32()?)),
        t => Err(SnapError::Corrupt(format!("disposition tag {t}"))),
    }
}

impl KernelState {
    /// Appends this state to an in-progress snapshot payload.
    pub fn encode(&self, w: &mut Writer) {
        self.machine.encode(w);
        w.u64(self.machine_digest);
        w.u32(self.pid);
        w.u8(self.asid);
        w.u32(self.pages.len() as u32);
        for p in &self.pages {
            w.u32(p.vpn);
            match p.pfn {
                None => w.bool(false),
                Some(pfn) => {
                    w.bool(true);
                    w.u32(pfn);
                }
            }
            w.u8(prot_tag(p.prot));
            w.bool(p.user_modifiable);
            w.bool(p.pinned);
            w.bool(p.dirty);
        }
        for d in self.signal_dispositions {
            disposition_encode(w, d);
        }
        w.u8(self.signals_pending);
        w.u32(self.fast.enabled_mask);
        w.u32(self.fast.handler);
        w.u32(self.fast.comm_vaddr);
        w.u32(self.fast.comm_kseg0);
        w.bool(self.fast.eager_amplification);
        w.u32(self.subpage.len() as u32);
        for (vpn, mask) in &self.subpage {
            w.u32(*vpn);
            w.u8(*mask);
        }
        for c in [
            self.stats.signals_delivered,
            self.stats.fast_delivered,
            self.stats.page_faults,
            self.stats.tlb_refills,
            self.stats.syscalls,
            self.stats.subpage_emulations,
            self.stats.eager_amplifications,
            self.stats.degraded_deliveries,
            self.stats.utlb_repairs,
            self.stats.comm_page_repairs,
        ] {
            w.u64(c);
        }
        w.u32(self.brk);
        match self.exited {
            None => w.bool(false),
            Some(code) => {
                w.bool(true);
                w.i32(code);
            }
        }
        w.u32(self.frames_next);
        w.u32(self.frames_limit);
        w.u32(self.frames_free.len() as u32);
        for pfn in &self.frames_free {
            w.u32(*pfn);
        }
        w.u64(self.frames_allocated);
        w.bytes(&self.console);
        w.u64(self.page_in_cost);
        w.f64(self.clock_mhz);
        w.bool(self.fixup_unaligned);
        w.u64(self.refill_rr);
        w.u32(self.unix_pending.len() as u32);
        for (class, code, cycles) in &self.unix_pending {
            w.u8(*class as u8);
            w.u8(code.code() as u8);
            w.u64(*cycles);
        }
    }

    /// Decodes a state from an in-progress snapshot payload.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on truncation or forbidden field values.
    pub fn decode(r: &mut Reader<'_>) -> Result<KernelState, SnapError> {
        let machine = MachineState::decode(r)?;
        let machine_digest = r.u64()?;
        let pid = r.u32()?;
        let asid = r.u8()?;
        let n_pages = r.count(4 + 1 + 1 + 3)?;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let vpn = r.u32()?;
            let pfn = if r.bool()? { Some(r.u32()?) } else { None };
            let prot = prot_from_tag(r.u8()?)?;
            pages.push(PteState {
                vpn,
                pfn,
                prot,
                user_modifiable: r.bool()?,
                pinned: r.bool()?,
                dirty: r.bool()?,
            });
        }
        let mut signal_dispositions = [Disposition::Default; 6];
        for d in &mut signal_dispositions {
            *d = disposition_decode(r)?;
        }
        let signals_pending = r.u8()?;
        let fast = FastExcState {
            enabled_mask: r.u32()?,
            handler: r.u32()?,
            comm_vaddr: r.u32()?,
            comm_kseg0: r.u32()?,
            eager_amplification: r.bool()?,
        };
        let n_subpage = r.count(5)?;
        let mut subpage = Vec::with_capacity(n_subpage);
        for _ in 0..n_subpage {
            subpage.push((r.u32()?, r.u8()?));
        }
        let stats = ProcStats {
            signals_delivered: r.u64()?,
            fast_delivered: r.u64()?,
            page_faults: r.u64()?,
            tlb_refills: r.u64()?,
            syscalls: r.u64()?,
            subpage_emulations: r.u64()?,
            eager_amplifications: r.u64()?,
            degraded_deliveries: r.u64()?,
            utlb_repairs: r.u64()?,
            comm_page_repairs: r.u64()?,
        };
        let brk = r.u32()?;
        let exited = if r.bool()? { Some(r.i32()?) } else { None };
        let frames_next = r.u32()?;
        let frames_limit = r.u32()?;
        let n_free = r.count(4)?;
        let mut frames_free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            frames_free.push(r.u32()?);
        }
        let frames_allocated = r.u64()?;
        let console = r.bytes()?.to_vec();
        let page_in_cost = r.u64()?;
        let clock_mhz = r.f64()?;
        let fixup_unaligned = r.bool()?;
        let refill_rr = r.u64()?;
        let n_pending = r.count(1 + 1 + 8)?;
        let mut unix_pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            let class_tag = r.u8()?;
            let class = *FaultClass::ALL
                .get(class_tag as usize)
                .ok_or_else(|| SnapError::Corrupt(format!("fault-class tag {class_tag}")))?;
            let code_tag = r.u8()?;
            let code = ExcCode::from_code(u32::from(code_tag))
                .ok_or_else(|| SnapError::Corrupt(format!("exception code {code_tag}")))?;
            unix_pending.push((class, code, r.u64()?));
        }
        Ok(KernelState {
            machine,
            machine_digest,
            pid,
            asid,
            pages,
            signal_dispositions,
            signals_pending,
            fast,
            subpage,
            stats,
            brk,
            exited,
            frames_next,
            frames_limit,
            frames_free,
            frames_allocated,
            console,
            page_in_cost,
            clock_mhz,
            fixup_unaligned,
            refill_rr,
            unix_pending,
        })
    }

    /// Serializes this state as a standalone [`Flavor::Kernel`] artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(Flavor::Kernel);
        self.encode(&mut w);
        w.finish()
    }

    /// Deserializes a standalone [`Flavor::Kernel`] artifact.
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`] on any malformation; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<KernelState, SnapError> {
        let mut r = Reader::open(bytes, Flavor::Kernel)?;
        let s = KernelState::decode(&mut r)?;
        r.done()?;
        Ok(s)
    }

    /// Rebuilds the checkpointed PTE image as a live [`Pte`].
    pub fn pte_of(p: &PteState) -> Pte {
        Pte {
            pfn: p.pfn,
            prot: p.prot,
            user_modifiable: p.user_modifiable,
            pinned: p.pinned,
            dirty: p.dirty,
        }
    }
}
