//! Composition metadata for the symbolic delivery-path explorer.
//!
//! `efex-verify`'s [`efex_verify::symex`] engine is layout-agnostic: it
//! needs to be told where the vectors are, what the u-area words read as
//! for a given registration, what the host charges for each `hcall`, and
//! which (exception class × delivery variant) pairs to explore. This
//! module is the single place where those facts are transcribed from the
//! simulated kernel — [`crate::layout`], [`crate::costs`],
//! [`crate::fastexc`], and the trampoline in [`crate::kernel`] — so the
//! static model and the executed kernel cannot drift apart without one of
//! them touching this file.
//!
//! Two kinds of composition are modeled:
//!
//! - [`kernel_only_case`] — the kernel image alone, with symbolic
//!   registration (unknown handler, unknown comm alias): proves every
//!   architecturally raisable class reaches *some* handler terminal and
//!   that the protocol invariants hold for any registration;
//! - [`bench_case`] — one fully composed Table 2 microbenchmark: kernel +
//!   signal trampoline + guest program with the registration values the
//!   bench actually establishes, deep through the guest handler to the
//!   user resume, with measure labels matching the dynamic
//!   `table2/{path}/{class}` metrics.

use efex_mips::asm::Program;
use efex_mips::cycles;
use efex_mips::decode::decode;
use efex_mips::exception::ExcCode;
use efex_mips::isa::{Instruction, Reg};
use efex_verify::symex::{
    CommModel, DeliveryVariant, Depth, EntryKind, HostModel, Scenario, StandardResume, SymexConfig,
    UareaModel, UareaWord,
};

use crate::fastexc::FastExcState;
use crate::{costs, layout};

/// Representative KSEG0 alias of the communication page used for composed
/// exploration. The real alias depends on which physical frame the
/// allocator hands out; any KSEG0 address clear of the kernel image and
/// u-area gives the same analysis because the explorer normalizes both
/// mappings of the page to the same canonical offsets.
pub const COMM_KSEG0_REPR: u32 = 0x8040_0000;

/// The general exception vector (fixed by the R3000 architecture).
pub const GENERAL_VECTOR: u32 = 0x8000_0080;

/// The UTLB refill vector (fixed by the R3000 architecture).
pub const UTLB_VECTOR: u32 = 0x8000_0000;

/// One composed verification case: the engine configuration plus the
/// scenarios to explore. The caller supplies the matching
/// [`efex_verify::interproc::Images`] view (the images are borrowed, so
/// they cannot live in this struct).
#[derive(Clone, Debug)]
pub struct ComposedCase {
    /// Engine configuration.
    pub config: SymexConfig,
    /// Scenarios to explore under it.
    pub scenarios: Vec<Scenario>,
}

/// The Table 2 benchmark compositions, named after their
/// `table2/{path}/{class}` metric rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BenchKind {
    /// `fast-user/breakpoint` — software fast path, `break`.
    FastBreakpoint,
    /// `fast-user/write-protect` — fast path, amplified store fault.
    FastWriteProtect,
    /// `fast-user/subpage` — fast path with the subpage engine managing
    /// the page (adds the bitmap lookup to the host work).
    FastSubpage,
    /// `fast-user/unaligned` — fast path, specialized unaligned handler.
    FastUnaligned,
    /// `unix-signals/breakpoint` — standard path, `break` via SIGTRAP.
    UnixBreakpoint,
    /// `unix-signals/write-protect` — standard path, SIGSEGV with
    /// `mprotect` from the handler.
    UnixWriteProtect,
    /// `hardware-vectored/breakpoint` — the Section 2.1 PC/UXT exchange.
    HwBreakpoint,
}

impl BenchKind {
    /// Every bench composition, in the order of the Table 2 matrix.
    pub const ALL: [BenchKind; 7] = [
        BenchKind::UnixBreakpoint,
        BenchKind::UnixWriteProtect,
        BenchKind::FastBreakpoint,
        BenchKind::FastWriteProtect,
        BenchKind::FastSubpage,
        BenchKind::FastUnaligned,
        BenchKind::HwBreakpoint,
    ];

    /// The `table2/{path}/{class}` metric-row key this bench measures.
    pub fn row(self) -> &'static str {
        match self {
            BenchKind::FastBreakpoint => "fast-user/breakpoint",
            BenchKind::FastWriteProtect => "fast-user/write-protect",
            BenchKind::FastSubpage => "fast-user/subpage",
            BenchKind::FastUnaligned => "fast-user/unaligned",
            BenchKind::UnixBreakpoint => "unix-signals/breakpoint",
            BenchKind::UnixWriteProtect => "unix-signals/write-protect",
            BenchKind::HwBreakpoint => "hardware-vectored/breakpoint",
        }
    }

    /// The exception class the bench raises at `fault_site`.
    pub fn class(self) -> ExcCode {
        match self {
            BenchKind::FastBreakpoint | BenchKind::UnixBreakpoint | BenchKind::HwBreakpoint => {
                ExcCode::Breakpoint
            }
            BenchKind::FastWriteProtect | BenchKind::FastSubpage | BenchKind::UnixWriteProtect => {
                ExcCode::TlbMod
            }
            BenchKind::FastUnaligned => ExcCode::AddrErrLoad,
        }
    }
}

/// The canonical comm-frame save-slot assignment (Section 3.2.1): the
/// kernel contract saves `$at`, `$a0`, `$a1` into these frame-relative
/// offsets before clobbering them.
pub fn slot_owners() -> Vec<(u32, Reg)> {
    vec![
        (layout::comm::AT, Reg::AT),
        (layout::comm::K0, Reg::A0),
        (layout::comm::K1, Reg::A1),
    ]
}

fn comm_model(kseg0_base: Option<u32>) -> CommModel {
    CommModel {
        user_base: layout::COMM_PAGE_VADDR,
        kseg0_base,
        page_len: layout::PAGE_SIZE,
        frame_size: layout::COMM_FRAME_SIZE,
        epc_slot: layout::comm::EPC,
        slot_owners: slot_owners(),
    }
}

fn uarea_model(enabled_mask: u32) -> UareaModel {
    let words = [
        (layout::uarea::ENABLED_MASK, UareaWord::Known(enabled_mask)),
        (layout::uarea::HANDLER, UareaWord::Handler),
        (layout::uarea::COMM_KSEG0, UareaWord::CommBase),
        (layout::uarea::FLAGS, UareaWord::Known(0)),
    ];
    UareaModel {
        base: layout::UAREA_VADDR,
        len: 0x200,
        words: words.into_iter().collect(),
    }
}

/// Host cost intervals, transcribed from [`crate::costs`]. `fast_tlb` is
/// the `hcall 2` work: page-table validation, plus the subpage bitmap
/// lookup when the subpage engine manages the faulting page.
fn host_model(fast_tlb: (u64, u64), standard_resume: Option<StandardResume>) -> HostModel {
    let standard = costs::ULTRIX_EXC_SAVE + costs::ULTRIX_POST + costs::ULTRIX_DELIVER;
    HostModel {
        refill_cycles: costs::TLB_REFILL,
        fast_tlb,
        standard: (standard, standard),
        standard_tlb_extra: costs::ULTRIX_VM_FAULT_WORK,
        sigreturn: (costs::ULTRIX_SIGRETURN, costs::ULTRIX_SIGRETURN),
        other_syscall: (costs::ULTRIX_SYSCALL_WRAPPER, costs::ULTRIX_SYSCALL_WRAPPER),
        standard_resume,
    }
}

/// The documented recursive-exception-vulnerable windows: from each vector
/// entry until the save phase has banked EPC/Cause/BadVaddr (label
/// `fexc_fpcheck`). Everything the kernel executes with live CP0 state
/// must sit inside these ranges.
pub fn documented_windows(kernel: &Program) -> Vec<(u32, u32)> {
    let fpcheck = kernel
        .symbol("fexc_fpcheck")
        .expect("kernel image lacks fexc_fpcheck");
    vec![(UTLB_VECTOR, UTLB_VECTOR + 8), (GENERAL_VECTOR, fpcheck)]
}

fn base_config(
    kernel: &Program,
    enabled_mask: u32,
    kseg0_base: Option<u32>,
    handler: Option<u32>,
    fast_tlb: (u64, u64),
    standard_resume: Option<StandardResume>,
) -> SymexConfig {
    SymexConfig {
        general_vector: GENERAL_VECTOR,
        utlb_vector: Some(UTLB_VECTOR),
        exception_entry_cycles: cycles::EXCEPTION_ENTRY,
        user_vector_entry_cycles: cycles::USER_VECTOR_ENTRY,
        uarea: uarea_model(enabled_mask),
        comm: comm_model(kseg0_base),
        handler,
        protocol_saved: vec![Reg::AT, Reg::A0, Reg::A1],
        documented_windows: documented_windows(kernel),
        host: host_model(fast_tlb, standard_resume),
        max_refills: 3,
        unroll_limit: 40,
        max_paths: 512,
    }
}

/// The kernel image alone under a *symbolic* registration: the enabled
/// mask is the widest a process may establish, the handler address and
/// comm alias are opaque tokens. One kernel-only scenario per
/// architecturally raisable class (plus refill variants for the TLB
/// classes) proves each reaches a handler terminal and respects the save
/// protocol for any registration.
pub fn kernel_only_case(kernel: &Program) -> ComposedCase {
    let config = base_config(
        kernel,
        FastExcState::allowed_mask(),
        None,
        None,
        (
            costs::FAST_TLBFAULT_KERNEL,
            costs::FAST_TLBFAULT_KERNEL + costs::SUBPAGE_LOOKUP,
        ),
        None,
    );
    let mut scenarios = Vec::new();
    for class in ExcCode::ALL {
        let mut variants = vec![DeliveryVariant::Direct];
        if class.is_tlb() {
            variants.push(DeliveryVariant::Refill);
        }
        for variant in variants {
            scenarios.push(Scenario {
                label: format!("kernel-only/{}/{}", class_slug(class), variant.label()),
                class,
                variant,
                entry: EntryKind::KernelVector,
                depth: Depth::KernelOnly,
                fault_cost: 1,
                measure_to: None,
                measure_return_from: None,
                return_may_refill: false,
            });
        }
    }
    ComposedCase { config, scenarios }
}

/// The fully composed configuration and scenarios for one Table 2 bench.
///
/// `kernel`, `trampoline`, and `app` are the assembled images the dynamic
/// measurement runs (the caller also passes the same three to
/// [`efex_verify::interproc::Images`]). Registration values — the enabled
/// mask, handler entry, measure labels — are resolved from the `app`
/// image's own symbols, so the static model follows the bench source.
///
/// # Panics
///
/// Panics when an image lacks a label the bench contract requires
/// (`fault_site`, `null_handler`, `null_ret`, and the path-specific
/// handler entry) — the same labels the dynamic measurement depends on.
pub fn bench_case(
    kind: BenchKind,
    kernel: &Program,
    trampoline: &Program,
    app: &Program,
) -> ComposedCase {
    let sym = |p: &Program, name: &str| {
        p.symbol(name)
            .unwrap_or_else(|| panic!("image lacks label {name}"))
    };
    let fault_site = sym(app, "fault_site");
    let measure_to = Some(sym(app, "null_handler"));
    let measure_return_from = Some(sym(app, "null_ret"));
    let fault_cost = {
        let word = app
            .word_at(fault_site)
            .unwrap_or_else(|| panic!("no code at fault_site"));
        let inst = decode(word).expect("fault_site instruction decodes");
        efex_verify::diag::static_cost(inst)
    };
    let class = kind.class();

    let fast_mask = |codes: &[ExcCode]| codes.iter().fold(0u32, |m, c| m | (1 << c.code()));
    let (config, variants, return_may_refill, entry) = match kind {
        BenchKind::FastBreakpoint => (
            base_config(
                kernel,
                fast_mask(&[ExcCode::Breakpoint]),
                Some(COMM_KSEG0_REPR),
                Some(sym(app, "uh_entry")),
                (costs::FAST_TLBFAULT_KERNEL, costs::FAST_TLBFAULT_KERNEL),
                None,
            ),
            vec![DeliveryVariant::Direct],
            false,
            EntryKind::KernelVector,
        ),
        BenchKind::FastWriteProtect | BenchKind::FastSubpage => {
            let lookup = if kind == BenchKind::FastSubpage {
                costs::SUBPAGE_LOOKUP
            } else {
                0
            };
            let tlb = costs::FAST_TLBFAULT_KERNEL + lookup;
            (
                base_config(
                    kernel,
                    fast_mask(&[ExcCode::TlbMod, ExcCode::TlbLoad, ExcCode::TlbStore]),
                    Some(COMM_KSEG0_REPR),
                    Some(sym(app, "uh_entry")),
                    (tlb, tlb),
                    None,
                ),
                vec![DeliveryVariant::Direct, DeliveryVariant::Refill],
                // The guest handler re-runs the faulting store; the
                // protect/amplify cycle invalidated the TLB entry, so the
                // retry may take a refill excursion.
                true,
                EntryKind::KernelVector,
            )
        }
        BenchKind::FastUnaligned => (
            base_config(
                kernel,
                fast_mask(&[ExcCode::AddrErrLoad, ExcCode::AddrErrStore]),
                Some(COMM_KSEG0_REPR),
                Some(sym(app, "uh_entry")),
                (costs::FAST_TLBFAULT_KERNEL, costs::FAST_TLBFAULT_KERNEL),
                None,
            ),
            vec![DeliveryVariant::Direct],
            false,
            EntryKind::KernelVector,
        ),
        BenchKind::UnixBreakpoint | BenchKind::UnixWriteProtect => {
            let resume = StandardResume {
                trampoline_entry: trampoline.entry(),
                handler: sym(app, "handler"),
                sigctx_pc_off: crate::signals::sigcontext::PC as i32,
            };
            let variants = if kind == BenchKind::UnixWriteProtect {
                vec![DeliveryVariant::Direct, DeliveryVariant::Refill]
            } else {
                vec![DeliveryVariant::Direct]
            };
            (
                base_config(
                    kernel,
                    0, // no fast registration: everything falls back
                    Some(COMM_KSEG0_REPR),
                    None,
                    (costs::FAST_TLBFAULT_KERNEL, costs::FAST_TLBFAULT_KERNEL),
                    Some(resume),
                ),
                variants,
                kind == BenchKind::UnixWriteProtect,
                EntryKind::KernelVector,
            )
        }
        BenchKind::HwBreakpoint => {
            // Warm entry: after the first delivery, UXT points at the
            // instruction following `xpcu`, which branches back to the
            // handler entry (the Section 2.2 idiom).
            let entry = xpcu_addr(app)
                .map(|a| a + 4)
                .expect("hardware-vectored bench has no xpcu");
            (
                base_config(
                    kernel,
                    0,
                    Some(COMM_KSEG0_REPR),
                    Some(sym(app, "uh_entry")),
                    (costs::FAST_TLBFAULT_KERNEL, costs::FAST_TLBFAULT_KERNEL),
                    None,
                ),
                vec![DeliveryVariant::Direct],
                false,
                EntryKind::UserVectored { entry },
            )
        }
    };

    let scenarios = variants
        .into_iter()
        .map(|variant| Scenario {
            label: format!("{}/{}", kind.row(), variant.label()),
            class,
            variant,
            entry,
            depth: Depth::Deep,
            fault_cost,
            measure_to,
            measure_return_from,
            return_may_refill,
        })
        .collect();
    ComposedCase { config, scenarios }
}

fn class_slug(class: ExcCode) -> String {
    format!("{class:?}").to_ascii_lowercase()
}

/// The address of the (first) `xpcu` instruction in `prog` — the warm
/// re-entry point of a hardware-vectored handler is the instruction after
/// it.
pub fn xpcu_addr(prog: &Program) -> Option<u32> {
    for seg in prog.segments() {
        let mut addr = seg.addr;
        for _ in 0..(seg.bytes.len() / 4) {
            if let Some(word) = prog.word_at(addr) {
                if decode(word) == Ok(Instruction::Xpcu) {
                    return Some(addr);
                }
            }
            addr = addr.wrapping_add(4);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastexc::KERNEL_ASM;
    use crate::kernel::TRAMPOLINE_ASM;
    use efex_mips::asm::assemble;
    use efex_verify::interproc::Images;
    use efex_verify::symex::{explore, Terminal};

    #[test]
    fn kernel_only_every_class_reaches_a_handler_terminal() {
        let kernel = assemble(KERNEL_ASM).unwrap();
        let case = kernel_only_case(&kernel);
        let images = Images::new(vec![("kernel", &kernel)]);
        let report = explore(&images, &case.config, &case.scenarios);
        assert!(
            report.is_clean(),
            "kernel-only symbolic pass has findings:\n{}",
            report
                .findings
                .iter()
                .map(|f| format!("{f}\n"))
                .collect::<String>()
        );
        for s in &report.scenarios {
            assert!(s.reached, "{} did not reach a handler terminal", s.label);
        }
        // The enabled TLB classes must complete through the host fast-TLB
        // boundary; enabled non-TLB classes through the vector exit.
        let tlb = report.scenario("kernel-only/tlbmod/direct").unwrap();
        assert!(tlb.terminals.contains_key(&Terminal::HostCompleted));
        let bp = report.scenario("kernel-only/breakpoint/direct").unwrap();
        assert!(bp.terminals.contains_key(&Terminal::ToHandler));
        // Disabled classes fall back to the standard path.
        let sys = report.scenario("kernel-only/syscall/direct").unwrap();
        assert!(sys.terminals.contains_key(&Terminal::StandardPath));
    }

    #[test]
    fn kernel_only_live_window_is_inside_the_documented_one() {
        let kernel = assemble(KERNEL_ASM).unwrap();
        let case = kernel_only_case(&kernel);
        let images = Images::new(vec![("kernel", &kernel)]);
        let report = explore(&images, &case.config, &case.scenarios);
        let fpcheck = kernel.symbol("fexc_fpcheck").unwrap();
        let fallback = kernel.symbol("fexc_fallback").unwrap();
        for s in &report.scenarios {
            let Some(end) = s.live_window_end else {
                continue;
            };
            if s.terminals.contains_key(&Terminal::StandardPath) {
                // Fallback deliveries hand live CP0 state to the host at
                // `hcall 1`; the window extends exactly that far.
                assert!(
                    end <= fallback,
                    "{}: CP0 state live at {end:#x}, past fexc_fallback {fallback:#x}",
                    s.label
                );
            } else {
                // Fast-path deliveries must bank CP0 state in the save
                // phase, before fexc_fpcheck.
                assert!(
                    end < fpcheck,
                    "{}: CP0 state live at {end:#x}, past fexc_fpcheck {fpcheck:#x}",
                    s.label
                );
            }
        }
    }

    #[test]
    fn trampoline_entry_is_the_signal_entry() {
        let tramp = assemble(TRAMPOLINE_ASM).unwrap();
        assert_eq!(tramp.entry(), tramp.symbol("tramp_sig").unwrap());
    }
}
